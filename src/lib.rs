//! # mmhew — neighbor discovery in multi-hop multi-channel heterogeneous wireless networks
//!
//! Umbrella crate re-exporting the full `mmhew` workspace: a reproduction of
//! *"Randomized Distributed Algorithms for Neighbor Discovery in Multi-Hop
//! Multi-Channel Heterogeneous Wireless Networks"* (Mittal, Zeng, Venkatesan,
//! Chandrasekaran — ICDCS 2011).
//!
//! The paper's contribution — four randomized neighbor-discovery algorithms
//! for M²HeW (e.g. cognitive-radio) networks — lives in [`discovery`].
//! Everything the algorithms need to run is built here as well: drifting
//! clocks ([`time`]), spectrum/availability models ([`spectrum`]),
//! communication graphs ([`topology`]), the radio collision model
//! ([`radio`]), slotted and continuous-time simulation engines ([`engine`]),
//! and an experiment harness ([`harness`]).
//!
//! # Quickstart
//!
//! ```
//! use mmhew::prelude::*;
//!
//! // A 3x3 grid of nodes, 12-channel universe, each node perceives a
//! // random subset of 6 channels available (heterogeneous network).
//! let seed = SeedTree::new(42);
//! let network = NetworkBuilder::grid(3, 3)
//!     .universe(12)
//!     .availability(AvailabilityModel::UniformSubset { size: 6 })
//!     .build(seed.branch("net"))?;
//!
//! // Run Algorithm 1 (synchronous, identical starts, known degree bound).
//! let delta_est = network.max_degree().max(1) as u64;
//! let outcome = Scenario::sync(&network, SyncAlgorithm::Staged(SyncParams::new(delta_est)?))
//!     .config(SyncRunConfig::until_complete(1_000_000))
//!     .run(seed.branch("run"))?;
//! assert!(outcome.completed());
//! assert!(tables_match_ground_truth(&network, outcome.tables()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use mmhew_campaign as campaign;
pub use mmhew_discovery as discovery;
pub use mmhew_dynamics as dynamics;
pub use mmhew_engine as engine;
pub use mmhew_faults as faults;
pub use mmhew_harness as harness;
pub use mmhew_obs as obs;
pub use mmhew_perfetto as perfetto;
pub use mmhew_radio as radio;
pub use mmhew_rivals as rivals;
pub use mmhew_serve as serve;
pub use mmhew_spectrum as spectrum;
pub use mmhew_time as time;
pub use mmhew_topology as topology;
pub use mmhew_util as util;

/// The most commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use mmhew_discovery::{
        repetition_factor, staleness, tables_are_sound, tables_match_ground_truth,
        AdaptiveDiscovery, AsyncAlgorithm, AsyncFrameDiscovery, AsyncParams, AsyncScenario, Bounds,
        ContinuousConfig, ContinuousDiscovery, ProtocolError, RobustDiscovery, Scenario,
        StagedDiscovery, StalenessReport, SyncAlgorithm, SyncParams, SyncScenario,
        UniformDiscovery,
    };
    #[allow(deprecated)] // compatibility: the legacy runner shims stay glob-importable
    pub use mmhew_discovery::{
        run_async_discovery, run_async_discovery_dynamic, run_async_discovery_faulted,
        run_async_discovery_observed, run_continuous_discovery, run_sync_discovery,
        run_sync_discovery_dynamic, run_sync_discovery_faulted, run_sync_discovery_observed,
        run_sync_discovery_robust,
    };
    pub use mmhew_dynamics::{
        markov_primary_users, poisson_churn, random_waypoint, ChurnConfig, DynamicsSchedule,
        MobilityConfig, SpectrumChurnConfig, TimedEvent,
    };
    pub use mmhew_engine::{
        AsyncOutcome, AsyncRunConfig, AsyncStartSchedule, ClockConfig, EnergyModel, NeighborTable,
        StartSchedule, SyncOutcome, SyncRunConfig,
    };
    pub use mmhew_faults::{CrashSchedule, FaultPlan, GilbertElliott, JamSchedule, LinkLossModel};
    pub use mmhew_obs::{
        EventSink, FanoutSink, JsonlTraceSink, MetricsSink, NullSink, SimEvent, TimelineSink,
        TraceReader,
    };
    pub use mmhew_perfetto::{PerfettoConverter, PerfettoSink};
    pub use mmhew_radio::Impairments;
    pub use mmhew_rivals::{DutyClass, McDisDiscovery, NihaoDiscovery};
    pub use mmhew_spectrum::{AvailabilityModel, ChannelId, ChannelSet};
    pub use mmhew_time::{
        DriftBound, DriftModel, DriftedClock, LocalDuration, LocalTime, Rate, RealDuration,
        RealTime,
    };
    pub use mmhew_topology::{
        Link, Network, NetworkBuilder, NetworkEvent, NodeId, Propagation, Topology,
    };
    pub use mmhew_util::{SeedTree, Summary};
}
