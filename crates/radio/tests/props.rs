//! Property-based tests of medium resolution against brute-force models.

use mmhew_radio::{
    clear_receptions, resolve_slot, Beacon, Impairments, ListenWindow, SlotAction, Transmission,
};
use mmhew_spectrum::{ChannelId, ChannelSet};
use mmhew_time::{RealInterval, RealTime};
use mmhew_topology::{generators, Network, NodeId, Propagation};
use mmhew_util::SeedTree;
use proptest::prelude::*;

/// Strategy: a random homogeneous ER network plus random slot actions.
fn slot_case() -> impl Strategy<Value = (usize, u16, f64, u64, Vec<(u8, u16)>)> {
    (3usize..10, 1u16..5, 0.2f64..1.0, 0u64..u64::MAX).prop_flat_map(|(n, universe, p, seed)| {
        let actions = prop::collection::vec((0u8..3, 0u16..universe), n..=n);
        (Just(n), Just(universe), Just(p), Just(seed), actions)
    })
}

fn build_network(n: usize, universe: u16, p: f64, seed: u64) -> Network {
    let topo = generators::erdos_renyi(n, p, SeedTree::new(seed));
    Network::new(
        topo,
        universe,
        (0..n).map(|_| ChannelSet::full(universe)).collect(),
        Propagation::Uniform,
    )
    .expect("valid network")
}

fn to_actions(raw: &[(u8, u16)]) -> Vec<SlotAction> {
    raw.iter()
        .map(|&(kind, c)| match kind {
            0 => SlotAction::Transmit {
                channel: ChannelId::new(c),
            },
            1 => SlotAction::Listen {
                channel: ChannelId::new(c),
            },
            _ => SlotAction::Quiet,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Slot resolution agrees with the brute-force definition: listener u
    /// hears v iff v is the unique transmitting neighbor of u on u's
    /// channel.
    #[test]
    fn slot_resolution_matches_bruteforce((n, universe, p, seed, raw) in slot_case()) {
        let net = build_network(n, universe, p, seed);
        let actions = to_actions(&raw);
        let mut rng = SeedTree::new(seed ^ 0xFF).rng();
        let out = resolve_slot(&net, &actions, &Impairments::reliable(), &mut rng);

        for i in 0..n {
            let u = NodeId::new(i as u32);
            let heard: Vec<NodeId> = out
                .deliveries
                .iter()
                .filter(|d| d.to == u)
                .map(|d| d.from)
                .collect();
            match actions[i] {
                SlotAction::Listen { channel } => {
                    let txs: Vec<NodeId> = net
                        .neighbors_on(u, channel)
                        .iter()
                        .copied()
                        .filter(|v| {
                            matches!(actions[v.as_usize()], SlotAction::Transmit { channel: c } if c == channel)
                        })
                        .collect();
                    if txs.len() == 1 {
                        prop_assert_eq!(&heard, &txs);
                    } else {
                        prop_assert!(heard.is_empty(), "collision or silence must deliver nothing");
                        if txs.len() >= 2 {
                            prop_assert!(out.collisions.iter().any(|c| c.at == u));
                        }
                    }
                }
                _ => prop_assert!(heard.is_empty(), "non-listeners hear nothing"),
            }
        }
        // Global sanity: at most one delivery per listener.
        for i in 0..n {
            let u = NodeId::new(i as u32);
            prop_assert!(out.deliveries.iter().filter(|d| d.to == u).count() <= 1);
        }
    }

    /// Continuous reception matches the brute-force interval definition.
    #[test]
    fn continuous_resolution_matches_bruteforce(
        seed in 0u64..u64::MAX,
        window_start in 0u64..5_000,
        window_len in 500u64..4_000,
        bursts in prop::collection::vec(
            (0u32..4, 0u16..2, 0u64..8_000, 100u64..1_500),
            0..12,
        ),
    ) {
        // Complete graph of 5 on 2 channels: node 4 listens, 0..4 transmit.
        let net = build_network(5, 2, 1.0, seed);
        let listener = NodeId::new(4);
        let channel = ChannelId::new(0);
        let window = ListenWindow {
            listener,
            channel,
            interval: RealInterval::new(
                RealTime::from_nanos(window_start),
                RealTime::from_nanos(window_start + window_len),
            ),
        };
        let txs: Vec<Transmission> = bursts
            .iter()
            .map(|&(from, c, start, len)| Transmission {
                from: NodeId::new(from),
                channel: ChannelId::new(c),
                interval: RealInterval::new(
                    RealTime::from_nanos(start),
                    RealTime::from_nanos(start + len),
                ),
            })
            .collect();
        let got = clear_receptions(&net, &window, &txs);

        // Brute force: sender v is received iff some burst of v on the
        // channel is contained in the window and overlapped by no burst of
        // a different sender on the channel.
        for v in 0..4u32 {
            let v = NodeId::new(v);
            let expected = txs.iter().any(|b| {
                b.from == v
                    && b.channel == channel
                    && window.interval.contains_interval(&b.interval)
                    && !txs.iter().any(|o| {
                        o.from != v && o.channel == channel && o.interval.overlaps(&b.interval)
                    })
            });
            prop_assert_eq!(
                got.iter().any(|r| r.from == v),
                expected,
                "sender {} mismatch", v
            );
        }
        // At most one reception per sender; bursts reported are contained.
        for r in &got {
            prop_assert!(window.interval.contains_interval(&r.burst));
            prop_assert_eq!(got.iter().filter(|x| x.from == r.from).count(), 1);
        }
    }

    /// Beacon wire format round-trips for arbitrary channel sets.
    #[test]
    fn beacon_round_trip(
        sender in 0u32..1_000_000,
        channels in prop::collection::btree_set(0u16..500, 0..64),
    ) {
        let set: ChannelSet = channels.iter().copied().collect();
        let beacon = Beacon::new(NodeId::new(sender), set);
        let decoded = Beacon::decode(&beacon.encode()).expect("round trip");
        prop_assert_eq!(decoded, beacon);
    }

    /// Truncating a valid encoding at any point must fail to decode, never
    /// panic or succeed.
    #[test]
    fn beacon_truncation_always_errors(
        sender in 0u32..1_000,
        channels in prop::collection::btree_set(0u16..100, 1..20),
        cut_fraction in 0.0f64..1.0,
    ) {
        let set: ChannelSet = channels.iter().copied().collect();
        let wire = Beacon::new(NodeId::new(sender), set).encode();
        let cut = ((wire.len() as f64 * cut_fraction) as usize).min(wire.len() - 1);
        prop_assert!(Beacon::decode(&wire[..cut]).is_err());
    }
}
