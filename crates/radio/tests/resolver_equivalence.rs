//! Property-based equivalence of [`SlotResolver`] with the
//! listener-centric reference `resolve_slot`.
//!
//! The engines' correctness rests on the two resolvers being
//! indistinguishable: same deliveries, collisions and loss counts in the
//! same order, **and** the same RNG draw sequence (a divergent draw count
//! would silently desynchronise every later slot of a run). These tests
//! drive both implementations over random heterogeneous networks —
//! Erdős–Rényi and geometric (unit-disk) — random multi-slot action
//! sequences, and impairment probabilities both reliable and lossy, and
//! assert outcome equality plus post-call RNG state equality after every
//! slot.

use mmhew_radio::{resolve_slot, Impairments, SlotAction, SlotResolver};
use mmhew_spectrum::{ChannelId, ChannelSet};
use mmhew_topology::{generators, Network, Propagation};
use mmhew_util::SeedTree;
use proptest::prelude::*;

/// Strategy: network shape + heterogeneous availability + a multi-slot
/// action sequence + an impairment configuration.
#[allow(clippy::type_complexity)]
fn resolver_case() -> impl Strategy<
    Value = (
        usize,               // n
        u16,                 // universe
        bool,                // geometric (unit-disk) vs Erdős–Rényi
        u64,                 // topology seed
        Vec<Vec<u16>>,       // per-node available channels (dups ok)
        Vec<Vec<(u8, u16)>>, // slots of raw per-node actions
        f64,                 // lossy delivery probability
        bool,                // force perfectly reliable impairments
    ),
> {
    (3usize..12, 1u16..5, any::<bool>(), 0u64..u64::MAX).prop_flat_map(
        |(n, universe, geometric, seed)| {
            let avail = prop::collection::vec(
                prop::collection::vec(0..universe, 0..=universe as usize),
                n..=n,
            );
            let slots =
                prop::collection::vec(prop::collection::vec((0u8..3, 0..universe), n..=n), 1..6);
            (
                Just(n),
                Just(universe),
                Just(geometric),
                Just(seed),
                avail,
                slots,
                0.2f64..1.0,
                any::<bool>(),
            )
        },
    )
}

fn build_network(
    n: usize,
    universe: u16,
    geometric: bool,
    seed: u64,
    avail: &[Vec<u16>],
) -> Network {
    let topo = if geometric {
        generators::unit_disk(n, 10.0, 4.5, SeedTree::new(seed))
    } else {
        generators::erdos_renyi(n, 0.5, SeedTree::new(seed))
    };
    let availability: Vec<ChannelSet> = avail
        .iter()
        .map(|chs| chs.iter().copied().collect())
        .collect();
    Network::new(topo, universe, availability, Propagation::Uniform).expect("valid network")
}

fn to_actions(raw: &[(u8, u16)]) -> Vec<SlotAction> {
    raw.iter()
        .map(|&(kind, c)| match kind {
            0 => SlotAction::Transmit {
                channel: ChannelId::new(c),
            },
            1 => SlotAction::Listen {
                channel: ChannelId::new(c),
            },
            _ => SlotAction::Quiet,
        })
        .collect()
}

/// Strategy for the channel-sharded resolver: like [`resolver_case`] but
/// with a three-way topology family (Erdős–Rényi / unit-disk / grid) and
/// a shard count in `1..=8`.
#[allow(clippy::type_complexity)]
fn sharded_case() -> impl Strategy<
    Value = (
        usize,               // n
        u16,                 // universe
        u8,                  // topology family: 0 = ER, 1 = disk, 2 = grid
        u64,                 // topology seed
        Vec<Vec<u16>>,       // per-node available channels (dups ok)
        Vec<Vec<(u8, u16)>>, // slots of raw per-node actions
        f64,                 // lossy delivery probability
        bool,                // force perfectly reliable impairments
        usize,               // shard count
    ),
> {
    (3usize..12, 1u16..5, 0u8..3, 0u64..u64::MAX).prop_flat_map(|(n, universe, family, seed)| {
        let avail = prop::collection::vec(
            prop::collection::vec(0..universe, 0..=universe as usize),
            n..=n,
        );
        let slots =
            prop::collection::vec(prop::collection::vec((0u8..3, 0..universe), n..=n), 1..6);
        (
            Just(n),
            Just(universe),
            Just(family),
            Just(seed),
            avail,
            slots,
            0.2f64..1.0,
            any::<bool>(),
            1usize..=8,
        )
    })
}

fn build_family_network(
    n: usize,
    universe: u16,
    family: u8,
    seed: u64,
    avail: &[Vec<u16>],
) -> Network {
    let topo = match family {
        0 => generators::erdos_renyi(n, 0.5, SeedTree::new(seed)),
        1 => generators::unit_disk(n, 10.0, 4.5, SeedTree::new(seed)),
        _ => {
            // The widest w × h factorization with w·h = n exactly (falls
            // back to a 1 × n line for prime n — still a grid instance).
            let w = (1..=n)
                .filter(|d| n % d == 0 && d * d <= n)
                .max()
                .expect("1 always divides n");
            generators::grid(w, n / w)
        }
    };
    let availability: Vec<ChannelSet> = avail
        .iter()
        .map(|chs| chs.iter().copied().collect())
        .collect();
    Network::new(topo, universe, availability, Propagation::Uniform).expect("valid network")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// One `SlotResolver` reused across a whole slot sequence produces,
    /// slot by slot, the exact outcome and RNG trajectory of the
    /// reference resolver.
    #[test]
    fn slot_resolver_bitwise_matches_reference(
        (n, universe, geometric, seed, avail, raw_slots, q, reliable) in resolver_case()
    ) {
        let net = build_network(n, universe, geometric, seed, &avail);
        let impairments = if reliable {
            Impairments::reliable()
        } else {
            Impairments::with_delivery_probability(q)
        };
        let medium = SeedTree::new(seed ^ 0xA5A5).branch("medium");
        let mut rng_new = medium.rng();
        let mut rng_ref = medium.rng();
        let mut resolver = SlotResolver::new();
        for raw in &raw_slots {
            let actions = to_actions(raw);
            let expected = resolve_slot(&net, &actions, &impairments, &mut rng_ref);
            let got = resolver.resolve(&net, &actions, &impairments, &mut rng_new);
            prop_assert_eq!(got, &expected, "outcome diverged");
            prop_assert_eq!(&rng_new, &rng_ref, "RNG draw sequence diverged");
        }
    }

    /// The channel-sharded resolver is indistinguishable from the serial
    /// one — identical outcomes *and* identical post-call RNG state after
    /// every slot — across ER, unit-disk, and grid topologies and every
    /// shard count in 1..=8. Worker scheduling (work stealing over the
    /// touched-channel list) must never leak into results.
    #[test]
    fn sharded_resolver_bitwise_matches_serial(
        (n, universe, family, seed, avail, raw_slots, q, reliable, shards) in sharded_case()
    ) {
        let net = build_family_network(n, universe, family, seed, &avail);
        let impairments = if reliable {
            Impairments::reliable()
        } else {
            Impairments::with_delivery_probability(q)
        };
        let medium = SeedTree::new(seed ^ 0x5A5A).branch("medium");
        let mut rng_serial = medium.rng();
        let mut rng_sharded = medium.rng();
        let mut serial = SlotResolver::new();
        let mut sharded = SlotResolver::new().with_shards(shards);
        for raw in &raw_slots {
            let actions = to_actions(raw);
            let expected = serial
                .resolve(&net, &actions, &impairments, &mut rng_serial)
                .clone();
            let got = sharded.resolve(&net, &actions, &impairments, &mut rng_sharded);
            prop_assert_eq!(got, &expected, "sharded outcome diverged (shards={})", shards);
            prop_assert_eq!(&rng_sharded, &rng_serial, "sharded RNG trajectory diverged");
        }
    }

    /// Reliable impairments must draw nothing from the RNG in either
    /// implementation: the post-call state equals the pre-call state.
    #[test]
    fn reliable_runs_never_touch_the_rng(
        (n, universe, geometric, seed, avail, raw_slots, _q, _r) in resolver_case()
    ) {
        let net = build_network(n, universe, geometric, seed, &avail);
        let pristine = SeedTree::new(seed).rng();
        let mut rng = SeedTree::new(seed).rng();
        let mut resolver = SlotResolver::new();
        for raw in &raw_slots {
            let actions = to_actions(raw);
            resolver.resolve(&net, &actions, &Impairments::reliable(), &mut rng);
            prop_assert_eq!(&rng, &pristine);
        }
    }
}
