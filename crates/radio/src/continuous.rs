//! Continuous-time reception resolution for the asynchronous engine.
//!
//! In the asynchronous system nothing is synchronized: a listening node `u`
//! hears a clear message from `v` iff some complete burst (one slot's
//! transmission) of `v` on `u`'s listening channel lies entirely within
//! `u`'s listening window and no other neighbor's transmission on that
//! channel overlaps the burst.
//!
//! This is the *physical* reception condition. The paper's frame-level
//! coverage condition (§IV: aligned pair + no interferer in any overlapping
//! frame) is strictly stronger, so simulated discovery can only be as fast
//! or faster than the analysis predicts — the right direction for
//! validating upper bounds.

use mmhew_spectrum::ChannelId;
use mmhew_time::RealInterval;
use mmhew_topology::{Network, NodeId};
use serde::{Deserialize, Serialize};

/// One transmission burst: a node occupying a channel for a real-time
/// interval (one slot of a transmitting frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Transmission {
    /// Transmitting node.
    pub from: NodeId,
    /// Channel occupied.
    pub channel: ChannelId,
    /// Real-time extent of the burst.
    pub interval: RealInterval,
}

/// A listening window: a node listening on one channel for a real-time
/// interval (one full frame in Algorithm 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ListenWindow {
    /// Listening node.
    pub listener: NodeId,
    /// Channel tuned.
    pub channel: ChannelId,
    /// Real-time extent of the window.
    pub interval: RealInterval,
}

/// A clear reception resolved from a listening window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClearReception {
    /// The transmitter heard.
    pub from: NodeId,
    /// The burst that was received (earliest clear burst of this sender).
    pub burst: RealInterval,
}

/// Resolves which senders the listener hears clearly during `window`.
///
/// `transmissions` are candidate bursts (the engine passes every burst that
/// could possibly matter; bursts on other channels, from non-neighbors, or
/// outside the window are ignored here). At most one reception per sender
/// is reported (the earliest clear burst).
///
/// Convenience wrapper over [`ContinuousResolver`] that allocates a fresh
/// result vector per call; the async engine holds a resolver instead to
/// reuse buffers across frames.
pub fn clear_receptions(
    network: &Network,
    window: &ListenWindow,
    transmissions: &[Transmission],
) -> Vec<ClearReception> {
    let mut resolver = ContinuousResolver::new();
    resolver.resolve(network, window, transmissions);
    resolver.received
}

/// Continuous-time reception resolution with persistent scratch space.
///
/// Same algorithm and results as [`clear_receptions`], but the candidate
/// and result buffers are reused across calls, so the steady-state frame
/// loop performs no heap allocation once capacities have grown to the
/// densest frame seen.
#[derive(Debug, Default)]
pub struct ContinuousResolver {
    /// Bursts from neighbors on the listening channel — both candidate
    /// signals and potential interferers. Reused across calls.
    relevant: Vec<Transmission>,
    /// Receptions of the most recent `resolve` call. Reused across calls.
    received: Vec<ClearReception>,
}

impl ContinuousResolver {
    /// An empty resolver; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The receptions of the most recent [`resolve`](Self::resolve) call
    /// (empty before the first).
    pub fn receptions(&self) -> &[ClearReception] {
        &self.received
    }

    /// Resolves which senders the listener hears clearly during `window`,
    /// reusing internal buffers. Results are identical to
    /// [`clear_receptions`]: at most one reception per sender (the earliest
    /// clear burst), sorted by `(burst start, sender)` — a unique key, so
    /// the allocation-free unstable sort is deterministic.
    pub fn resolve(
        &mut self,
        network: &Network,
        window: &ListenWindow,
        transmissions: &[Transmission],
    ) -> &[ClearReception] {
        let neighbors = network.neighbors_on(window.listener, window.channel);
        self.relevant.clear();
        self.relevant.extend(
            transmissions
                .iter()
                .filter(|t| t.channel == window.channel && neighbors.contains(&t.from))
                .copied(),
        );

        self.received.clear();
        for burst in &self.relevant {
            if !window.interval.contains_interval(&burst.interval) {
                continue;
            }
            let interfered = self
                .relevant
                .iter()
                .any(|other| other.from != burst.from && other.interval.overlaps(&burst.interval));
            if interfered {
                continue;
            }
            match self.received.iter_mut().find(|r| r.from == burst.from) {
                Some(existing) => {
                    if burst.interval.start() < existing.burst.start() {
                        existing.burst = burst.interval;
                    }
                }
                None => self.received.push(ClearReception {
                    from: burst.from,
                    burst: burst.interval,
                }),
            }
        }
        self.received
            .sort_unstable_by_key(|r| (r.burst.start(), r.from));
        &self.received
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_spectrum::ChannelSet;
    use mmhew_time::RealTime;
    use mmhew_topology::{generators, Propagation};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn ch(i: u16) -> ChannelId {
        ChannelId::new(i)
    }

    fn ri(a: u64, b: u64) -> RealInterval {
        RealInterval::new(RealTime::from_nanos(a), RealTime::from_nanos(b))
    }

    /// Line 0-1-2 with 2 channels, fully shared.
    fn net3() -> Network {
        Network::new(
            generators::line(3),
            2,
            (0..3).map(|_| ChannelSet::full(2)).collect(),
            Propagation::Uniform,
        )
        .expect("valid network")
    }

    fn window(listener: u32, c: u16, a: u64, b: u64) -> ListenWindow {
        ListenWindow {
            listener: n(listener),
            channel: ch(c),
            interval: ri(a, b),
        }
    }

    fn tx(from: u32, c: u16, a: u64, b: u64) -> Transmission {
        Transmission {
            from: n(from),
            channel: ch(c),
            interval: ri(a, b),
        }
    }

    #[test]
    fn contained_burst_is_received() {
        let net = net3();
        let got = clear_receptions(&net, &window(1, 0, 0, 300), &[tx(0, 0, 50, 150)]);
        assert_eq!(
            got,
            vec![ClearReception {
                from: n(0),
                burst: ri(50, 150)
            }]
        );
    }

    #[test]
    fn partial_burst_is_not_received() {
        let net = net3();
        // Burst sticks out of the window on either side.
        assert!(clear_receptions(&net, &window(1, 0, 100, 300), &[tx(0, 0, 50, 150)]).is_empty());
        assert!(clear_receptions(&net, &window(1, 0, 0, 120), &[tx(0, 0, 50, 150)]).is_empty());
        // Burst exactly equal to the window is contained.
        assert_eq!(
            clear_receptions(&net, &window(1, 0, 50, 150), &[tx(0, 0, 50, 150)]).len(),
            1
        );
    }

    #[test]
    fn overlapping_interferer_destroys_burst() {
        let net = net3();
        let got = clear_receptions(
            &net,
            &window(1, 0, 0, 600),
            &[tx(0, 0, 100, 200), tx(2, 0, 150, 250)],
        );
        assert!(got.is_empty(), "overlapping bursts of 0 and 2 collide at 1");
    }

    #[test]
    fn non_overlapping_bursts_both_received() {
        let net = net3();
        let got = clear_receptions(
            &net,
            &window(1, 0, 0, 600),
            &[tx(0, 0, 100, 200), tx(2, 0, 300, 400)],
        );
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].from, n(0));
        assert_eq!(got[1].from, n(2));
    }

    #[test]
    fn touching_bursts_do_not_interfere() {
        // Half-open semantics: [100,200) and [200,300) don't overlap.
        let net = net3();
        let got = clear_receptions(
            &net,
            &window(1, 0, 0, 600),
            &[tx(0, 0, 100, 200), tx(2, 0, 200, 300)],
        );
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn interferer_outside_window_still_interferes() {
        // 2's burst is NOT contained in the window but overlaps 0's burst.
        let net = net3();
        let got = clear_receptions(
            &net,
            &window(1, 0, 100, 400),
            &[tx(0, 0, 150, 250), tx(2, 0, 240, 500)],
        );
        assert!(got.is_empty());
    }

    #[test]
    fn other_channel_ignored_entirely() {
        let net = net3();
        let got = clear_receptions(
            &net,
            &window(1, 0, 0, 600),
            &[tx(0, 1, 100, 200), tx(2, 0, 100, 200)],
        );
        // 0's burst is on channel 1 (ignored); 2's burst on channel 0 is
        // clear.
        assert_eq!(
            got,
            vec![ClearReception {
                from: n(2),
                burst: ri(100, 200)
            }]
        );
    }

    #[test]
    fn non_neighbor_is_invisible() {
        // Line 0-1-2-3: 3 is not a neighbor of 1.
        let net = Network::new(
            generators::line(4),
            1,
            (0..4).map(|_| ChannelSet::full(1)).collect(),
            Propagation::Uniform,
        )
        .expect("valid network");
        let got = clear_receptions(
            &net,
            &window(1, 0, 0, 600),
            &[tx(0, 0, 100, 200), tx(3, 0, 150, 250)],
        );
        // 3's burst would overlap but 3 is out of range of 1.
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].from, n(0));
    }

    #[test]
    fn multiple_bursts_same_sender_dedupe_to_earliest() {
        let net = net3();
        let got = clear_receptions(
            &net,
            &window(1, 0, 0, 900),
            &[tx(0, 0, 400, 500), tx(0, 0, 100, 200), tx(0, 0, 700, 800)],
        );
        assert_eq!(
            got,
            vec![ClearReception {
                from: n(0),
                burst: ri(100, 200)
            }]
        );
    }

    #[test]
    fn same_sender_bursts_do_not_self_interfere() {
        let net = net3();
        // Adjacent bursts of the same sender (frame slots) must not be
        // treated as interference.
        let got = clear_receptions(
            &net,
            &window(1, 0, 0, 900),
            &[tx(0, 0, 100, 200), tx(0, 0, 200, 300), tx(0, 0, 300, 400)],
        );
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn span_restriction_applies() {
        // Node 1 only shares channel 1 with node 0.
        let net = Network::new(
            generators::line(2),
            2,
            vec![
                [0u16, 1].into_iter().collect(),
                [1u16].into_iter().collect(),
            ],
            Propagation::Uniform,
        )
        .expect("valid network");
        // Even though 0 transmits on channel 0 within the window, 1 cannot
        // hear it there (channel 0 ∉ A(1), hence not in span).
        let got = clear_receptions(&net, &window(1, 0, 0, 300), &[tx(0, 0, 50, 150)]);
        assert!(got.is_empty());
        let got1 = clear_receptions(&net, &window(1, 1, 0, 300), &[tx(0, 1, 50, 150)]);
        assert_eq!(got1.len(), 1);
    }
}
