//! Radio medium models for M²HeW neighbor discovery.
//!
//! Implements the paper's communication model (§II): half-duplex
//! single-channel transceivers, no collision detection, interference only
//! between neighbors, and beacons carrying the sender's available channel
//! set. Two resolution disciplines are provided:
//!
//! * [`slotted`] — slot-synchronous resolution for Algorithms 1–3: a
//!   listener hears a clear beacon iff exactly one neighbor transmits on
//!   its channel in the slot;
//! * [`continuous`] — continuous-time resolution for Algorithm 4: a burst
//!   is received iff it lies inside the listening window and no neighbor's
//!   burst overlaps it.
//!
//! [`Impairments`] adds the unreliable-channel extension (per-reception
//! delivery probability).
//!
//! Slotted resolution is transmitter-centric and allocation-free in the
//! steady state ([`SlotResolver`]); the original listener-centric
//! `slotted::resolve_slot` survives behind the `reference-resolver`
//! feature as the oracle for equivalence tests and benchmarks.
//!
//! # Examples
//!
//! ```
//! use mmhew_radio::{Impairments, SlotAction, SlotResolver};
//! use mmhew_spectrum::{AvailabilityModel, ChannelId};
//! use mmhew_topology::NetworkBuilder;
//! use mmhew_util::SeedTree;
//!
//! let net = NetworkBuilder::line(2).universe(1).build(SeedTree::new(0))?;
//! let mut rng = SeedTree::new(1).rng();
//! let mut resolver = SlotResolver::new();
//! let out = resolver.resolve(
//!     &net,
//!     &[
//!         SlotAction::Transmit { channel: ChannelId::new(0) },
//!         SlotAction::Listen { channel: ChannelId::new(0) },
//!     ],
//!     &Impairments::reliable(),
//!     &mut rng,
//! );
//! assert_eq!(out.deliveries.len(), 1);
//! # Ok::<(), mmhew_topology::BuildError>(())
//! ```

pub mod continuous;
pub mod impairments;
pub mod message;
pub mod mode;
pub mod slotted;

pub use continuous::{
    clear_receptions, ClearReception, ContinuousResolver, ListenWindow, Transmission,
};
pub use impairments::Impairments;
pub use message::{Beacon, DecodeError};
pub use mode::{FrameAction, SlotAction};
#[cfg(any(test, feature = "reference-resolver"))]
pub use slotted::resolve_slot;
pub use slotted::{Collision, Delivery, SlotOutcome, SlotResolver};
