//! Channel impairments: the unreliable-channel extension.
//!
//! The paper's base model has perfectly reliable channels — a unique
//! neighboring transmitter is always heard. Its conclusion claims the
//! algorithms extend to unreliable channels; this module models that as an
//! independent per-reception delivery probability (experiment E13).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Stochastic impairments applied to otherwise-clear receptions.
///
/// # Examples
///
/// ```
/// use mmhew_radio::Impairments;
/// use mmhew_util::SeedTree;
///
/// let perfect = Impairments::reliable();
/// let mut rng = SeedTree::new(0).rng();
/// assert!(perfect.delivers(&mut rng));
///
/// let lossy = Impairments::with_delivery_probability(0.0);
/// assert!(!lossy.delivers(&mut rng));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Impairments {
    delivery_probability: f64,
}

impl Impairments {
    /// Perfectly reliable channels (the paper's base model).
    pub fn reliable() -> Self {
        Self {
            delivery_probability: 1.0,
        }
    }

    /// Each clear reception is delivered independently with probability
    /// `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]`.
    pub fn with_delivery_probability(q: f64) -> Self {
        assert!((0.0..=1.0).contains(&q), "probability out of range");
        Self {
            delivery_probability: q,
        }
    }

    /// The per-reception delivery probability.
    pub fn delivery_probability(&self) -> f64 {
        self.delivery_probability
    }

    /// True if the channels are perfectly reliable (fast path: no RNG draw
    /// needed).
    pub fn is_reliable(&self) -> bool {
        self.delivery_probability >= 1.0
    }

    /// Samples whether one clear reception is actually delivered.
    ///
    /// Delegates to [`mmhew_faults::bernoulli_delivers`], which is the
    /// i.i.d. special case of the fault subsystem's link-loss models —
    /// the draw sequence (one `gen_bool(q)` per unreliable reception,
    /// none when reliable) is pinned by E13's seeded regression.
    pub fn delivers<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        mmhew_faults::bernoulli_delivers(self.delivery_probability, rng)
    }
}

impl Default for Impairments {
    fn default() -> Self {
        Self::reliable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_util::SeedTree;

    #[test]
    fn reliable_always_delivers() {
        let imp = Impairments::reliable();
        let mut rng = SeedTree::new(1).rng();
        assert!(imp.is_reliable());
        assert!((0..100).all(|_| imp.delivers(&mut rng)));
        assert_eq!(Impairments::default(), imp);
    }

    #[test]
    fn zero_never_delivers() {
        let imp = Impairments::with_delivery_probability(0.0);
        let mut rng = SeedTree::new(1).rng();
        assert!((0..100).all(|_| !imp.delivers(&mut rng)));
    }

    #[test]
    fn intermediate_probability_is_calibrated() {
        let imp = Impairments::with_delivery_probability(0.3);
        let mut rng = SeedTree::new(2).rng();
        let n = 50_000;
        let delivered = (0..n).filter(|_| imp.delivers(&mut rng)).count();
        let p = delivered as f64 / n as f64;
        assert!((p - 0.3).abs() < 0.02, "observed {p}");
        assert!(!imp.is_reliable());
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn invalid_probability_panics() {
        let _ = Impairments::with_delivery_probability(1.5);
    }

    #[test]
    fn draw_sequence_matches_raw_gen_bool() {
        // Guards the delegation to `mmhew_faults::bernoulli_delivers`:
        // exactly one `gen_bool(q)` per call when q < 1 and zero when
        // reliable, so pre-delegation seeded runs (E13) replay unchanged.
        let imp = Impairments::with_delivery_probability(0.3);
        let mut a = SeedTree::new(9).rng();
        let mut b = a.clone();
        for _ in 0..500 {
            assert_eq!(imp.delivers(&mut a), b.gen_bool(0.3));
        }
        let reliable = Impairments::reliable();
        for _ in 0..10 {
            assert!(reliable.delivers(&mut a));
        }
        assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "streams stayed in lockstep");
    }
}
