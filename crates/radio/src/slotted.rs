//! Slot-synchronous medium resolution.
//!
//! Implements the paper's collision model for the synchronous algorithms
//! (§II): in a slot, a listener `u` on channel `c` hears a clear message
//! from `v` iff `v` is the *unique* neighbor of `u` transmitting on `c`.
//! Two or more transmitting neighbors collide and `u` hears only noise;
//! nodes cannot distinguish collision noise from background noise (no
//! collision detection). Transmissions from non-neighbors neither deliver
//! nor interfere.

use crate::impairments::Impairments;
use crate::mode::SlotAction;
use mmhew_faults::ActiveFaults;
use mmhew_spectrum::ChannelId;
use mmhew_topology::{Network, NodeId};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One clear reception: `to` heard `from`'s beacon on `channel`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Delivery {
    /// Receiving node.
    pub to: NodeId,
    /// Transmitting node.
    pub from: NodeId,
    /// Channel the beacon was heard on.
    pub channel: ChannelId,
}

/// A collision observed at a listener (diagnostics only — the listener
/// itself learns nothing, per the no-collision-detection assumption).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Collision {
    /// Listening node that heard noise.
    pub at: NodeId,
    /// Channel on which the collision happened.
    pub channel: ChannelId,
    /// Number of simultaneously transmitting neighbors (≥ 2).
    pub transmitters: usize,
}

/// Everything that happened on the medium in one slot.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SlotOutcome {
    /// Clear receptions.
    pub deliveries: Vec<Delivery>,
    /// Collisions (for statistics; invisible to nodes).
    pub collisions: Vec<Collision>,
    /// Clear receptions lost to channel impairments (statistics).
    pub impairment_losses: usize,
}

/// Resolves one synchronous slot — listener-centric reference
/// implementation.
///
/// `actions[i]` is node `i`'s action. Returns all clear receptions and
/// collision diagnostics.
///
/// This is the original, obviously-correct-by-inspection resolver: for
/// every listener, scan its full neighbor list for transmitters. It costs
/// O(Σ_listeners deg) per slot and allocates, so the engines use
/// [`SlotResolver`] instead; this function is retained (behind
/// `cfg(test)` / the `reference-resolver` feature) as the oracle that
/// equivalence tests and benches compare against.
///
/// # Panics
///
/// Panics if `actions.len()` differs from the network's node count.
#[cfg(any(test, feature = "reference-resolver"))]
pub fn resolve_slot<R: Rng + ?Sized>(
    network: &Network,
    actions: &[SlotAction],
    impairments: &Impairments,
    rng: &mut R,
) -> SlotOutcome {
    assert_eq!(
        actions.len(),
        network.node_count(),
        "one action per node required"
    );
    let mut outcome = SlotOutcome::default();
    for (i, action) in actions.iter().enumerate() {
        let u = NodeId::new(i as u32);
        let SlotAction::Listen { channel } = action else {
            continue;
        };
        let transmitting: Vec<NodeId> = network
            .neighbors_on(u, *channel)
            .iter()
            .copied()
            .filter(|v| {
                matches!(
                    actions[v.as_usize()],
                    SlotAction::Transmit { channel: tc } if tc == *channel
                )
            })
            .collect();
        match transmitting.len() {
            0 => {}
            1 => {
                if impairments.delivers(rng) {
                    outcome.deliveries.push(Delivery {
                        to: u,
                        from: transmitting[0],
                        channel: *channel,
                    });
                } else {
                    outcome.impairment_losses += 1;
                }
            }
            k => outcome.collisions.push(Collision {
                at: u,
                channel: *channel,
                transmitters: k,
            }),
        }
    }
    outcome
}

/// Transmitter-centric slot resolution with persistent scratch space.
///
/// Equivalent to the reference `resolve_slot` bit-for-bit — same deliveries,
/// collisions and loss counts in the same order, and the same RNG draw
/// sequence — but costs O(Σ_transmitters deg) per slot instead of
/// O(Σ_listeners deg) and performs **zero heap allocation** once the
/// scratch buffers have grown to the network size (the first call per
/// network size is the warm-up).
///
/// The inversion: instead of every listener scanning its neighbors for
/// transmitters, each transmitter `v` scatters a reception count into its
/// receivers (via [`Network::receivers_on`]) that are listening on its
/// channel. Touched listeners are then drained in ascending node order —
/// exactly the order the reference's listener scan visits them — so
/// deliveries, collisions, and impairment draws line up one-to-one.
///
/// # Examples
///
/// ```
/// use mmhew_radio::{Impairments, SlotAction, SlotResolver};
/// use mmhew_spectrum::{ChannelId, ChannelSet};
/// use mmhew_topology::{generators, Network, NodeId, Propagation};
/// use mmhew_util::SeedTree;
///
/// let net = Network::new(
///     generators::line(2),
///     1,
///     vec![ChannelSet::full(1), ChannelSet::full(1)],
///     Propagation::Uniform,
/// )?;
/// let mut resolver = SlotResolver::new();
/// let mut rng = SeedTree::new(0).rng();
/// let outcome = resolver.resolve(
///     &net,
///     &[
///         SlotAction::Transmit { channel: ChannelId::new(0) },
///         SlotAction::Listen { channel: ChannelId::new(0) },
///     ],
///     &Impairments::reliable(),
///     &mut rng,
/// );
/// assert_eq!(outcome.deliveries.len(), 1);
/// assert_eq!(outcome.deliveries[0].from, NodeId::new(0));
/// # Ok::<(), mmhew_topology::NetworkError>(())
/// ```
#[derive(Debug, Default)]
pub struct SlotResolver {
    /// Per-listener reception count this slot; non-zero only for entries in
    /// `touched`, and zeroed again before `resolve` returns.
    rx_count: Vec<u32>,
    /// Per-listener first transmitter seen; only meaningful (and only read)
    /// where `rx_count == 1`.
    rx_from: Vec<NodeId>,
    /// Listener indices with `rx_count > 0`, in scatter order; sorted
    /// ascending before draining.
    touched: Vec<u32>,
    /// Reused outcome; `deliveries`/`collisions` keep their capacity across
    /// slots.
    outcome: SlotOutcome,
    /// Scatter parallelism for [`resolve`](Self::resolve); `0`/`1` = serial.
    shards: usize,
    /// Per-worker scratch for the sharded scatter phase.
    workers: Vec<ShardScratch>,
    /// Transmitters bucketed per channel (scatter work units).
    tx_by_channel: Vec<Vec<NodeId>>,
    /// Channels with at least one transmitter this slot.
    touched_channels: Vec<ChannelId>,
    /// Concatenated worker records, sorted by (unique) listener before the
    /// serial drain.
    merged: Vec<(u32, u32, NodeId)>,
}

/// Per-worker scratch for the channel-sharded scatter. Each worker owns a
/// full-length count/from array (a few bytes per node per shard) so no
/// synchronization happens inside the scatter loops.
#[derive(Debug, Default)]
struct ShardScratch {
    rx_count: Vec<u32>,
    rx_from: Vec<NodeId>,
    touched: Vec<u32>,
    /// Flushed `(listener, count, first transmitter)` records; order is
    /// scheduling-dependent, made deterministic by the sorted merge.
    out: Vec<(u32, u32, NodeId)>,
}

/// One worker of the sharded scatter: claims channels off the shared
/// counter (work stealing — dense channels don't serialize behind a static
/// partition), scatters that channel's transmitters, and flushes the
/// touched listeners into its private record list.
fn shard_worker(
    w: &mut ShardScratch,
    network: &Network,
    actions: &[SlotAction],
    channels: &[ChannelId],
    tx_by_channel: &[Vec<NodeId>],
    next: &AtomicUsize,
) {
    loop {
        let k = next.fetch_add(1, Ordering::Relaxed);
        let Some(&channel) = channels.get(k) else {
            break;
        };
        for &v in &tx_by_channel[channel.index() as usize] {
            for &u in network.receivers_on(v, channel) {
                let ui = u.as_usize();
                if !matches!(
                    actions[ui],
                    SlotAction::Listen { channel: lc } if lc == channel
                ) {
                    continue;
                }
                if w.rx_count[ui] == 0 {
                    w.rx_from[ui] = v;
                    w.touched.push(ui as u32);
                }
                w.rx_count[ui] += 1;
            }
        }
        // Flush and re-zero per claim, so counts never leak across
        // channels even though one worker serves many.
        while let Some(ui) = w.touched.pop() {
            let i = ui as usize;
            let rec = (ui, w.rx_count[i], w.rx_from[i]);
            w.rx_count[i] = 0;
            w.out.push(rec);
        }
    }
}

impl SlotResolver {
    /// An empty resolver; scratch grows on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the scatter parallelism of [`resolve`](Self::resolve) and
    /// returns the resolver. `0` or `1` keeps the serial path.
    ///
    /// Sharding is by channel: a listener tunes exactly one channel per
    /// slot, so per-channel listener sets are disjoint and each shard's
    /// reception counts are complete without any cross-shard merge of
    /// counts. Workers claim channels off a shared counter (work
    /// stealing), the scatter results are merged by sorting on the unique
    /// listener index, and the drain — the only phase that touches the
    /// medium RNG — stays serial in ascending listener order. Outcomes,
    /// RNG streams and traces are therefore **byte-identical** to the
    /// serial path at every shard count; the equivalence proptests enforce
    /// this. This is an execution knob, like a `--jobs` flag: it is
    /// deliberately not part of any serialized run configuration.
    ///
    /// [`resolve_faulted`](Self::resolve_faulted) always runs serial —
    /// fault state (Gilbert–Elliott chains, capture draws) is advanced
    /// during resolution and is inherently sequential.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.set_shards(shards);
        self
    }

    /// Sets the scatter parallelism in place; see
    /// [`with_shards`](Self::with_shards).
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards;
    }

    /// The configured scatter parallelism (`0`/`1` = serial).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The outcome of the most recent [`resolve`](Self::resolve) call
    /// (empty before the first). Lets callers re-borrow the result without
    /// holding the `resolve` return value across unrelated mutations.
    pub fn last_outcome(&self) -> &SlotOutcome {
        &self.outcome
    }

    /// Resolves one synchronous slot, reusing internal buffers.
    ///
    /// Bit-for-bit equivalent to the reference `resolve_slot`, including
    /// the `rng` draw sequence (one draw per uniquely-received listener,
    /// ascending, and none at all when `impairments` is reliable).
    ///
    /// # Panics
    ///
    /// Panics if `actions.len()` differs from the network's node count.
    pub fn resolve<R: Rng + ?Sized>(
        &mut self,
        network: &Network,
        actions: &[SlotAction],
        impairments: &Impairments,
        rng: &mut R,
    ) -> &SlotOutcome {
        assert_eq!(
            actions.len(),
            network.node_count(),
            "one action per node required"
        );
        if self.rx_count.len() < actions.len() {
            self.rx_count.resize(actions.len(), 0);
            self.rx_from.resize(actions.len(), NodeId::new(0));
        }
        self.outcome.deliveries.clear();
        self.outcome.collisions.clear();
        self.outcome.impairment_losses = 0;
        debug_assert!(self.touched.is_empty());

        if self.shards > 1 && self.resolve_sharded(network, actions, impairments, rng) {
            return &self.outcome;
        }

        // Scatter: each transmitter bumps the count of every receiver that
        // is listening on its channel.
        for (i, action) in actions.iter().enumerate() {
            let SlotAction::Transmit { channel } = action else {
                continue;
            };
            let v = NodeId::new(i as u32);
            for &u in network.receivers_on(v, *channel) {
                let ui = u.as_usize();
                if !matches!(
                    actions[ui],
                    SlotAction::Listen { channel: lc } if lc == *channel
                ) {
                    continue;
                }
                if self.rx_count[ui] == 0 {
                    self.rx_from[ui] = v;
                    self.touched.push(ui as u32);
                }
                self.rx_count[ui] += 1;
            }
        }

        // Drain in ascending listener order — the reference's visit order.
        // Listener indices are unique in `touched`, so the unstable sort is
        // deterministic.
        self.touched.sort_unstable();
        for &ui in &self.touched {
            let u = ui as usize;
            let SlotAction::Listen { channel } = actions[u] else {
                unreachable!("only listeners are ever touched");
            };
            let count = self.rx_count[u];
            self.rx_count[u] = 0;
            if count == 1 {
                if impairments.delivers(rng) {
                    self.outcome.deliveries.push(Delivery {
                        to: NodeId::new(ui),
                        from: self.rx_from[u],
                        channel,
                    });
                } else {
                    self.outcome.impairment_losses += 1;
                }
            } else {
                self.outcome.collisions.push(Collision {
                    at: NodeId::new(ui),
                    channel,
                    transmitters: count as usize,
                });
            }
        }
        self.touched.clear();
        &self.outcome
    }

    /// The channel-sharded scatter + serial merge-drain. Returns `false`
    /// (leaving the cleared outcome untouched) when fewer than two
    /// channels carry transmitters — there is nothing to parallelize and
    /// the serial path is cheaper than a thread scope.
    ///
    /// Determinism argument: (1) bucketing scans `actions` in ascending
    /// node order, so each channel's transmitter list is ascending and
    /// identical to the order the serial scatter visits them — `rx_from`
    /// (the *first* transmitter seen per listener) matches exactly;
    /// (2) listener sets per channel are disjoint, so each record carries
    /// a complete count; (3) the merge sorts on the unique listener index,
    /// erasing all scheduling nondeterminism; (4) the drain — the only
    /// phase drawing medium RNG — is serial and ascending, the same visit
    /// order as the serial path. Hence byte-identical outcomes and RNG
    /// streams at any shard count.
    fn resolve_sharded<R: Rng + ?Sized>(
        &mut self,
        network: &Network,
        actions: &[SlotAction],
        impairments: &Impairments,
        rng: &mut R,
    ) -> bool {
        // Bucket transmitters per channel (clearing last slot's buckets
        // lazily — only the channels it actually touched).
        let universe = network.universe_size() as usize;
        if self.tx_by_channel.len() < universe {
            self.tx_by_channel.resize_with(universe, Vec::new);
        }
        for c in self.touched_channels.drain(..) {
            self.tx_by_channel[c.index() as usize].clear();
        }
        for (i, action) in actions.iter().enumerate() {
            let SlotAction::Transmit { channel } = action else {
                continue;
            };
            let bucket = &mut self.tx_by_channel[channel.index() as usize];
            if bucket.is_empty() {
                self.touched_channels.push(*channel);
            }
            bucket.push(NodeId::new(i as u32));
        }
        if self.touched_channels.len() < 2 {
            return false;
        }

        let n = actions.len();
        let worker_count = self.shards.min(self.touched_channels.len());
        if self.workers.len() < worker_count {
            self.workers
                .resize_with(worker_count, ShardScratch::default);
        }
        for w in &mut self.workers[..worker_count] {
            if w.rx_count.len() < n {
                w.rx_count.resize(n, 0);
                w.rx_from.resize(n, NodeId::new(0));
            }
            w.out.clear();
            debug_assert!(w.touched.is_empty());
        }

        let next = AtomicUsize::new(0);
        let channels: &[ChannelId] = &self.touched_channels;
        let tx_by_channel: &[Vec<NodeId>] = &self.tx_by_channel;
        let mut workers = self.workers[..worker_count].iter_mut();
        let own = workers.next().expect("at least one worker");
        std::thread::scope(|scope| {
            for w in workers {
                let next = &next;
                scope.spawn(move || {
                    shard_worker(w, network, actions, channels, tx_by_channel, next);
                });
            }
            // This thread is worker 0 — no spawn for the common case of
            // two shards on an otherwise idle engine thread.
            shard_worker(own, network, actions, channels, tx_by_channel, &next);
        });

        // Deterministic merge: listener indices are globally unique (one
        // channel per listener), so the unstable sort has a single output.
        self.merged.clear();
        for w in &mut self.workers[..worker_count] {
            self.merged.append(&mut w.out);
        }
        self.merged.sort_unstable_by_key(|&(ui, _, _)| ui);

        // Serial drain, ascending listeners — identical to the serial path,
        // medium RNG draws included.
        for &(ui, count, from) in &self.merged {
            let SlotAction::Listen { channel } = actions[ui as usize] else {
                unreachable!("only listeners are ever recorded");
            };
            if count == 1 {
                if impairments.delivers(rng) {
                    self.outcome.deliveries.push(Delivery {
                        to: NodeId::new(ui),
                        from,
                        channel,
                    });
                } else {
                    self.outcome.impairment_losses += 1;
                }
            } else {
                self.outcome.collisions.push(Collision {
                    at: NodeId::new(ui),
                    channel,
                    transmitters: count as usize,
                });
            }
        }
        true
    }

    /// Resolves one synchronous slot under an active fault plan.
    ///
    /// Same scatter/drain structure as [`resolve`](Self::resolve) —
    /// ascending-listener drain order and the base impairments draw in its
    /// usual position — with the fault model injected around it:
    ///
    /// * crashed transmitters do not radiate (they neither deliver nor
    ///   interfere) and crashed listeners hear nothing;
    /// * a jammed channel suppresses every unique reception on it
    ///   (tallied per channel, no RNG); collisions there stay collisions;
    /// * a unique reception first draws the directed link's loss model
    ///   (Gilbert–Elliott chain advance or per-link Bernoulli), then the
    ///   base `impairments` draw, in that order;
    /// * a collision on an unjammed channel may resolve by capture: one
    ///   `gen_bool(p_cap)` plus a uniform winner pick, the winner
    ///   delivered in place of the collision record. Capture already
    ///   models the survivor's SINR margin, so a captured beacon is not
    ///   additionally subjected to loss draws.
    ///
    /// The caller advances `faults` to the current slot
    /// ([`ActiveFaults::advance_to`]) before resolving; per-slot fault
    /// tallies (beacon losses, jam losses, captures) are reset here and
    /// left in `faults` for the engine to surface as events.
    ///
    /// The engines only call this when the plan is non-empty, so the
    /// neutrality guarantee (byte-identical outcomes and traces under an
    /// empty plan) never depends on this path; still, an empty
    /// `ActiveFaults` resolves identically to [`resolve`](Self::resolve),
    /// RNG stream included.
    ///
    /// # Panics
    ///
    /// Panics if `actions.len()` differs from the network's node count.
    pub fn resolve_faulted<R: Rng + ?Sized>(
        &mut self,
        network: &Network,
        actions: &[SlotAction],
        impairments: &Impairments,
        faults: &mut ActiveFaults,
        rng: &mut R,
    ) -> &SlotOutcome {
        assert_eq!(
            actions.len(),
            network.node_count(),
            "one action per node required"
        );
        if self.rx_count.len() < actions.len() {
            self.rx_count.resize(actions.len(), 0);
            self.rx_from.resize(actions.len(), NodeId::new(0));
        }
        self.outcome.deliveries.clear();
        self.outcome.collisions.clear();
        self.outcome.impairment_losses = 0;
        debug_assert!(self.touched.is_empty());
        faults.begin_resolution();

        for (i, action) in actions.iter().enumerate() {
            let SlotAction::Transmit { channel } = action else {
                continue;
            };
            let v = NodeId::new(i as u32);
            if faults.is_crashed(v) {
                continue;
            }
            for &u in network.receivers_on(v, *channel) {
                let ui = u.as_usize();
                if !matches!(
                    actions[ui],
                    SlotAction::Listen { channel: lc } if lc == *channel
                ) || faults.is_crashed(u)
                {
                    continue;
                }
                if self.rx_count[ui] == 0 {
                    self.rx_from[ui] = v;
                    self.touched.push(ui as u32);
                }
                self.rx_count[ui] += 1;
            }
        }

        self.touched.sort_unstable();
        for &ui in &self.touched {
            let u = ui as usize;
            let SlotAction::Listen { channel } = actions[u] else {
                unreachable!("only listeners are ever touched");
            };
            let count = self.rx_count[u];
            self.rx_count[u] = 0;
            let listener = NodeId::new(ui);
            if count == 1 {
                if faults.is_jammed_now(channel) {
                    faults.record_jam_loss(channel);
                } else if !faults.link_delivers(self.rx_from[u], listener, rng) {
                    // Tallied inside `faults` as a beacon loss.
                } else if impairments.delivers(rng) {
                    self.outcome.deliveries.push(Delivery {
                        to: listener,
                        from: self.rx_from[u],
                        channel,
                    });
                } else {
                    self.outcome.impairment_losses += 1;
                }
            } else {
                let captured = if faults.is_jammed_now(channel) {
                    None
                } else {
                    faults.try_capture(
                        listener,
                        channel,
                        network
                            .neighbors_on(listener, channel)
                            .iter()
                            .copied()
                            .filter(|v| {
                                matches!(
                                    actions[v.as_usize()],
                                    SlotAction::Transmit { channel: tc } if tc == channel
                                )
                            }),
                        rng,
                    )
                };
                match captured {
                    Some(winner) => self.outcome.deliveries.push(Delivery {
                        to: listener,
                        from: winner,
                        channel,
                    }),
                    None => self.outcome.collisions.push(Collision {
                        at: listener,
                        channel,
                        transmitters: count as usize,
                    }),
                }
            }
        }
        self.touched.clear();
        &self.outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_spectrum::{ChannelId, ChannelSet};
    use mmhew_topology::{generators, Propagation};
    use mmhew_util::SeedTree;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn ch(i: u16) -> ChannelId {
        ChannelId::new(i)
    }

    fn homogeneous(topo: mmhew_topology::Topology, universe: u16) -> Network {
        let n = topo.node_count();
        Network::new(
            topo,
            universe,
            (0..n).map(|_| ChannelSet::full(universe)).collect(),
            Propagation::Uniform,
        )
        .expect("valid network")
    }

    /// Runs the reference and the transmitter-centric resolver on the same
    /// inputs and asserts bit-identical outcomes, so every scenario test in
    /// this module doubles as an equivalence check.
    fn resolve(network: &Network, actions: &[SlotAction]) -> SlotOutcome {
        let mut rng = SeedTree::new(0).rng();
        let reference = resolve_slot(network, actions, &Impairments::reliable(), &mut rng);
        let mut resolver = SlotResolver::new();
        let mut rng2 = SeedTree::new(0).rng();
        let fast = resolver.resolve(network, actions, &Impairments::reliable(), &mut rng2);
        assert_eq!(*fast, reference, "SlotResolver must match resolve_slot");
        assert_eq!(rng, rng2, "RNG draw sequences must match");
        reference
    }

    #[test]
    fn unique_transmitter_is_heard() {
        let net = homogeneous(generators::line(2), 2);
        let out = resolve(
            &net,
            &[
                SlotAction::Transmit { channel: ch(0) },
                SlotAction::Listen { channel: ch(0) },
            ],
        );
        assert_eq!(
            out.deliveries,
            vec![Delivery {
                to: n(1),
                from: n(0),
                channel: ch(0)
            }]
        );
        assert!(out.collisions.is_empty());
    }

    #[test]
    fn two_neighbors_collide() {
        // Line 0-1-2: both ends transmit, middle listens.
        let net = homogeneous(generators::line(3), 2);
        let out = resolve(
            &net,
            &[
                SlotAction::Transmit { channel: ch(0) },
                SlotAction::Listen { channel: ch(0) },
                SlotAction::Transmit { channel: ch(0) },
            ],
        );
        assert!(out.deliveries.is_empty());
        assert_eq!(
            out.collisions,
            vec![Collision {
                at: n(1),
                channel: ch(0),
                transmitters: 2
            }]
        );
    }

    #[test]
    fn different_channels_do_not_interfere() {
        let net = homogeneous(generators::line(3), 2);
        let out = resolve(
            &net,
            &[
                SlotAction::Transmit { channel: ch(0) },
                SlotAction::Listen { channel: ch(0) },
                SlotAction::Transmit { channel: ch(1) },
            ],
        );
        assert_eq!(out.deliveries.len(), 1);
        assert_eq!(out.deliveries[0].from, n(0));
    }

    #[test]
    fn listener_on_other_channel_hears_nothing() {
        let net = homogeneous(generators::line(2), 2);
        let out = resolve(
            &net,
            &[
                SlotAction::Transmit { channel: ch(0) },
                SlotAction::Listen { channel: ch(1) },
            ],
        );
        assert!(out.deliveries.is_empty());
        assert!(out.collisions.is_empty());
    }

    #[test]
    fn non_neighbor_neither_delivers_nor_interferes() {
        // Line 0-1-2-3: node 3 is not a neighbor of 1.
        let net = homogeneous(generators::line(4), 1);
        // 0 and 3 transmit; 1 listens. 3's signal does not reach 1, so 0 is
        // heard clearly.
        let out = resolve(
            &net,
            &[
                SlotAction::Transmit { channel: ch(0) },
                SlotAction::Listen { channel: ch(0) },
                SlotAction::Quiet,
                SlotAction::Transmit { channel: ch(0) },
            ],
        );
        assert_eq!(out.deliveries.len(), 1);
        assert_eq!(
            out.deliveries[0],
            Delivery {
                to: n(1),
                from: n(0),
                channel: ch(0)
            }
        );
    }

    #[test]
    fn transmitter_hears_nothing_half_duplex() {
        let net = homogeneous(generators::line(2), 1);
        let out = resolve(
            &net,
            &[
                SlotAction::Transmit { channel: ch(0) },
                SlotAction::Transmit { channel: ch(0) },
            ],
        );
        assert!(
            out.deliveries.is_empty(),
            "both transmitting, nobody listens"
        );
    }

    #[test]
    fn quiet_nodes_do_nothing() {
        let net = homogeneous(generators::line(2), 1);
        let out = resolve(&net, &[SlotAction::Quiet, SlotAction::Quiet]);
        assert_eq!(out, SlotOutcome::default());
    }

    #[test]
    fn silent_slot_draws_no_rng_and_emits_nothing() {
        // The event executor's dead-air skipping rests on exactly this
        // contract: a slot with no transmitters consumes no medium
        // randomness and produces an empty outcome even with impairments
        // armed, so skipping it wholesale leaves the medium RNG stream
        // byte-identical to stepping it.
        let net = homogeneous(generators::complete(4), 2);
        let actions = [
            SlotAction::Listen { channel: ch(0) },
            SlotAction::Listen { channel: ch(1) },
            SlotAction::Quiet,
            SlotAction::Listen { channel: ch(0) },
        ];
        let imp = Impairments::with_delivery_probability(0.5);
        let mut rng = SeedTree::new(3).rng();
        let before = rng.clone();
        let mut resolver = SlotResolver::new();
        let fast = resolver.resolve(&net, &actions, &imp, &mut rng).clone();
        assert_eq!(fast, SlotOutcome::default());
        assert_eq!(rng, before, "silent slot must not draw medium RNG");
        // The reference resolver pins the same contract.
        let reference = resolve_slot(&net, &actions, &imp, &mut rng);
        assert_eq!(reference, SlotOutcome::default());
        assert_eq!(rng, before);
    }

    #[test]
    fn heterogeneous_spans_block_reception() {
        // Node 1 cannot hear node 0 on a channel outside their span.
        let net = Network::new(
            generators::line(2),
            3,
            vec![
                [0u16, 1].into_iter().collect(),
                [1u16, 2].into_iter().collect(),
            ],
            Propagation::Uniform,
        )
        .expect("valid network");
        // Channel 1 is in the span: heard.
        let heard = resolve(
            &net,
            &[
                SlotAction::Transmit { channel: ch(1) },
                SlotAction::Listen { channel: ch(1) },
            ],
        );
        assert_eq!(heard.deliveries.len(), 1);
        // Channel 0 is available to 0 but not to 1: a listener would not
        // even tune there, but even if it did (model guard), no delivery.
        let not_heard = resolve(
            &net,
            &[
                SlotAction::Transmit { channel: ch(0) },
                SlotAction::Listen { channel: ch(0) },
            ],
        );
        assert!(not_heard.deliveries.is_empty());
    }

    #[test]
    fn simultaneous_deliveries_on_distinct_channels() {
        // Complete graph of 4: 0→tx ch0, 1→rx ch0, 2→tx ch1, 3→rx ch1.
        let net = homogeneous(generators::complete(4), 2);
        let out = resolve(
            &net,
            &[
                SlotAction::Transmit { channel: ch(0) },
                SlotAction::Listen { channel: ch(0) },
                SlotAction::Transmit { channel: ch(1) },
                SlotAction::Listen { channel: ch(1) },
            ],
        );
        let mut pairs: Vec<(NodeId, NodeId)> =
            out.deliveries.iter().map(|d| (d.from, d.to)).collect();
        pairs.sort();
        assert_eq!(pairs, vec![(n(0), n(1)), (n(2), n(3))]);
    }

    #[test]
    fn impairments_drop_deliveries() {
        let net = homogeneous(generators::line(2), 1);
        let mut rng = SeedTree::new(5).rng();
        let mut delivered = 0;
        let mut lost = 0;
        for _ in 0..2_000 {
            let out = resolve_slot(
                &net,
                &[
                    SlotAction::Transmit { channel: ch(0) },
                    SlotAction::Listen { channel: ch(0) },
                ],
                &Impairments::with_delivery_probability(0.25),
                &mut rng,
            );
            delivered += out.deliveries.len();
            lost += out.impairment_losses;
        }
        assert_eq!(delivered + lost, 2_000);
        let p = delivered as f64 / 2_000.0;
        assert!((p - 0.25).abs() < 0.05, "delivery rate {p}");
    }

    #[test]
    #[should_panic(expected = "one action per node")]
    fn wrong_action_count_panics() {
        let net = homogeneous(generators::line(2), 1);
        let mut rng = SeedTree::new(0).rng();
        let _ = resolve_slot(
            &net,
            &[SlotAction::Quiet],
            &Impairments::reliable(),
            &mut rng,
        );
    }

    #[test]
    #[should_panic(expected = "one action per node")]
    fn resolver_wrong_action_count_panics() {
        let net = homogeneous(generators::line(2), 1);
        let mut rng = SeedTree::new(0).rng();
        let _ = SlotResolver::new().resolve(
            &net,
            &[SlotAction::Quiet],
            &Impairments::reliable(),
            &mut rng,
        );
    }

    #[test]
    fn resolver_reuse_across_slots_matches_fresh_reference() {
        // One resolver instance over many slots with impairments: scratch
        // reuse must not leak state between slots, and the shared RNG must
        // advance identically to feeding the reference the same stream.
        let net = homogeneous(generators::complete(5), 3);
        let imp = Impairments::with_delivery_probability(0.6);
        let mut resolver = SlotResolver::new();
        let mut rng_fast = SeedTree::new(42).rng();
        let mut rng_ref = SeedTree::new(42).rng();
        let mut action_rng = SeedTree::new(7).rng();
        for _ in 0..200 {
            let actions: Vec<SlotAction> = (0..5)
                .map(|_| {
                    let c = ch(action_rng.gen_range(0..3u16));
                    match action_rng.gen_range(0..3u8) {
                        0 => SlotAction::Transmit { channel: c },
                        1 => SlotAction::Listen { channel: c },
                        _ => SlotAction::Quiet,
                    }
                })
                .collect();
            let reference = resolve_slot(&net, &actions, &imp, &mut rng_ref);
            let fast = resolver.resolve(&net, &actions, &imp, &mut rng_fast);
            assert_eq!(*fast, reference);
            assert_eq!(rng_fast, rng_ref, "RNG streams diverged");
        }
    }

    #[test]
    fn sharded_resolver_matches_serial_across_shard_counts() {
        // Dense multi-channel traffic over many slots: every shard count
        // must reproduce the serial outcome and RNG stream byte-for-byte,
        // through scratch reuse, and fall back cleanly on single-channel
        // slots (the < 2 touched-channels path).
        let net = homogeneous(generators::complete(12), 4);
        let imp = Impairments::with_delivery_probability(0.7);
        for shards in [0, 1, 2, 3, 8] {
            let mut serial = SlotResolver::new();
            let mut sharded = SlotResolver::new().with_shards(shards);
            assert_eq!(sharded.shards(), shards);
            let mut rng_serial = SeedTree::new(21).rng();
            let mut rng_sharded = SeedTree::new(21).rng();
            let mut action_rng = SeedTree::new(9).rng();
            for slot in 0..120 {
                let single_channel = slot % 10 == 0;
                let actions: Vec<SlotAction> = (0..12)
                    .map(|_| {
                        let c = if single_channel {
                            ch(0)
                        } else {
                            ch(action_rng.gen_range(0..4u16))
                        };
                        match action_rng.gen_range(0..3u8) {
                            0 => SlotAction::Transmit { channel: c },
                            1 => SlotAction::Listen { channel: c },
                            _ => SlotAction::Quiet,
                        }
                    })
                    .collect();
                let expected = serial
                    .resolve(&net, &actions, &imp, &mut rng_serial)
                    .clone();
                let got = sharded.resolve(&net, &actions, &imp, &mut rng_sharded);
                assert_eq!(*got, expected, "shards={shards} slot={slot}");
                assert_eq!(rng_sharded, rng_serial, "RNG diverged at shards={shards}");
            }
        }
    }

    mod faulted {
        use super::*;
        use mmhew_faults::{
            ActiveFaults, CrashSchedule, FaultPlan, GilbertElliott, JamSchedule, LinkLossModel,
        };
        use rand::Rng;

        /// An always-lose Gilbert–Elliott chain: the first transition is
        /// certain (good → bad) and the bad state always loses, so every
        /// draw is deterministic.
        fn blackout() -> LinkLossModel {
            LinkLossModel::GilbertElliott(GilbertElliott::new(1.0, 0.0, 0.0, 1.0))
        }

        #[test]
        fn empty_plan_matches_plain_resolve_including_rng() {
            let net = homogeneous(generators::complete(5), 3);
            let imp = Impairments::with_delivery_probability(0.6);
            let mut plain = SlotResolver::new();
            let mut faulted = SlotResolver::new();
            let mut active = ActiveFaults::new(FaultPlan::new(), 5, 3);
            let mut rng_plain = SeedTree::new(11).rng();
            let mut rng_faulted = SeedTree::new(11).rng();
            let mut action_rng = SeedTree::new(8).rng();
            for slot in 0..200u64 {
                let actions: Vec<SlotAction> = (0..5)
                    .map(|_| {
                        let c = ch(action_rng.gen_range(0..3u16));
                        match action_rng.gen_range(0..3u8) {
                            0 => SlotAction::Transmit { channel: c },
                            1 => SlotAction::Listen { channel: c },
                            _ => SlotAction::Quiet,
                        }
                    })
                    .collect();
                active.advance_to(slot);
                let expected = plain.resolve(&net, &actions, &imp, &mut rng_plain).clone();
                let got =
                    faulted.resolve_faulted(&net, &actions, &imp, &mut active, &mut rng_faulted);
                assert_eq!(*got, expected);
                assert_eq!(rng_faulted, rng_plain, "RNG streams diverged");
                assert!(active.beacon_losses().is_empty());
                assert!(active.jam_losses().is_empty());
                assert!(active.captures().is_empty());
            }
        }

        #[test]
        fn crashed_nodes_neither_radiate_nor_hear() {
            let net = homogeneous(generators::line(3), 1);
            let actions = [
                SlotAction::Transmit { channel: ch(0) },
                SlotAction::Listen { channel: ch(0) },
                SlotAction::Transmit { channel: ch(0) },
            ];
            let mut resolver = SlotResolver::new();
            let mut rng = SeedTree::new(0).rng();
            // Node 2 crashed: its interference vanishes, so node 1 hears 0.
            let mut active = ActiveFaults::new(
                FaultPlan::new().with_crashes(CrashSchedule::outage(n(2), 0, 100)),
                3,
                1,
            );
            active.advance_to(0);
            let out = resolver.resolve_faulted(
                &net,
                &actions,
                &Impairments::reliable(),
                &mut active,
                &mut rng,
            );
            assert_eq!(out.deliveries.len(), 1);
            assert_eq!(out.deliveries[0].from, n(0));
            assert!(out.collisions.is_empty());
            // Listener crashed instead: nothing is heard at all.
            let mut active = ActiveFaults::new(
                FaultPlan::new().with_crashes(CrashSchedule::outage(n(1), 0, 100)),
                3,
                1,
            );
            active.advance_to(0);
            let out = resolver.resolve_faulted(
                &net,
                &actions,
                &Impairments::reliable(),
                &mut active,
                &mut rng,
            );
            assert!(out.deliveries.is_empty());
            assert!(out.collisions.is_empty());
        }

        #[test]
        fn jammed_channel_suppresses_and_tallies_without_rng() {
            let net = homogeneous(generators::line(2), 2);
            let mut active = ActiveFaults::new(
                FaultPlan::new().with_jamming(JamSchedule::fixed([0u16].into_iter().collect())),
                2,
                2,
            );
            active.advance_to(0);
            let mut resolver = SlotResolver::new();
            let mut rng = SeedTree::new(0).rng();
            let before = rng.clone();
            let out = resolver.resolve_faulted(
                &net,
                &[
                    SlotAction::Transmit { channel: ch(0) },
                    SlotAction::Listen { channel: ch(0) },
                ],
                &Impairments::reliable(),
                &mut active,
                &mut rng,
            );
            assert!(out.deliveries.is_empty());
            assert_eq!(active.jam_losses(), &[(ch(0), 1)]);
            assert_eq!(rng, before, "jam suppression must not draw RNG");
            // The unjammed channel still works.
            let out = resolver.resolve_faulted(
                &net,
                &[
                    SlotAction::Transmit { channel: ch(1) },
                    SlotAction::Listen { channel: ch(1) },
                ],
                &Impairments::reliable(),
                &mut active,
                &mut rng,
            );
            assert_eq!(out.deliveries.len(), 1);
        }

        #[test]
        fn blackout_link_records_beacon_loss() {
            let net = homogeneous(generators::line(2), 1);
            let mut active =
                ActiveFaults::new(FaultPlan::new().with_default_loss(blackout()), 2, 1);
            active.advance_to(0);
            let mut resolver = SlotResolver::new();
            let mut rng = SeedTree::new(0).rng();
            let out = resolver.resolve_faulted(
                &net,
                &[
                    SlotAction::Transmit { channel: ch(0) },
                    SlotAction::Listen { channel: ch(0) },
                ],
                &Impairments::reliable(),
                &mut active,
                &mut rng,
            );
            assert!(out.deliveries.is_empty());
            assert_eq!(
                out.impairment_losses, 0,
                "fault losses are tallied separately"
            );
            assert_eq!(active.beacon_losses(), &[(n(0), n(1))]);
        }

        #[test]
        fn capture_turns_a_collision_into_a_delivery() {
            let net = homogeneous(generators::line(3), 1);
            let mut active = ActiveFaults::new(FaultPlan::new().with_capture(1.0), 3, 1);
            active.advance_to(0);
            let mut resolver = SlotResolver::new();
            let mut rng = SeedTree::new(0).rng();
            let out = resolver.resolve_faulted(
                &net,
                &[
                    SlotAction::Transmit { channel: ch(0) },
                    SlotAction::Listen { channel: ch(0) },
                    SlotAction::Transmit { channel: ch(0) },
                ],
                &Impairments::reliable(),
                &mut active,
                &mut rng,
            );
            assert!(out.collisions.is_empty());
            assert_eq!(out.deliveries.len(), 1);
            let d = out.deliveries[0];
            assert_eq!(d.to, n(1));
            assert!(d.from == n(0) || d.from == n(2));
            assert_eq!(active.captures().len(), 1);
            assert_eq!(active.captures()[0].contenders, 2);
        }

        #[test]
        fn capture_is_suppressed_on_a_jammed_channel() {
            let net = homogeneous(generators::line(3), 1);
            let mut active = ActiveFaults::new(
                FaultPlan::new()
                    .with_capture(1.0)
                    .with_jamming(JamSchedule::fixed([0u16].into_iter().collect())),
                3,
                1,
            );
            active.advance_to(0);
            let mut resolver = SlotResolver::new();
            let mut rng = SeedTree::new(0).rng();
            let before = rng.clone();
            let out = resolver.resolve_faulted(
                &net,
                &[
                    SlotAction::Transmit { channel: ch(0) },
                    SlotAction::Listen { channel: ch(0) },
                    SlotAction::Transmit { channel: ch(0) },
                ],
                &Impairments::reliable(),
                &mut active,
                &mut rng,
            );
            assert!(out.deliveries.is_empty());
            assert_eq!(out.collisions.len(), 1, "jammed collisions stay collisions");
            assert_eq!(rng, before, "no capture draw on a jammed channel");
        }
    }
}
