//! Beacon messages and their wire encoding.
//!
//! Every algorithm in the paper transmits the same thing: a message
//! containing the sender's available channel set `A(u)` (Algorithm 1 line
//! 8, Algorithm 3 line 7, Algorithm 4 line 7). The receiver intersects it
//! with its own set to record `⟨v, A ∩ A(u)⟩`.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use mmhew_spectrum::{ChannelId, ChannelSet, ChannelSetRef};
use mmhew_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The discovery beacon: sender identity plus its available channel set.
///
/// # Examples
///
/// ```
/// use mmhew_radio::Beacon;
/// use mmhew_topology::NodeId;
///
/// let b = Beacon::new(NodeId::new(3), [1u16, 4].into_iter().collect());
/// let wire = b.encode();
/// let back = Beacon::decode(&wire)?;
/// assert_eq!(b, back);
/// # Ok::<(), mmhew_radio::DecodeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Beacon {
    sender: NodeId,
    available: ChannelSet,
}

impl Beacon {
    /// Creates a beacon advertising `available` as `sender`'s channel set.
    pub fn new(sender: NodeId, available: ChannelSet) -> Self {
        Self { sender, available }
    }

    /// The transmitting node.
    pub fn sender(&self) -> NodeId {
        self.sender
    }

    /// The advertised available channel set `A(v)`.
    pub fn available(&self) -> &ChannelSet {
        &self.available
    }

    /// Overwrites the advertised set in place from a borrowed view,
    /// reusing the beacon's existing allocation — the zero-allocation
    /// refresh path the engines use when churn changes `A(u)`.
    pub fn update_available(&mut self, available: ChannelSetRef<'_>) {
        self.available.copy_from(available);
    }

    /// Serializes to the wire format:
    /// `sender:u32 | channel_count:u16 | channel:u16 ...` (little endian).
    pub fn encode(&self) -> Bytes {
        let channels: Vec<ChannelId> = self.available.iter().collect();
        let mut buf = BytesMut::with_capacity(6 + channels.len() * 2);
        buf.put_u32_le(self.sender.index());
        buf.put_u16_le(channels.len() as u16);
        for c in channels {
            buf.put_u16_le(c.index());
        }
        buf.freeze()
    }

    /// Parses the wire format produced by [`Beacon::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the buffer is truncated or has trailing
    /// garbage.
    pub fn decode(mut bytes: &[u8]) -> Result<Self, DecodeError> {
        if bytes.remaining() < 6 {
            return Err(DecodeError::Truncated);
        }
        let sender = NodeId::new(bytes.get_u32_le());
        let count = bytes.get_u16_le() as usize;
        if bytes.remaining() < count * 2 {
            return Err(DecodeError::Truncated);
        }
        let mut available = ChannelSet::new();
        for _ in 0..count {
            available.insert(ChannelId::new(bytes.get_u16_le()));
        }
        if bytes.has_remaining() {
            return Err(DecodeError::TrailingBytes(bytes.remaining()));
        }
        Ok(Self { sender, available })
    }
}

impl fmt::Display for Beacon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "beacon⟨{}, {}⟩", self.sender, self.available)
    }
}

/// Failure parsing a beacon from the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than the header or channel list requires.
    Truncated,
    /// Bytes left over after the channel list.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "beacon truncated"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after beacon"),
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(xs: &[u16]) -> ChannelSet {
        xs.iter().copied().collect()
    }

    #[test]
    fn round_trip_various_sets() {
        for set in [
            cs(&[]),
            cs(&[0]),
            cs(&[1, 63, 64, 200]),
            ChannelSet::full(32),
        ] {
            let b = Beacon::new(NodeId::new(77), set);
            assert_eq!(Beacon::decode(&b.encode()).expect("round trip"), b);
        }
    }

    #[test]
    fn wire_layout_is_stable() {
        let b = Beacon::new(NodeId::new(0x0102_0304), cs(&[5]));
        let wire = b.encode();
        assert_eq!(&wire[..], &[0x04, 0x03, 0x02, 0x01, 0x01, 0x00, 0x05, 0x00]);
    }

    #[test]
    fn truncated_and_trailing() {
        let b = Beacon::new(NodeId::new(1), cs(&[2, 3]));
        let wire = b.encode();
        assert_eq!(Beacon::decode(&wire[..3]), Err(DecodeError::Truncated));
        assert_eq!(Beacon::decode(&wire[..7]), Err(DecodeError::Truncated));
        let mut extended = wire.to_vec();
        extended.push(0);
        assert_eq!(
            Beacon::decode(&extended),
            Err(DecodeError::TrailingBytes(1))
        );
        assert_eq!(Beacon::decode(&[]), Err(DecodeError::Truncated));
    }

    #[test]
    fn update_available_rewrites_payload_in_place() {
        let mut b = Beacon::new(NodeId::new(4), cs(&[0, 1, 2]));
        let replacement = cs(&[5]);
        b.update_available(replacement.view());
        assert_eq!(b.available(), &replacement);
        assert_eq!(b.sender(), NodeId::new(4));
        // Shrinking to empty and regrowing stays within capacity.
        b.update_available(ChannelSet::new().view());
        assert!(b.available().is_empty());
        b.update_available(cs(&[0, 63]).view());
        assert_eq!(b.available(), &cs(&[0, 63]));
    }

    #[test]
    fn display() {
        let b = Beacon::new(NodeId::new(2), cs(&[0, 1]));
        assert_eq!(b.to_string(), "beacon⟨n2, {0,1}⟩");
    }
}
