//! Transceiver actions.
//!
//! A transceiver is half-duplex and single-channel at any instant (paper
//! §II): in a slot (or frame) a node either transmits on one channel,
//! listens on one channel, or is quiet.

use mmhew_spectrum::ChannelId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A node's action for one synchronous time slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SlotAction {
    /// Tune to `channel` and transmit the node's beacon.
    Transmit {
        /// Channel to transmit on.
        channel: ChannelId,
    },
    /// Tune to `channel` and listen.
    Listen {
        /// Channel to listen on.
        channel: ChannelId,
    },
    /// Transceiver off (e.g. the node has not started discovery yet).
    Quiet,
}

impl SlotAction {
    /// The channel this action occupies, if any.
    pub fn channel(&self) -> Option<ChannelId> {
        match self {
            SlotAction::Transmit { channel } | SlotAction::Listen { channel } => Some(*channel),
            SlotAction::Quiet => None,
        }
    }

    /// True if the node is transmitting.
    pub fn is_transmit(&self) -> bool {
        matches!(self, SlotAction::Transmit { .. })
    }

    /// True if the node is listening.
    pub fn is_listen(&self) -> bool {
        matches!(self, SlotAction::Listen { .. })
    }
}

impl fmt::Display for SlotAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlotAction::Transmit { channel } => write!(f, "tx@{channel}"),
            SlotAction::Listen { channel } => write!(f, "rx@{channel}"),
            SlotAction::Quiet => write!(f, "quiet"),
        }
    }
}

/// A node's action for one asynchronous frame (Algorithm 4): the choice is
/// made once per frame; a transmitting node repeats its beacon in each of
/// the frame's three slots, a listening node listens for the whole frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameAction {
    /// Transmit the beacon during each slot of the frame on `channel`.
    Transmit {
        /// Channel to transmit on.
        channel: ChannelId,
    },
    /// Listen on `channel` for the entire frame.
    Listen {
        /// Channel to listen on.
        channel: ChannelId,
    },
}

impl FrameAction {
    /// The channel this action occupies.
    pub fn channel(&self) -> ChannelId {
        match self {
            FrameAction::Transmit { channel } | FrameAction::Listen { channel } => *channel,
        }
    }

    /// True if the node is transmitting this frame.
    pub fn is_transmit(&self) -> bool {
        matches!(self, FrameAction::Transmit { .. })
    }
}

impl fmt::Display for FrameAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameAction::Transmit { channel } => write!(f, "TX-frame@{channel}"),
            FrameAction::Listen { channel } => write!(f, "RX-frame@{channel}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_action_accessors() {
        let c = ChannelId::new(4);
        assert_eq!(SlotAction::Transmit { channel: c }.channel(), Some(c));
        assert_eq!(SlotAction::Listen { channel: c }.channel(), Some(c));
        assert_eq!(SlotAction::Quiet.channel(), None);
        assert!(SlotAction::Transmit { channel: c }.is_transmit());
        assert!(!SlotAction::Transmit { channel: c }.is_listen());
        assert!(SlotAction::Listen { channel: c }.is_listen());
        assert!(!SlotAction::Quiet.is_transmit());
    }

    #[test]
    fn frame_action_accessors() {
        let c = ChannelId::new(2);
        assert_eq!(FrameAction::Transmit { channel: c }.channel(), c);
        assert!(FrameAction::Transmit { channel: c }.is_transmit());
        assert!(!FrameAction::Listen { channel: c }.is_transmit());
    }

    #[test]
    fn displays() {
        let c = ChannelId::new(1);
        assert_eq!(SlotAction::Transmit { channel: c }.to_string(), "tx@ch1");
        assert_eq!(SlotAction::Quiet.to_string(), "quiet");
        assert_eq!(
            FrameAction::Listen { channel: c }.to_string(),
            "RX-frame@ch1"
        );
    }
}
