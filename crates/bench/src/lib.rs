//! Shared workloads for the Criterion benchmark suite.
//!
//! Each bench target `bench_e<k>` corresponds to experiment E\<k\> of
//! DESIGN.md §5: it first regenerates the experiment's (quick) table —
//! so `cargo bench` reproduces every reported series — and then measures
//! the wall-clock cost of the experiment's core simulation at
//! representative sweep points.

use mmhew_discovery::{AsyncAlgorithm, AsyncParams, Scenario, SyncAlgorithm, SyncParams};
use mmhew_engine::{AsyncRunConfig, StartSchedule, SyncRunConfig};
use mmhew_harness::registry;
use mmhew_harness::Effort;
use mmhew_topology::Network;
use mmhew_util::SeedTree;

/// Seed used by all benchmarks.
pub const BENCH_SEED: u64 = 20_260_706;

/// Prints the quick table of experiment `id` once (regenerating the
/// series the bench target corresponds to).
pub fn print_experiment(id: &str) {
    let f = registry::by_id(id).unwrap_or_else(|| panic!("unknown experiment {id}"));
    f(Effort::Quick, BENCH_SEED).print();
    println!();
}

/// One complete synchronous discovery run; returns the completion slot so
/// the optimizer cannot elide the run.
pub fn sync_run(
    network: &Network,
    algorithm: SyncAlgorithm,
    starts: &StartSchedule,
    budget: u64,
    seed: u64,
) -> u64 {
    Scenario::sync(network, algorithm)
        .starts(starts.clone())
        .config(SyncRunConfig::until_complete(budget))
        .run(SeedTree::new(seed))
        .expect("valid protocol")
        .completion_slot()
        .expect("run completed within budget")
}

/// One complete asynchronous discovery run; returns the completion time in
/// nanoseconds.
pub fn async_run(network: &Network, delta_est: u64, config: &AsyncRunConfig, seed: u64) -> u64 {
    Scenario::asynchronous(
        network,
        AsyncAlgorithm::FrameBased(AsyncParams::new(delta_est).expect("positive")),
    )
    .config(config.clone())
    .run(SeedTree::new(seed))
    .expect("valid protocol")
    .completion_time()
    .expect("run completed within budget")
    .as_nanos()
}

/// The staged algorithm with a given estimate (shorthand).
pub fn staged(delta_est: u64) -> SyncAlgorithm {
    SyncAlgorithm::Staged(SyncParams::new(delta_est).expect("positive"))
}

/// The uniform algorithm with a given estimate (shorthand).
pub fn uniform(delta_est: u64) -> SyncAlgorithm {
    SyncAlgorithm::Uniform(SyncParams::new(delta_est).expect("positive"))
}
