//! E4 bench: adaptive (Algorithm 2) vs informed (Algorithm 1) discovery.
use criterion::{criterion_group, criterion_main, Criterion};
use mmhew_bench::{print_experiment, staged, sync_run, BENCH_SEED};
use mmhew_discovery::SyncAlgorithm;
use mmhew_engine::StartSchedule;
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    print_experiment("E4");
    let net = NetworkBuilder::grid(4, 4)
        .universe(4)
        .build(SeedTree::new(BENCH_SEED))
        .expect("grid network");
    let delta = net.max_degree().max(1) as u64;
    let mut g = c.benchmark_group("e4_adaptive");
    g.bench_function("grid4x4_alg1_exact", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            sync_run(
                &net,
                staged(delta),
                &StartSchedule::Identical,
                1_000_000,
                seed,
            )
        })
    });
    g.bench_function("grid4x4_alg2_adaptive", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            sync_run(
                &net,
                SyncAlgorithm::Adaptive,
                &StartSchedule::Identical,
                1_000_000,
                seed,
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
