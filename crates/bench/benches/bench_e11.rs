//! E11 bench: paper's algorithm vs the per-universal-channel strawman.
use criterion::{criterion_group, criterion_main, Criterion};
use mmhew_bench::{print_experiment, sync_run, uniform, BENCH_SEED};
use mmhew_discovery::SyncAlgorithm;
use mmhew_engine::StartSchedule;
use mmhew_spectrum::{AvailabilityModel, ChannelSet};
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    print_experiment("E11");
    let shared: ChannelSet = (0u16..4).collect();
    let net = NetworkBuilder::complete(6)
        .universe(64)
        .availability(AvailabilityModel::Explicit(vec![shared; 6]))
        .build(SeedTree::new(BENCH_SEED))
        .expect("explicit network");
    let delta = net.max_degree().max(1) as u64;
    let mut g = c.benchmark_group("e11_baseline");
    g.bench_function("alg3_U64", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            sync_run(
                &net,
                uniform(delta),
                &StartSchedule::Identical,
                2_000_000,
                seed,
            )
        })
    });
    g.bench_function("strawman_U64", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            sync_run(
                &net,
                SyncAlgorithm::PerChannelBirthday {
                    tx_probability: 0.5,
                },
                &StartSchedule::Identical,
                2_000_000,
                seed,
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
