//! E13 bench: discovery over reliable vs lossy channels.
use criterion::{criterion_group, criterion_main, Criterion};
use mmhew_bench::{print_experiment, uniform, BENCH_SEED};
use mmhew_discovery::Scenario;
use mmhew_engine::SyncRunConfig;
use mmhew_radio::Impairments;
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    print_experiment("E13");
    let net = NetworkBuilder::ring(10)
        .universe(4)
        .build(SeedTree::new(BENCH_SEED))
        .expect("ring network");
    let delta = net.max_degree().max(1) as u64;
    let mut g = c.benchmark_group("e13_unreliable");
    for (label, q) in [("q1.0", 1.0), ("q0.25", 0.25)] {
        g.bench_function(label, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                Scenario::sync(&net, uniform(delta))
                    .config(
                        SyncRunConfig::until_complete(4_000_000)
                            .with_impairments(Impairments::with_delivery_probability(q)),
                    )
                    .run(SeedTree::new(seed))
                    .expect("valid protocol")
                    .completion_slot()
                    .expect("completed")
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
