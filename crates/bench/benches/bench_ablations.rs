//! Ablation benches (E15–E18): energy accounting overhead, burst-plan
//! variants, estimate-growth strategies, and terminating runs.
use criterion::{criterion_group, criterion_main, Criterion};
use mmhew_bench::{print_experiment, sync_run, BENCH_SEED};
use mmhew_discovery::{Scenario, SyncAlgorithm, SyncParams};
use mmhew_engine::{StartSchedule, SyncRunConfig};
use mmhew_spectrum::AvailabilityModel;
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    for id in ["E15", "E16", "E17", "E18", "E19"] {
        print_experiment(id);
    }
    let net = NetworkBuilder::grid(3, 3)
        .universe(8)
        .availability(AvailabilityModel::UniformSubset { size: 4 })
        .build(SeedTree::new(BENCH_SEED))
        .expect("grid network");
    let delta = net.max_degree().max(1) as u64;

    let mut g = c.benchmark_group("ablations");
    g.bench_function("e17_adaptive_plus_one", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            sync_run(
                &net,
                SyncAlgorithm::Adaptive,
                &StartSchedule::Identical,
                2_000_000,
                seed,
            )
        })
    });
    g.bench_function("e17_adaptive_doubling_dwell4", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            sync_run(
                &net,
                SyncAlgorithm::AdaptiveDoubling { dwell: 4 },
                &StartSchedule::Identical,
                2_000_000,
                seed,
            )
        })
    });
    g.bench_function("e19_exact_probability_all_links", |b| {
        b.iter(|| {
            net.links()
                .iter()
                .map(|&l| mmhew_discovery::alg3_link_coverage_probability(&net, l, delta))
                .sum::<f64>()
        })
    });
    g.bench_function("e18_terminating_run_q1600", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            Scenario::sync(
                &net,
                SyncAlgorithm::Uniform(SyncParams::new(delta).expect("positive")),
            )
            .terminating(1_600)
            .config(SyncRunConfig::until_all_terminated(2_000_000))
            .run(SeedTree::new(seed))
            .expect("valid protocols")
            .terminated_slot()
            .expect("quiescence fires")
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
