//! E1 bench: Algorithm 1 run-to-completion cost as N grows (ring, fixed Δ).
use criterion::{criterion_group, criterion_main, Criterion};
use mmhew_bench::{print_experiment, staged, sync_run, BENCH_SEED};
use mmhew_engine::StartSchedule;
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    print_experiment("E1");
    let mut g = c.benchmark_group("e1_n_scaling");
    for n in [16usize, 64] {
        let net = NetworkBuilder::ring(n)
            .universe(4)
            .build(SeedTree::new(BENCH_SEED))
            .expect("ring network");
        g.bench_function(format!("ring{n}_alg1"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                sync_run(&net, staged(4), &StartSchedule::Identical, 1_000_000, seed)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
