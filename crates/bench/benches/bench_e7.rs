//! E7 bench: discovery cost at high vs low span-ratio ρ.
use criterion::{criterion_group, criterion_main, Criterion};
use mmhew_bench::{print_experiment, staged, sync_run, BENCH_SEED};
use mmhew_engine::StartSchedule;
use mmhew_spectrum::AvailabilityModel;
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    print_experiment("E7");
    let mut g = c.benchmark_group("e7_rho");
    for (shared, private, label) in [(4u16, 0u16, "rho1.0"), (1, 3, "rho0.25")] {
        let net = NetworkBuilder::complete(6)
            .universe(shared + 6 * private)
            .availability(AvailabilityModel::PairwiseOverlap { shared, private })
            .build(SeedTree::new(BENCH_SEED))
            .expect("overlap network");
        let delta = net.max_degree().max(1) as u64;
        g.bench_function(label, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                sync_run(
                    &net,
                    staged(delta),
                    &StartSchedule::Identical,
                    2_000_000,
                    seed,
                )
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
