//! Slotted oracle vs the dead-air-skipping event executor, across transmit
//! densities.
//!
//! Three Δ̂ settings on the same 256-node grid turn Algorithm 3's transmit
//! probability from "every slot busy" down to "one busy slot in sixteen":
//!
//! * `delta_est = 8` — transmissions almost every slot; the event executor
//!   degenerates to stepping and should roughly tie the slotted loop
//!   (its overhead bound);
//! * `delta_est = 256` — moderate dead air;
//! * `delta_est = 2048` — the low-ρ regime the executor is built for,
//!   matching `perf_report`'s `sparse_low_rho_256` scenario.
//!
//! Each pair runs at the same seed, so the deliveries the two executors
//! report are byte-identical — the assert inside the setup is a cheap
//! cross-check that the benchmark is comparing equal work.
use criterion::{criterion_group, criterion_main, Criterion};
use mmhew_bench::BENCH_SEED;
use mmhew_discovery::{Engine, Scenario, SyncAlgorithm, SyncParams};
use mmhew_engine::SyncRunConfig;
use mmhew_spectrum::AvailabilityModel;
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let net = NetworkBuilder::grid(16, 16)
        .universe(8)
        .availability(AvailabilityModel::UniformSubset { size: 4 })
        .build(SeedTree::new(BENCH_SEED))
        .expect("grid network");
    let slots = 2_000u64;
    for delta_est in [8u64, 256, 2048] {
        let alg = SyncAlgorithm::Uniform(SyncParams::new(delta_est).expect("positive"));
        let config = SyncRunConfig::fixed(slots);
        let run = |engine: Engine| {
            Scenario::sync(&net, alg)
                .config(config)
                .engine(engine)
                .run(SeedTree::new(BENCH_SEED))
                .expect("valid protocols")
                .deliveries()
        };
        assert_eq!(
            run(Engine::Slotted),
            run(Engine::Event),
            "executors diverged at delta_est={delta_est}"
        );
        c.bench_function(&format!("sync_slotted_grid256_delta{delta_est}"), |b| {
            b.iter(|| run(Engine::Slotted))
        });
        c.bench_function(&format!("sync_event_grid256_delta{delta_est}"), |b| {
            b.iter(|| run(Engine::Event))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
