//! Whole-engine slot-loop throughput: slots/sec of the synchronous engine
//! on the canonical sparse and dense scenarios, with no sink attached and
//! with a disabled [`NullSink`] (instrumentation-off overhead).
//!
//! This is the Criterion twin of the `perf_report` harness binary (which
//! writes `BENCH_engines.json`); use this one for before/after comparisons
//! of hot-loop changes with statistical confidence.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mmhew_bench::BENCH_SEED;
use mmhew_discovery::{Scenario, SyncAlgorithm, SyncParams};
use mmhew_engine::SyncRunConfig;
use mmhew_obs::NullSink;
use mmhew_spectrum::AvailabilityModel;
use mmhew_topology::{Network, NetworkBuilder};
use mmhew_util::SeedTree;
use std::time::Duration;

const SLOTS: u64 = 1_000;

fn scenarios() -> Vec<(&'static str, Network)> {
    let seed = SeedTree::new(BENCH_SEED);
    vec![
        (
            "sparse_grid_8x8",
            NetworkBuilder::grid(8, 8)
                .universe(8)
                .availability(AvailabilityModel::UniformSubset { size: 4 })
                .build(seed.branch("sparse"))
                .expect("grid network"),
        ),
        (
            "dense_complete_64",
            NetworkBuilder::complete(64)
                .universe(8)
                .availability(AvailabilityModel::UniformSubset { size: 4 })
                .build(seed.branch("dense"))
                .expect("complete network"),
        ),
    ]
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("slot_loop");
    group.throughput(Throughput::Elements(SLOTS));
    for (name, net) in scenarios() {
        let delta = net.max_degree().max(1) as u64;
        let alg = SyncAlgorithm::Staged(SyncParams::new(delta).expect("positive"));
        let config = SyncRunConfig::fixed(SLOTS);
        group.bench_with_input(BenchmarkId::new("no_sink", name), &net, |b, net| {
            b.iter(|| {
                Scenario::sync(net, alg)
                    .config(config)
                    .run(SeedTree::new(BENCH_SEED))
                    .expect("valid protocols")
                    .deliveries()
            })
        });
        group.bench_with_input(BenchmarkId::new("null_sink", name), &net, |b, net| {
            b.iter(|| {
                let mut sink = NullSink;
                Scenario::sync(net, alg)
                    .with_sink(&mut sink)
                    .config(config)
                    .run(SeedTree::new(BENCH_SEED))
                    .expect("valid protocols")
                    .deliveries()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
