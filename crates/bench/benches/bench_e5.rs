//! E5 bench: Algorithm 3's linear Δ_est cost vs Algorithm 1's logarithmic one.
use criterion::{criterion_group, criterion_main, Criterion};
use mmhew_bench::{print_experiment, staged, sync_run, uniform, BENCH_SEED};
use mmhew_engine::StartSchedule;
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    print_experiment("E5");
    let net = NetworkBuilder::ring(16)
        .universe(4)
        .build(SeedTree::new(BENCH_SEED))
        .expect("ring network");
    let mut g = c.benchmark_group("e5_uniform_vs_staged");
    for dest in [2u64, 128] {
        g.bench_function(format!("alg1_dest{dest}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                sync_run(
                    &net,
                    staged(dest),
                    &StartSchedule::Identical,
                    1_000_000,
                    seed,
                )
            })
        });
        g.bench_function(format!("alg3_dest{dest}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                sync_run(
                    &net,
                    uniform(dest),
                    &StartSchedule::Identical,
                    1_000_000,
                    seed,
                )
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
