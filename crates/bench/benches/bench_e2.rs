//! E2 bench: Algorithm 1 cost under tight vs very loose degree estimates.
use criterion::{criterion_group, criterion_main, Criterion};
use mmhew_bench::{print_experiment, staged, sync_run, BENCH_SEED};
use mmhew_engine::StartSchedule;
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    print_experiment("E2");
    let net = NetworkBuilder::ring(16)
        .universe(4)
        .build(SeedTree::new(BENCH_SEED))
        .expect("ring network");
    let mut g = c.benchmark_group("e2_dest_scaling");
    for dest in [2u64, 128] {
        g.bench_function(format!("ring16_dest{dest}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                sync_run(
                    &net,
                    staged(dest),
                    &StartSchedule::Identical,
                    1_000_000,
                    seed,
                )
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
