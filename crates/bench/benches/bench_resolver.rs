//! Head-to-head benchmark of the transmitter-centric [`SlotResolver`]
//! against the listener-centric reference `resolve_slot`, across
//! sparse (grid) and dense (complete) networks at N ∈ {16, 64, 256}.
//!
//! The acceptance bar for the resolver rewrite is `resolver_new` beating
//! `resolver_reference` on the dense scenarios (where listener-side
//! scanning degenerates to O(N²) per slot).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mmhew_bench::BENCH_SEED;
use mmhew_radio::{resolve_slot, Impairments, SlotAction, SlotResolver};
use mmhew_spectrum::ChannelId;
use mmhew_topology::{Network, NetworkBuilder};
use mmhew_util::SeedTree;
use rand::Rng;
use std::time::Duration;

const UNIVERSE: u16 = 8;

/// 30% transmitters, uniform random channels — the same action mix the
/// engine-level benchmarks use.
fn random_actions(n: usize, seed: u64) -> Vec<SlotAction> {
    let mut rng = SeedTree::new(seed).rng();
    (0..n)
        .map(|_| {
            let channel = ChannelId::new(rng.gen_range(0..UNIVERSE));
            if rng.gen_bool(0.3) {
                SlotAction::Transmit { channel }
            } else {
                SlotAction::Listen { channel }
            }
        })
        .collect()
}

fn scenarios() -> Vec<(String, Network)> {
    let mut out = Vec::new();
    for n in [16usize, 64, 256] {
        let side = (n as f64).sqrt().round() as usize;
        assert_eq!(side * side, n, "N must be a perfect square for the grid");
        out.push((
            format!("sparse_grid/{n}"),
            NetworkBuilder::grid(side, side)
                .universe(UNIVERSE)
                .build(SeedTree::new(BENCH_SEED))
                .expect("grid network"),
        ));
        out.push((
            format!("dense_complete/{n}"),
            NetworkBuilder::complete(n)
                .universe(UNIVERSE)
                .build(SeedTree::new(BENCH_SEED))
                .expect("complete network"),
        ));
    }
    out
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("resolver");
    for (name, net) in scenarios() {
        let actions = random_actions(net.node_count(), BENCH_SEED ^ 0x5107);
        group.bench_with_input(
            BenchmarkId::new("reference", &name),
            &(&net, &actions),
            |b, (net, actions)| {
                let mut rng = SeedTree::new(2).rng();
                b.iter(|| resolve_slot(net, actions, &Impairments::reliable(), &mut rng))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("new", &name),
            &(&net, &actions),
            |b, (net, actions)| {
                let mut rng = SeedTree::new(2).rng();
                let mut resolver = SlotResolver::new();
                b.iter(|| {
                    resolver
                        .resolve(net, actions, &Impairments::reliable(), &mut rng)
                        .deliveries
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
