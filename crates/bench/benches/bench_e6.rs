//! E6 bench: Algorithm 3 under widely staggered start times.
use criterion::{criterion_group, criterion_main, Criterion};
use mmhew_bench::{print_experiment, sync_run, uniform, BENCH_SEED};
use mmhew_engine::StartSchedule;
use mmhew_spectrum::AvailabilityModel;
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    print_experiment("E6");
    let net = NetworkBuilder::grid(4, 4)
        .universe(8)
        .availability(AvailabilityModel::UniformSubset { size: 4 })
        .build(SeedTree::new(BENCH_SEED))
        .expect("grid network");
    let delta = net.max_degree().max(1) as u64;
    let mut g = c.benchmark_group("e6_variable_start");
    for window in [0u64, 4096] {
        let starts = if window == 0 {
            StartSchedule::Identical
        } else {
            StartSchedule::Staggered { window }
        };
        g.bench_function(format!("alg3_window{window}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                sync_run(&net, uniform(delta), &starts, window + 1_000_000, seed)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
