//! E8 bench: a run at the Theorem 1 budget (failure-probability setting).
use criterion::{criterion_group, criterion_main, Criterion};
use mmhew_bench::{print_experiment, staged, sync_run, BENCH_SEED};
use mmhew_discovery::Bounds;
use mmhew_engine::StartSchedule;
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    print_experiment("E8");
    let net = NetworkBuilder::ring(12)
        .universe(4)
        .build(SeedTree::new(BENCH_SEED))
        .expect("ring network");
    let budget = Bounds::from_network(&net, 4, 0.01).theorem1_slots().ceil() as u64;
    c.bench_function("e8_run_at_thm1_budget", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            sync_run(&net, staged(4), &StartSchedule::Identical, budget, seed)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
