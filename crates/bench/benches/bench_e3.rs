//! E3 bench: cost under a wide channel universe (S) vs a dense graph (Δ).
use criterion::{criterion_group, criterion_main, Criterion};
use mmhew_bench::{print_experiment, staged, sync_run, BENCH_SEED};
use mmhew_engine::StartSchedule;
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    print_experiment("E3");
    let wide = NetworkBuilder::ring(16)
        .universe(16)
        .build(SeedTree::new(BENCH_SEED))
        .expect("ring network");
    let dense = NetworkBuilder::complete(9)
        .universe(4)
        .build(SeedTree::new(BENCH_SEED))
        .expect("complete network");
    let mut g = c.benchmark_group("e3_s_delta");
    g.bench_function("ring16_S16", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            sync_run(&wide, staged(4), &StartSchedule::Identical, 1_000_000, seed)
        })
    });
    g.bench_function("complete9_D8", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            sync_run(
                &dense,
                staged(8),
                &StartSchedule::Identical,
                1_000_000,
                seed,
            )
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
