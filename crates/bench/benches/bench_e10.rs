//! E10 bench: asynchronous discovery at zero drift vs the 1/7 limit.
use criterion::{criterion_group, criterion_main, Criterion};
use mmhew_bench::{async_run, print_experiment, BENCH_SEED};
use mmhew_engine::{AsyncRunConfig, AsyncStartSchedule, ClockConfig};
use mmhew_spectrum::AvailabilityModel;
use mmhew_time::{DriftBound, DriftModel, LocalDuration, RealDuration};
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    print_experiment("E10");
    let net = NetworkBuilder::grid(3, 3)
        .universe(6)
        .availability(AvailabilityModel::UniformSubset { size: 3 })
        .build(SeedTree::new(BENCH_SEED))
        .expect("grid network");
    let delta = net.max_degree().max(1) as u64;
    let mut g = c.benchmark_group("e10_async");
    for (label, drift) in [
        ("ideal", DriftModel::Ideal),
        (
            "drift_1_7",
            DriftModel::RandomPiecewise {
                bound: DriftBound::PAPER,
                segment: RealDuration::from_nanos(15_000),
            },
        ),
    ] {
        let config = AsyncRunConfig::until_complete(1_000_000)
            .with_frame_len(LocalDuration::from_nanos(3_000))
            .with_clocks(ClockConfig {
                drift,
                offset_window: LocalDuration::from_nanos(30_000),
            })
            .with_starts(AsyncStartSchedule::Staggered {
                window: RealDuration::from_nanos(30_000),
            });
        g.bench_function(label, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                async_run(&net, delta, &config, seed)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
