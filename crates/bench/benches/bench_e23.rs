//! E23 bench: link re-establishment after a primary-user outage.
use criterion::{criterion_group, criterion_main, Criterion};
use mmhew_bench::{print_experiment, uniform, BENCH_SEED};
use mmhew_discovery::Scenario;
use mmhew_dynamics::{DynamicsSchedule, TimedEvent};
use mmhew_engine::SyncRunConfig;
use mmhew_spectrum::{AvailabilityModel, ChannelId, ChannelSet};
use mmhew_topology::{NetworkBuilder, NetworkEvent, NodeId};
use mmhew_util::SeedTree;
use std::time::Duration;

const T1: u64 = 200;
const T2: u64 = 300;

fn bench(c: &mut Criterion) {
    print_experiment("E23");
    let mut g = c.benchmark_group("e23_spectrum_churn");
    for s in [2u16, 8] {
        let sets = vec![ChannelSet::full(s), [0u16].into_iter().collect()];
        let net = NetworkBuilder::line(2)
            .universe(s)
            .availability(AvailabilityModel::Explicit(sets))
            .build(SeedTree::new(BENCH_SEED))
            .expect("two-node network");
        let schedule = DynamicsSchedule::new(vec![
            TimedEvent::new(
                T1,
                NetworkEvent::ChannelLost {
                    node: NodeId::new(1),
                    channel: ChannelId::new(0),
                },
            ),
            TimedEvent::new(
                T2,
                NetworkEvent::ChannelGained {
                    node: NodeId::new(1),
                    channel: ChannelId::new(0),
                },
            ),
        ]);
        g.bench_function(format!("s{s}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                Scenario::sync(&net, uniform(1))
                    .with_dynamics(schedule.clone())
                    .config(SyncRunConfig::until_complete(4_000_000))
                    .run(SeedTree::new(seed))
                    .expect("valid protocol")
                    .completion_slot()
                    .expect("completed")
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
