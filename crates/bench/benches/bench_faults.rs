//! Fault-subsystem bench: the neutral empty-plan path vs a dense
//! Gilbert–Elliott plan. The empty-plan column must track the plain
//! engine (zero per-slot fault overhead); the dense column prices the
//! per-reception chain stepping.
use criterion::{criterion_group, criterion_main, Criterion};
use mmhew_bench::{print_experiment, uniform, BENCH_SEED};
use mmhew_discovery::Scenario;
use mmhew_engine::{FaultPlan, SyncRunConfig};
use mmhew_faults::{GilbertElliott, LinkLossModel};
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    print_experiment("E24");
    let net = NetworkBuilder::ring(10)
        .universe(4)
        .build(SeedTree::new(BENCH_SEED))
        .expect("ring network");
    let delta = net.max_degree().max(1) as u64;
    let config = SyncRunConfig::until_complete(4_000_000);
    let dense = FaultPlan::new().with_default_loss(LinkLossModel::GilbertElliott(
        GilbertElliott::bursty(0.3, 8.0),
    ));

    let mut g = c.benchmark_group("faults");
    g.bench_function("no_plan", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            Scenario::sync(&net, uniform(delta))
                .config(config)
                .run(SeedTree::new(seed))
                .expect("valid protocol")
                .completion_slot()
                .expect("completed")
        })
    });
    g.bench_function("empty_plan", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            Scenario::sync(&net, uniform(delta))
                .with_faults(FaultPlan::new())
                .config(config)
                .run(SeedTree::new(seed))
                .expect("valid protocol")
                .completion_slot()
                .expect("completed")
        })
    });
    g.bench_function("dense_gilbert_elliott", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            Scenario::sync(&net, uniform(delta))
                .with_faults(dense.clone())
                .config(config)
                .run(SeedTree::new(seed))
                .expect("valid protocol")
                .completion_slot()
                .expect("completed")
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
