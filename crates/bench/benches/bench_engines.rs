//! Micro-benchmarks of the simulation substrates: slot resolution, channel
//! set algebra, drifting-clock queries, and async event processing.
use criterion::{criterion_group, criterion_main, Criterion};
use mmhew_bench::BENCH_SEED;
use mmhew_discovery::{Scenario, SyncAlgorithm, SyncParams};
use mmhew_engine::SyncRunConfig;
use mmhew_obs::NullSink;
use mmhew_radio::{resolve_slot, Impairments, SlotAction};
use mmhew_spectrum::{ChannelId, ChannelSet};
use mmhew_time::{DriftBound, DriftModel, DriftedClock, LocalTime, RealDuration, RealTime};
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;
use rand::Rng;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    // Slot resolution on a dense 64-node graph.
    let net = NetworkBuilder::complete(64)
        .universe(8)
        .build(SeedTree::new(BENCH_SEED))
        .expect("complete network");
    let mut rng = SeedTree::new(1).rng();
    let actions: Vec<SlotAction> = (0..64)
        .map(|_| {
            let channel = ChannelId::new(rng.gen_range(0..8));
            if rng.gen_bool(0.3) {
                SlotAction::Transmit { channel }
            } else {
                SlotAction::Listen { channel }
            }
        })
        .collect();
    c.bench_function("resolve_slot_complete64", |b| {
        let mut medium_rng = SeedTree::new(2).rng();
        b.iter(|| resolve_slot(&net, &actions, &Impairments::reliable(), &mut medium_rng))
    });

    // Channel-set algebra.
    let a: ChannelSet = (0u16..200).step_by(3).collect();
    let bset: ChannelSet = (0u16..200).step_by(7).collect();
    c.bench_function("channel_set_intersection_200", |b| {
        b.iter(|| a.intersection(&bset).len())
    });
    let mut choose_rng = SeedTree::new(3).rng();
    c.bench_function("channel_set_choose_uniform", |b| {
        b.iter(|| a.choose_uniform(&mut choose_rng))
    });

    // NullSink overhead guard: the two benches below run the identical
    // Algorithm 1 simulation with and without a disabled sink attached.
    // A disabled sink must cost one branch per slot (the engine skips all
    // event assembly when `enabled()` is false), so the pair is expected
    // to stay within noise of each other; treat a delta above ~2% on
    // `sync_engine_null_sink` vs `sync_engine_uninstrumented` as a
    // regression in the instrumentation path and re-run
    // `cargo bench -p mmhew-bench --bench bench_engines` to confirm.
    let guard_net = NetworkBuilder::complete(12)
        .universe(6)
        .build(SeedTree::new(BENCH_SEED))
        .expect("complete network");
    let guard_delta = guard_net.max_degree().max(1) as u64;
    let guard_alg = SyncAlgorithm::Staged(SyncParams::new(guard_delta).expect("positive"));
    let guard_config = SyncRunConfig::fixed(2_000);
    c.bench_function("sync_engine_uninstrumented", |b| {
        b.iter(|| {
            Scenario::sync(&guard_net, guard_alg)
                .config(guard_config)
                .run(SeedTree::new(BENCH_SEED))
                .expect("valid protocols")
                .deliveries()
        })
    });
    c.bench_function("sync_engine_null_sink", |b| {
        b.iter(|| {
            let mut sink = NullSink;
            Scenario::sync(&guard_net, guard_alg)
                .with_sink(&mut sink)
                .config(guard_config)
                .run(SeedTree::new(BENCH_SEED))
                .expect("valid protocols")
                .deliveries()
        })
    });

    // Clock queries across random drift segments.
    let model = DriftModel::RandomPiecewise {
        bound: DriftBound::PAPER,
        segment: RealDuration::from_nanos(10_000),
    };
    c.bench_function("clock_local_at_1000_queries", |b| {
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            let mut clock = DriftedClock::new(model.clone(), LocalTime::ZERO, SeedTree::new(round));
            let mut acc = 0u64;
            for i in 0..1_000u64 {
                acc ^= clock.local_at(RealTime::from_nanos(i * 997)).as_nanos();
            }
            acc
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
