//! E21 bench: re-discovery of a node joining a running network.
use criterion::{criterion_group, criterion_main, Criterion};
use mmhew_bench::{print_experiment, uniform, BENCH_SEED};
use mmhew_discovery::Scenario;
use mmhew_dynamics::{DynamicsSchedule, TimedEvent};
use mmhew_engine::{StartSchedule, SyncRunConfig};
use mmhew_topology::{NetworkBuilder, NetworkEvent, NodeId};
use mmhew_util::SeedTree;
use std::time::Duration;

const JOIN_SLOT: u64 = 400;

fn bench(c: &mut Criterion) {
    print_experiment("E21");
    let mut g = c.benchmark_group("e21_join_rediscovery");
    for d in [2usize, 4, 8] {
        let n = d + 1;
        let net = NetworkBuilder::complete(n)
            .universe(4)
            .build(SeedTree::new(BENCH_SEED))
            .expect("complete network");
        let joiner = NodeId::new(d as u32);
        let mut events = vec![TimedEvent::new(0, NetworkEvent::NodeLeave { node: joiner })];
        events.push(TimedEvent::new(
            JOIN_SLOT,
            NetworkEvent::NodeJoin {
                node: joiner,
                position: net.topology().position(joiner),
                available: net.available(joiner).to_owned(),
            },
        ));
        for i in 0..d as u32 {
            let other = NodeId::new(i);
            events.push(TimedEvent::new(
                JOIN_SLOT,
                NetworkEvent::EdgeAdd {
                    from: joiner,
                    to: other,
                },
            ));
            events.push(TimedEvent::new(
                JOIN_SLOT,
                NetworkEvent::EdgeAdd {
                    from: other,
                    to: joiner,
                },
            ));
        }
        let schedule = DynamicsSchedule::new(events);
        let starts: Vec<u64> = (0..n).map(|i| if i == d { JOIN_SLOT } else { 0 }).collect();
        g.bench_function(format!("d{d}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                Scenario::sync(&net, uniform(d as u64))
                    .starts(StartSchedule::Explicit(starts.clone()))
                    .with_dynamics(schedule.clone())
                    .config(SyncRunConfig::until_complete(4_000_000))
                    .run(SeedTree::new(seed))
                    .expect("valid protocol")
                    .completion_slot()
                    .expect("completed")
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
