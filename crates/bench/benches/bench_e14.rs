//! E14 bench: discovery under uniform vs per-channel propagation.
use criterion::{criterion_group, criterion_main, Criterion};
use mmhew_bench::{print_experiment, sync_run, uniform, BENCH_SEED};
use mmhew_engine::StartSchedule;
use mmhew_topology::{NetworkBuilder, Propagation};
use mmhew_util::SeedTree;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    print_experiment("E14");
    let mut g = c.benchmark_group("e14_propagation");
    for (label, prop) in [
        ("uniform", Propagation::Uniform),
        (
            "diverse",
            Propagation::PerChannelRange {
                ranges: vec![3.0, 2.2, 1.6, 1.2],
            },
        ),
    ] {
        let net = NetworkBuilder::unit_disk(20, 10.0, 3.0)
            .universe(4)
            .propagation(prop)
            .build(SeedTree::new(BENCH_SEED))
            .expect("unit disk network");
        let delta = net.max_degree().max(1) as u64;
        g.bench_function(label, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                sync_run(
                    &net,
                    uniform(delta),
                    &StartSchedule::Identical,
                    4_000_000,
                    seed,
                )
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
