//! E12 bench: discovery on an asymmetric communication graph.
use criterion::{criterion_group, criterion_main, Criterion};
use mmhew_bench::{print_experiment, sync_run, uniform, BENCH_SEED};
use mmhew_engine::StartSchedule;
use mmhew_spectrum::AvailabilityModel;
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    print_experiment("E12");
    let net = NetworkBuilder::asymmetric_disk(18, 8.0, 1.0, 5.0)
        .universe(6)
        .availability(AvailabilityModel::UniformSubset { size: 4 })
        .build(SeedTree::new(BENCH_SEED))
        .expect("asymmetric network");
    let delta = net.max_degree().max(1) as u64;
    c.bench_function("e12_asymmetric_disk18", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            sync_run(
                &net,
                uniform(delta),
                &StartSchedule::Identical,
                4_000_000,
                seed,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
