//! E22 bench: continuous discovery under Poisson churn.
use criterion::{criterion_group, criterion_main, Criterion};
use mmhew_bench::{print_experiment, uniform, BENCH_SEED};
use mmhew_discovery::{build_continuous_protocols, staleness, ContinuousConfig};
use mmhew_dynamics::{poisson_churn, ChurnConfig, DynamicsSchedule};
use mmhew_engine::{SyncEngine, SyncRunConfig};
use mmhew_spectrum::AvailabilityModel;
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;
use std::time::Duration;

const HORIZON: u64 = 2_000;

fn bench(c: &mut Criterion) {
    print_experiment("E22");
    let mut g = c.benchmark_group("e22_churn_staleness");
    let net = NetworkBuilder::grid(3, 3)
        .universe(4)
        .availability(AvailabilityModel::UniformSubset { size: 3 })
        .build(SeedTree::new(BENCH_SEED))
        .expect("grid network");
    let delta = net.max_degree().max(1) as u64;
    let continuous = ContinuousConfig::new(16, 400).expect("positive periods");
    for rate in [0.001f64, 0.02] {
        g.bench_function(format!("rate{rate}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let tree = SeedTree::new(seed);
                let schedule = DynamicsSchedule::new(poisson_churn(
                    &net,
                    HORIZON,
                    &ChurnConfig {
                        rate,
                        mean_downtime: 600.0,
                    },
                    tree.branch("churn"),
                ));
                let protocols = build_continuous_protocols(&net, uniform(delta), continuous)
                    .expect("valid protocol");
                let config = SyncRunConfig::fixed(HORIZON);
                let mut engine = SyncEngine::new(
                    &net,
                    protocols,
                    vec![0; net.node_count()],
                    tree.branch("engine"),
                )
                .with_dynamics(schedule);
                for _ in 0..HORIZON {
                    engine.step(&config);
                }
                staleness(engine.network(), &engine.tables_snapshot()).total()
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
