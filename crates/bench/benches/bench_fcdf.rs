//! F-CDF bench: per-link coverage-time collection (the figure's series).
use criterion::{criterion_group, criterion_main, Criterion};
use mmhew_bench::{print_experiment, uniform, BENCH_SEED};
use mmhew_discovery::Scenario;
use mmhew_engine::SyncRunConfig;
use mmhew_topology::NetworkBuilder;
use mmhew_util::SeedTree;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    print_experiment("F-CDF");
    let net = NetworkBuilder::ring(16)
        .universe(4)
        .build(SeedTree::new(BENCH_SEED))
        .expect("ring network");
    let delta = net.max_degree().max(1) as u64;
    c.bench_function("fcdf_link_coverage_collection", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let out = Scenario::sync(&net, uniform(delta))
                .config(SyncRunConfig::until_complete(1_000_000))
                .run(SeedTree::new(seed))
                .expect("valid protocol");
            out.link_coverage()
                .iter()
                .filter_map(|(_, t)| *t)
                .sum::<u64>()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
