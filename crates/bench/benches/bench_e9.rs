//! E9 bench: cost of the Lemma 4/7 structural checks over drifting clocks.
use criterion::{criterion_group, criterion_main, Criterion};
use mmhew_bench::{print_experiment, BENCH_SEED};
use mmhew_time::{
    find_aligned_pair_after, overlapping_frames, DriftBound, DriftModel, DriftedClock,
    FrameSchedule, LocalDuration, LocalTime, RealDuration, RealTime,
};
use mmhew_util::SeedTree;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    print_experiment("E9");
    let model = DriftModel::RandomPiecewise {
        bound: DriftBound::PAPER,
        segment: RealDuration::from_nanos(1_500),
    };
    c.bench_function("e9_lemma_checks_100_trials", |b| {
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            let mut violations = 0u32;
            for t in 0..100u64 {
                let seed = SeedTree::new(BENCH_SEED ^ round).index(t);
                let mut cv = DriftedClock::new(model.clone(), LocalTime::ZERO, seed.branch("v"));
                let mut cu = DriftedClock::new(
                    model.clone(),
                    LocalTime::from_nanos(t * 37),
                    seed.branch("u"),
                );
                let sv = FrameSchedule::new(LocalTime::ZERO, LocalDuration::from_nanos(3_000));
                let su = FrameSchedule::new(
                    LocalTime::from_nanos(t * 37),
                    LocalDuration::from_nanos(3_000),
                );
                let f = sv.frame_interval(t % 8, &mut cv);
                if overlapping_frames(&f, &su, &mut cu, 64).len() > 3 {
                    violations += 1;
                }
                if find_aligned_pair_after(
                    RealTime::from_nanos(t * 511),
                    &sv,
                    &mut cv,
                    &su,
                    &mut cu,
                    2,
                )
                .is_none()
                {
                    violations += 1;
                }
            }
            violations
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .sample_size(10);
    targets = bench
}
criterion_main!(benches);
