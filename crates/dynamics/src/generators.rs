//! Seeded scenario generators: churn, mobility, and primary-user activity.
//!
//! Each generator is a pure function of `(network, horizon, config, seed)`
//! returning a `Vec<TimedEvent>` — feed one (or several, via
//! [`DynamicsSchedule::merged`]) to an engine. Times are in the consumer's
//! unit: slots for the synchronous engine, nanoseconds for the
//! asynchronous one; pick `horizon` and the per-config time constants
//! accordingly.

use crate::schedule::TimedEvent;
use mmhew_spectrum::ChannelId;
use mmhew_topology::{Network, NetworkEvent, NodeId};
use mmhew_util::SeedTree;
use rand::Rng;

#[allow(unused_imports)]
use crate::schedule::DynamicsSchedule; // doc links

/// Parameters for [`poisson_churn`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnConfig {
    /// Expected departures per time unit across the whole network.
    pub rate: f64,
    /// Expected absence duration (exponentially distributed).
    pub mean_downtime: f64,
}

/// Memoryless node churn: departures arrive as a Poisson process of the
/// given `rate`, each picking a uniformly random *present* node; the node
/// stays away for an exponential downtime, then rejoins at its original
/// position with its original availability.
///
/// An original edge is restored when its second endpoint returns, so at
/// every instant the live edge set is exactly the original edges whose
/// endpoints are both present — a departed node is never half-connected.
/// Rejoins that would land past `horizon` are dropped (the node simply
/// never comes back).
pub fn poisson_churn(
    network: &Network,
    horizon: u64,
    config: &ChurnConfig,
    seed: SeedTree,
) -> Vec<TimedEvent> {
    assert!(config.rate > 0.0, "departure rate must be positive");
    assert!(config.mean_downtime > 0.0, "mean downtime must be positive");
    let n = network.node_count();
    let topo = network.topology();
    let edges: Vec<(NodeId, NodeId)> = topo.edges().collect();
    let mut rng = seed.branch("churn").rng();
    let mut present = vec![true; n];
    let mut events = Vec::new();
    // Pending rejoins, ordered by time (a BinaryHeap of Reverse works too;
    // a sorted Vec keeps ties deterministic and the code obvious).
    let mut rejoins: Vec<(u64, NodeId)> = Vec::new();

    let mut clock = 0.0_f64;
    loop {
        clock += exponential(&mut rng, 1.0 / config.rate);
        let departure_at = clock.ceil() as u64;
        if departure_at >= horizon {
            break;
        }
        // Fire every rejoin scheduled before this departure.
        while let Some(&(at, node)) = rejoins.first() {
            if at > departure_at {
                break;
            }
            rejoins.remove(0);
            present[node.as_usize()] = true;
            events.push(TimedEvent::new(
                at,
                NetworkEvent::NodeJoin {
                    node,
                    position: topo.position(node),
                    available: network.available(node).to_owned(),
                },
            ));
            for &(from, to) in &edges {
                if (from == node || to == node)
                    && present[from.as_usize()]
                    && present[to.as_usize()]
                {
                    events.push(TimedEvent::new(at, NetworkEvent::EdgeAdd { from, to }));
                }
            }
        }
        let candidates: Vec<NodeId> = (0..n as u32)
            .map(NodeId::new)
            .filter(|u| present[u.as_usize()])
            .collect();
        if candidates.is_empty() {
            continue;
        }
        let node = candidates[rng.gen_range(0..candidates.len())];
        present[node.as_usize()] = false;
        events.push(TimedEvent::new(
            departure_at,
            NetworkEvent::NodeLeave { node },
        ));
        let downtime = exponential(&mut rng, config.mean_downtime).ceil().max(1.0) as u64;
        let rejoin_at = departure_at.saturating_add(downtime);
        if rejoin_at < horizon {
            rejoins.push((rejoin_at, node));
            rejoins.sort_by_key(|&(at, u)| (at, u));
        }
    }
    // Flush rejoins that precede the horizon but follow the last departure.
    for (at, node) in rejoins {
        present[node.as_usize()] = true;
        events.push(TimedEvent::new(
            at,
            NetworkEvent::NodeJoin {
                node,
                position: topo.position(node),
                available: network.available(node).to_owned(),
            },
        ));
        for &(from, to) in &edges {
            if (from == node || to == node) && present[from.as_usize()] && present[to.as_usize()] {
                events.push(TimedEvent::new(at, NetworkEvent::EdgeAdd { from, to }));
            }
        }
    }
    events.sort_by_key(|e| e.at);
    events
}

/// Parameters for [`random_waypoint`].
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityConfig {
    /// Side length of the square deployment area.
    pub side: f64,
    /// Unit-disk connectivity radius: nodes within `radius` are linked.
    pub radius: f64,
    /// Distance travelled per time unit.
    pub speed: f64,
    /// Time units between position updates (edge recomputation).
    pub step: u64,
}

/// Random-waypoint mobility over a unit-disk graph: every node walks at
/// constant `speed` toward a uniformly random waypoint, picking a new one
/// on arrival. Every `step` time units positions advance and the
/// bidirectional unit-disk edge set is recomputed; the diff against the
/// previous edge set becomes `EdgeAdd`/`EdgeRemove` events.
///
/// Positions evolve inside the generator only — `Network::apply` does not
/// move nodes on edge events — so pair this with
/// [`Propagation::Uniform`](mmhew_topology::Propagation::Uniform), where
/// links carry all the geometry that matters.
pub fn random_waypoint(
    network: &Network,
    horizon: u64,
    config: &MobilityConfig,
    seed: SeedTree,
) -> Vec<TimedEvent> {
    assert!(config.side > 0.0, "area side must be positive");
    assert!(config.radius > 0.0, "disk radius must be positive");
    assert!(config.speed >= 0.0, "speed must be non-negative");
    assert!(config.step > 0, "step must be positive");
    let n = network.node_count();
    let mut rng = seed.branch("mobility").rng();
    let mut positions: Vec<(f64, f64)> = network.topology().positions().to_vec();
    let mut waypoints: Vec<(f64, f64)> = (0..n)
        .map(|_| {
            (
                rng.gen::<f64>() * config.side,
                rng.gen::<f64>() * config.side,
            )
        })
        .collect();
    let mut current: std::collections::BTreeSet<(NodeId, NodeId)> =
        network.topology().edges().collect();
    let mut events = Vec::new();

    let mut t = config.step;
    while t < horizon {
        let travel = config.speed * config.step as f64;
        for i in 0..n {
            let (x, y) = positions[i];
            let (wx, wy) = waypoints[i];
            let (dx, dy) = (wx - x, wy - y);
            let dist = (dx * dx + dy * dy).sqrt();
            if dist <= travel {
                positions[i] = (wx, wy);
                waypoints[i] = (
                    rng.gen::<f64>() * config.side,
                    rng.gen::<f64>() * config.side,
                );
            } else {
                positions[i] = (x + dx / dist * travel, y + dy / dist * travel);
            }
        }
        let mut desired = std::collections::BTreeSet::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let (dx, dy) = (
                    positions[i].0 - positions[j].0,
                    positions[i].1 - positions[j].1,
                );
                if (dx * dx + dy * dy).sqrt() <= config.radius {
                    desired.insert((NodeId::new(i as u32), NodeId::new(j as u32)));
                    desired.insert((NodeId::new(j as u32), NodeId::new(i as u32)));
                }
            }
        }
        for &(from, to) in desired.difference(&current) {
            events.push(TimedEvent::new(t, NetworkEvent::EdgeAdd { from, to }));
        }
        for &(from, to) in current.difference(&desired) {
            events.push(TimedEvent::new(t, NetworkEvent::EdgeRemove { from, to }));
        }
        current = desired;
        t += config.step;
    }
    events
}

/// Parameters for [`markov_primary_users`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpectrumChurnConfig {
    /// Per-step probability that a vacant channel becomes occupied.
    pub p_occupy: f64,
    /// Per-step probability that an occupied channel is vacated.
    pub p_vacate: f64,
    /// Time units between Markov transitions.
    pub step: u64,
}

/// Per-channel two-state Markov primary users: each universe channel
/// independently flips between vacant and occupied every `step` time
/// units. Occupation emits `ChannelLost` for every node whose *baseline*
/// availability contains the channel; vacating emits the matching
/// `ChannelGained`, restoring the baseline. All channels start vacant.
///
/// A burst of simultaneous occupations can empty a node's current
/// availability entirely; the network tolerates this (its links just
/// vanish until a channel returns).
pub fn markov_primary_users(
    network: &Network,
    horizon: u64,
    config: &SpectrumChurnConfig,
    seed: SeedTree,
) -> Vec<TimedEvent> {
    assert!(
        (0.0..=1.0).contains(&config.p_occupy) && (0.0..=1.0).contains(&config.p_vacate),
        "transition probabilities must be in [0, 1]"
    );
    assert!(config.step > 0, "step must be positive");
    let universe = network.universe_size();
    let n = network.node_count();
    let mut rng = seed.branch("spectrum").rng();
    let mut occupied = vec![false; universe as usize];
    let mut events = Vec::new();

    let mut t = config.step;
    while t < horizon {
        for c in 0..universe {
            let channel = ChannelId::new(c);
            let flip = if occupied[c as usize] {
                rng.gen::<f64>() < config.p_vacate
            } else {
                rng.gen::<f64>() < config.p_occupy
            };
            if !flip {
                continue;
            }
            occupied[c as usize] = !occupied[c as usize];
            for i in 0..n as u32 {
                let node = NodeId::new(i);
                if !network.available(node).contains(channel) {
                    continue;
                }
                let event = if occupied[c as usize] {
                    NetworkEvent::ChannelLost { node, channel }
                } else {
                    NetworkEvent::ChannelGained { node, channel }
                };
                events.push(TimedEvent::new(t, event));
            }
        }
        t += config.step;
    }
    events
}

/// Exponential sample with the given mean (inverse-CDF method).
fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen();
    -(1.0 - u).ln() * mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::DynamicsSchedule;
    use mmhew_spectrum::AvailabilityModel;
    use mmhew_topology::NetworkBuilder;

    fn net(seed: &SeedTree) -> Network {
        NetworkBuilder::complete(6)
            .universe(4)
            .availability(AvailabilityModel::UniformSubset { size: 3 })
            .build(seed.branch("net"))
            .expect("build")
    }

    #[test]
    fn churn_is_deterministic_and_replayable() {
        let tree = SeedTree::new(11);
        let network = net(&tree);
        let cfg = ChurnConfig {
            rate: 0.01,
            mean_downtime: 50.0,
        };
        let a = poisson_churn(&network, 2_000, &cfg, tree.branch("churn"));
        let b = poisson_churn(&network, 2_000, &cfg, tree.branch("churn"));
        assert_eq!(a, b, "same seed, same stream");
        assert!(!a.is_empty(), "rate 0.01 over 2000 units should churn");
        // Replaying the whole stream against the network must stay valid
        // and, once every departure has rejoined, restore the original.
        let mut mutated = network.clone();
        for e in &a {
            mutated.apply(&e.event).expect("generated events are valid");
        }
        let leaves = a
            .iter()
            .filter(|e| matches!(e.event, NetworkEvent::NodeLeave { .. }))
            .count();
        let joins = a
            .iter()
            .filter(|e| matches!(e.event, NetworkEvent::NodeJoin { .. }))
            .count();
        assert!(leaves >= joins, "can't rejoin more than departed");
        if leaves == joins {
            assert_eq!(mutated.links(), network.links(), "fully healed");
        }
    }

    #[test]
    fn churn_never_half_connects_absent_nodes() {
        let tree = SeedTree::new(12);
        let network = net(&tree);
        let cfg = ChurnConfig {
            rate: 0.05,
            mean_downtime: 100.0,
        };
        let events = poisson_churn(&network, 3_000, &cfg, tree.branch("churn"));
        let n = network.node_count();
        let mut present = vec![true; n];
        for e in &events {
            match &e.event {
                NetworkEvent::NodeLeave { node } => present[node.as_usize()] = false,
                NetworkEvent::NodeJoin { node, .. } => present[node.as_usize()] = true,
                NetworkEvent::EdgeAdd { from, to } => {
                    assert!(
                        present[from.as_usize()] && present[to.as_usize()],
                        "edge restored to an absent endpoint at t={}",
                        e.at
                    );
                }
                other => panic!("unexpected churn event {other:?}"),
            }
        }
    }

    #[test]
    fn mobility_diffs_are_consistent() {
        let tree = SeedTree::new(13);
        let network = NetworkBuilder::unit_disk(8, 10.0, 4.0)
            .universe(3)
            .availability(AvailabilityModel::Full)
            .build(tree.branch("net"))
            .expect("build");
        let cfg = MobilityConfig {
            side: 10.0,
            radius: 4.0,
            speed: 0.5,
            step: 50,
        };
        let events = random_waypoint(&network, 2_000, &cfg, tree.branch("move"));
        assert_eq!(
            events,
            random_waypoint(&network, 2_000, &cfg, tree.branch("move"))
        );
        assert!(!events.is_empty(), "nodes moving at 0.5/unit must rewire");
        // Every event must apply cleanly and keep the graph symmetric
        // (adds and removes always come in directed pairs).
        let mut mutated = network.clone();
        let mut schedule = DynamicsSchedule::new(events);
        while let Some(e) = schedule.next_due(u64::MAX) {
            let event = e.event.clone();
            mutated.apply(&event).expect("valid");
        }
        assert!(mutated.topology().is_symmetric());
    }

    #[test]
    fn primary_users_restore_baseline() {
        let tree = SeedTree::new(14);
        let network = net(&tree);
        let cfg = SpectrumChurnConfig {
            p_occupy: 0.3,
            p_vacate: 0.3,
            step: 100,
        };
        let events = markov_primary_users(&network, 5_000, &cfg, tree.branch("pu"));
        assert!(!events.is_empty());
        let mut mutated = network.clone();
        let mut occupied_now: std::collections::BTreeSet<u16> = Default::default();
        for e in &events {
            mutated.apply(&e.event).expect("valid");
            match &e.event {
                NetworkEvent::ChannelLost { channel, .. } => {
                    occupied_now.insert(channel.index());
                }
                NetworkEvent::ChannelGained { channel, .. } => {
                    occupied_now.remove(&channel.index());
                }
                other => panic!("unexpected spectrum event {other:?}"),
            }
        }
        // Wherever no primary user is left standing, availability is back
        // to baseline.
        for i in 0..network.node_count() as u32 {
            let node = NodeId::new(i);
            for c in network.available(node).iter() {
                if !occupied_now.contains(&c.index()) {
                    assert!(mutated.available(node).contains(c));
                }
            }
        }
    }
}
