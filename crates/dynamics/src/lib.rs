//! Deterministic network dynamics: churn, mobility, and spectrum events.
//!
//! The source paper analyses neighbor discovery on a *frozen* network.
//! Its follow-up line of work (robust discovery under churn, continuous
//! discovery in cognitive-radio networks) asks what happens when the
//! network moves underneath the algorithm: nodes join and leave, mobility
//! makes and breaks links, primary users occupy and vacate channels.
//!
//! This crate expresses that movement as data. A [`DynamicsSchedule`] is a
//! time-ordered stream of [`TimedEvent`]s — each a
//! [`NetworkEvent`] (defined in `mmhew-topology`, where
//! `Network::apply` consumes it) plus a firing time. Schedules are plain
//! values: generated once from a [`SeedTree`](mmhew_util::SeedTree), fully
//! inspectable, serializable, and replayed identically by both engines, so
//! a dynamic run stays a pure function of the master seed.
//!
//! Firing times are interpreted by the consumer: the synchronous engine
//! reads `at` as a **slot index**, the asynchronous engine as **real-time
//! nanoseconds**. Generators take a `horizon` in the same unit.
//!
//! Three seeded [`generators`] cover the canonical scenarios:
//!
//! * [`generators::poisson_churn`] — memoryless node departures with
//!   exponential downtimes; a rejoining node re-announces its original
//!   edges once both endpoints are present.
//! * [`generators::random_waypoint`] — unit-disk mobility: nodes walk
//!   toward random waypoints, links recomputed from positions every step.
//! * [`generators::markov_primary_users`] — per-channel on/off Markov
//!   primary users; occupying a channel removes it from every node that
//!   perceives it, vacating restores the baseline.
//!
//! # Examples
//!
//! ```
//! use mmhew_dynamics::{DynamicsSchedule, NetworkEvent, TimedEvent};
//! use mmhew_topology::NodeId;
//!
//! let mut schedule = DynamicsSchedule::new(vec![
//!     TimedEvent::new(40, NetworkEvent::NodeLeave { node: NodeId::new(2) }),
//!     TimedEvent::new(10, NetworkEvent::NodeLeave { node: NodeId::new(0) }),
//! ]);
//! assert_eq!(schedule.next_due(5), None);
//! assert_eq!(schedule.next_due(10).map(|e| e.at), Some(10));
//! assert_eq!(schedule.next_due(10), None, "nothing else due yet");
//! assert_eq!(schedule.next_due(99).map(|e| e.at), Some(40));
//! assert!(schedule.is_exhausted());
//! ```

pub mod generators;
pub mod schedule;

pub use generators::{
    markov_primary_users, poisson_churn, random_waypoint, ChurnConfig, MobilityConfig,
    SpectrumChurnConfig,
};
pub use mmhew_topology::NetworkEvent;
pub use schedule::{DynamicsSchedule, TimedEvent};
