//! The mutation schedule: a replayable, time-ordered event stream.

use mmhew_topology::NetworkEvent;
use serde::{Deserialize, Serialize};

/// A [`NetworkEvent`] with a firing time.
///
/// `at` is unit-agnostic: the synchronous engine interprets it as a slot
/// index, the asynchronous engine as real-time nanoseconds. Events with
/// equal `at` fire in schedule order (sorting is stable).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// When the event fires (slot index or real nanoseconds).
    pub at: u64,
    /// What changes.
    pub event: NetworkEvent,
}

impl TimedEvent {
    /// Pairs an event with its firing time.
    pub fn new(at: u64, event: NetworkEvent) -> Self {
        Self { at, event }
    }
}

/// A time-ordered stream of network mutations with a consumption cursor.
///
/// The schedule is a plain value: build it from generator output (or by
/// hand), hand it to an engine, and every run with the same seed replays
/// the same mutations at the same boundaries. An empty schedule is the
/// degenerate case — attaching it must not change a run at all (the
/// dynamics-neutrality guarantee, enforced by `tests/dynamics.rs`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicsSchedule {
    events: Vec<TimedEvent>,
    cursor: usize,
}

impl DynamicsSchedule {
    /// Builds a schedule from events in any order; they are stably sorted
    /// by firing time (ties keep their given order).
    pub fn new(mut events: Vec<TimedEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        Self { events, cursor: 0 }
    }

    /// The schedule with no events — dynamics-neutral by construction.
    pub fn empty() -> Self {
        Self::new(Vec::new())
    }

    /// Concatenates several event streams (e.g. churn + spectrum) into one
    /// schedule, interleaved by firing time.
    pub fn merged<I: IntoIterator<Item = Vec<TimedEvent>>>(streams: I) -> Self {
        Self::new(streams.into_iter().flatten().collect())
    }

    /// Total number of events (consumed or not).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the schedule holds no events at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// True once every event has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.cursor >= self.events.len()
    }

    /// Events not yet consumed.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }

    /// Firing time of the last event, if any.
    pub fn horizon(&self) -> Option<u64> {
        self.events.last().map(|e| e.at)
    }

    /// Firing time of the next unconsumed event, if any.
    pub fn peek_at(&self) -> Option<u64> {
        self.events.get(self.cursor).map(|e| e.at)
    }

    /// Pops the next event with `at <= now`, advancing the cursor. Call in
    /// a loop at each time boundary to drain everything due.
    pub fn next_due(&mut self, now: u64) -> Option<&TimedEvent> {
        let event = self.events.get(self.cursor)?;
        if event.at > now {
            return None;
        }
        self.cursor += 1;
        Some(event)
    }

    /// Rewinds the cursor so the schedule can be replayed.
    pub fn reset(&mut self) {
        self.cursor = 0;
    }

    /// All events in firing order, regardless of cursor position.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_topology::NodeId;

    fn leave(at: u64, node: u32) -> TimedEvent {
        TimedEvent::new(
            at,
            NetworkEvent::NodeLeave {
                node: NodeId::new(node),
            },
        )
    }

    #[test]
    fn sorts_stably_and_drains_in_order() {
        let mut s = DynamicsSchedule::new(vec![leave(7, 0), leave(3, 1), leave(7, 2), leave(3, 3)]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.horizon(), Some(7));
        assert_eq!(s.peek_at(), Some(3));
        // Ties preserve insertion order: (3,1) before (3,3), (7,0) before (7,2).
        let drained: Vec<_> = std::iter::from_fn(|| s.next_due(100).cloned()).collect();
        assert_eq!(
            drained,
            vec![leave(3, 1), leave(3, 3), leave(7, 0), leave(7, 2)]
        );
        assert!(s.is_exhausted());
        s.reset();
        assert_eq!(s.remaining(), 4);
    }

    #[test]
    fn next_due_respects_now() {
        let mut s = DynamicsSchedule::new(vec![leave(5, 0), leave(10, 1)]);
        assert!(s.next_due(4).is_none());
        assert_eq!(s.next_due(5).map(|e| e.at), Some(5));
        assert!(s.next_due(9).is_none());
        assert_eq!(s.remaining(), 1);
    }

    #[test]
    fn empty_and_merged() {
        assert!(DynamicsSchedule::empty().is_empty());
        assert!(DynamicsSchedule::empty().is_exhausted());
        assert_eq!(DynamicsSchedule::empty().horizon(), None);
        let m = DynamicsSchedule::merged(vec![vec![leave(9, 0)], vec![leave(2, 1)]]);
        assert_eq!(m.events()[0].at, 2);
        assert_eq!(m.len(), 2);
    }
}
