//! Nihao-style grid schedules (after the "talk more, listen less" family
//! of arXiv:1411.5415).
//!
//! A node walks an `rows × cols` grid, one slot per cell, column by
//! column. Writing `s' = s + φ` for the phase-shifted slot counter
//! (`φ` = node id):
//!
//! * column `0` of every row → **transmit** on `A[(s'/cols) mod |A|]`
//!   (the beacon channel advances one step per row),
//! * the rest of row `0` → **listen** on `A[(s'/(rows·cols)) mod |A|]`
//!   (one receive channel per grid pass),
//! * every other cell → transceiver off.
//!
//! Transmissions are thus `cols`-periodic and cheap, listening is a
//! `1/rows` fraction of slots — "talk more, listen less". The duty cycle
//! is `1/cols + (cols-1)/(rows·cols)`, so per-node heterogeneity is the
//! pair `(rows, cols)`: `S-Nihao` gives every node the same grid,
//! `A-Nihao` assigns different `rows` classes by node.
//!
//! Two deterministic failure modes are inherent to the construction and
//! documented rather than papered over (DESIGN.md §16): (1) a node never
//! listens in its own transmit column, so two nodes whose phases agree
//! modulo `cols` are mutually deaf — the catalog uses `cols = 16` and
//! `φ` = node id, which is collision-free for networks of up to 16 nodes;
//! (2) like Mc-Dis, channel alignment across co-active slots is
//! stride-driven: guaranteed on full availability with a prime universe
//! when `rows ≢ 1 (mod |A|)` (the catalog rows classes 2/8/12 satisfy
//! this for sizes 3 and 5), best-effort under heterogeneous subsets,
//! where misses show up as budget-exhausted failures in E27/E28.
//!
//! The schedule is draw-free, so [`SyncProtocol::next_transmission_bound`]
//! is exact and the event engine can skip the off cells.

use mmhew_discovery::ProtocolError;
use mmhew_engine::{NeighborTable, SyncProtocol};
use mmhew_obs::ProtocolPhase;
use mmhew_radio::{Beacon, SlotAction};
use mmhew_spectrum::{ChannelId, ChannelSet};
use mmhew_util::Xoshiro256StarStar;

/// Per-node state of a Nihao grid schedule.
///
/// # Examples
///
/// ```
/// use mmhew_rivals::NihaoDiscovery;
/// use mmhew_spectrum::ChannelSet;
///
/// let proto = NihaoDiscovery::new(ChannelSet::full(5), 8, 16, 0)?;
/// assert!((proto.duty() - (1.0 / 16.0 + 15.0 / 128.0)).abs() < 1e-12);
/// # Ok::<(), mmhew_discovery::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NihaoDiscovery {
    channels: Vec<ChannelId>,
    available: ChannelSet,
    rows: u64,
    cols: u64,
    phase: u64,
    grid: u64,
    table: NeighborTable,
}

impl NihaoDiscovery {
    /// Creates the schedule for one node; `node_id` becomes the phase
    /// shift `φ`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::EmptyChannelSet`] if `available` is empty.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `cols < 2` (with one column every slot
    /// would transmit and the schedule could never listen).
    pub fn new(
        available: ChannelSet,
        rows: u64,
        cols: u64,
        node_id: u32,
    ) -> Result<Self, ProtocolError> {
        assert!(rows >= 1, "grid needs at least one row");
        assert!(cols >= 2, "grid needs at least two columns");
        if available.is_empty() {
            return Err(ProtocolError::EmptyChannelSet);
        }
        let channels: Vec<ChannelId> = available.iter().collect();
        Ok(Self {
            channels,
            available,
            rows,
            cols,
            phase: u64::from(node_id),
            grid: 0,
            table: NeighborTable::new(),
        })
    }

    /// The node's duty cycle.
    pub fn duty(&self) -> f64 {
        let r = self.rows as f64;
        let c = self.cols as f64;
        1.0 / c + (c - 1.0) / (r * c)
    }

    /// The action scheduled for `active_slot` — a pure function of the
    /// slot index.
    fn action_at(&self, active_slot: u64) -> SlotAction {
        let s = active_slot.wrapping_add(self.phase);
        let m = self.channels.len() as u64;
        let col = s % self.cols;
        let row = (s / self.cols) % self.rows;
        if col == 0 {
            let idx = (s / self.cols) % m;
            SlotAction::Transmit {
                channel: self.channels[idx as usize],
            }
        } else if row == 0 {
            let idx = (s / (self.rows * self.cols)) % m;
            SlotAction::Listen {
                channel: self.channels[idx as usize],
            }
        } else {
            SlotAction::Quiet
        }
    }
}

impl SyncProtocol for NihaoDiscovery {
    fn on_slot(&mut self, active_slot: u64, _rng: &mut Xoshiro256StarStar) -> SlotAction {
        self.grid = active_slot.wrapping_add(self.phase) / (self.rows * self.cols);
        self.action_at(active_slot)
    }

    fn on_beacon(&mut self, beacon: &Beacon, _channel: ChannelId) {
        self.table.record(
            beacon.sender(),
            beacon.available().intersection(&self.available),
        );
    }

    fn table(&self) -> &NeighborTable {
        &self.table
    }

    fn next_transmission_bound(&self, now: u64) -> Option<u64> {
        // Within a row the action can only change at the next column-0
        // slot: a listen run in row 0 stays on one channel (the receive
        // channel is per grid pass), and an off run stays off. A transmit
        // cell is always followed by a different action because column 0
        // is a single cell.
        let s = now.wrapping_add(self.phase);
        let col = s % self.cols;
        match self.action_at(now) {
            SlotAction::Transmit { .. } => Some(now.saturating_add(1)),
            _ => Some(now.saturating_add(self.cols - col)),
        }
    }

    fn phase(&self) -> Option<ProtocolPhase> {
        Some(ProtocolPhase::Stage(self.grid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_util::Xoshiro256StarStar;

    fn proto(rows: u64, cols: u64, id: u32) -> NihaoDiscovery {
        NihaoDiscovery::new(ChannelSet::full(5), rows, cols, id).expect("valid")
    }

    #[test]
    fn grid_shape_governs_the_action_pattern() {
        let mut p = proto(4, 8, 0);
        let mut rng = Xoshiro256StarStar::from_seed_u64(1);
        for s in 0..(4 * 8 * 20) {
            let action = p.on_slot(s, &mut rng);
            let col = s % 8;
            let row = (s / 8) % 4;
            match action {
                SlotAction::Transmit { .. } => assert_eq!(col, 0, "slot {s}"),
                SlotAction::Listen { .. } => {
                    assert!(col != 0 && row == 0, "slot {s}")
                }
                SlotAction::Quiet => assert!(col != 0 && row != 0, "slot {s}"),
            }
        }
    }

    #[test]
    fn listen_channel_is_constant_within_a_grid_pass() {
        let mut p = proto(4, 8, 0);
        let mut rng = Xoshiro256StarStar::from_seed_u64(1);
        for pass in 0..10 {
            let mut seen = None;
            for s in pass * 32..(pass + 1) * 32 {
                if let SlotAction::Listen { channel } = p.on_slot(s, &mut rng) {
                    if let Some(prev) = seen {
                        assert_eq!(prev, channel, "pass {pass}");
                    }
                    seen = Some(channel);
                }
            }
            assert!(seen.is_some(), "row 0 of pass {pass} must listen");
        }
    }

    #[test]
    fn schedule_never_leaves_the_available_set() {
        let available: ChannelSet = [0u16, 3, 4, 7].into_iter().collect();
        let mut p = NihaoDiscovery::new(available.clone(), 8, 16, 5).unwrap();
        let mut rng = Xoshiro256StarStar::from_seed_u64(1);
        for s in 0..5000 {
            match p.on_slot(s, &mut rng) {
                SlotAction::Transmit { channel } | SlotAction::Listen { channel } => {
                    assert!(available.contains(channel), "slot {s}");
                }
                SlotAction::Quiet => {}
            }
        }
    }

    #[test]
    fn bound_is_exact_first_change() {
        for (rows, cols) in [(2u64, 16u64), (8, 16), (12, 16), (1, 4)] {
            let p = proto(rows, cols, 7);
            for now in 0..2000 {
                let bound = p.next_transmission_bound(now).expect("draw-free");
                assert!(bound > now);
                let here = p.action_at(now);
                for t in now + 1..bound {
                    assert_eq!(p.action_at(t), here, "window must repeat at {t}");
                }
                assert_ne!(p.action_at(bound), here, "bound must be tight at {now}");
            }
        }
    }

    #[test]
    fn duty_matches_measured_on_fraction() {
        let mut p = proto(8, 16, 0);
        let mut rng = Xoshiro256StarStar::from_seed_u64(1);
        let horizon = 8 * 16 * 100;
        let on = (0..horizon)
            .filter(|&s| !matches!(p.on_slot(s, &mut rng), SlotAction::Quiet))
            .count();
        let measured = on as f64 / horizon as f64;
        assert!((measured - p.duty()).abs() < 1e-9);
    }

    #[test]
    fn empty_channel_set_is_rejected() {
        let err = NihaoDiscovery::new(ChannelSet::new(), 4, 8, 0);
        assert!(matches!(err, Err(ProtocolError::EmptyChannelSet)));
    }
}
