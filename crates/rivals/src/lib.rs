//! Rival neighbor-discovery protocols and the protocol catalog.
//!
//! The source paper's pitch is comparative: randomized gossip discovery
//! versus the deterministic sequence schedules of the heterogeneous-ND
//! literature. This crate supplies the other side of that comparison —
//! [`McDisDiscovery`] (prime-pair hopping, after arXiv:1307.3630) and
//! [`NihaoDiscovery`] (talk-more-listen-less grids, after
//! arXiv:1411.5415) — behind the same [`SyncProtocol`] trait the paper's
//! algorithms use, so every harness (slotted engine, event engine,
//! faults, churn, campaigns, the distributed service) runs them
//! unchanged.
//!
//! [`catalog`] maps stable string names to per-network stack builders;
//! the campaign `protocol` axis, `simulate --protocol`, and the
//! conformance suite all key off it.
//!
//! # Examples
//!
//! ```
//! use mmhew_rivals::catalog;
//! use mmhew_spectrum::AvailabilityModel;
//! use mmhew_topology::NetworkBuilder;
//! use mmhew_util::SeedTree;
//!
//! let net = NetworkBuilder::complete(4)
//!     .universe(5)
//!     .build(SeedTree::new(3))?;
//! let kind = catalog::by_name("mc-dis").expect("registered");
//! let stack = kind.build_sync(&net, 3)?;
//! assert_eq!(stack.len(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`SyncProtocol`]: mmhew_engine::SyncProtocol

pub mod catalog;
pub mod mcdis;
pub mod nihao;

pub use catalog::{Family, ProtocolKind};
pub use mcdis::{DutyClass, McDisDiscovery, DUTY_CLASSES};
pub use nihao::NihaoDiscovery;
