//! A name-keyed shelf of every runnable discovery protocol — the paper's
//! algorithms, the strawman baselines, and the rival sequence schedules —
//! so campaigns, the `simulate` CLI, and the conformance suite can select
//! protocols by stable string name.
//!
//! Names are wire-stable: they appear in campaign specs (the categorical
//! `protocol` axis), in manifests, and in CI scripts. Add entries, never
//! rename them.

use crate::mcdis::{DutyClass, McDisDiscovery, DUTY_CLASSES};
use crate::nihao::NihaoDiscovery;
use mmhew_discovery::baseline::{BirthdayProtocol, PerChannelBirthday};
use mmhew_discovery::{
    AdaptiveDiscovery, ProtocolError, StagedDiscovery, SyncParams, UniformDiscovery,
};
use mmhew_engine::SyncProtocol;
use mmhew_topology::{Network, NodeId};

/// Which engine family a protocol runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Slot-synchronous ([`SyncProtocol`]); runs on the slotted and event
    /// executors.
    Sync,
    /// Frame-asynchronous (`AsyncProtocol`).
    Async,
}

impl Family {
    /// The engine label used in campaign specs and error messages.
    pub fn label(self) -> &'static str {
        match self {
            Family::Sync => "sync",
            Family::Async => "async",
        }
    }
}

type SyncBuildFn = fn(&Network, u64) -> Result<Vec<Box<dyn SyncProtocol>>, ProtocolError>;

/// One registered protocol: a stable name plus a builder that produces a
/// full per-node stack for a network.
pub struct ProtocolKind {
    /// Stable wire name (`"mc-dis"`, `"staged"`, ...).
    pub name: &'static str,
    /// Engine family the builder targets.
    pub family: Family,
    /// One-line description for CLI listings and docs.
    pub summary: &'static str,
    sync_build: Option<SyncBuildFn>,
}

impl ProtocolKind {
    /// Builds one protocol instance per node of `network`, in node order.
    /// `delta_est` feeds protocols that take a degree estimate; sequence
    /// protocols ignore it.
    ///
    /// # Errors
    ///
    /// Propagates [`ProtocolError`] from the underlying constructors
    /// (empty channel set, zero degree estimate).
    ///
    /// # Panics
    ///
    /// Panics if called on an [`Family::Async`] entry; check `family`
    /// first.
    pub fn build_sync(
        &self,
        network: &Network,
        delta_est: u64,
    ) -> Result<Vec<Box<dyn SyncProtocol>>, ProtocolError> {
        let build = self
            .sync_build
            .expect("build_sync on an async protocol kind; check `family` first");
        build(network, delta_est)
    }
}

/// Builds per-node boxed stacks with one closure per node.
fn per_node<F>(network: &Network, mut f: F) -> Result<Vec<Box<dyn SyncProtocol>>, ProtocolError>
where
    F: FnMut(&Network, u32) -> Result<Box<dyn SyncProtocol>, ProtocolError>,
{
    (0..network.node_count() as u32)
        .map(|i| f(network, i))
        .collect()
}

fn build_staged(
    network: &Network,
    delta_est: u64,
) -> Result<Vec<Box<dyn SyncProtocol>>, ProtocolError> {
    let params = SyncParams::new(delta_est)?;
    per_node(network, |net, i| {
        let available = net.available(NodeId::new(i)).to_owned();
        Ok(Box::new(StagedDiscovery::new(available, params)?) as Box<dyn SyncProtocol>)
    })
}

fn build_adaptive(
    network: &Network,
    _delta_est: u64,
) -> Result<Vec<Box<dyn SyncProtocol>>, ProtocolError> {
    per_node(network, |net, i| {
        let available = net.available(NodeId::new(i)).to_owned();
        Ok(Box::new(AdaptiveDiscovery::new(available)?) as Box<dyn SyncProtocol>)
    })
}

fn build_uniform(
    network: &Network,
    delta_est: u64,
) -> Result<Vec<Box<dyn SyncProtocol>>, ProtocolError> {
    let params = SyncParams::new(delta_est)?;
    per_node(network, |net, i| {
        let available = net.available(NodeId::new(i)).to_owned();
        Ok(Box::new(UniformDiscovery::new(available, params)?) as Box<dyn SyncProtocol>)
    })
}

fn build_per_channel(
    network: &Network,
    _delta_est: u64,
) -> Result<Vec<Box<dyn SyncProtocol>>, ProtocolError> {
    per_node(network, |net, i| {
        let available = net.available(NodeId::new(i)).to_owned();
        Ok(Box::new(PerChannelBirthday::new(
            net.universe_size(),
            0.5,
            available,
        )?) as Box<dyn SyncProtocol>)
    })
}

fn build_birthday(
    network: &Network,
    _delta_est: u64,
) -> Result<Vec<Box<dyn SyncProtocol>>, ProtocolError> {
    per_node(network, |net, i| {
        let available = net.available(NodeId::new(i)).to_owned();
        // The single-channel strawman: each node runs birthday on its
        // lowest available channel, so it only ever discovers neighbors
        // sharing that channel — the weakness E11 quantifies.
        let channel = available
            .iter()
            .next()
            .ok_or(ProtocolError::EmptyChannelSet)?;
        Ok(Box::new(BirthdayProtocol::new(channel, 0.5, available)?) as Box<dyn SyncProtocol>)
    })
}

fn build_mc_dis(
    network: &Network,
    _delta_est: u64,
) -> Result<Vec<Box<dyn SyncProtocol>>, ProtocolError> {
    per_node(network, |net, i| {
        let available = net.available(NodeId::new(i)).to_owned();
        let class = DUTY_CLASSES[i as usize % DUTY_CLASSES.len()];
        Ok(Box::new(McDisDiscovery::new(available, class, i)?) as Box<dyn SyncProtocol>)
    })
}

/// All S-Nihao nodes share one grid; the rows class satisfies
/// `rows ≢ 1 (mod m)` for the prime channel-set sizes 3 and 5 (see
/// [`crate::nihao`] module docs).
const S_NIHAO_ROWS: u64 = 8;
/// A-Nihao assigns heterogeneous rows classes by node index (duty
/// ≈ 0.53 / 0.18 / 0.14 with 16 columns).
const A_NIHAO_ROWS: [u64; 3] = [2, 8, 12];
const NIHAO_COLS: u64 = 16;

fn build_s_nihao(
    network: &Network,
    _delta_est: u64,
) -> Result<Vec<Box<dyn SyncProtocol>>, ProtocolError> {
    per_node(network, |net, i| {
        let available = net.available(NodeId::new(i)).to_owned();
        Ok(
            Box::new(NihaoDiscovery::new(available, S_NIHAO_ROWS, NIHAO_COLS, i)?)
                as Box<dyn SyncProtocol>,
        )
    })
}

fn build_a_nihao(
    network: &Network,
    _delta_est: u64,
) -> Result<Vec<Box<dyn SyncProtocol>>, ProtocolError> {
    per_node(network, |net, i| {
        let available = net.available(NodeId::new(i)).to_owned();
        let rows = A_NIHAO_ROWS[i as usize % A_NIHAO_ROWS.len()];
        Ok(Box::new(NihaoDiscovery::new(available, rows, NIHAO_COLS, i)?) as Box<dyn SyncProtocol>)
    })
}

static CATALOG: &[ProtocolKind] = &[
    ProtocolKind {
        name: "staged",
        family: Family::Sync,
        summary: "Algorithm 1: staged birthday with known degree estimate",
        sync_build: Some(build_staged),
    },
    ProtocolKind {
        name: "adaptive",
        family: Family::Sync,
        summary: "Algorithm 2: adaptive estimate growth, no degree knowledge",
        sync_build: Some(build_adaptive),
    },
    ProtocolKind {
        name: "uniform",
        family: Family::Sync,
        summary: "Algorithm 3: uniform slot probabilities, variable starts",
        sync_build: Some(build_uniform),
    },
    ProtocolKind {
        name: "baseline",
        family: Family::Sync,
        summary: "per-universal-channel birthday strawman (§I)",
        sync_build: Some(build_per_channel),
    },
    ProtocolKind {
        name: "birthday",
        family: Family::Sync,
        summary: "single-channel birthday on each node's lowest channel",
        sync_build: Some(build_birthday),
    },
    ProtocolKind {
        name: "mc-dis",
        family: Family::Sync,
        summary: "Mc-Dis deterministic prime-pair hopping (arXiv:1307.3630)",
        sync_build: Some(build_mc_dis),
    },
    ProtocolKind {
        name: "s-nihao",
        family: Family::Sync,
        summary: "symmetric Nihao grid schedule (arXiv:1411.5415)",
        sync_build: Some(build_s_nihao),
    },
    ProtocolKind {
        name: "a-nihao",
        family: Family::Sync,
        summary: "asymmetric Nihao with heterogeneous duty classes",
        sync_build: Some(build_a_nihao),
    },
    ProtocolKind {
        name: "frame-based",
        family: Family::Async,
        summary: "Algorithm 4: frame-based discovery under clock drift",
        sync_build: None,
    },
];

/// Every registered protocol, in catalog order.
pub fn all() -> &'static [ProtocolKind] {
    CATALOG
}

/// Looks a protocol up by its stable wire name.
pub fn by_name(name: &str) -> Option<&'static ProtocolKind> {
    CATALOG.iter().find(|k| k.name == name)
}

/// The names registered for one engine family, in catalog order.
pub fn names(family: Family) -> Vec<&'static str> {
    CATALOG
        .iter()
        .filter(|k| k.family == family)
        .map(|k| k.name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_spectrum::AvailabilityModel;
    use mmhew_topology::NetworkBuilder;
    use mmhew_util::SeedTree;

    fn net() -> Network {
        NetworkBuilder::complete(4)
            .universe(6)
            .availability(AvailabilityModel::UniformSubset { size: 3 })
            .build(SeedTree::new(9))
            .expect("valid network")
    }

    #[test]
    fn names_are_unique_and_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for kind in all() {
            assert!(seen.insert(kind.name), "duplicate {}", kind.name);
        }
        for name in [
            "staged",
            "adaptive",
            "uniform",
            "baseline",
            "birthday",
            "mc-dis",
            "s-nihao",
            "a-nihao",
            "frame-based",
        ] {
            assert!(by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn sync_builders_produce_one_stack_entry_per_node() {
        let network = net();
        for kind in all().iter().filter(|k| k.family == Family::Sync) {
            let stack = kind.build_sync(&network, 4).expect(kind.name);
            assert_eq!(stack.len(), network.node_count(), "{}", kind.name);
        }
    }

    #[test]
    fn family_split_matches_engine_labels() {
        assert_eq!(names(Family::Async), vec!["frame-based"]);
        assert!(names(Family::Sync).contains(&"mc-dis"));
        assert_eq!(Family::Sync.label(), "sync");
    }

    #[test]
    fn unknown_names_miss() {
        assert!(by_name("carrier-pigeon").is_none());
    }
}
