//! Mc-Dis: a deterministic prime-pair channel-hopping discovery schedule
//! (after arXiv:1307.3630, which lifts Disco's dual-prime wakeup pattern
//! to multi-channel neighbor discovery).
//!
//! Each node owns a [`DutyClass`] — a pair of coprime primes `(p_t, p_l)`.
//! Writing `s' = s + φ` for the node's phase-shifted slot counter
//! (`φ` = node id, so co-located nodes are offset), the schedule is
//!
//! * `p_t | s'` → **transmit** on `A[(s'/p_t) mod |A|]`,
//! * else `p_l | s'` → **listen** on `A[(s'/p_l) mod |A|]`,
//! * else the transceiver stays off,
//!
//! where `A` is the node's available channel set in ascending order. The
//! duty cycle is exactly `1/p_t + 1/p_l` minus the overlap term, so
//! heterogeneous energy budgets map to different prime pairs while the
//! Chinese Remainder Theorem keeps every transmit/listen pair of coprime
//! primes co-active infinitely often regardless of phases.
//!
//! **Coverage caveat** (worked through in DESIGN.md §16): co-activity does
//! not imply *channel* alignment. Across co-active slots the transmit and
//! listen channel indices advance by fixed strides, so the pair of indices
//! walks a one-dimensional line in `Z_|A| × Z_|A|`. On full availability
//! with a prime universe size the stride engineering of [`DUTY_CLASSES`]
//! makes that line hit the diagonal, and discovery completes
//! deterministically. Under heterogeneous channel subsets the line may
//! permanently miss every common channel — the run then exhausts its
//! budget and counts as a failure. That is not an implementation bug: it
//! is the worst-case mode of deterministic sequences that the source
//! paper's randomized algorithms are designed to rule out, and E27/E28
//! report it as such.
//!
//! The schedule is draw-free, so [`SyncProtocol::next_transmission_bound`]
//! returns an exact bound and the event engine can skip the off slots.

use mmhew_discovery::ProtocolError;
use mmhew_engine::{NeighborTable, SyncProtocol};
use mmhew_obs::ProtocolPhase;
use mmhew_radio::{Beacon, SlotAction};
use mmhew_spectrum::{ChannelId, ChannelSet};
use mmhew_util::Xoshiro256StarStar;

/// A transmit/listen prime pair; the node's energy budget in schedule form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DutyClass {
    /// Prime period of transmit slots (`p_t`); duty share `1/p_t`.
    pub transmit_prime: u64,
    /// Prime period of listen slots (`p_l`); duty share `1/p_l`.
    pub listen_prime: u64,
}

impl DutyClass {
    /// A new class from two distinct primes `>= 2`.
    pub const fn new(transmit_prime: u64, listen_prime: u64) -> Self {
        Self {
            transmit_prime,
            listen_prime,
        }
    }

    /// Fraction of slots in which the transceiver is on.
    pub fn duty(&self) -> f64 {
        let t = self.transmit_prime as f64;
        let l = self.listen_prime as f64;
        // Transmit wins slots divisible by both primes, hence the overlap
        // term is subtracted from the listen share only.
        1.0 / t + 1.0 / l - 1.0 / (t * l)
    }
}

/// The heterogeneous duty classes used by the `mc-dis` catalog entry,
/// densest first (duty ≈ 0.18, 0.066, 0.045).
///
/// The primes are chosen so that for channel-set sizes 3 and 5 (the prime
/// sizes our experiments sweep) every transmit stride differs from every
/// listen stride and neither is zero modulo the size: transmit primes are
/// `≡ 1 (mod 3)` and `≡ {1,2} (mod 5)`, listen primes `≡ 2 (mod 3)` and
/// `≡ {3,4} (mod 5)`. On full availability that makes the index line hit
/// the channel diagonal for every ordered node pair (see module docs).
pub const DUTY_CLASSES: [DutyClass; 3] = [
    DutyClass::new(7, 23),
    DutyClass::new(31, 29),
    DutyClass::new(37, 53),
];

/// Per-node state of the Mc-Dis schedule.
///
/// # Examples
///
/// ```
/// use mmhew_rivals::{DutyClass, McDisDiscovery};
/// use mmhew_spectrum::ChannelSet;
///
/// let proto = McDisDiscovery::new(ChannelSet::full(5), DutyClass::new(7, 23), 0)?;
/// assert!(proto.duty() < 0.19);
/// # Ok::<(), mmhew_discovery::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct McDisDiscovery {
    channels: Vec<ChannelId>,
    available: ChannelSet,
    class: DutyClass,
    phase: u64,
    stage: u64,
    table: NeighborTable,
}

impl McDisDiscovery {
    /// Creates the schedule for one node. `node_id` becomes the phase
    /// shift `φ`, so distinct nodes of the same class interleave.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::EmptyChannelSet`] if `available` is empty.
    ///
    /// # Panics
    ///
    /// Panics if the class primes are `< 2` or equal.
    pub fn new(
        available: ChannelSet,
        class: DutyClass,
        node_id: u32,
    ) -> Result<Self, ProtocolError> {
        assert!(
            class.transmit_prime >= 2 && class.listen_prime >= 2,
            "duty-class primes must be >= 2"
        );
        assert_ne!(
            class.transmit_prime, class.listen_prime,
            "duty-class primes must be distinct"
        );
        if available.is_empty() {
            return Err(ProtocolError::EmptyChannelSet);
        }
        let channels: Vec<ChannelId> = available.iter().collect();
        Ok(Self {
            channels,
            available,
            class,
            phase: u64::from(node_id),
            stage: 0,
            table: NeighborTable::new(),
        })
    }

    /// The node's duty cycle (exact, including the transmit/listen overlap).
    pub fn duty(&self) -> f64 {
        self.class.duty()
    }

    /// The action scheduled for `active_slot` — a pure function of the
    /// slot index, which is what makes the bound hook exact.
    fn action_at(&self, active_slot: u64) -> SlotAction {
        let s = active_slot.wrapping_add(self.phase);
        let m = self.channels.len() as u64;
        if s % self.class.transmit_prime == 0 {
            let idx = (s / self.class.transmit_prime) % m;
            SlotAction::Transmit {
                channel: self.channels[idx as usize],
            }
        } else if s % self.class.listen_prime == 0 {
            let idx = (s / self.class.listen_prime) % m;
            SlotAction::Listen {
                channel: self.channels[idx as usize],
            }
        } else {
            SlotAction::Quiet
        }
    }
}

impl SyncProtocol for McDisDiscovery {
    fn on_slot(&mut self, active_slot: u64, _rng: &mut Xoshiro256StarStar) -> SlotAction {
        self.stage = active_slot.wrapping_add(self.phase) / self.class.transmit_prime;
        self.action_at(active_slot)
    }

    fn on_beacon(&mut self, beacon: &Beacon, _channel: ChannelId) {
        self.table.record(
            beacon.sender(),
            beacon.available().intersection(&self.available),
        );
    }

    fn table(&self) -> &NeighborTable {
        &self.table
    }

    fn next_transmission_bound(&self, now: u64) -> Option<u64> {
        // An on slot is never followed by another on slot of the same kind
        // and channel (a prime >= 2 divides at most one of two consecutive
        // counters), so the repeat window past a transmit or listen slot is
        // empty. From an off slot the schedule stays off until the next
        // multiple of either prime.
        match self.action_at(now) {
            SlotAction::Quiet => {
                let s = now.wrapping_add(self.phase);
                let until = |p: u64| p - s % p;
                let gap = until(self.class.transmit_prime).min(until(self.class.listen_prime));
                Some(now.saturating_add(gap))
            }
            _ => Some(now.saturating_add(1)),
        }
    }

    fn phase(&self) -> Option<ProtocolPhase> {
        Some(ProtocolPhase::Stage(self.stage))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_util::Xoshiro256StarStar;

    fn proto(class: DutyClass, id: u32) -> McDisDiscovery {
        McDisDiscovery::new(ChannelSet::full(5), class, id).expect("valid")
    }

    #[test]
    fn transmits_exactly_on_transmit_prime_multiples() {
        let mut p = proto(DutyClass::new(7, 23), 0);
        let mut rng = Xoshiro256StarStar::from_seed_u64(1);
        for s in 0..500 {
            let action = p.on_slot(s, &mut rng);
            let transmits = matches!(action, SlotAction::Transmit { .. });
            assert_eq!(transmits, s % 7 == 0, "slot {s}");
        }
    }

    #[test]
    fn listens_on_listen_prime_multiples_unless_transmitting() {
        let mut p = proto(DutyClass::new(7, 23), 0);
        let mut rng = Xoshiro256StarStar::from_seed_u64(1);
        for s in 0..2000 {
            let action = p.on_slot(s, &mut rng);
            let listens = matches!(action, SlotAction::Listen { .. });
            assert_eq!(listens, s % 23 == 0 && s % 7 != 0, "slot {s}");
        }
    }

    #[test]
    fn phase_shift_offsets_the_schedule() {
        let mut a = proto(DutyClass::new(7, 23), 0);
        let mut b = proto(DutyClass::new(7, 23), 3);
        let mut rng = Xoshiro256StarStar::from_seed_u64(1);
        for s in 0..300 {
            assert_eq!(a.on_slot(s + 3, &mut rng), b.on_slot(s, &mut rng));
        }
    }

    #[test]
    fn schedule_never_leaves_the_available_set() {
        let available: ChannelSet = [2u16, 5, 9].into_iter().collect();
        let mut p = McDisDiscovery::new(available.clone(), DutyClass::new(31, 29), 4).unwrap();
        let mut rng = Xoshiro256StarStar::from_seed_u64(1);
        for s in 0..5000 {
            match p.on_slot(s, &mut rng) {
                SlotAction::Transmit { channel } | SlotAction::Listen { channel } => {
                    assert!(available.contains(channel), "slot {s}");
                }
                SlotAction::Quiet => {}
            }
        }
    }

    #[test]
    fn bound_is_exact_first_change() {
        for class in DUTY_CLASSES {
            let p = proto(class, 11);
            for now in 0..1000 {
                let bound = p.next_transmission_bound(now).expect("draw-free");
                assert!(bound > now, "window must be non-empty for a pure schedule");
                let here = p.action_at(now);
                for t in now + 1..bound {
                    assert_eq!(p.action_at(t), here, "window must repeat at {t}");
                }
                assert_ne!(p.action_at(bound), here, "bound must be tight at {now}");
            }
        }
    }

    #[test]
    fn duty_matches_measured_on_fraction() {
        let class = DutyClass::new(7, 23);
        let mut p = proto(class, 0);
        let mut rng = Xoshiro256StarStar::from_seed_u64(1);
        let horizon = 7 * 23 * 100;
        let on = (0..horizon)
            .filter(|&s| !matches!(p.on_slot(s, &mut rng), SlotAction::Quiet))
            .count();
        let measured = on as f64 / horizon as f64;
        assert!((measured - class.duty()).abs() < 1e-9);
    }

    #[test]
    fn empty_channel_set_is_rejected() {
        let err = McDisDiscovery::new(ChannelSet::new(), DutyClass::new(7, 23), 0);
        assert!(matches!(err, Err(ProtocolError::EmptyChannelSet)));
    }
}
