//! Trait-conformance suite run against every protocol registered in the
//! catalog — the paper's Algorithms 1–3, both birthday baselines, and
//! the rival families — plus Algorithm 4 for the async entry.
//!
//! Three contracts are checked on randomized networks:
//!
//! 1. **Channel discipline** — a protocol only ever transmits or listens
//!    on channels in its own available set.
//! 2. **Termination monotonicity** — once `is_terminated` reports true
//!    it never reverts (engines stop scheduling terminated nodes, so a
//!    flip-flop would deadlock discovery).
//! 3. **`next_transmission_bound` honesty** — checked two ways: directly
//!    (inside a declared `[now, b)` window the protocol repeats its last
//!    action without touching the RNG) and end-to-end, by replaying the
//!    identical stack through the slot-by-slot oracle and the
//!    event-driven executor that trusts the hook, demanding
//!    byte-identical outcomes.

use mmhew_discovery::{Engine, Scenario};
use mmhew_engine::{SyncProtocol, SyncRunConfig};
use mmhew_radio::{FrameAction, SlotAction};
use mmhew_rivals::{catalog, Family};
use mmhew_spectrum::AvailabilityModel;
use mmhew_topology::{Network, NodeId};
use mmhew_util::{SeedTree, Xoshiro256StarStar};
use proptest::prelude::*;

/// Slots each protocol instance is driven for in the direct checks.
const DRIVE_SLOTS: u64 = 400;
/// Slot budget of the lockstep replay (big enough for the paper's
/// algorithms to complete; rivals that miss it exhaust it identically on
/// both executors, which is still a valid equality check).
const REPLAY_BUDGET: u64 = 8_000;

fn build_network(n: usize, universe: u16, subset: u16, seed: u64) -> Network {
    let availability = if subset == 0 {
        AvailabilityModel::Full
    } else {
        AvailabilityModel::UniformSubset { size: subset }
    };
    mmhew_topology::NetworkBuilder::complete(n)
        .universe(universe)
        .availability(availability)
        .build(SeedTree::new(seed).branch("net"))
        .expect("complete networks build")
}

/// (nodes, universe, subset size with 0 = full availability, seed).
fn net_params() -> impl Strategy<Value = (usize, u16, u16, u64)> {
    (2usize..=6, 2u16..=6).prop_flat_map(|(n, u)| (Just(n), Just(u), 0u16..=u, any::<u64>()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn actions_stay_on_available_channels_and_termination_is_monotone(
        (n, universe, subset, seed) in net_params(),
    ) {
        let net = build_network(n, universe, subset, seed);
        let delta_est = net.max_degree().max(1) as u64;
        for name in catalog::names(Family::Sync) {
            let kind = catalog::by_name(name).expect("listed name resolves");
            let stack = kind
                .build_sync(&net, delta_est)
                .expect("non-empty channel sets");
            prop_assert_eq!(stack.len(), net.node_count());
            for (i, mut protocol) in stack.into_iter().enumerate() {
                let available = net.available(NodeId::new(i as u32));
                let mut rng = Xoshiro256StarStar::from_seed_u64(seed ^ i as u64);
                let mut terminated = false;
                for slot in 0..DRIVE_SLOTS {
                    match protocol.on_slot(slot, &mut rng) {
                        SlotAction::Transmit { channel } | SlotAction::Listen { channel } => {
                            prop_assert!(
                                available.contains(channel),
                                "{name} node {i} used channel {channel:?} outside its set"
                            );
                        }
                        SlotAction::Quiet => {}
                    }
                    let t = protocol.is_terminated();
                    prop_assert!(
                        t || !terminated,
                        "{name} node {i} un-terminated at slot {slot}"
                    );
                    terminated = t;
                }
            }
        }
    }

    #[test]
    fn declared_bound_windows_repeat_the_last_action_without_rng_draws(
        (n, universe, subset, seed) in net_params(),
    ) {
        let net = build_network(n, universe, subset, seed);
        let delta_est = net.max_degree().max(1) as u64;
        for name in catalog::names(Family::Sync) {
            let kind = catalog::by_name(name).expect("listed name resolves");
            let mut protocol = kind
                .build_sync(&net, delta_est)
                .expect("non-empty channel sets")
                .remove(0);
            let mut rng = Xoshiro256StarStar::from_seed_u64(seed);
            let mut last = protocol.on_slot(0, &mut rng);
            let mut slot = 1;
            while slot < DRIVE_SLOTS {
                match protocol.next_transmission_bound(slot) {
                    Some(bound) => {
                        prop_assert!(
                            bound >= slot,
                            "{name} declared past bound {bound} at slot {slot}"
                        );
                        for s in slot..bound.min(DRIVE_SLOTS) {
                            let before = rng.clone();
                            let action = protocol.on_slot(s, &mut rng);
                            prop_assert_eq!(
                                action, last,
                                "{} broke its repeat window at slot {}", name, s
                            );
                            prop_assert_eq!(
                                &rng, &before,
                                "{} drew randomness inside its window at slot {}", name, s
                            );
                        }
                        if bound >= DRIVE_SLOTS {
                            break;
                        }
                        last = protocol.on_slot(bound, &mut rng);
                        slot = bound + 1;
                    }
                    None => {
                        last = protocol.on_slot(slot, &mut rng);
                        slot += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn lockstep_replay_matches_the_slotted_oracle(
        (n, universe, subset, seed) in net_params(),
    ) {
        let net = build_network(n, universe, subset, seed);
        let delta_est = net.max_degree().max(1) as u64;
        let run_seed = SeedTree::new(seed).branch("run");
        for name in catalog::names(Family::Sync) {
            let kind = catalog::by_name(name).expect("listed name resolves");
            let run = |engine: Engine| {
                let stack = kind
                    .build_sync(&net, delta_est)
                    .expect("non-empty channel sets");
                Scenario::sync_stack(&net, stack)
                    .engine(engine)
                    .config(SyncRunConfig::until_complete(REPLAY_BUDGET))
                    .run(run_seed.clone())
                    .expect("scenario runs")
            };
            let slotted = run(Engine::Slotted);
            let event = run(Engine::Event);
            prop_assert_eq!(slotted.completed(), event.completed(), "{}", name);
            prop_assert_eq!(
                slotted.slots_to_complete(),
                event.slots_to_complete(),
                "{}", name
            );
            prop_assert_eq!(
                slotted.slots_executed(),
                event.slots_executed(),
                "{}", name
            );
            prop_assert_eq!(slotted.deliveries(), event.deliveries(), "{}", name);
            prop_assert_eq!(slotted.collisions(), event.collisions(), "{}", name);
            prop_assert_eq!(slotted.tables(), event.tables(), "{}", name);
        }
    }

    #[test]
    fn async_catalog_entry_honors_the_frame_contract(
        (n, universe, subset, seed) in net_params(),
    ) {
        // The one Async entry (Algorithm 4) has no sync builder; drive
        // the underlying frame protocol directly under the same channel
        // and monotonicity contracts.
        let net = build_network(n, universe, subset, seed);
        let delta_est = net.max_degree().max(1) as u64;
        let params = mmhew_discovery::AsyncParams::new(delta_est).expect("positive");
        for i in 0..net.node_count() {
            let available = net.available(NodeId::new(i as u32));
            let mut protocol =
                mmhew_discovery::AsyncFrameDiscovery::new(available.to_owned(), params)
                    .expect("non-empty channel sets");
            let mut rng = Xoshiro256StarStar::from_seed_u64(seed ^ i as u64);
            let mut terminated = false;
            for frame in 0..200 {
                use mmhew_engine::AsyncProtocol;
                match protocol.on_frame(frame, &mut rng) {
                    FrameAction::Transmit { channel } | FrameAction::Listen { channel } => {
                        prop_assert!(
                            available.contains(channel),
                            "frame-based node {i} used channel {channel:?} outside its set"
                        );
                    }
                }
                let t = protocol.is_terminated();
                prop_assert!(t || !terminated, "frame-based node {i} un-terminated");
                terminated = t;
            }
        }
    }
}

/// Non-random sanity: every registered sync protocol makes discovery
/// progress on an easy network (the conformance contracts above would be
/// vacuous for a protocol that never transmits at all).
#[test]
fn every_sync_protocol_discovers_on_a_complete_full_availability_network() {
    let net = build_network(4, 5, 0, 99);
    let delta_est = net.max_degree().max(1) as u64;
    for name in catalog::names(Family::Sync) {
        let kind = catalog::by_name(name).expect("listed name resolves");
        let stack = kind
            .build_sync(&net, delta_est)
            .expect("non-empty channel sets");
        let out = Scenario::sync_stack(&net, stack)
            .config(SyncRunConfig::until_complete(200_000))
            .run(SeedTree::new(7).branch("run"))
            .expect("scenario runs");
        assert!(
            out.deliveries() > 0,
            "{name} delivered no beacons at all in 200k slots"
        );
        assert!(
            out.completed(),
            "{name} did not complete on the easy network"
        );
    }
}
