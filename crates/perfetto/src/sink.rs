//! Live tee: an [`EventSink`] that feeds the converter during a run.

use std::io::{self, Write};
use std::path::{Path, PathBuf};

use mmhew_obs::{EventSink, SimEvent};

use crate::convert::{ConvertOptions, PerfettoConverter};

/// An [`EventSink`] that converts events to a Perfetto trace as they are
/// emitted and writes the `.pftrace` file on [`PerfettoSink::finish`].
///
/// No I/O happens until `finish` (the protobuf `Trace` is assembled in
/// memory — sub-messages are length-prefixed, so it cannot be streamed
/// incrementally anyway), which also means attaching this sink can never
/// perturb a simulation: it only observes, exactly like
/// [`mmhew_obs::JsonlTraceSink`].
pub struct PerfettoSink {
    converter: PerfettoConverter,
    path: PathBuf,
}

impl PerfettoSink {
    /// A sink that will write `path` when finished.
    pub fn create<P: AsRef<Path>>(path: P) -> Self {
        Self::with_options(path, ConvertOptions::default())
    }

    /// A sink with explicit windowing/filtering options.
    pub fn with_options<P: AsRef<Path>>(path: P, opts: ConvertOptions) -> Self {
        Self {
            converter: PerfettoConverter::with_options(opts),
            path: path.as_ref().to_path_buf(),
        }
    }

    /// Events consumed so far.
    pub fn events(&self) -> u64 {
        self.converter.events_pushed()
    }

    /// Serializes the trace and writes the `.pftrace` file; returns the
    /// number of bytes written.
    pub fn finish(self) -> io::Result<u64> {
        let bytes = self.converter.finish();
        let mut file = std::fs::File::create(&self.path)?;
        file.write_all(&bytes)?;
        file.flush()?;
        Ok(bytes.len() as u64)
    }
}

impl EventSink for PerfettoSink {
    fn on_event(&mut self, event: &SimEvent) {
        self.converter.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_obs::Stamp;
    use mmhew_topology::NodeId;

    #[test]
    fn writes_a_file_on_finish() {
        let dir = std::env::temp_dir().join("mmhew-perfetto-sink-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.pftrace");
        let mut sink = PerfettoSink::create(&path);
        sink.on_event(&SimEvent::SlotStart { slot: 0 });
        sink.on_event(&SimEvent::Phase {
            at: Stamp::Slot(0),
            node: NodeId::new(0),
            phase: mmhew_obs::ProtocolPhase::Stage(1),
        });
        assert_eq!(sink.events(), 2);
        let bytes = sink.finish().unwrap();
        assert!(bytes > 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), bytes);
        std::fs::remove_file(&path).ok();
    }
}
