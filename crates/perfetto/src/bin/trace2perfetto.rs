//! Convert a `SimEvent` JSONL trace into a Perfetto `.pftrace` file.
//!
//! ```text
//! trace2perfetto --in trace.jsonl --out run.pftrace
//!     [--split-by-node] [--from-slot N] [--to-slot N]
//! ```
//!
//! `--from-slot`/`--to-slot` window the trace (slot indices for slotted
//! traces; the same values are interpreted as nanoseconds for
//! continuous-time traces). `--split-by-node` writes one file per node —
//! `run.node3.pftrace` next to `--out` — each containing that node's
//! tracks plus the network-wide ones (slot grid, jams, counters).
//!
//! The output is a pure function of the input: converting the same trace
//! twice yields byte-identical files. Open the result at
//! <https://ui.perfetto.dev>.

use std::fs::File;
use std::io::{BufReader, Write};
use std::path::{Path, PathBuf};
use std::process;

use mmhew_obs::{SimEvent, TraceReader};
use mmhew_perfetto::{ConvertOptions, PerfettoConverter};

const USAGE: &str = "usage: trace2perfetto --in trace.jsonl --out run.pftrace \
                     [--split-by-node] [--from-slot N] [--to-slot N]";

struct Cli {
    input: PathBuf,
    output: PathBuf,
    split_by_node: bool,
    from: Option<u64>,
    to: Option<u64>,
}

fn usage_error(message: &str) -> ! {
    eprintln!("trace2perfetto: {message}");
    eprintln!("{USAGE}");
    process::exit(2);
}

fn parse_cli() -> Cli {
    let mut input = None;
    let mut output = None;
    let mut split_by_node = false;
    let mut from = None;
    let mut to = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| usage_error(&format!("{flag} requires a value")))
        };
        match arg.as_str() {
            "--in" => input = Some(PathBuf::from(value("--in"))),
            "--out" => output = Some(PathBuf::from(value("--out"))),
            "--split-by-node" => split_by_node = true,
            "--from-slot" => {
                from =
                    Some(value("--from-slot").parse::<u64>().unwrap_or_else(|_| {
                        usage_error("--from-slot expects a non-negative integer")
                    }))
            }
            "--to-slot" => {
                to =
                    Some(value("--to-slot").parse::<u64>().unwrap_or_else(|_| {
                        usage_error("--to-slot expects a non-negative integer")
                    }))
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                process::exit(0);
            }
            other => usage_error(&format!("unknown flag {other:?}")),
        }
    }
    Cli {
        input: input.unwrap_or_else(|| usage_error("--in is required")),
        output: output.unwrap_or_else(|| usage_error("--out is required")),
        split_by_node,
        from,
        to,
    }
}

/// Every node id an event mentions (for `--split-by-node` discovery).
fn mentioned_nodes(event: &SimEvent, out: &mut Vec<u32>) {
    let mut push = |n: mmhew_topology::NodeId| {
        if !out.contains(&n.index()) {
            out.push(n.index());
        }
    };
    match event {
        SimEvent::FrameStart { node, .. }
        | SimEvent::FrameEnd { node, .. }
        | SimEvent::Action { node, .. }
        | SimEvent::Phase { node, .. }
        | SimEvent::NodeJoined { node, .. }
        | SimEvent::NodeLeft { node, .. }
        | SimEvent::ChannelChanged { node, .. }
        | SimEvent::NodeCrashed { node, .. }
        | SimEvent::NodeRecovered { node, .. } => push(*node),
        SimEvent::Delivery { from, to, .. }
        | SimEvent::LinkCovered { from, to, .. }
        | SimEvent::EdgeChanged { from, to, .. }
        | SimEvent::BeaconLost { from, to, .. }
        | SimEvent::CaptureDelivery { from, to, .. } => {
            push(*from);
            push(*to);
        }
        SimEvent::SlotStart { .. }
        | SimEvent::Channel { .. }
        | SimEvent::ImpairmentLoss { .. }
        | SimEvent::SlotJammed { .. }
        | SimEvent::GroundTruthChanged { .. } => {}
    }
}

fn write_trace(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut file = File::create(path)?;
    file.write_all(bytes)?;
    file.flush()
}

/// `run.pftrace` → `run.node3.pftrace`.
fn per_node_path(out: &Path, node: u32) -> PathBuf {
    let stem = out.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
    let ext = out
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("pftrace");
    out.with_file_name(format!("{stem}.node{node}.{ext}"))
}

fn main() {
    let cli = parse_cli();
    let file = File::open(&cli.input).unwrap_or_else(|e| {
        eprintln!("trace2perfetto: cannot open {}: {e}", cli.input.display());
        process::exit(1);
    });
    let reader = TraceReader::new(BufReader::new(file));

    let fail = |e: mmhew_obs::ReadError| -> ! {
        eprintln!("trace2perfetto: {}: {e}", cli.input.display());
        process::exit(1);
    };

    let window = ConvertOptions {
        from: cli.from,
        to: cli.to,
        node: None,
    };

    if cli.split_by_node {
        // Two passes would reread the file; instead buffer the decoded
        // events once and replay them into one converter per node.
        let mut events = Vec::new();
        let mut nodes = Vec::new();
        for item in reader {
            let event = item.unwrap_or_else(|e| fail(e));
            mentioned_nodes(&event, &mut nodes);
            events.push(event);
        }
        nodes.sort_unstable();
        if nodes.is_empty() {
            eprintln!("trace2perfetto: trace mentions no nodes; nothing to split");
            process::exit(1);
        }
        for node in nodes {
            let mut conv = PerfettoConverter::with_options(ConvertOptions {
                node: Some(node),
                ..window
            });
            for event in &events {
                conv.push(event);
            }
            let path = per_node_path(&cli.output, node);
            let bytes = conv.finish();
            write_trace(&path, &bytes).unwrap_or_else(|e| {
                eprintln!("trace2perfetto: cannot write {}: {e}", path.display());
                process::exit(1);
            });
            println!(
                "wrote {} ({} bytes, {} events)",
                path.display(),
                bytes.len(),
                events.len()
            );
        }
    } else {
        let mut conv = PerfettoConverter::with_options(window);
        for item in reader {
            conv.push(&item.unwrap_or_else(|e| fail(e)));
        }
        let pushed = conv.events_pushed();
        let bytes = conv.finish();
        write_trace(&cli.output, &bytes).unwrap_or_else(|e| {
            eprintln!("trace2perfetto: cannot write {}: {e}", cli.output.display());
            process::exit(1);
        });
        println!(
            "wrote {} ({} bytes from {} events)",
            cli.output.display(),
            bytes.len(),
            pushed
        );
    }
}
