//! A dependency-free protobuf *writer* — just enough wire format for
//! Perfetto's `Trace` message.
//!
//! The workspace's JSON story is deliberately hand-rolled
//! (`mmhew_obs::json` writes, `mmhew_obs::value` reads); this module is
//! the same philosophy applied to protobuf. Perfetto's trace format only
//! needs two wire types — varint (0) and length-delimited (2) — plus
//! 64-bit (1) for double counters, so a full protobuf stack would be
//! ~500 dependencies for three encoders.
//!
//! Field numbers for the Perfetto messages we emit live in [`fields`];
//! they are copied from the stable `perfetto/trace/*.proto` schema and
//! must never change (the golden-file test pins the encoded bytes).

/// Wire type 0: varint.
pub const WIRE_VARINT: u32 = 0;
/// Wire type 1: fixed 64-bit.
pub const WIRE_FIXED64: u32 = 1;
/// Wire type 2: length-delimited.
pub const WIRE_LEN: u32 = 2;

/// Appends `v` to `buf` as a base-128 varint (protobuf encoding).
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// An append-only protobuf message under construction.
#[derive(Debug, Default, Clone)]
pub struct ProtoBuf {
    bytes: Vec<u8>,
}

impl ProtoBuf {
    /// An empty message.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Encoded length so far.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    fn key(&mut self, field: u32, wire: u32) {
        put_varint(&mut self.bytes, ((field as u64) << 3) | wire as u64);
    }

    /// Writes a varint-typed field (uint32/uint64/int32/int64/enum).
    pub fn varint(&mut self, field: u32, v: u64) {
        self.key(field, WIRE_VARINT);
        put_varint(&mut self.bytes, v);
    }

    /// Writes a `double` field (fixed 64-bit, little-endian IEEE 754).
    pub fn double(&mut self, field: u32, v: f64) {
        self.key(field, WIRE_FIXED64);
        self.bytes.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Writes a `string` field.
    pub fn string(&mut self, field: u32, s: &str) {
        self.bytes_field(field, s.as_bytes());
    }

    /// Writes a length-delimited field from raw bytes (string, bytes, or
    /// an already-encoded sub-message).
    pub fn bytes_field(&mut self, field: u32, b: &[u8]) {
        self.key(field, WIRE_LEN);
        put_varint(&mut self.bytes, b.len() as u64);
        self.bytes.extend_from_slice(b);
    }

    /// Writes an embedded message field, built by `f` into a fresh
    /// buffer (protobuf length-prefixes sub-messages, so the child must
    /// be complete before the parent can frame it).
    pub fn message(&mut self, field: u32, f: impl FnOnce(&mut ProtoBuf)) {
        let mut child = ProtoBuf::new();
        f(&mut child);
        self.bytes_field(field, &child.bytes);
    }
}

/// Field numbers from the stable Perfetto trace schema.
///
/// Only the subset the converter emits is listed; numbers are part of
/// Perfetto's forever-stable public format.
pub mod fields {
    /// `perfetto.protos.Trace`
    pub mod trace {
        /// `repeated TracePacket packet = 1`
        pub const PACKET: u32 = 1;
    }

    /// `perfetto.protos.TracePacket`
    pub mod packet {
        /// `optional uint64 timestamp = 8`
        pub const TIMESTAMP: u32 = 8;
        /// `optional uint32 trusted_packet_sequence_id = 10`
        pub const TRUSTED_PACKET_SEQUENCE_ID: u32 = 10;
        /// `TrackEvent track_event = 11`
        pub const TRACK_EVENT: u32 = 11;
        /// `TrackDescriptor track_descriptor = 60`
        pub const TRACK_DESCRIPTOR: u32 = 60;
    }

    /// `perfetto.protos.TrackDescriptor`
    pub mod track_descriptor {
        /// `optional uint64 uuid = 1`
        pub const UUID: u32 = 1;
        /// `optional string name = 2`
        pub const NAME: u32 = 2;
        /// `ProcessDescriptor process = 3`
        pub const PROCESS: u32 = 3;
        /// `ThreadDescriptor thread = 4`
        pub const THREAD: u32 = 4;
        /// `optional uint64 parent_uuid = 5`
        pub const PARENT_UUID: u32 = 5;
        /// `CounterDescriptor counter = 8`
        pub const COUNTER: u32 = 8;
    }

    /// `perfetto.protos.ProcessDescriptor`
    pub mod process_descriptor {
        /// `optional int32 pid = 1`
        pub const PID: u32 = 1;
        /// `optional string process_name = 6`
        pub const PROCESS_NAME: u32 = 6;
    }

    /// `perfetto.protos.ThreadDescriptor`
    pub mod thread_descriptor {
        /// `optional int32 pid = 1`
        pub const PID: u32 = 1;
        /// `optional int32 tid = 2`
        pub const TID: u32 = 2;
        /// `optional string thread_name = 5`
        pub const THREAD_NAME: u32 = 5;
    }

    /// `perfetto.protos.CounterDescriptor`
    pub mod counter_descriptor {
        /// `optional string unit_name = 6`
        pub const UNIT_NAME: u32 = 6;
    }

    /// `perfetto.protos.TrackEvent`
    pub mod track_event {
        /// `optional Type type = 9`
        pub const TYPE: u32 = 9;
        /// `optional uint64 track_uuid = 11`
        pub const TRACK_UUID: u32 = 11;
        /// `optional string name = 23`
        pub const NAME: u32 = 23;
        /// `optional int64 counter_value = 30`
        pub const COUNTER_VALUE: u32 = 30;
        /// `optional double double_counter_value = 44`
        pub const DOUBLE_COUNTER_VALUE: u32 = 44;

        /// `TrackEvent.Type` enum values.
        pub mod event_type {
            /// `TYPE_SLICE_BEGIN`
            pub const SLICE_BEGIN: u64 = 1;
            /// `TYPE_SLICE_END`
            pub const SLICE_END: u64 = 2;
            /// `TYPE_INSTANT`
            pub const INSTANT: u64 = 3;
            /// `TYPE_COUNTER`
            pub const COUNTER: u64 = 4;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reads one varint; returns (value, bytes consumed).
    fn read_varint(bytes: &[u8]) -> (u64, usize) {
        let mut v = 0u64;
        let mut shift = 0;
        for (i, b) in bytes.iter().enumerate() {
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return (v, i + 1);
            }
            shift += 7;
        }
        panic!("truncated varint");
    }

    #[test]
    fn varint_known_vectors() {
        // Canonical protobuf varint test vectors.
        let cases: [(u64, &[u8]); 6] = [
            (0, &[0x00]),
            (1, &[0x01]),
            (127, &[0x7f]),
            (128, &[0x80, 0x01]),
            (300, &[0xac, 0x02]),
            (
                u64::MAX,
                &[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01],
            ),
        ];
        for (value, expected) in cases {
            let mut buf = Vec::new();
            put_varint(&mut buf, value);
            assert_eq!(buf, expected, "encoding of {value}");
            assert_eq!(read_varint(&buf), (value, expected.len()));
        }
    }

    #[test]
    fn field_keys_follow_the_wire_format() {
        // field 1, varint 150 is the canonical protobuf example: 08 96 01.
        let mut m = ProtoBuf::new();
        m.varint(1, 150);
        assert_eq!(m.into_bytes(), vec![0x08, 0x96, 0x01]);
    }

    #[test]
    fn strings_are_length_delimited() {
        // field 2, "testing": 12 07 74 65 73 74 69 6e 67.
        let mut m = ProtoBuf::new();
        m.string(2, "testing");
        assert_eq!(
            m.into_bytes(),
            vec![0x12, 0x07, 0x74, 0x65, 0x73, 0x74, 0x69, 0x6e, 0x67]
        );
    }

    #[test]
    fn nested_messages_are_length_prefixed() {
        let mut m = ProtoBuf::new();
        m.message(3, |child| child.varint(1, 44));
        // key (3<<3|2 = 0x1a), len 2, then child bytes 08 2c.
        assert_eq!(m.into_bytes(), vec![0x1a, 0x02, 0x08, 0x2c]);
    }

    #[test]
    fn doubles_are_little_endian_fixed64() {
        let mut m = ProtoBuf::new();
        m.double(44, 0.5);
        let bytes = m.into_bytes();
        let key = ((44u64) << 3) | WIRE_FIXED64 as u64;
        let (k, n) = read_varint(&bytes);
        assert_eq!(k, key);
        assert_eq!(bytes.len(), n + 8);
        assert_eq!(
            f64::from_bits(u64::from_le_bytes(bytes[n..].try_into().unwrap())),
            0.5
        );
    }
}
