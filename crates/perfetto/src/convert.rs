//! `SimEvent` stream → Perfetto `Trace` conversion.
//!
//! The converter consumes the exact event vocabulary both engines emit
//! (live through [`crate::PerfettoSink`], or replayed from a JSONL trace
//! through `mmhew_obs::TraceReader`) and produces one protobuf `Trace`:
//!
//! - one **process track** for the simulation as a whole,
//! - one **thread track per node** carrying protocol-phase slices and
//!   beacon tx/rx instants, with child tracks for async frame spans and
//!   crash/recovery ranges,
//! - one **track per jammed channel** with merged jam ranges,
//! - **counter tracks** for discovered-fraction, contention, and
//!   staleness, so Perfetto plots discovery progress over simulated time.
//!
//! Timestamps: the slotted engine's slot index is scaled by
//! [`NS_PER_SLOT`] (slots are unitless in the paper, so the scale is
//! purely cosmetic — it makes Perfetto's time axis readable); the
//! continuous-time engine's `RealTime` nanoseconds are used as-is.
//!
//! Determinism: the converter holds no randomness, iterates only ordered
//! containers, and stable-sorts packets by timestamp at [`finish`] — the
//! same event stream always yields byte-identical output, which is what
//! lets CI diff a live-teed `.pftrace` against one converted from the
//! JSONL trace of the same run.
//!
//! [`finish`]: PerfettoConverter::finish

use std::collections::{BTreeMap, BTreeSet};

use mmhew_obs::{MediumResolution, ProtocolPhase, SimEvent, Stamp};
use mmhew_radio::SlotAction;

use crate::proto::{fields, ProtoBuf};

/// Nanoseconds per slot on Perfetto's time axis (slotted traces only).
///
/// One slot renders as one microsecond. The paper's slots are unitless;
/// this constant only affects the UI scale, never event ordering.
pub const NS_PER_SLOT: u64 = 1_000;

/// `trusted_packet_sequence_id` stamped on every packet. The converter
/// is a single synthetic producer, so one sequence suffices.
pub const TRUSTED_SEQUENCE_ID: u64 = 1;

/// Track UUIDs are synthesized as `(kind << 32) | index`, so every
/// track kind owns a disjoint UUID range and uniqueness is structural.
mod uuid {
    /// The root process track.
    pub const PROCESS: u64 = 1;

    /// Per-node thread track (phase slices, tx/rx instants).
    pub fn node(node: u32) -> u64 {
        (2 << 32) | node as u64
    }

    /// Per-node child track holding async frame spans.
    pub fn frames(node: u32) -> u64 {
        (3 << 32) | node as u64
    }

    /// Per-node child track holding crash/recovery ranges.
    pub fn radio(node: u32) -> u64 {
        (4 << 32) | node as u64
    }

    /// Per-channel jam-range track.
    pub fn jam(channel: u16) -> u64 {
        (5 << 32) | channel as u64
    }

    /// Counter tracks (see [`super::Counter`]).
    pub fn counter(kind: u32) -> u64 {
        (6 << 32) | kind as u64
    }
}

/// The three counter tracks the converter maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Counter {
    /// `covered / expected` from coverage events, in `[0, 1]`.
    DiscoveredFraction,
    /// Simultaneous transmitters destroyed in collisions this slot.
    Contention,
    /// `expected - covered`: directed links still undiscovered.
    Staleness,
}

impl Counter {
    fn index(self) -> u32 {
        match self {
            Counter::DiscoveredFraction => 0,
            Counter::Contention => 1,
            Counter::Staleness => 2,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Counter::DiscoveredFraction => "discovered fraction",
            Counter::Contention => "contention",
            Counter::Staleness => "staleness",
        }
    }

    fn unit(self) -> &'static str {
        match self {
            Counter::DiscoveredFraction => "fraction",
            Counter::Contention => "transmitters",
            Counter::Staleness => "links",
        }
    }
}

/// Windowing and filtering options for a conversion.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConvertOptions {
    /// Drop events before this bound (slot index for slotted traces,
    /// nanoseconds for continuous-time traces). Inclusive.
    pub from: Option<u64>,
    /// Drop events at or after this bound (same unit as `from`).
    /// Exclusive.
    pub to: Option<u64>,
    /// Keep only events attributable to this node (network-wide events —
    /// slot grid, channel resolutions, coverage counters — are kept).
    pub node: Option<u32>,
}

impl ConvertOptions {
    fn admits(&self, t: u64) -> bool {
        self.from.is_none_or(|lo| t >= lo) && self.to.is_none_or(|hi| t < hi)
    }

    fn admits_node(&self, node: u32) -> bool {
        self.node.is_none_or(|n| n == node)
    }
}

/// Everything the converter buffered about one slot, flushed in a fixed
/// order when the next slot (or the end of the trace) arrives. Buffering
/// is what guarantees correct slice nesting: within one timestamp,
/// phase-slice transitions must precede the action slices they contain,
/// but the engine emits them in simulation order.
#[derive(Debug, Default)]
struct SlotBuffer {
    /// Non-quiet actions: `(node, is_tx, channel)`.
    actions: Vec<(u32, bool, u16)>,
    /// Phase transitions in arrival order.
    phases: Vec<(u32, String)>,
    /// Instant markers: `(node track?, name)`; `None` targets the
    /// process track.
    instants: Vec<(Option<u32>, String)>,
    /// Crash-state toggles: `(node, up)`.
    crashes: Vec<(u32, bool)>,
    /// Channels jammed during this slot.
    jams: BTreeSet<u16>,
    /// Latest `(covered, expected)` coverage snapshot.
    coverage: Option<(u64, u64)>,
    /// Sum of colliding transmitters across channels this slot.
    contention: u64,
    /// Whether any `Channel` resolution was seen (distinguishes "no
    /// collisions" from "resolutions not traced").
    saw_resolution: bool,
}

/// Per-node slice bookkeeping.
#[derive(Debug, Default)]
struct NodeState {
    /// A phase slice is open on the node track.
    phase_open: bool,
    /// A "crashed" slice is open on the radio child track.
    crash_open: bool,
    /// A frame slice is open on the frames child track (async engine).
    frame_open: bool,
}

/// Streaming `SimEvent` → Perfetto converter.
///
/// Feed events with [`push`]; call [`finish`] to close open slices and
/// receive the serialized `Trace`. Packets are buffered (descriptors
/// separately from events) and stable-sorted by timestamp on `finish`,
/// so timestamps in the output are monotonically nondecreasing no matter
/// how the async engine interleaved per-node frames.
///
/// [`push`]: PerfettoConverter::push
/// [`finish`]: PerfettoConverter::finish
pub struct PerfettoConverter {
    opts: ConvertOptions,
    /// Encoded `TracePacket`s carrying descriptors, in creation order.
    descriptors: Vec<Vec<u8>>,
    /// Encoded event `TracePacket`s tagged with their timestamp.
    events: Vec<(u64, Vec<u8>)>,
    declared: BTreeSet<u64>,
    nodes: BTreeMap<u32, NodeState>,
    /// Channels with an open jam slice.
    open_jams: BTreeSet<u16>,
    /// The slot currently being buffered (slotted traces).
    cur_slot: Option<u64>,
    slot: SlotBuffer,
    last_fraction: Option<(u64, u64)>,
    last_contention: Option<u64>,
    last_staleness: Option<u64>,
    max_ts: u64,
    pushed: u64,
}

impl PerfettoConverter {
    /// A converter with default options (no windowing, all nodes).
    pub fn new() -> Self {
        Self::with_options(ConvertOptions::default())
    }

    /// A converter with explicit windowing/filtering options.
    pub fn with_options(opts: ConvertOptions) -> Self {
        let mut c = Self {
            opts,
            descriptors: Vec::new(),
            events: Vec::new(),
            declared: BTreeSet::new(),
            nodes: BTreeMap::new(),
            open_jams: BTreeSet::new(),
            cur_slot: None,
            slot: SlotBuffer::default(),
            last_fraction: None,
            last_contention: None,
            last_staleness: None,
            max_ts: 0,
            pushed: 0,
        };
        c.declare(uuid::PROCESS, |td| {
            td.message(fields::track_descriptor::PROCESS, |p| {
                p.varint(fields::process_descriptor::PID, 1);
                p.string(fields::process_descriptor::PROCESS_NAME, "mmhew simulation");
            });
        });
        c
    }

    /// Events consumed so far (after windowing/filtering).
    pub fn events_pushed(&self) -> u64 {
        self.pushed
    }

    // ---- track declaration -------------------------------------------

    fn declare(&mut self, uuid: u64, build: impl FnOnce(&mut ProtoBuf)) {
        if !self.declared.insert(uuid) {
            return;
        }
        let mut packet = ProtoBuf::new();
        packet.varint(
            fields::packet::TRUSTED_PACKET_SEQUENCE_ID,
            TRUSTED_SEQUENCE_ID,
        );
        packet.message(fields::packet::TRACK_DESCRIPTOR, |td| {
            td.varint(fields::track_descriptor::UUID, uuid);
            build(td);
        });
        self.descriptors.push(packet.into_bytes());
    }

    fn ensure_node(&mut self, node: u32) {
        self.declare(uuid::node(node), |td| {
            td.message(fields::track_descriptor::THREAD, |t| {
                t.varint(fields::thread_descriptor::PID, 1);
                // tid 1 would collide with the pid-1 "main thread"
                // convention, so node n maps to tid n + 2.
                t.varint(fields::thread_descriptor::TID, node as u64 + 2);
                t.string(
                    fields::thread_descriptor::THREAD_NAME,
                    &format!("node {node}"),
                );
            });
        });
        self.nodes.entry(node).or_default();
    }

    fn ensure_frames(&mut self, node: u32) {
        self.ensure_node(node);
        self.declare(uuid::frames(node), |td| {
            td.string(
                fields::track_descriptor::NAME,
                &format!("node {node} frames"),
            );
            td.varint(fields::track_descriptor::PARENT_UUID, uuid::node(node));
        });
    }

    fn ensure_radio(&mut self, node: u32) {
        self.ensure_node(node);
        self.declare(uuid::radio(node), |td| {
            td.string(
                fields::track_descriptor::NAME,
                &format!("node {node} radio"),
            );
            td.varint(fields::track_descriptor::PARENT_UUID, uuid::node(node));
        });
    }

    fn ensure_jam(&mut self, channel: u16) {
        self.declare(uuid::jam(channel), |td| {
            td.string(fields::track_descriptor::NAME, &format!("ch {channel} jam"));
            td.varint(fields::track_descriptor::PARENT_UUID, uuid::PROCESS);
        });
    }

    fn ensure_counter(&mut self, counter: Counter) {
        self.declare(uuid::counter(counter.index()), |td| {
            td.string(fields::track_descriptor::NAME, counter.name());
            td.varint(fields::track_descriptor::PARENT_UUID, uuid::PROCESS);
            td.message(fields::track_descriptor::COUNTER, |c| {
                c.string(fields::counter_descriptor::UNIT_NAME, counter.unit());
            });
        });
    }

    // ---- event packet emission ---------------------------------------

    fn emit(&mut self, ts: u64, build: impl FnOnce(&mut ProtoBuf)) {
        let mut packet = ProtoBuf::new();
        packet.varint(fields::packet::TIMESTAMP, ts);
        packet.varint(
            fields::packet::TRUSTED_PACKET_SEQUENCE_ID,
            TRUSTED_SEQUENCE_ID,
        );
        packet.message(fields::packet::TRACK_EVENT, build);
        self.events.push((ts, packet.into_bytes()));
        self.max_ts = self.max_ts.max(ts);
    }

    fn slice_begin(&mut self, ts: u64, track: u64, name: &str) {
        self.emit(ts, |te| {
            te.varint(
                fields::track_event::TYPE,
                fields::track_event::event_type::SLICE_BEGIN,
            );
            te.varint(fields::track_event::TRACK_UUID, track);
            te.string(fields::track_event::NAME, name);
        });
    }

    fn slice_end(&mut self, ts: u64, track: u64) {
        self.emit(ts, |te| {
            te.varint(
                fields::track_event::TYPE,
                fields::track_event::event_type::SLICE_END,
            );
            te.varint(fields::track_event::TRACK_UUID, track);
        });
    }

    fn instant(&mut self, ts: u64, track: u64, name: &str) {
        self.emit(ts, |te| {
            te.varint(
                fields::track_event::TYPE,
                fields::track_event::event_type::INSTANT,
            );
            te.varint(fields::track_event::TRACK_UUID, track);
            te.string(fields::track_event::NAME, name);
        });
    }

    fn counter_i64(&mut self, ts: u64, counter: Counter, value: u64) {
        self.ensure_counter(counter);
        self.emit(ts, |te| {
            te.varint(
                fields::track_event::TYPE,
                fields::track_event::event_type::COUNTER,
            );
            te.varint(
                fields::track_event::TRACK_UUID,
                uuid::counter(counter.index()),
            );
            te.varint(fields::track_event::COUNTER_VALUE, value);
        });
    }

    fn counter_f64(&mut self, ts: u64, counter: Counter, value: f64) {
        self.ensure_counter(counter);
        self.emit(ts, |te| {
            te.varint(
                fields::track_event::TYPE,
                fields::track_event::event_type::COUNTER,
            );
            te.varint(
                fields::track_event::TRACK_UUID,
                uuid::counter(counter.index()),
            );
            te.double(fields::track_event::DOUBLE_COUNTER_VALUE, value);
        });
    }

    // ---- shared event semantics --------------------------------------

    fn phase_name(phase: &ProtocolPhase) -> String {
        match phase {
            ProtocolPhase::Stage(s) => format!("stage {s}"),
            ProtocolPhase::Estimate(e) => format!("estimate {e}"),
            ProtocolPhase::Terminated => "terminated".to_string(),
        }
    }

    fn action_name(action: &SlotAction) -> Option<(bool, u16)> {
        match action {
            SlotAction::Transmit { channel } => Some((true, channel.index())),
            SlotAction::Listen { channel } => Some((false, channel.index())),
            SlotAction::Quiet => None,
        }
    }

    fn set_phase(&mut self, ts: u64, node: u32, name: &str) {
        self.ensure_node(node);
        if self.nodes[&node].phase_open {
            self.slice_end(ts, uuid::node(node));
        }
        self.slice_begin(ts, uuid::node(node), name);
        self.nodes.get_mut(&node).expect("ensured").phase_open = true;
    }

    fn set_crashed(&mut self, ts: u64, node: u32, crashed: bool) {
        self.ensure_radio(node);
        let open = self.nodes[&node].crash_open;
        if crashed && !open {
            self.slice_begin(ts, uuid::radio(node), "crashed");
        } else if !crashed && open {
            self.slice_end(ts, uuid::radio(node));
        }
        self.nodes.get_mut(&node).expect("ensured").crash_open = crashed;
    }

    fn update_coverage(&mut self, ts: u64, covered: u64, expected: u64) {
        if self.last_fraction != Some((covered, expected)) {
            self.last_fraction = Some((covered, expected));
            let fraction = if expected == 0 {
                1.0
            } else {
                covered as f64 / expected as f64
            };
            self.counter_f64(ts, Counter::DiscoveredFraction, fraction);
            let stale = expected.saturating_sub(covered);
            if self.last_staleness != Some(stale) {
                self.last_staleness = Some(stale);
                self.counter_i64(ts, Counter::Staleness, stale);
            }
        }
    }

    // ---- slotted path ------------------------------------------------

    fn flush_slot(&mut self) {
        let Some(slot) = self.cur_slot else { return };
        let buf = std::mem::take(&mut self.slot);
        let ts = slot * NS_PER_SLOT;
        let ts_end = ts + NS_PER_SLOT;

        // 1. Phase transitions first: they are the outermost slices on
        //    each node track and must not interleave with action slices.
        for (node, name) in &buf.phases {
            self.set_phase(ts, *node, name);
        }
        // 2. Jam ranges: merge runs of consecutive jammed slots.
        let ended: Vec<u16> = self.open_jams.difference(&buf.jams).copied().collect();
        for c in ended {
            self.slice_end(ts, uuid::jam(c));
            self.open_jams.remove(&c);
        }
        let started: Vec<u16> = buf.jams.difference(&self.open_jams).copied().collect();
        for c in started {
            self.ensure_jam(c);
            self.slice_begin(ts, uuid::jam(c), "jammed");
            self.open_jams.insert(c);
        }
        // 3. Crash/recovery ranges.
        for (node, up) in &buf.crashes {
            self.set_crashed(ts, *node, !up);
        }
        // 4. One slice per non-quiet action, spanning exactly this slot.
        for (node, is_tx, channel) in &buf.actions {
            self.ensure_node(*node);
            let name = if *is_tx {
                format!("tx ch{channel}")
            } else {
                format!("rx ch{channel}")
            };
            self.slice_begin(ts, uuid::node(*node), &name);
        }
        // 5. Instant markers (deliveries, losses, dynamics).
        for (node, name) in &buf.instants {
            let track = match node {
                Some(n) => {
                    self.ensure_node(*n);
                    uuid::node(*n)
                }
                None => uuid::PROCESS,
            };
            self.instant(ts, track, name);
        }
        // 6. Counters, attributed to this slot's start.
        if let Some((covered, expected)) = buf.coverage {
            self.update_coverage(ts, covered, expected);
        }
        if buf.saw_resolution && self.last_contention != Some(buf.contention) {
            self.last_contention = Some(buf.contention);
            self.counter_i64(ts, Counter::Contention, buf.contention);
        }
        // 7. Close this slot's action slices at the next slot boundary.
        //    (Emitted last so the stable sort keeps them after every
        //    packet stamped `ts`, and before the next slot's packets.)
        for (node, _, _) in &buf.actions {
            self.slice_end(ts_end, uuid::node(*node));
        }
    }

    fn buffer_slotted(&mut self, slot: u64, event: &SimEvent) {
        if self.cur_slot != Some(slot) {
            self.flush_slot();
            self.cur_slot = Some(slot);
        }
        if !self.opts.admits(slot) {
            return;
        }
        match event {
            SimEvent::SlotStart { .. } => {}
            SimEvent::Action { node, action, .. } => {
                if let Some((is_tx, channel)) = Self::action_name(action) {
                    if self.opts.admits_node(node.index()) {
                        self.slot.actions.push((node.index(), is_tx, channel));
                    }
                }
            }
            SimEvent::Channel { resolution, .. } => {
                self.slot.saw_resolution = true;
                if let MediumResolution::Collision { contenders } = resolution {
                    self.slot.contention += *contenders as u64;
                }
            }
            SimEvent::Delivery {
                from, to, channel, ..
            } => {
                if self.opts.admits_node(to.index()) || self.opts.admits_node(from.index()) {
                    self.slot.instants.push((
                        Some(to.index()),
                        format!("beacon from {} ch{}", from.index(), channel.index()),
                    ));
                }
            }
            SimEvent::CaptureDelivery {
                to,
                from,
                contenders,
                ..
            } => {
                if self.opts.admits_node(to.index()) || self.opts.admits_node(from.index()) {
                    self.slot.instants.push((
                        Some(to.index()),
                        format!("capture from {} ({contenders} contenders)", from.index()),
                    ));
                }
            }
            SimEvent::BeaconLost { from, to, .. } => {
                if self.opts.admits_node(to.index()) || self.opts.admits_node(from.index()) {
                    self.slot
                        .instants
                        .push((Some(to.index()), format!("lost from {}", from.index())));
                }
            }
            SimEvent::ImpairmentLoss { count, .. } => {
                self.slot
                    .instants
                    .push((None, format!("impairment x{count}")));
            }
            SimEvent::LinkCovered {
                covered, expected, ..
            }
            | SimEvent::GroundTruthChanged {
                covered, expected, ..
            } => {
                self.slot.coverage = Some((*covered, *expected));
            }
            SimEvent::Phase { node, phase, .. } => {
                if self.opts.admits_node(node.index()) {
                    self.slot
                        .phases
                        .push((node.index(), Self::phase_name(phase)));
                }
            }
            SimEvent::NodeJoined { node, .. } => {
                if self.opts.admits_node(node.index()) {
                    self.slot.instants.push((Some(node.index()), "join".into()));
                }
            }
            SimEvent::NodeLeft { node, .. } => {
                if self.opts.admits_node(node.index()) {
                    self.slot
                        .instants
                        .push((Some(node.index()), "leave".into()));
                }
            }
            SimEvent::EdgeChanged {
                from, to, added, ..
            } => {
                if self.opts.admits_node(from.index()) || self.opts.admits_node(to.index()) {
                    let sign = if *added { '+' } else { '-' };
                    self.slot
                        .instants
                        .push((Some(from.index()), format!("edge {sign} to {}", to.index())));
                }
            }
            SimEvent::ChannelChanged {
                node,
                channel,
                gained,
                ..
            } => {
                if self.opts.admits_node(node.index()) {
                    let sign = if *gained { '+' } else { '-' };
                    self.slot
                        .instants
                        .push((Some(node.index()), format!("ch{} {sign}", channel.index())));
                }
            }
            SimEvent::SlotJammed { channel, .. } => {
                self.slot.jams.insert(channel.index());
            }
            SimEvent::NodeCrashed { node, .. } => {
                if self.opts.admits_node(node.index()) {
                    self.slot.crashes.push((node.index(), false));
                }
            }
            SimEvent::NodeRecovered { node, .. } => {
                if self.opts.admits_node(node.index()) {
                    self.slot.crashes.push((node.index(), true));
                }
            }
            SimEvent::FrameStart { .. } | SimEvent::FrameEnd { .. } => {
                // Frame events carry real stamps and are handled by the
                // continuous-time path; they never carry a slot stamp.
            }
        }
    }

    // ---- continuous-time path ----------------------------------------

    fn push_continuous(&mut self, ts: u64, event: &SimEvent) {
        if !self.opts.admits(ts) {
            return;
        }
        match event {
            SimEvent::FrameStart { node, frame, .. } => {
                if self.opts.admits_node(node.index()) {
                    self.ensure_frames(node.index());
                    if !self.nodes[&node.index()].frame_open {
                        self.slice_begin(ts, uuid::frames(node.index()), &format!("frame {frame}"));
                        self.nodes
                            .get_mut(&node.index())
                            .expect("ensured")
                            .frame_open = true;
                    }
                }
            }
            SimEvent::FrameEnd { node, .. } => {
                if self.opts.admits_node(node.index()) {
                    self.ensure_frames(node.index());
                    if self.nodes[&node.index()].frame_open {
                        self.slice_end(ts, uuid::frames(node.index()));
                        self.nodes
                            .get_mut(&node.index())
                            .expect("ensured")
                            .frame_open = false;
                    }
                }
            }
            SimEvent::Action { node, action, .. } => {
                if let Some((is_tx, channel)) = Self::action_name(action) {
                    if self.opts.admits_node(node.index()) {
                        self.ensure_node(node.index());
                        let name = if is_tx {
                            format!("tx ch{channel}")
                        } else {
                            format!("rx ch{channel}")
                        };
                        self.instant(ts, uuid::node(node.index()), &name);
                    }
                }
            }
            SimEvent::Delivery {
                from, to, channel, ..
            } => {
                if self.opts.admits_node(to.index()) || self.opts.admits_node(from.index()) {
                    self.ensure_node(to.index());
                    self.instant(
                        ts,
                        uuid::node(to.index()),
                        &format!("beacon from {} ch{}", from.index(), channel.index()),
                    );
                }
            }
            SimEvent::CaptureDelivery {
                to,
                from,
                contenders,
                ..
            } => {
                if self.opts.admits_node(to.index()) || self.opts.admits_node(from.index()) {
                    self.ensure_node(to.index());
                    self.instant(
                        ts,
                        uuid::node(to.index()),
                        &format!("capture from {} ({contenders} contenders)", from.index()),
                    );
                }
            }
            SimEvent::BeaconLost { from, to, .. } => {
                if self.opts.admits_node(to.index()) || self.opts.admits_node(from.index()) {
                    self.ensure_node(to.index());
                    self.instant(
                        ts,
                        uuid::node(to.index()),
                        &format!("lost from {}", from.index()),
                    );
                }
            }
            SimEvent::ImpairmentLoss { count, .. } => {
                self.instant(ts, uuid::PROCESS, &format!("impairment x{count}"));
            }
            SimEvent::LinkCovered {
                covered, expected, ..
            }
            | SimEvent::GroundTruthChanged {
                covered, expected, ..
            } => {
                self.update_coverage(ts, *covered, *expected);
            }
            SimEvent::Phase { node, phase, .. } => {
                if self.opts.admits_node(node.index()) {
                    let name = Self::phase_name(phase);
                    self.set_phase(ts, node.index(), &name);
                }
            }
            SimEvent::NodeJoined { node, .. } => {
                if self.opts.admits_node(node.index()) {
                    self.ensure_node(node.index());
                    self.instant(ts, uuid::node(node.index()), "join");
                }
            }
            SimEvent::NodeLeft { node, .. } => {
                if self.opts.admits_node(node.index()) {
                    self.ensure_node(node.index());
                    self.instant(ts, uuid::node(node.index()), "leave");
                }
            }
            SimEvent::EdgeChanged {
                from, to, added, ..
            } => {
                if self.opts.admits_node(from.index()) || self.opts.admits_node(to.index()) {
                    self.ensure_node(from.index());
                    let sign = if *added { '+' } else { '-' };
                    self.instant(
                        ts,
                        uuid::node(from.index()),
                        &format!("edge {sign} to {}", to.index()),
                    );
                }
            }
            SimEvent::ChannelChanged {
                node,
                channel,
                gained,
                ..
            } => {
                if self.opts.admits_node(node.index()) {
                    self.ensure_node(node.index());
                    let sign = if *gained { '+' } else { '-' };
                    self.instant(
                        ts,
                        uuid::node(node.index()),
                        &format!("ch{} {sign}", channel.index()),
                    );
                }
            }
            SimEvent::SlotJammed {
                channel, losses, ..
            } => {
                self.ensure_jam(channel.index());
                self.instant(
                    ts,
                    uuid::jam(channel.index()),
                    &format!("jammed ({losses} lost)"),
                );
            }
            SimEvent::NodeCrashed { node, .. } => {
                if self.opts.admits_node(node.index()) {
                    self.set_crashed(ts, node.index(), true);
                }
            }
            SimEvent::NodeRecovered { node, .. } => {
                if self.opts.admits_node(node.index()) {
                    self.set_crashed(ts, node.index(), false);
                }
            }
            SimEvent::Channel { resolution, .. } => {
                // The continuous-time engine has no network-wide slot, so
                // contention renders as a point sample.
                if let MediumResolution::Collision { contenders } = resolution {
                    let value = *contenders as u64;
                    if self.last_contention != Some(value) {
                        self.last_contention = Some(value);
                        self.counter_i64(ts, Counter::Contention, value);
                    }
                }
            }
            SimEvent::SlotStart { .. } => {}
        }
    }

    // ---- public API --------------------------------------------------

    /// Consumes one event.
    pub fn push(&mut self, event: &SimEvent) {
        self.pushed += 1;
        match event {
            SimEvent::SlotStart { slot } => self.buffer_slotted(*slot, event),
            SimEvent::FrameStart { real, .. } | SimEvent::FrameEnd { real, .. } => {
                self.push_continuous(real.as_nanos(), event)
            }
            SimEvent::Action { at, .. }
            | SimEvent::Channel { at, .. }
            | SimEvent::Delivery { at, .. }
            | SimEvent::ImpairmentLoss { at, .. }
            | SimEvent::LinkCovered { at, .. }
            | SimEvent::Phase { at, .. }
            | SimEvent::NodeJoined { at, .. }
            | SimEvent::NodeLeft { at, .. }
            | SimEvent::EdgeChanged { at, .. }
            | SimEvent::ChannelChanged { at, .. }
            | SimEvent::GroundTruthChanged { at, .. }
            | SimEvent::BeaconLost { at, .. }
            | SimEvent::SlotJammed { at, .. }
            | SimEvent::CaptureDelivery { at, .. }
            | SimEvent::NodeCrashed { at, .. }
            | SimEvent::NodeRecovered { at, .. } => match at {
                Stamp::Slot(slot) => self.buffer_slotted(*slot, event),
                Stamp::Real(t) => self.push_continuous(t.as_nanos(), event),
            },
        }
    }

    /// Flushes buffered state, closes open slices, and serializes the
    /// `Trace`: all track descriptors first, then event packets in
    /// nondecreasing-timestamp order.
    pub fn finish(mut self) -> Vec<u8> {
        self.flush_slot();
        let close = self.max_ts;
        // Close in child-before-parent order per node: actions are
        // already closed by the flush; frames and crash ranges live on
        // child tracks; the phase slice is the only one on the node
        // track itself.
        let node_ids: Vec<u32> = self.nodes.keys().copied().collect();
        for node in node_ids {
            let state = &self.nodes[&node];
            let (frame_open, crash_open, phase_open) =
                (state.frame_open, state.crash_open, state.phase_open);
            if frame_open {
                self.slice_end(close, uuid::frames(node));
            }
            if crash_open {
                self.slice_end(close, uuid::radio(node));
            }
            if phase_open {
                self.slice_end(close, uuid::node(node));
            }
        }
        let jams: Vec<u16> = self.open_jams.iter().copied().collect();
        for c in jams {
            self.slice_end(close, uuid::jam(c));
        }

        self.events.sort_by_key(|(ts, _)| *ts);
        let mut trace = ProtoBuf::new();
        for packet in &self.descriptors {
            trace.bytes_field(fields::trace::PACKET, packet);
        }
        for (_, packet) in &self.events {
            trace.bytes_field(fields::trace::PACKET, packet);
        }
        trace.into_bytes()
    }
}

impl Default for PerfettoConverter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_spectrum::ChannelId;
    use mmhew_time::RealTime;
    use mmhew_topology::NodeId;

    fn slotted_events() -> Vec<SimEvent> {
        let n = NodeId::new;
        let c = ChannelId::new;
        vec![
            SimEvent::SlotStart { slot: 0 },
            SimEvent::Action {
                at: Stamp::Slot(0),
                node: n(0),
                action: SlotAction::Transmit { channel: c(1) },
            },
            SimEvent::Action {
                at: Stamp::Slot(0),
                node: n(1),
                action: SlotAction::Listen { channel: c(1) },
            },
            SimEvent::Channel {
                at: Stamp::Slot(0),
                channel: c(1),
                resolution: MediumResolution::Clear {
                    tx: n(0),
                    rx_count: 1,
                },
            },
            SimEvent::Delivery {
                at: Stamp::Slot(0),
                from: n(0),
                to: n(1),
                channel: c(1),
            },
            SimEvent::LinkCovered {
                at: Stamp::Slot(0),
                from: n(0),
                to: n(1),
                covered: 1,
                expected: 2,
            },
            SimEvent::Phase {
                at: Stamp::Slot(0),
                node: n(0),
                phase: ProtocolPhase::Stage(1),
            },
            SimEvent::SlotStart { slot: 1 },
            SimEvent::SlotJammed {
                at: Stamp::Slot(1),
                channel: c(0),
                losses: 1,
            },
            SimEvent::SlotStart { slot: 2 },
        ]
    }

    fn convert(events: &[SimEvent]) -> Vec<u8> {
        let mut conv = PerfettoConverter::new();
        for e in events {
            conv.push(e);
        }
        conv.finish()
    }

    #[test]
    fn conversion_is_deterministic() {
        let events = slotted_events();
        assert_eq!(convert(&events), convert(&events));
    }

    #[test]
    fn output_is_nonempty_and_grows_with_events() {
        let events = slotted_events();
        let all = convert(&events);
        let some = convert(&events[..3]);
        assert!(!some.is_empty());
        assert!(all.len() > some.len());
    }

    #[test]
    fn windowing_drops_out_of_range_slots() {
        let events = slotted_events();
        let mut conv = PerfettoConverter::with_options(ConvertOptions {
            from: Some(1),
            to: Some(2),
            node: None,
        });
        for e in &events {
            conv.push(e);
        }
        let windowed = conv.finish();
        let full = convert(&events);
        assert!(windowed.len() < full.len());
    }

    #[test]
    fn node_filter_prunes_other_nodes() {
        let events = slotted_events();
        let mut conv = PerfettoConverter::with_options(ConvertOptions {
            from: None,
            to: None,
            node: Some(0),
        });
        for e in &events {
            conv.push(e);
        }
        let filtered = conv.finish();
        let full = convert(&events);
        assert!(filtered.len() < full.len());
    }

    #[test]
    fn continuous_events_use_real_timestamps() {
        let n = NodeId::new;
        let events = vec![
            SimEvent::FrameStart {
                node: n(0),
                frame: 0,
                real: RealTime::from_nanos(100),
                local: mmhew_time::LocalTime::from_nanos(100),
            },
            SimEvent::FrameEnd {
                node: n(0),
                frame: 0,
                real: RealTime::from_nanos(1_100),
                local: mmhew_time::LocalTime::from_nanos(1_100),
            },
        ];
        let bytes = convert(&events);
        assert!(!bytes.is_empty());
    }
}
