//! # mmhew-perfetto — Perfetto trace export for mmhew simulations
//!
//! Converts the typed [`SimEvent`] stream (live, or replayed from a
//! JSONL trace via [`mmhew_obs::TraceReader`]) into a Perfetto-compatible
//! protobuf `Trace` that <https://ui.perfetto.dev> renders as per-node
//! timelines with counter plots — the visual debugging layer for the
//! paper's algorithms (why does Alg 2's estimate phase stall under a jam
//! schedule? where does staleness spike under churn?).
//!
//! Three entry points:
//!
//! - [`PerfettoConverter`] — the streaming core: push events, receive
//!   serialized `Trace` bytes.
//! - [`PerfettoSink`] — an [`EventSink`] tee for live runs (used by
//!   `Scenario::with_perfetto` and `simulate --perfetto`).
//! - the `trace2perfetto` binary — offline conversion of existing JSONL
//!   traces, with `--split-by-node` and `--from-slot`/`--to-slot`
//!   windowing.
//!
//! The protobuf wire format is hand-rolled in [`proto`] (varint +
//! length-delimited is all Perfetto's trace schema needs), in the same
//! no-third-party-deps spirit as `mmhew_obs::json`. Same event stream ⇒
//! byte-identical output: the golden-file tests and the CI
//! `trace-tooling` job both rely on the converter being a pure function.
//!
//! [`SimEvent`]: mmhew_obs::SimEvent
//! [`EventSink`]: mmhew_obs::EventSink

pub mod convert;
pub mod proto;
pub mod sink;

pub use convert::{ConvertOptions, PerfettoConverter, NS_PER_SLOT, TRUSTED_SEQUENCE_ID};
pub use sink::PerfettoSink;
