//! Property-based tests of the statistics and seeding utilities.

use mmhew_util::{ecdf, quantile, SeedTree, Summary, Welford};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Welford matches the two-pass formulas on arbitrary data.
    #[test]
    fn welford_matches_two_pass(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        if xs.len() >= 2 {
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
            prop_assert!((w.sample_variance() - var).abs() < 1e-4 * (1.0 + var));
        }
        prop_assert_eq!(w.count(), xs.len() as u64);
    }

    /// Merging arbitrary splits equals sequential accumulation.
    #[test]
    fn welford_merge_any_split(
        xs in prop::collection::vec(-1e5f64..1e5, 2..120),
        split_frac in 0.0f64..1.0,
    ) {
        let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
        let mut whole = Welford::new();
        for &x in &xs { whole.push(x); }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..split] { left.push(x); }
        for &x in &xs[split..] { right.push(x); }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!(
            (left.sample_variance() - whole.sample_variance()).abs()
                < 1e-4 * (1.0 + whole.sample_variance())
        );
    }

    /// Quantiles are monotone in q, bounded by min/max, and exact at the
    /// endpoints.
    #[test]
    fn quantile_properties(
        xs in prop::collection::vec(-1e6f64..1e6, 1..100),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let a = quantile(&xs, lo);
        let b = quantile(&xs, hi);
        prop_assert!(a <= b + 1e-9);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(quantile(&xs, 0.0), min);
        prop_assert_eq!(quantile(&xs, 1.0), max);
        prop_assert!(a >= min - 1e-9 && b <= max + 1e-9);
    }

    /// Summary fields are internally consistent.
    #[test]
    fn summary_consistency(xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let s = Summary::from_samples(&xs);
        prop_assert_eq!(s.n, xs.len());
        prop_assert!(s.min <= s.p25 + 1e-9);
        prop_assert!(s.p25 <= s.median + 1e-9);
        prop_assert!(s.median <= s.p75 + 1e-9);
        prop_assert!(s.p75 <= s.p95 + 1e-9);
        prop_assert!(s.p95 <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.stddev >= 0.0);
    }

    /// The ECDF is a valid distribution function over the sample.
    #[test]
    fn ecdf_properties(xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let cdf = ecdf(&xs);
        prop_assert_eq!(cdf.len(), xs.len());
        prop_assert!((cdf.last().expect("non-empty").1 - 1.0).abs() < 1e-12);
        for pair in cdf.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0);
            prop_assert!(pair[0].1 < pair[1].1);
        }
    }

    /// Seed trees: path-determinism and (statistical) path-independence.
    #[test]
    fn seed_tree_paths(master in 0u64..u64::MAX, a in 0u64..1000, b in 0u64..1000) {
        let t = SeedTree::new(master);
        prop_assert_eq!(t.branch("x").index(a).seed(), t.branch("x").index(a).seed());
        if a != b {
            prop_assert_ne!(t.branch("x").index(a).seed(), t.branch("x").index(b).seed());
        }
        prop_assert_ne!(t.branch("x").seed(), t.branch("y").seed());
        // Order of derivation never matters (pure function of path).
        let p1 = t.branch("p").index(a).branch("q").seed();
        let _side_effect = t.branch("zzz").index(b);
        let p2 = t.branch("p").index(a).branch("q").seed();
        prop_assert_eq!(p1, p2);
    }
}
