//! Labelled seed-derivation trees.
//!
//! A [`SeedTree`] deterministically derives independent seeds for every
//! component of a simulation from a single master seed. Derivation is by
//! *path*: each `branch(label)` or `index(i)` extends the path, and the seed
//! at a node of the tree is a SplitMix64-style hash of the path. Two
//! different paths yield (with overwhelming probability) uncorrelated
//! streams, and — crucially for sweep experiments — adding a repetition
//! index or node index does not perturb the seeds of unrelated components.

use crate::rng::{SplitMix64, Xoshiro256StarStar};

/// A position in a deterministic seed-derivation tree.
///
/// `SeedTree` is cheap to copy; deriving a child never mutates the parent,
/// so a tree can be fanned out across threads freely.
///
/// # Examples
///
/// ```
/// use mmhew_util::SeedTree;
///
/// let root = SeedTree::new(2026);
/// let exp = root.branch("e1_n_scaling");
/// let rep0 = exp.index(0);
/// let rep1 = exp.index(1);
/// assert_ne!(rep0.seed(), rep1.seed());
/// // Same path, same seed — forever.
/// assert_eq!(rep0.seed(), root.branch("e1_n_scaling").index(0).seed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedTree {
    state: u64,
}

impl SeedTree {
    /// Creates the root of a tree from a master seed.
    pub fn new(master_seed: u64) -> Self {
        Self {
            state: SplitMix64::mix(master_seed ^ 0x6D6D_6865_7721_0001),
        }
    }

    /// Derives a child labelled with a string.
    ///
    /// The label is hashed byte-wise, so distinct labels give distinct
    /// children regardless of length.
    pub fn branch(&self, label: &str) -> Self {
        let mut state = self.state ^ 0xA5A5_A5A5_5A5A_5A5A;
        for chunk in label.as_bytes().chunks(8) {
            let mut bytes = [0u8; 8];
            bytes[..chunk.len()].copy_from_slice(chunk);
            state = SplitMix64::mix(state ^ u64::from_le_bytes(bytes));
        }
        state = SplitMix64::mix(state ^ label.len() as u64);
        Self { state }
    }

    /// Derives a child labelled with an integer index (repetition number,
    /// node id, channel id, ...).
    pub fn index(&self, i: u64) -> Self {
        Self {
            state: SplitMix64::mix(self.state ^ i.rotate_left(17) ^ 0x0123_4567_89AB_CDEF),
        }
    }

    /// The 64-bit seed at this tree position.
    pub fn seed(&self) -> u64 {
        self.state
    }

    /// A full-period generator seeded from this position.
    pub fn rng(&self) -> Xoshiro256StarStar {
        Xoshiro256StarStar::from_seed_u64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;
    use std::collections::HashSet;

    #[test]
    fn deterministic_paths() {
        let a = SeedTree::new(1)
            .branch("net")
            .index(3)
            .branch("node")
            .index(9);
        let b = SeedTree::new(1)
            .branch("net")
            .index(3)
            .branch("node")
            .index(9);
        assert_eq!(a.seed(), b.seed());
    }

    #[test]
    fn distinct_masters_distinct_seeds() {
        assert_ne!(SeedTree::new(1).seed(), SeedTree::new(2).seed());
    }

    #[test]
    fn distinct_labels_distinct_seeds() {
        let root = SeedTree::new(7);
        assert_ne!(root.branch("a").seed(), root.branch("b").seed());
        // Prefix-freedom: "ab" under root differs from "a" then "b".
        assert_ne!(
            root.branch("ab").seed(),
            root.branch("a").branch("b").seed()
        );
    }

    #[test]
    fn long_labels_hash_all_bytes() {
        let root = SeedTree::new(7);
        let a = root.branch("averyverylonglabel-variant-A");
        let b = root.branch("averyverylonglabel-variant-B");
        assert_ne!(a.seed(), b.seed());
    }

    #[test]
    fn sibling_indices_unique_in_bulk() {
        let root = SeedTree::new(11).branch("rep");
        let seeds: HashSet<u64> = (0..10_000).map(|i| root.index(i).seed()).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn child_rngs_are_uncorrelated() {
        let root = SeedTree::new(5);
        let mut r0 = root.branch("x").index(0).rng();
        let mut r1 = root.branch("x").index(1).rng();
        let matches = (0..256).filter(|_| r0.next_u64() == r1.next_u64()).count();
        assert!(matches < 4);
    }

    #[test]
    fn copy_semantics_do_not_alias() {
        let root = SeedTree::new(5);
        let child = root.branch("c");
        // Using `child` does not change `root`.
        let before = root.seed();
        let _ = child.index(4).seed();
        assert_eq!(root.seed(), before);
    }
}
