//! Fixed-bin histograms for completion-time distributions.

use serde::{Deserialize, Serialize};

/// A histogram over `[lo, hi)` with equal-width bins plus underflow and
/// overflow counters.
///
/// # Examples
///
/// ```
/// use mmhew_util::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.record(0.5);
/// h.record(9.9);
/// h.record(-1.0); // underflow
/// h.record(10.0); // overflow (hi is exclusive)
/// assert_eq!(h.total(), 4);
/// assert_eq!(h.underflow(), 1);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.bin_count(0), 1);
/// assert_eq!(h.bin_count(4), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi` or either bound is not finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite(), "bounds must be finite");
        assert!(lo < hi, "lo must be < hi");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total observations recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn bin_len(&self) -> usize {
        self.bins.len()
    }

    /// `[start, end)` range of bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }

    /// Adds every count from `other` into `self`.
    ///
    /// Used to combine per-repetition histograms into one aggregate (e.g.
    /// merging `MetricsSink` contention histograms across runs).
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different bounds or bin counts.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.bins.len() == other.bins.len(),
            "cannot merge histograms with different binning"
        );
        for (b, o) in self.bins.iter_mut().zip(other.bins.iter()) {
            *b += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Approximate `q`-quantile (`0 ≤ q ≤ 1`) by linear interpolation
    /// within the containing bin. Underflow mass is attributed to `lo`
    /// and overflow mass to `hi`; returns `NaN` when empty.
    ///
    /// # Panics
    ///
    /// Panics unless `q` is in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let total = self.total();
        if total == 0 {
            return f64::NAN;
        }
        let rank = q * total as f64;
        let mut seen = self.underflow as f64;
        if rank <= seen {
            return self.lo;
        }
        for (i, &c) in self.bins.iter().enumerate() {
            let next = seen + c as f64;
            if rank <= next && c > 0 {
                let (a, b) = self.bin_range(i);
                return a + (b - a) * ((rank - seen) / c as f64);
            }
            seen = next;
        }
        self.hi
    }

    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Iterator over `(bin_midpoint, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.bins.iter().enumerate().map(move |(i, &c)| {
            let (a, b) = self.bin_range(i);
            ((a + b) / 2.0, c)
        })
    }

    /// Renders a compact ASCII bar chart (one line per bin) for logs.
    pub fn render_ascii(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let (a, b) = self.bin_range(i);
            let bar = "#".repeat((c as usize * width).div_ceil(max as usize).min(width));
            out.push_str(&format!("[{a:10.1}, {b:10.1}) |{bar:<width$}| {c}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_correct_bins() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for x in [0.0, 5.0, 15.0, 95.0, 99.999] {
            h.record(x);
        }
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(9), 2);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn boundary_values() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.0); // inclusive lo -> bin 0
        h.record(10.0); // exclusive hi -> overflow
        h.record(9.999_999); // last bin
        assert_eq!(h.bin_count(0), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bin_count(9), 1);
    }

    #[test]
    fn bin_ranges_tile_the_domain() {
        let h = Histogram::new(-5.0, 5.0, 4);
        let (a0, b0) = h.bin_range(0);
        let (a3, b3) = h.bin_range(3);
        assert_eq!(a0, -5.0);
        assert_eq!(b3, 5.0);
        assert!((b0 - (-2.5)).abs() < 1e-12);
        assert!((a3 - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "lo must be < hi")]
    fn inverted_bounds_panic() {
        let _ = Histogram::new(1.0, 0.0, 4);
    }

    #[test]
    fn ascii_render_has_one_line_per_bin() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.record(1.0);
        let s = h.render_ascii(20);
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn merge_adds_counts_and_flows() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.record(1.0);
        a.record(-1.0);
        b.record(1.5);
        b.record(11.0);
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a.bin_count(0), 2);
        assert_eq!(a.bin_count(4), 1);
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.total(), 5);
    }

    #[test]
    #[should_panic(expected = "different binning")]
    fn merge_rejects_mismatched_binning() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let b = Histogram::new(0.0, 10.0, 4);
        a.merge(&b);
    }

    #[test]
    fn iter_midpoints() {
        let h = Histogram::new(0.0, 4.0, 2);
        let mids: Vec<f64> = h.iter().map(|(m, _)| m).collect();
        assert_eq!(mids, vec![1.0, 3.0]);
    }

    proptest::proptest! {
        /// Merging split halves equals sequential recording — the
        /// histogram analogue of `welford_merge_any_split` — including
        /// samples landing in the underflow and overflow counters.
        #[test]
        fn merge_of_split_halves_equals_sequential(
            xs in proptest::collection::vec(-20.0f64..120.0, 1..200),
            split_frac in 0.0f64..1.0,
            bins in 1usize..12,
        ) {
            let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
            let mut whole = Histogram::new(0.0, 100.0, bins);
            for &x in &xs {
                whole.record(x);
            }
            let mut left = Histogram::new(0.0, 100.0, bins);
            let mut right = Histogram::new(0.0, 100.0, bins);
            for &x in &xs[..split] {
                left.record(x);
            }
            for &x in &xs[split..] {
                right.record(x);
            }
            left.merge(&right);
            proptest::prop_assert_eq!(&left, &whole);
            proptest::prop_assert_eq!(left.total(), xs.len() as u64);
        }
    }
}
