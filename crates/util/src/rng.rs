//! Portable, deterministic pseudo-random number generators.
//!
//! Both generators implement [`rand::RngCore`] and [`rand::SeedableRng`] so
//! they compose with the whole `rand` distribution machinery, while their
//! output sequences are fixed by this crate (unlike `StdRng`, whose algorithm
//! may change between `rand` releases).

use rand::{RngCore, SeedableRng};

/// The SplitMix64 generator of Steele, Lea and Flood.
///
/// A tiny 64-bit state generator that passes BigCrush when used directly and
/// is the recommended seeder for the xoshiro family. It is used throughout
/// the workspace for *seed derivation* (see [`crate::seeding::SeedTree`]).
///
/// # Examples
///
/// ```
/// use mmhew_util::SplitMix64;
/// use rand::RngCore;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Produces the next value in the sequence.
    ///
    /// (Intentionally named like the generator literature's `next()`; this
    /// type is not an `Iterator`.)
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// One-shot mix of a value, useful for stateless hashing of labels.
    ///
    /// This is the output function of SplitMix64 applied to `x` directly; it
    /// is a bijection on `u64`.
    #[inline]
    pub fn mix(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_from_u64(self, dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::new(state)
    }
}

/// The xoshiro256** generator of Blackman and Vigna.
///
/// The workhorse generator for per-node protocol decisions: 256 bits of
/// state, period 2^256−1, excellent statistical quality and very fast.
///
/// # Examples
///
/// ```
/// use mmhew_util::Xoshiro256StarStar;
/// use rand::Rng;
///
/// let mut rng = Xoshiro256StarStar::from_seed_u64(7);
/// let x: f64 = rng.gen();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator by expanding a 64-bit seed through SplitMix64, as
    /// recommended by the xoshiro authors.
    pub fn from_seed_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = sm.next();
        }
        // The all-zero state is invalid (fixed point); the SplitMix64
        // expansion of any seed cannot produce it, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for Xoshiro256StarStar {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_from_u64(self, dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Xoshiro256StarStar {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::from_seed_u64(state)
    }
}

fn fill_bytes_from_u64<R: RngCore>(rng: &mut R, dest: &mut [u8]) {
    let mut chunks = dest.chunks_exact_mut(8);
    for chunk in &mut chunks {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let bytes = rng.next_u64().to_le_bytes();
        rem.copy_from_slice(&bytes[..rem.len()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_reference_vector() {
        // Reference sequence for seed 0 from the public-domain C source.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn splitmix_mix_is_stateless_and_matches_first_output() {
        assert_eq!(SplitMix64::mix(0), SplitMix64::new(0).next());
        assert_eq!(SplitMix64::mix(12345), SplitMix64::new(12345).next());
    }

    #[test]
    fn xoshiro_deterministic_across_instances() {
        let mut a = Xoshiro256StarStar::from_seed_u64(99);
        let mut b = Xoshiro256StarStar::from_seed_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_different_seeds_diverge() {
        let mut a = Xoshiro256StarStar::from_seed_u64(1);
        let mut b = Xoshiro256StarStar::from_seed_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should not coincide");
    }

    #[test]
    fn xoshiro_uniform_unit_interval_mean() {
        let mut rng = Xoshiro256StarStar::from_seed_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn fill_bytes_handles_non_multiple_of_eight() {
        let mut rng = SplitMix64::new(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // Compare against manual construction.
        let mut rng2 = SplitMix64::new(4);
        let w0 = rng2.next().to_le_bytes();
        let w1 = rng2.next().to_le_bytes();
        assert_eq!(&buf[..8], &w0);
        assert_eq!(&buf[8..13], &w1[..5]);
    }

    #[test]
    fn seedable_from_seed_round_trip() {
        let seed = [7u8; 32];
        let mut a = Xoshiro256StarStar::from_seed(seed);
        let mut b = Xoshiro256StarStar::from_seed(seed);
        assert_eq!(a.next_u64(), b.next_u64());

        let mut c = SplitMix64::from_seed(5u64.to_le_bytes());
        let mut d = SplitMix64::new(5);
        assert_eq!(c.next_u64(), d.next_u64());
    }

    #[test]
    fn zero_seed_state_is_not_degenerate() {
        let mut rng = Xoshiro256StarStar::from_seed([0u8; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert!(a != 0 || b != 0);
    }
}
