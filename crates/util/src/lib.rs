//! Deterministic randomness and statistics utilities shared across the
//! `mmhew` workspace.
//!
//! Every simulation in this repository must be a *pure function of a 64-bit
//! master seed*: re-running an experiment with the same seed produces the
//! same trace on every platform. The standard-library hasher and
//! `rand::rngs::StdRng` do not promise cross-version stability, so this crate
//! provides:
//!
//! * [`rng::SplitMix64`] and [`rng::Xoshiro256StarStar`] — small, fast,
//!   well-understood generators with fixed, documented algorithms;
//! * [`seeding::SeedTree`] — a labelled seed-derivation tree so that each
//!   (experiment, repetition, node, purpose) tuple gets an independent
//!   stream, and changing one parameter does not correlate runs;
//! * [`stats`] — Welford accumulators, summaries, quantiles, confidence
//!   intervals and empirical CDFs used by the experiment harness;
//! * [`histogram`] — linear and logarithmic histograms for completion-time
//!   distributions.
//!
//! # Examples
//!
//! ```
//! use mmhew_util::seeding::SeedTree;
//! use rand::Rng;
//!
//! let tree = SeedTree::new(0xC0FFEE);
//! let mut node_rng = tree.branch("node").index(7).rng();
//! let p: f64 = node_rng.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&p));
//! ```

pub mod histogram;
pub mod rng;
pub mod seeding;
pub mod stats;

pub use histogram::Histogram;
pub use rng::{SplitMix64, Xoshiro256StarStar};
pub use seeding::SeedTree;
pub use stats::{ecdf, mean_confidence_interval, quantile, Summary, Welford};
