//! Streaming and batch statistics for experiment results.

use serde::{Deserialize, Serialize};

/// Welford's online algorithm for mean and variance.
///
/// Numerically stable single-pass accumulation; merging two accumulators is
/// supported so per-thread partial results can be combined.
///
/// # Examples
///
/// ```
/// use mmhew_util::Welford;
///
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     w.push(x);
/// }
/// assert_eq!(w.count(), 4);
/// assert!((w.mean() - 2.5).abs() < 1e-12);
/// assert!((w.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (Chan et al. parallel form).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 if fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// A batch summary of a sample: count, mean, stddev, min/max and quartiles.
///
/// # Examples
///
/// ```
/// use mmhew_util::Summary;
///
/// let s = Summary::from_samples(&[3.0, 1.0, 2.0]);
/// assert_eq!(s.n, 3);
/// assert_eq!(s.min, 1.0);
/// assert_eq!(s.median, 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// First quartile (p25).
    pub p25: f64,
    /// Median (p50).
    pub median: f64,
    /// Third quartile (p75).
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample. Returns an all-zero summary for an empty slice.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                n: 0,
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                p25: 0.0,
                median: 0.0,
                p75: 0.0,
                p95: 0.0,
                max: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        let mut w = Welford::new();
        for &x in samples {
            w.push(x);
        }
        Self {
            n: samples.len(),
            mean: w.mean(),
            stddev: w.stddev(),
            min: sorted[0],
            p25: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            p75: quantile_sorted(&sorted, 0.75),
            p95: quantile_sorted(&sorted, 0.95),
            max: *sorted.last().expect("non-empty"),
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval on the
    /// mean.
    pub fn ci95_halfwidth(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        1.96 * self.stddev / (self.n as f64).sqrt()
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.2}±{:.2} [min={:.2} p50={:.2} p95={:.2} max={:.2}]",
            self.n,
            self.mean,
            self.ci95_halfwidth(),
            self.min,
            self.median,
            self.p95,
            self.max
        )
    }
}

/// Linear-interpolation quantile of an *unsorted* sample.
///
/// # Panics
///
/// Panics if `samples` is empty, `q` is outside `[0, 1]`, or any sample is
/// NaN.
pub fn quantile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "quantile of empty sample");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    quantile_sorted(&sorted, q)
}

fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile order must be in [0,1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Normal-approximation confidence interval for the mean of a sample:
/// returns `(mean, halfwidth)` at the given z-score (1.96 for 95%).
pub fn mean_confidence_interval(samples: &[f64], z: f64) -> (f64, f64) {
    let mut w = Welford::new();
    for &x in samples {
        w.push(x);
    }
    if w.count() < 2 {
        return (w.mean(), 0.0);
    }
    (w.mean(), z * w.stddev() / (w.count() as f64).sqrt())
}

/// Empirical CDF: returns the sorted sample paired with cumulative
/// probabilities `i/n` for `i = 1..=n`.
pub fn ecdf(samples: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
    let n = sorted.len() as f64;
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.sample_variance() - var).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.sample_variance() - whole.sample_variance()).abs() < 1e-10);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        let b = Welford::new();
        let before = a;
        a.merge(&b);
        assert_eq!(a, before);
        let mut c = Welford::new();
        c.merge(&before);
        assert_eq!(c, before);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_single_element() {
        assert_eq!(quantile(&[42.0], 0.9), 42.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::from_samples(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert!((s.mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_is_zeroed() {
        let s = Summary::from_samples(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.ci95_halfwidth(), 0.0);
    }

    #[test]
    fn ci_shrinks_with_sample_size() {
        let small: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let large: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        let (_, hw_small) = mean_confidence_interval(&small, 1.96);
        let (_, hw_large) = mean_confidence_interval(&large, 1.96);
        assert!(hw_large < hw_small);
    }

    #[test]
    fn ecdf_is_monotone_and_ends_at_one() {
        let xs = [3.0, 1.0, 2.0, 2.0];
        let cdf = ecdf(&xs);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.last().expect("non-empty").1, 1.0);
        for pair in cdf.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
            assert!(pair[0].1 < pair[1].1);
        }
    }
}
