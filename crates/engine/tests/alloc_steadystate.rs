//! Steady-state allocation audit of the synchronous engine's slot loop.
//!
//! ISSUE acceptance: after warm-up (scratch buffers grown to the network
//! size) a slot with no attached sink must perform **zero** heap
//! allocation — transmitter-centric resolution, beacon delivery from the
//! per-node cache, and coverage recording all run out of persistent
//! buffers. The same bar applies to the event executor: once its wake
//! queue, per-node action buffers, and generation counters are grown, an
//! `EventCursor::advance` (scan-ahead, dead-air drain, stepped slot)
//! allocates nothing.
//!
//! The whole file is a single test: a process-global counting allocator
//! cannot distinguish threads, so no other test may run in this binary.

use mmhew_engine::{
    EventCursor, FaultPlan, NeighborTable, SyncEngine, SyncProtocol, SyncRunConfig,
};
use mmhew_faults::{CrashSchedule, GilbertElliott, JamSchedule, LinkLossModel};
use mmhew_radio::{Beacon, Impairments, SlotAction};
use mmhew_spectrum::{AvailabilityModel, ChannelId};
use mmhew_topology::{NetworkBuilder, NodeId};
use mmhew_util::{SeedTree, Xoshiro256StarStar};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation (fresh, zeroed, or growing) since startup.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation-free periodic protocol: node `i` transmits every `period`-th
/// slot (staggered by `i`) on a fixed channel, listens on a rotating
/// channel otherwise, and ignores beacons. The point is to keep the
/// *medium* busy — deliveries, collisions, and silence all occur — while
/// the protocol layer itself provably allocates nothing.
struct Metronome {
    offset: u64,
    period: u64,
    universe: u16,
    table: NeighborTable,
}

impl SyncProtocol for Metronome {
    fn on_slot(&mut self, slot: u64, _rng: &mut Xoshiro256StarStar) -> SlotAction {
        let tick = slot + self.offset;
        if tick.is_multiple_of(self.period) {
            SlotAction::Transmit {
                channel: ChannelId::new((self.offset % self.universe as u64) as u16),
            }
        } else {
            SlotAction::Listen {
                channel: ChannelId::new((tick % self.universe as u64) as u16),
            }
        }
    }

    // Deterministic and draw-free, but the listen channel rotates every
    // slot, so there is no repeat window to declare: the bound is always
    // "now" (scan slot by slot — the buffered listens still reveal the
    // dead air for the executor to skip).
    fn next_transmission_bound(&self, now: u64) -> Option<u64> {
        Some(now)
    }

    fn on_beacon(&mut self, _beacon: &Beacon, _channel: ChannelId) {}

    fn table(&self) -> &NeighborTable {
        &self.table
    }
}

#[test]
fn warm_engine_slot_loop_allocates_nothing() {
    let net = NetworkBuilder::grid(3, 3)
        .universe(3)
        .availability(AvailabilityModel::UniformSubset { size: 2 })
        .build(SeedTree::new(0xA110C))
        .expect("build network");
    let n = net.node_count();
    for q in [1.0f64, 0.9] {
        let config = if q >= 1.0 {
            SyncRunConfig::fixed(u64::MAX)
        } else {
            SyncRunConfig::fixed(u64::MAX)
                .with_impairments(Impairments::with_delivery_probability(q))
        };
        let mut engine = SyncEngine::new(
            &net,
            (0..n)
                .map(|i| {
                    Box::new(Metronome {
                        offset: i as u64,
                        period: 4,
                        universe: 3,
                        table: NeighborTable::new(),
                    }) as Box<dyn SyncProtocol>
                })
                .collect(),
            vec![0; n],
            SeedTree::new(7),
        );
        // Warm-up: grow every lazily-sized scratch buffer (resolver,
        // reused action vector) and fault in the allocator bookkeeping.
        for _ in 0..500 {
            engine.step(&config);
        }
        let mut delivered = 0usize;
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for _ in 0..2_000 {
            delivered += engine.step(&config).deliveries.len();
        }
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert!(
            delivered > 0,
            "medium must stay busy for the audit to mean anything"
        );
        assert_eq!(
            after - before,
            0,
            "steady-state slot loop allocated (q={q})"
        );
    }

    // A dense fault plan must preserve the zero-allocation steady state:
    // per-link Gilbert–Elliott chains, a permanent jammer on channel 0,
    // and a crash outage that transitions *during* the audited window all
    // run out of scratch pre-reserved at construction.
    let plan = FaultPlan::new()
        .with_default_loss(LinkLossModel::GilbertElliott(GilbertElliott::bursty(
            0.3, 8.0,
        )))
        .with_jamming(JamSchedule::fixed([0u16].into_iter().collect()))
        .with_crashes(CrashSchedule::outage(NodeId::new(0), 600, 700));
    let config = SyncRunConfig::fixed(u64::MAX);
    let mut engine = SyncEngine::new(
        &net,
        (0..n)
            .map(|i| {
                Box::new(Metronome {
                    offset: i as u64,
                    period: 4,
                    universe: 3,
                    table: NeighborTable::new(),
                }) as Box<dyn SyncProtocol>
            })
            .collect(),
        vec![0; n],
        SeedTree::new(8),
    )
    .with_faults(plan);
    for _ in 0..500 {
        engine.step(&config);
    }
    let mut delivered = 0usize;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..2_000 {
        delivered += engine.step(&config).deliveries.len();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(
        delivered > 0,
        "faulted medium must still deliver for the audit to mean anything"
    );
    assert_eq!(
        after - before,
        0,
        "steady-state slot loop allocated under a dense fault plan"
    );

    // The event executor's steady state is held to the same bar. Period 64
    // leaves long dead-air gaps (9 transmission-bearing slots per 64), so
    // every advance exercises the full cycle: per-node scan-ahead into the
    // action buffers, a multi-slot dead-air drain, then one stepped slot —
    // all out of the heap, buffers, and counters grown during warm-up.
    let config = SyncRunConfig::fixed(u64::MAX);
    let mut engine = SyncEngine::new(
        &net,
        (0..n)
            .map(|i| {
                Box::new(Metronome {
                    offset: i as u64,
                    period: 64,
                    universe: 3,
                    table: NeighborTable::new(),
                }) as Box<dyn SyncProtocol>
            })
            .collect(),
        vec![0; n],
        SeedTree::new(9),
    );
    let mut cursor = EventCursor::new(n);
    for _ in 0..200 {
        // Every advance steps a slot with a transmission (the metronome
        // guarantees one), so a `true` return is the busy-medium witness.
        assert!(cursor.advance(&mut engine, &config), "budget is unbounded");
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..2_000 {
        assert!(cursor.advance(&mut engine, &config), "budget is unbounded");
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state event-executor advance allocated"
    );

    // Churn-heavy dynamics: `Network::apply`'s incremental CSR patching
    // is held to the same bar. One warm cycle grows the persistent
    // `ApplyScratch` buffers (and settles edge re-insertion order to its
    // fixed point); from then on a full leave/rejoin + edge flap +
    // spectrum flap cycle allocates nothing and restores the network
    // bit-for-bit.
    use mmhew_topology::NetworkEvent;
    let mut churned = NetworkBuilder::grid(3, 3)
        .universe(3)
        .availability(AvailabilityModel::UniformSubset { size: 2 })
        .build(SeedTree::new(0xA110C))
        .expect("build network");
    let center = NodeId::new(4);
    let rejoin = NetworkEvent::NodeJoin {
        node: center,
        position: churned.topology().position(center),
        available: churned.available(center).to_owned(),
    };
    let flapped = churned
        .available(NodeId::new(0))
        .iter()
        .next()
        .expect("node 0 holds a channel");
    let mut cycle = vec![NetworkEvent::NodeLeave { node: center }, rejoin];
    for &nb in &[1u32, 3, 5, 7] {
        cycle.push(NetworkEvent::EdgeAdd {
            from: center,
            to: NodeId::new(nb),
        });
        cycle.push(NetworkEvent::EdgeAdd {
            from: NodeId::new(nb),
            to: center,
        });
    }
    cycle.push(NetworkEvent::ChannelLost {
        node: NodeId::new(0),
        channel: flapped,
    });
    cycle.push(NetworkEvent::ChannelGained {
        node: NodeId::new(0),
        channel: flapped,
    });
    cycle.push(NetworkEvent::EdgeRemove {
        from: NodeId::new(0),
        to: NodeId::new(1),
    });
    cycle.push(NetworkEvent::EdgeAdd {
        from: NodeId::new(0),
        to: NodeId::new(1),
    });
    for _ in 0..3 {
        for event in &cycle {
            churned.apply(event).expect("valid churn event");
        }
    }
    let snapshot = churned.clone();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..200 {
        for event in &cycle {
            churned.apply(event).expect("valid churn event");
        }
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "churn-heavy apply cycle allocated in steady state"
    );
    assert_eq!(churned, snapshot, "each churn cycle is state-restoring");
}
