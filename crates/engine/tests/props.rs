//! Property-based tests of the engines with arbitrary (random-behaviour)
//! protocols: accounting and causality invariants must hold for *any*
//! protocol, not just the paper's algorithms.

use mmhew_engine::{
    AsyncEngine, AsyncProtocol, AsyncRunConfig, AsyncStartSchedule, ClockConfig, NeighborTable,
    StartSchedule, SyncEngine, SyncProtocol, SyncRunConfig,
};
use mmhew_radio::{Beacon, FrameAction, SlotAction};
use mmhew_spectrum::{AvailabilityModel, ChannelId, ChannelSet};
use mmhew_time::{DriftBound, DriftModel, LocalDuration, RealDuration};
use mmhew_topology::{NetworkBuilder, NodeId};
use mmhew_util::{SeedTree, Xoshiro256StarStar};
use proptest::prelude::*;
use rand::Rng;

/// A protocol that acts uniformly at random each slot/frame — the most
/// chaotic legal behaviour.
struct Chaotic {
    available: ChannelSet,
    table: NeighborTable,
}

impl Chaotic {
    fn boxed_sync(available: ChannelSet) -> Box<dyn SyncProtocol> {
        Box::new(Self {
            available,
            table: NeighborTable::new(),
        })
    }

    fn boxed_async(available: ChannelSet) -> Box<dyn AsyncProtocol> {
        Box::new(Self {
            available,
            table: NeighborTable::new(),
        })
    }

    fn pick(&self, rng: &mut Xoshiro256StarStar) -> ChannelId {
        self.available.choose_uniform(rng).expect("non-empty")
    }
}

impl SyncProtocol for Chaotic {
    fn on_slot(&mut self, _slot: u64, rng: &mut Xoshiro256StarStar) -> SlotAction {
        let channel = self.pick(rng);
        match rng.gen_range(0..3) {
            0 => SlotAction::Transmit { channel },
            1 => SlotAction::Listen { channel },
            _ => SlotAction::Quiet,
        }
    }

    fn on_beacon(&mut self, beacon: &Beacon, _channel: ChannelId) {
        self.table.record(
            beacon.sender(),
            beacon.available().intersection(&self.available),
        );
    }

    fn table(&self) -> &NeighborTable {
        &self.table
    }
}

impl AsyncProtocol for Chaotic {
    fn on_frame(&mut self, _frame: u64, rng: &mut Xoshiro256StarStar) -> FrameAction {
        let channel = self.pick(rng);
        if rng.gen_bool(0.5) {
            FrameAction::Transmit { channel }
        } else {
            FrameAction::Listen { channel }
        }
    }

    fn on_beacon(&mut self, beacon: &Beacon, _channel: ChannelId) {
        self.table.record(
            beacon.sender(),
            beacon.available().intersection(&self.available),
        );
    }

    fn table(&self) -> &NeighborTable {
        &self.table
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Synchronous accounting: every node accounts every slot; deliveries
    /// never exceed listen slots; coverage times lie inside the run.
    #[test]
    fn sync_accounting_invariants(
        n in 2usize..10,
        universe in 1u16..5,
        p in 0.3f64..1.0,
        budget in 1u64..400,
        window in 0u64..50,
        seed in 0u64..u64::MAX,
    ) {
        let net = NetworkBuilder::erdos_renyi(n, p)
            .universe(universe)
            .build(SeedTree::new(seed))
            .expect("valid");
        let protocols = (0..n)
            .map(|_| Chaotic::boxed_sync(ChannelSet::full(universe)))
            .collect();
        let starts = StartSchedule::Staggered { window }
            .materialize(n, SeedTree::new(seed ^ 1));
        let engine = SyncEngine::new(&net, protocols, starts.clone(), SeedTree::new(seed ^ 2));
        let out = engine.run(SyncRunConfig::fixed(budget));

        prop_assert_eq!(out.slots_executed(), budget);
        let mut total_listen = 0;
        for (i, c) in out.action_counts().iter().enumerate() {
            prop_assert_eq!(c.total(), budget, "node {} accounts all slots", i);
            // Pre-start slots are quiet.
            prop_assert!(c.quiet >= starts[i].min(budget));
            total_listen += c.listen;
        }
        prop_assert!(out.deliveries() <= total_listen);
        for (_, t) in out.link_coverage() {
            if let Some(t) = t {
                prop_assert!(*t < budget);
            }
        }
        // Tables only contain true neighbors with subset channel sets.
        for (i, table) in out.tables().iter().enumerate() {
            let u = NodeId::new(i as u32);
            for (v, common) in table.iter() {
                prop_assert!(net.topology().in_neighbors(u).contains(&v));
                let truth = net.available(v).intersection(net.available(u));
                prop_assert!(common.is_subset(&truth));
            }
        }
    }

    /// Asynchronous accounting: frame budgets respected; coverage at or
    /// before completion time; energy counts cover executed frames.
    #[test]
    fn async_accounting_invariants(
        n in 2usize..8,
        universe in 1u16..4,
        max_frames in 1u64..200,
        seed in 0u64..u64::MAX,
    ) {
        let net = NetworkBuilder::complete(n)
            .universe(universe)
            .availability(AvailabilityModel::Full)
            .build(SeedTree::new(seed))
            .expect("valid");
        let protocols = (0..n)
            .map(|_| Chaotic::boxed_async(ChannelSet::full(universe)))
            .collect();
        let config = AsyncRunConfig::until_complete(max_frames)
            .with_frame_len(LocalDuration::from_nanos(3_000))
            .with_clocks(ClockConfig {
                drift: DriftModel::RandomPiecewise {
                    bound: DriftBound::PAPER,
                    segment: RealDuration::from_nanos(4_500),
                },
                offset_window: LocalDuration::from_nanos(9_000),
            })
            .with_starts(AsyncStartSchedule::Staggered {
                window: RealDuration::from_nanos(6_000),
            });
        let engine = AsyncEngine::new(&net, protocols, config, SeedTree::new(seed ^ 3));
        let out = engine.run();

        for (i, &frames) in out.frames_executed().iter().enumerate() {
            prop_assert!(frames <= max_frames, "node {i} overran its budget");
            let c = out.action_counts()[i];
            // Actions are counted at frame *start*; stopping on completion
            // can leave at most one started-but-unfinished frame.
            let active = c.transmit + c.listen;
            prop_assert!(
                active == frames || active == frames + 1,
                "node {i}: {active} active frames vs {frames} executed"
            );
        }
        if let Some(tc) = out.completion_time() {
            for (_, t) in out.link_coverage() {
                if let Some(t) = t {
                    prop_assert!(*t <= tc);
                }
            }
            prop_assert!(out.completed());
        }
        // Soundness of tables.
        for (i, table) in out.tables().iter().enumerate() {
            let u = NodeId::new(i as u32);
            for (v, common) in table.iter() {
                prop_assert!(net.topology().in_neighbors(u).contains(&v));
                let truth = net.available(v).intersection(net.available(u));
                prop_assert!(common.is_subset(&truth));
            }
        }
    }

    /// Engine determinism with chaotic protocols: identical seeds replay
    /// identical traces.
    #[test]
    fn engines_replay_exactly(
        n in 2usize..8,
        budget in 1u64..200,
        seed in 0u64..u64::MAX,
    ) {
        let net = NetworkBuilder::ring(n.max(3))
            .universe(2)
            .build(SeedTree::new(seed))
            .expect("valid");
        let run = || {
            let protocols = (0..n.max(3))
                .map(|_| Chaotic::boxed_sync(ChannelSet::full(2)))
                .collect();
            SyncEngine::new(&net, protocols, vec![0; n.max(3)], SeedTree::new(seed ^ 9))
                .run(SyncRunConfig::fixed(budget))
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.deliveries(), b.deliveries());
        prop_assert_eq!(a.collisions(), b.collisions());
        prop_assert_eq!(a.link_coverage(), b.link_coverage());
        prop_assert_eq!(a.action_counts(), b.action_counts());
    }
}
