//! End-to-end equivalence of the engine's hot loop with a straightforward
//! reference replay.
//!
//! The `SyncEngine` fast paths under test:
//!
//! * transmitter-centric medium resolution (`SlotResolver` instead of the
//!   reference `resolve_slot`),
//! * the per-node beacon cache (instead of cloning the sender's
//!   availability on every delivery),
//! * beacon-cache invalidation under dynamics events that change
//!   availability (`NodeJoin` / `ChannelGained` / `ChannelLost`),
//! * the dead-air-skipping event executor (`SyncEngine::run_event`),
//!   which must replay the same reference byte for byte — including the
//!   occasional all-listen slots it skips and the dynamics boundaries it
//!   must wake for.
//!
//! The reference replay below re-implements the engine's slot loop the
//! slow, obviously-correct way — reference resolver, a fresh
//! `Beacon::new(from, network.available(from).to_owned())` per delivery —
//! with the engine's exact seeding discipline, and every observable of the
//! two runs must agree: coverage stamps, tables (including the channel
//! sets recorded from beacons), delivery/collision/loss counts, and
//! per-node action counts.

use mmhew_engine::{
    ActionCounts, CoverageTracker, DynamicsSchedule, Engine, NeighborTable, SyncEngine,
    SyncProtocol, SyncRunConfig,
};
use mmhew_radio::{resolve_slot, Beacon, Impairments, SlotAction};
use mmhew_spectrum::{ChannelId, ChannelSet};
use mmhew_topology::{AvailabilityModel, Link, Network, NetworkBuilder, NetworkEvent, NodeId};
use mmhew_util::{SeedTree, Xoshiro256StarStar};
use rand::Rng;
use std::collections::BTreeMap;

/// RNG-hungry test protocol: every active slot draws a channel and a coin
/// from the node's own stream. Any divergence in medium-RNG consumption or
/// delivery order between engine and reference cascades into different
/// tables and coverage stamps within a few slots.
struct RandomChatter {
    universe: u16,
    table: NeighborTable,
}

impl RandomChatter {
    fn boxed(universe: u16) -> Box<dyn SyncProtocol> {
        Box::new(Self {
            universe,
            table: NeighborTable::new(),
        })
    }
}

impl SyncProtocol for RandomChatter {
    fn on_slot(&mut self, _slot: u64, rng: &mut Xoshiro256StarStar) -> SlotAction {
        let channel = ChannelId::new(rng.gen_range(0..self.universe));
        if rng.gen_bool(0.4) {
            SlotAction::Transmit { channel }
        } else {
            SlotAction::Listen { channel }
        }
    }

    // Every active slot draws afresh, so the draw-free repeat window is
    // empty — the exact bound for a per-slot randomized schedule. This
    // opts the protocol into the event executor's fast path.
    fn next_transmission_bound(&self, now: u64) -> Option<u64> {
        Some(now)
    }

    // Recording the beacon's channel set (not just the sender) is what
    // makes stale beacon caching visible: after a ChannelLost event the
    // cached and freshly-built beacons differ in content, not presence.
    fn on_beacon(&mut self, beacon: &Beacon, _channel: ChannelId) {
        self.table
            .record(beacon.sender(), beacon.available().to_owned());
    }

    fn table(&self) -> &NeighborTable {
        &self.table
    }
}

/// Everything observable about a run, in comparison-friendly form.
#[derive(Debug, PartialEq)]
struct Observables {
    deliveries: u64,
    collisions: u64,
    impairment_losses: u64,
    coverage: BTreeMap<Link, Option<u64>>,
    tables: Vec<Vec<(NodeId, ChannelSet)>>,
    action_counts: Vec<ActionCounts>,
}

/// Replays the engine's slot loop the slow way: reference resolver, fresh
/// beacon per delivery, same seeding (`seed/node/<i>` and `seed/medium`).
fn reference_run(
    base: &Network,
    schedule: Option<DynamicsSchedule>,
    start_slots: &[u64],
    seed: SeedTree,
    impairments: &Impairments,
    slots: u64,
) -> Observables {
    let mut network = base.clone();
    let n = network.node_count();
    let universe = network.universe_size();
    let mut protocols: Vec<Box<dyn SyncProtocol>> =
        (0..n).map(|_| RandomChatter::boxed(universe)).collect();
    let mut node_rngs: Vec<Xoshiro256StarStar> = (0..n)
        .map(|i| seed.branch("node").index(i as u64).rng())
        .collect();
    let mut medium_rng = seed.branch("medium").rng();
    let mut tracker: CoverageTracker<u64> = CoverageTracker::new(&network);
    let mut schedule = schedule;
    let (mut deliveries, mut collisions, mut losses) = (0u64, 0u64, 0u64);
    let mut action_counts = vec![ActionCounts::default(); n];
    for slot in 0..slots {
        if let Some(s) = schedule.as_mut() {
            let mut mutated = false;
            while let Some(timed) = s.next_due(slot) {
                network.apply(&timed.event).expect("valid dynamics event");
                mutated = true;
            }
            if mutated {
                tracker.resync(&network);
            }
        }
        let actions: Vec<SlotAction> = (0..n)
            .map(|i| {
                if slot < start_slots[i] {
                    SlotAction::Quiet
                } else {
                    protocols[i].on_slot(slot - start_slots[i], &mut node_rngs[i])
                }
            })
            .collect();
        for (i, action) in actions.iter().enumerate() {
            match action {
                SlotAction::Transmit { .. } => action_counts[i].transmit += 1,
                SlotAction::Listen { .. } => action_counts[i].listen += 1,
                SlotAction::Quiet => action_counts[i].quiet += 1,
            }
        }
        let outcome = resolve_slot(&network, &actions, impairments, &mut medium_rng);
        for d in &outcome.deliveries {
            let beacon = Beacon::new(d.from, network.available(d.from).to_owned());
            protocols[d.to.as_usize()].on_beacon(&beacon, d.channel);
            tracker.record(
                Link {
                    from: d.from,
                    to: d.to,
                },
                slot,
            );
        }
        deliveries += outcome.deliveries.len() as u64;
        collisions += outcome.collisions.len() as u64;
        losses += outcome.impairment_losses as u64;
    }
    Observables {
        deliveries,
        collisions,
        impairment_losses: losses,
        coverage: tracker.per_link().collect(),
        tables: protocols
            .iter()
            .map(|p| p.table().to_sorted_vec())
            .collect(),
        action_counts,
    }
}

/// Runs the real engine with identical inputs and extracts the same
/// observables. `executor` picks the slot-by-slot loop or the dead-air-
/// skipping event executor — both must replay the reference byte for byte.
fn engine_run(
    base: &Network,
    schedule: Option<DynamicsSchedule>,
    start_slots: &[u64],
    seed: SeedTree,
    impairments: &Impairments,
    slots: u64,
    executor: Engine,
) -> Observables {
    let n = base.node_count();
    let universe = base.universe_size();
    let mut engine = SyncEngine::new(
        base,
        (0..n).map(|_| RandomChatter::boxed(universe)).collect(),
        start_slots.to_vec(),
        seed,
    );
    if let Some(s) = schedule {
        engine = engine.with_dynamics(s);
    }
    let config = SyncRunConfig::fixed(slots).with_impairments(*impairments);
    let out = match executor {
        Engine::Slotted => engine.run(config),
        Engine::Event => engine.run_event(config),
    };
    Observables {
        deliveries: out.deliveries(),
        collisions: out.collisions(),
        impairment_losses: out.impairment_losses(),
        coverage: out.link_coverage().iter().copied().collect(),
        tables: out.tables().iter().map(|t| t.to_sorted_vec()).collect(),
        action_counts: out.action_counts().to_vec(),
    }
}

fn test_network() -> Network {
    NetworkBuilder::ring(6)
        .universe(3)
        .availability(AvailabilityModel::UniformSubset { size: 2 })
        .build(SeedTree::new(0x5EED).branch("net"))
        .expect("build network")
}

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

#[test]
fn static_run_matches_reference_replay() {
    let net = test_network();
    let starts = [0, 0, 3, 0, 5, 0];
    for (seed, q) in [(11u64, 1.0f64), (12, 0.85), (13, 0.4)] {
        let imp = if q >= 1.0 {
            Impairments::reliable()
        } else {
            Impairments::with_delivery_probability(q)
        };
        let seed = SeedTree::new(seed);
        let reference = reference_run(&net, None, &starts, seed, &imp, 400);
        for executor in [Engine::Slotted, Engine::Event] {
            let engine = engine_run(&net, None, &starts, seed, &imp, 400, executor);
            assert_eq!(engine, reference, "divergence at q={q} ({executor:?})");
        }
    }
}

/// The dynamics schedule exercises every event class, including the three
/// that must invalidate the beacon cache (`ChannelLost`, `ChannelGained`,
/// `NodeJoin`) and a leave/rejoin cycle.
fn churny_schedule() -> DynamicsSchedule {
    use mmhew_dynamics::TimedEvent;
    let full = ChannelSet::full(3);
    DynamicsSchedule::new(vec![
        TimedEvent::new(
            5,
            NetworkEvent::ChannelLost {
                node: n(1),
                channel: ChannelId::new(0),
            },
        ),
        TimedEvent::new(
            9,
            NetworkEvent::EdgeRemove {
                from: n(0),
                to: n(1),
            },
        ),
        TimedEvent::new(
            20,
            NetworkEvent::ChannelGained {
                node: n(1),
                channel: ChannelId::new(2),
            },
        ),
        TimedEvent::new(
            20,
            NetworkEvent::ChannelGained {
                node: n(3),
                channel: ChannelId::new(1),
            },
        ),
        TimedEvent::new(
            35,
            NetworkEvent::EdgeAdd {
                from: n(0),
                to: n(1),
            },
        ),
        TimedEvent::new(60, NetworkEvent::NodeLeave { node: n(4) }),
        TimedEvent::new(
            90,
            NetworkEvent::NodeJoin {
                node: n(4),
                position: (0.0, 0.0),
                available: full,
            },
        ),
        TimedEvent::new(
            90,
            NetworkEvent::EdgeAdd {
                from: n(3),
                to: n(4),
            },
        ),
        TimedEvent::new(
            90,
            NetworkEvent::EdgeAdd {
                from: n(4),
                to: n(3),
            },
        ),
        TimedEvent::new(
            90,
            NetworkEvent::EdgeAdd {
                from: n(4),
                to: n(5),
            },
        ),
        TimedEvent::new(
            90,
            NetworkEvent::EdgeAdd {
                from: n(5),
                to: n(4),
            },
        ),
        TimedEvent::new(
            120,
            NetworkEvent::ChannelLost {
                node: n(4),
                channel: ChannelId::new(1),
            },
        ),
    ])
}

#[test]
fn dynamic_run_matches_reference_replay() {
    let net = test_network();
    let starts = [0u64; 6];
    for (seed, q) in [(21u64, 1.0f64), (22, 0.7)] {
        let imp = if q >= 1.0 {
            Impairments::reliable()
        } else {
            Impairments::with_delivery_probability(q)
        };
        let seed = SeedTree::new(seed);
        let reference = reference_run(&net, Some(churny_schedule()), &starts, seed, &imp, 300);
        for executor in [Engine::Slotted, Engine::Event] {
            let engine = engine_run(
                &net,
                Some(churny_schedule()),
                &starts,
                seed,
                &imp,
                300,
                executor,
            );
            assert_eq!(
                engine, reference,
                "divergence under dynamics at q={q} ({executor:?})"
            );
        }
    }
}
