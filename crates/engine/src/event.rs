//! Event-driven executor for the synchronous engine: skip dead air, keep
//! byte-identity to the slotted oracle.
//!
//! At low transmit probability most slots are pure listening — nothing is
//! on the medium, nothing is delivered, and (by construction of
//! `SlotResolver`) nothing is drawn from the medium RNG. The slotted loop
//! still pays a full per-slot pass for every one of those slots. The
//! executor here instead keeps a wake queue of the slots that can matter —
//! each node's next transmission plus every pending dynamics boundary —
//! and advances virtual time directly to the next such slot, consuming the
//! skipped listen-only slots in bulk.
//!
//! # How byte-identity is preserved
//!
//! Per-node RNG streams are independent (`seed.branch("node").index(i)`),
//! so a node's draws may be evaluated *early* without perturbing anyone
//! else: the executor scans each node ahead by calling the real `on_slot`
//! with the real RNG, buffering the returned actions until the scan hits a
//! `Transmit`. The per-node draw sequence is exactly the slotted one —
//! only its wall-clock position moves. The medium RNG is only ever drawn
//! by the resolver, and a slot with no transmitters draws nothing, so
//! skipping those slots leaves the medium stream untouched. Stepped slots
//! (any transmission, any dynamics boundary, and always the first slot)
//! run through the *same* `begin_slot`/`finish_slot`/`post_step_stop` code
//! the slotted loop uses, so outcomes cannot drift.
//!
//! Scan-ahead is sound only when the protocol promises its action stream
//! is beacon-independent — that is what
//! [`SyncProtocol::next_transmission_bound`](crate::SyncProtocol::next_transmission_bound)
//! declares. Runs that can't promise it (a `None` hook anywhere, an active
//! fault plan, or an enabled sink — every slot of a trace-bearing run
//! emits events, so it has no dead air) fall back to the slotted loop
//! wholesale and are trivially byte-identical.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use mmhew_radio::SlotAction;

use crate::config::SyncRunConfig;
use crate::sync::{SyncEngine, SyncOutcome};

/// Which executor drives a synchronous [`run`](SyncEngine::run): the
/// slot-by-slot oracle (default) or the dead-air-skipping event executor,
/// which is held byte-identical to the oracle at the same seed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Engine {
    /// Step every slot in order — the reference semantics.
    #[default]
    Slotted,
    /// Jump straight to the next transmission-bearing (or dynamics) slot,
    /// bulk-consuming the skipped listen-only slots. Falls back to
    /// [`Slotted`](Engine::Slotted) whenever the fast path's preconditions
    /// don't hold.
    Event,
}

/// Time-ordered wake queue plus per-node action lookahead for the event
/// executor. One [`advance`](EventCursor::advance) call consumes the dead
/// air up to the next wake and steps that one slot through the shared
/// slotted machinery — step-granular on purpose, so the steady state can
/// be audited (warm up, then count allocations) exactly like the slotted
/// loop.
///
/// Invariants:
///
/// * Every node's buffer front is aligned with the engine's current slot,
///   and extends either through that node's next `Transmit` (inclusive) or
///   to the horizon if the node stays silent.
/// * Every buffered `Transmit` has exactly one live `(slot, generation,
///   node)` entry in the heap; entries whose generation no longer matches
///   the node's counter are stale and discarded lazily on pop. (With
///   eager pre-drawing nothing currently invalidates a prediction — the
///   counter is the safety net that keeps lazy deletion correct if a
///   future caller rescans a node mid-flight.)
/// * No RNG is ever drawn for a slot at or past the horizon
///   (`config.max_slots`); draws buffered past an early stop are dropped
///   unobserved, which is exactly what the slotted engine's unreached
///   slots would have drawn.
pub struct EventCursor {
    /// Min-heap of `(wake_slot, generation, node)` — the next slot at
    /// which each scanned node transmits.
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    /// Lazy-invalidation counters, bumped whenever a node is (re)scanned.
    generation: Vec<u64>,
    /// Pre-drawn actions per node; front == the engine's current slot.
    buffers: Vec<VecDeque<SlotAction>>,
    /// First absolute slot *not yet* buffered for each node.
    frontier: Vec<u64>,
    /// The first slot of a run is always stepped, never skipped, so the
    /// shared post-step stop checks see a complete- or terminated-from-
    /// the-start run exactly when the slotted loop would.
    primed: bool,
}

impl EventCursor {
    /// A cursor for an engine with `n` nodes, positioned at its current
    /// slot with nothing scanned yet.
    pub fn new(n: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(n),
            generation: vec![0; n],
            buffers: vec![VecDeque::new(); n],
            frontier: vec![0; n],
            primed: false,
        }
    }

    /// Scans node `i` forward from its frontier: pre-start slots buffer
    /// `Quiet` without touching the protocol (mirroring the slotted fill),
    /// active slots call the real `on_slot` with the real per-node RNG.
    /// Stops at the first `Transmit` (registering a wake) or at the
    /// horizon. Non-transmit actions consult the protocol's declared
    /// repeat window to fill blocked schedules without virtual calls.
    fn scan(&mut self, engine: &mut SyncEngine<'_>, i: usize, horizon: u64) {
        let start = engine.start_slots[i];
        let mut s = self.frontier[i];
        loop {
            if s >= horizon {
                self.frontier[i] = horizon;
                return;
            }
            if s < start {
                let until = start.min(horizon);
                for _ in s..until {
                    self.buffers[i].push_back(SlotAction::Quiet);
                }
                s = until;
                continue;
            }
            let action = engine.protocols[i].on_slot(s - start, &mut engine.node_rngs[i]);
            self.buffers[i].push_back(action);
            s += 1;
            if matches!(action, SlotAction::Transmit { .. }) {
                self.generation[i] += 1;
                self.heap
                    .push(Reverse((s - 1, self.generation[i], i as u32)));
                self.frontier[i] = s;
                return;
            }
            // Blocked fast-fill: `[s, bound)` repeats `action` draw-free.
            if s < horizon {
                if let Some(bound) = engine.protocols[i].next_transmission_bound(s - start) {
                    let bound_abs = bound.saturating_add(start).min(horizon);
                    while s < bound_abs {
                        self.buffers[i].push_back(action);
                        s += 1;
                    }
                }
            }
        }
    }

    /// Consumes dead air up to the next wake (tallying the skipped
    /// listen-only actions exactly as the slotted loop would) and steps
    /// that slot through the shared slotted machinery. Returns `true` if a
    /// slot was stepped — the caller must then apply
    /// `post_step_stop` — or `false` if the run consumed trailing dead air
    /// to the horizon.
    pub fn advance(&mut self, engine: &mut SyncEngine<'_>, config: &SyncRunConfig) -> bool {
        debug_assert!(engine.slot < config.max_slots);
        let n = self.buffers.len();
        for i in 0..n {
            if self.frontier[i] <= engine.slot {
                self.scan(engine, i, config.max_slots);
            }
        }
        let mut wake = config.max_slots;
        if !self.primed {
            self.primed = true;
            wake = engine.slot;
        }
        while let Some(&Reverse((s, generation, i))) = self.heap.peek() {
            if s < engine.slot || generation != self.generation[i as usize] {
                self.heap.pop();
                continue;
            }
            wake = wake.min(s);
            break;
        }
        if let Some(at) = engine.next_dynamics_at() {
            wake = wake.min(at.max(engine.slot));
        }
        let wake = wake.min(config.max_slots);
        // Dead air: nothing on the medium, nothing delivered, no medium-RNG
        // draws — only the per-node action tallies the slotted loop would
        // have recorded.
        while engine.slot < wake {
            for (i, buffer) in self.buffers.iter_mut().enumerate() {
                let action = buffer.pop_front().expect("buffered through next wake");
                match action {
                    SlotAction::Transmit { .. } => {
                        unreachable!("transmissions are wakes, never dead air")
                    }
                    SlotAction::Listen { .. } => engine.action_counts[i].listen += 1,
                    SlotAction::Quiet => engine.action_counts[i].quiet += 1,
                }
            }
            engine.slot += 1;
        }
        if engine.slot >= config.max_slots {
            return false;
        }
        // Step the wake slot itself through the exact slotted code path,
        // feeding the pre-drawn actions in place of fresh `on_slot` calls.
        engine.begin_slot();
        engine.actions.clear();
        for buffer in &mut self.buffers {
            let action = buffer.pop_front().expect("buffered through next wake");
            engine.actions.push(action);
        }
        engine.finish_slot(config);
        // Retire wake entries for the slot just stepped.
        while let Some(&Reverse((s, _, _))) = self.heap.peek() {
            if s < engine.slot {
                self.heap.pop();
            } else {
                break;
            }
        }
        true
    }
}

impl<'n> SyncEngine<'n> {
    /// Runs to the same stopping point as [`run`](Self::run) — producing a
    /// byte-identical [`SyncOutcome`] at the same seed — but skips over
    /// dead air: stretches of slots in which no node transmits and no
    /// dynamics event is due are consumed in bulk instead of stepped.
    ///
    /// Falls back to [`run`](Self::run) wholesale when the fast path's
    /// preconditions fail: any protocol whose
    /// [`next_transmission_bound`](crate::SyncProtocol::next_transmission_bound)
    /// is `None`, an active fault plan, or an enabled sink (trace-bearing
    /// runs emit per-slot events, so they have no dead air to skip).
    pub fn run_event(mut self, config: SyncRunConfig) -> SyncOutcome {
        if !self.event_fast_path_eligible() {
            return self.run(config);
        }
        let mut cursor = EventCursor::new(self.network().node_count());
        let mut terminated_slot = None;
        while self.slot < config.max_slots {
            if !cursor.advance(&mut self, &config) {
                break;
            }
            if self.post_step_stop(&config, &mut terminated_slot) {
                break;
            }
        }
        self.into_outcome(terminated_slot)
    }
}
