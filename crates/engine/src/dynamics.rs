//! Bridges [`mmhew_dynamics`] schedules into the engines' event streams.

use mmhew_obs::{SimEvent, Stamp};
use mmhew_topology::NetworkEvent;

/// Translates an applied [`NetworkEvent`] into the observability
/// vocabulary, stamped with the boundary it fired at.
pub(crate) fn dynamics_sim_event(event: &NetworkEvent, at: Stamp) -> SimEvent {
    match *event {
        NetworkEvent::NodeJoin { node, .. } => SimEvent::NodeJoined { at, node },
        NetworkEvent::NodeLeave { node } => SimEvent::NodeLeft { at, node },
        NetworkEvent::EdgeAdd { from, to } => SimEvent::EdgeChanged {
            at,
            from,
            to,
            added: true,
        },
        NetworkEvent::EdgeRemove { from, to } => SimEvent::EdgeChanged {
            at,
            from,
            to,
            added: false,
        },
        NetworkEvent::ChannelGained { node, channel } => SimEvent::ChannelChanged {
            at,
            node,
            channel,
            gained: true,
        },
        NetworkEvent::ChannelLost { node, channel } => SimEvent::ChannelChanged {
            at,
            node,
            channel,
            gained: false,
        },
    }
}
