//! The neighbor table a node accumulates during discovery.

use mmhew_spectrum::ChannelSet;
use mmhew_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A node's discovery output: each neighbor heard so far together with the
/// common channel set `A(v) ∩ A(u)` computed from its beacon (the
/// `⟨v, A ∩ A(u)⟩` entries of Algorithms 1/3/4).
///
/// # Examples
///
/// ```
/// use mmhew_engine::NeighborTable;
/// use mmhew_topology::NodeId;
///
/// let mut t = NeighborTable::new();
/// let first = t.record(NodeId::new(2), [0u16, 3].into_iter().collect());
/// assert!(first);
/// // Hearing the same neighbor again is idempotent.
/// let again = t.record(NodeId::new(2), [0u16, 3].into_iter().collect());
/// assert!(!again);
/// assert_eq!(t.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeighborTable {
    entries: BTreeMap<NodeId, ChannelSet>,
}

impl NeighborTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a discovered neighbor with its common channel set. Returns
    /// true if this neighbor was new. Re-discoveries union the channel
    /// sets (they are equal in the base model, but the diverse-propagation
    /// extension can deliver subsets).
    pub fn record(&mut self, neighbor: NodeId, common: ChannelSet) -> bool {
        match self.entries.get_mut(&neighbor) {
            Some(existing) => {
                *existing = existing.union(&common);
                false
            }
            None => {
                self.entries.insert(neighbor, common);
                true
            }
        }
    }

    /// Overwrites a neighbor's common channel set (continuous-discovery
    /// re-announces, where a fresh beacon supersedes stale spectrum
    /// knowledge). Returns true if this neighbor was new.
    pub fn replace(&mut self, neighbor: NodeId, common: ChannelSet) -> bool {
        self.entries.insert(neighbor, common).is_none()
    }

    /// Evicts a neighbor (stale-entry timeout under churn). Returns true
    /// if the neighbor was present.
    pub fn remove(&mut self, neighbor: NodeId) -> bool {
        self.entries.remove(&neighbor).is_some()
    }

    /// The common channel set recorded for a neighbor, if discovered.
    pub fn get(&self, neighbor: NodeId) -> Option<&ChannelSet> {
        self.entries.get(&neighbor)
    }

    /// True if `neighbor` has been discovered.
    pub fn contains(&self, neighbor: NodeId) -> bool {
        self.entries.contains_key(&neighbor)
    }

    /// Number of discovered neighbors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been discovered yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(neighbor, common channels)` in neighbor order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &ChannelSet)> {
        self.entries.iter().map(|(&v, s)| (v, s))
    }

    /// The table as a sorted vector (convenient for comparison against
    /// [`mmhew_topology::Network::expected_discovery`]).
    pub fn to_sorted_vec(&self) -> Vec<(NodeId, ChannelSet)> {
        self.entries.iter().map(|(&v, s)| (v, s.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(xs: &[u16]) -> ChannelSet {
        xs.iter().copied().collect()
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn record_and_query() {
        let mut t = NeighborTable::new();
        assert!(t.is_empty());
        assert!(t.record(n(1), cs(&[0])));
        assert!(t.record(n(2), cs(&[1, 2])));
        assert_eq!(t.len(), 2);
        assert!(t.contains(n(1)));
        assert!(!t.contains(n(3)));
        assert_eq!(t.get(n(2)), Some(&cs(&[1, 2])));
        assert_eq!(t.get(n(3)), None);
    }

    #[test]
    fn rediscovery_unions() {
        let mut t = NeighborTable::new();
        t.record(n(1), cs(&[0]));
        assert!(!t.record(n(1), cs(&[1])));
        assert_eq!(t.get(n(1)), Some(&cs(&[0, 1])));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn replace_and_remove() {
        let mut t = NeighborTable::new();
        assert!(t.replace(n(1), cs(&[0, 1])));
        assert!(!t.replace(n(1), cs(&[2])), "overwrite, not union");
        assert_eq!(t.get(n(1)), Some(&cs(&[2])));
        assert!(t.remove(n(1)));
        assert!(!t.remove(n(1)));
        assert!(t.is_empty());
    }

    #[test]
    fn sorted_output() {
        let mut t = NeighborTable::new();
        t.record(n(5), cs(&[0]));
        t.record(n(1), cs(&[1]));
        t.record(n(3), cs(&[2]));
        let v = t.to_sorted_vec();
        assert_eq!(
            v.iter().map(|(id, _)| id.index()).collect::<Vec<_>>(),
            vec![1, 3, 5]
        );
        assert_eq!(t.iter().count(), 3);
    }
}
