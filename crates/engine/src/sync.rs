//! The slot-synchronous simulation engine (Algorithms 1–3).
//!
//! Execution is divided into globally synchronized slots (paper §II). In
//! each slot the engine asks every *active* node for an action (nodes
//! before their start slot are quiet), resolves the medium with the
//! paper's collision rules, delivers clear beacons, and tracks link
//! coverage.

use crate::config::SyncRunConfig;
use crate::dynamics::dynamics_sim_event;
use crate::energy::{ActionCounts, EnergyModel};
use crate::observer::CoverageTracker;
use crate::protocol::SyncProtocol;
use crate::table::NeighborTable;
use mmhew_dynamics::DynamicsSchedule;
use mmhew_faults::{ActiveFaults, FaultPlan};
use mmhew_obs::{EventSink, MediumResolution, ProtocolPhase, SimEvent, Stamp};
use mmhew_radio::{Beacon, SlotAction, SlotOutcome, SlotResolver};
use mmhew_spectrum::ChannelId;
use mmhew_topology::{Link, Network, NetworkEvent, NodeId};
use mmhew_util::{SeedTree, Xoshiro256StarStar};
use serde::Serialize;
use std::borrow::Cow;

/// Result of a synchronous run.
#[derive(Debug, Clone, Serialize)]
pub struct SyncOutcome {
    /// True if every link was covered within the slot budget.
    completed: bool,
    /// Slot in which the last link was first covered (absolute slot index).
    completion_slot: Option<u64>,
    /// Total slots executed.
    slots_executed: u64,
    /// The latest start slot `T_s` (0 for identical starts).
    latest_start: u64,
    /// First-coverage slot per link (`None` = never covered).
    link_coverage: Vec<(Link, Option<u64>)>,
    /// Final neighbor table of every node.
    tables: Vec<NeighborTable>,
    /// Total clear deliveries.
    deliveries: u64,
    /// Total collisions observed (diagnostics).
    collisions: u64,
    /// Clear receptions lost to impairments.
    impairment_losses: u64,
    /// Clear receptions destroyed by fault-plan link loss models.
    beacon_losses: u64,
    /// Receptions suppressed by jammed channels.
    jam_losses: u64,
    /// Collisions resolved into deliveries by the capture effect (also
    /// included in `deliveries`).
    capture_deliveries: u64,
    /// Per-node transceiver action counts (energy accounting).
    action_counts: Vec<ActionCounts>,
    /// True if every protocol reported local termination.
    all_terminated: bool,
    /// First slot (exclusive upper edge) at which all nodes had
    /// terminated, if they did.
    terminated_slot: Option<u64>,
}

impl SyncOutcome {
    /// True if every link was covered within the slot budget.
    pub fn completed(&self) -> bool {
        self.completed
    }

    /// Absolute slot in which discovery completed.
    pub fn completion_slot(&self) -> Option<u64> {
        self.completion_slot
    }

    /// Slots from the latest start `T_s` to completion — the quantity
    /// Theorems 1–3 bound. `None` if incomplete.
    pub fn slots_to_complete(&self) -> Option<u64> {
        self.completion_slot
            .map(|s| s.saturating_sub(self.latest_start) + 1)
    }

    /// Total slots executed (equals the budget for incomplete runs).
    pub fn slots_executed(&self) -> u64 {
        self.slots_executed
    }

    /// The latest start slot `T_s`.
    pub fn latest_start(&self) -> u64 {
        self.latest_start
    }

    /// First-coverage slot per link.
    pub fn link_coverage(&self) -> &[(Link, Option<u64>)] {
        &self.link_coverage
    }

    /// Final neighbor table of node `u`.
    pub fn table(&self, u: NodeId) -> &NeighborTable {
        &self.tables[u.as_usize()]
    }

    /// Final neighbor tables, indexed by node.
    pub fn tables(&self) -> &[NeighborTable] {
        &self.tables
    }

    /// Total clear deliveries across the run.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// Total collisions across the run (nodes themselves cannot see these).
    pub fn collisions(&self) -> u64 {
        self.collisions
    }

    /// Clear receptions dropped by channel impairments.
    pub fn impairment_losses(&self) -> u64 {
        self.impairment_losses
    }

    /// Clear receptions destroyed by the fault plan's link loss models
    /// (Gilbert–Elliott or per-link Bernoulli). Zero without faults.
    pub fn beacon_losses(&self) -> u64 {
        self.beacon_losses
    }

    /// Receptions suppressed because their channel was jammed. Zero
    /// without faults.
    pub fn jam_losses(&self) -> u64 {
        self.jam_losses
    }

    /// Collisions resolved into deliveries by the capture effect. These
    /// are also counted in [`deliveries`](Self::deliveries).
    pub fn capture_deliveries(&self) -> u64 {
        self.capture_deliveries
    }

    /// Per-node transceiver action counts, for energy accounting.
    pub fn action_counts(&self) -> &[ActionCounts] {
        &self.action_counts
    }

    /// Total energy spent across the network under `model`.
    pub fn total_energy(&self, model: &EnergyModel) -> f64 {
        model.total_cost(&self.action_counts)
    }

    /// True if every protocol reported local termination.
    pub fn all_terminated(&self) -> bool {
        self.all_terminated
    }

    /// The slot count executed when the last node terminated.
    pub fn terminated_slot(&self) -> Option<u64> {
        self.terminated_slot
    }
}

/// The slot-synchronous engine.
///
/// # Examples
///
/// Run a trivial two-node protocol to completion (a real algorithm from
/// `mmhew-discovery` would normally be used):
///
/// ```
/// use mmhew_engine::{SyncEngine, SyncProtocol, SyncRunConfig, NeighborTable};
/// use mmhew_radio::{Beacon, SlotAction};
/// use mmhew_spectrum::ChannelId;
/// use mmhew_topology::NetworkBuilder;
/// use mmhew_util::{SeedTree, Xoshiro256StarStar};
///
/// struct Alternator { even_tx: bool, table: NeighborTable }
/// impl SyncProtocol for Alternator {
///     fn on_slot(&mut self, slot: u64, _rng: &mut Xoshiro256StarStar) -> SlotAction {
///         let c = ChannelId::new(0);
///         if slot.is_multiple_of(2) == self.even_tx {
///             SlotAction::Transmit { channel: c }
///         } else {
///             SlotAction::Listen { channel: c }
///         }
///     }
///     fn on_beacon(&mut self, b: &Beacon, _c: ChannelId) {
///         self.table.record(b.sender(), b.available().clone());
///     }
///     fn table(&self) -> &NeighborTable { &self.table }
/// }
///
/// let net = NetworkBuilder::line(2).universe(1).build(SeedTree::new(0))?;
/// let engine = SyncEngine::new(
///     &net,
///     vec![
///         Box::new(Alternator { even_tx: true, table: NeighborTable::new() }),
///         Box::new(Alternator { even_tx: false, table: NeighborTable::new() }),
///     ],
///     vec![0, 0],
///     SeedTree::new(1),
/// );
/// let outcome = engine.run(SyncRunConfig::until_complete(10));
/// assert!(outcome.completed());
/// assert_eq!(outcome.completion_slot(), Some(1));
/// # Ok::<(), mmhew_topology::BuildError>(())
/// ```
pub struct SyncEngine<'n> {
    /// Borrowed while static; promoted to an owned copy on the first
    /// dynamics mutation (copy-on-write keeps static runs allocation-free).
    network: Cow<'n, Network>,
    dynamics: Option<DynamicsSchedule>,
    /// `None` when the fault plan is empty, so fault-free runs take the
    /// exact pre-fault code path (neutrality).
    faults: Option<ActiveFaults>,
    pub(crate) protocols: Vec<Box<dyn SyncProtocol>>,
    pub(crate) start_slots: Vec<u64>,
    pub(crate) node_rngs: Vec<Xoshiro256StarStar>,
    medium_rng: Xoshiro256StarStar,
    tracker: CoverageTracker<u64>,
    pub(crate) slot: u64,
    deliveries: u64,
    collisions: u64,
    impairment_losses: u64,
    beacon_losses: u64,
    jam_losses: u64,
    capture_deliveries: u64,
    pub(crate) action_counts: Vec<ActionCounts>,
    sink: Option<&'n mut dyn EventSink>,
    phases: Vec<Option<ProtocolPhase>>,
    /// This slot's actions, reused across slots (cleared, never shrunk).
    pub(crate) actions: Vec<SlotAction>,
    /// Transmitter-centric medium resolution with persistent scratch.
    resolver: SlotResolver,
    /// One prebuilt beacon per node, so deliveries don't clone the sender's
    /// `ChannelSet` each time. Entries are refreshed only when a dynamics
    /// event changes that node's availability (`NodeJoin`,
    /// `ChannelGained`, `ChannelLost`).
    beacons: Vec<Beacon>,
    /// Scratch for per-channel resolution events on observed slots.
    chan_scratch: ChannelScratch,
}

/// Persistent scratch for [`SyncEngine`]'s per-channel resolution events:
/// per-channel tallies plus the list of channels actually touched this
/// slot, so an observed slot costs O(actions + touched channels) instead of
/// O(universe) — and allocates nothing after warm-up.
#[derive(Default)]
struct ChannelScratch {
    tx_count: Vec<u32>,
    tx_node: Vec<NodeId>,
    listeners: Vec<u32>,
    rx_count: Vec<u32>,
    /// Channels with at least one transmitter or listener this slot, in
    /// first-touch order; sorted ascending before emission to match the
    /// 0..universe scan order of the straightforward implementation.
    touched: Vec<u16>,
}

impl ChannelScratch {
    /// Emits one [`SimEvent::Channel`] per channel touched this slot,
    /// classifying the network-wide medium resolution. Untouched channels
    /// (no transmitter, no listener) are skipped without being visited.
    fn emit(
        &mut self,
        universe: usize,
        actions: &[SlotAction],
        outcome: &SlotOutcome,
        at: Stamp,
        sink: &mut dyn EventSink,
    ) {
        if self.tx_count.len() < universe {
            self.tx_count.resize(universe, 0);
            self.tx_node.resize(universe, NodeId::new(0));
            self.listeners.resize(universe, 0);
            self.rx_count.resize(universe, 0);
        }
        debug_assert!(self.touched.is_empty());
        for (i, action) in actions.iter().enumerate() {
            match *action {
                SlotAction::Transmit { channel } => {
                    let c = channel.index() as usize;
                    if self.tx_count[c] == 0 && self.listeners[c] == 0 {
                        self.touched.push(channel.index());
                    }
                    self.tx_count[c] += 1;
                    self.tx_node[c] = NodeId::new(i as u32);
                }
                SlotAction::Listen { channel } => {
                    let c = channel.index() as usize;
                    if self.tx_count[c] == 0 && self.listeners[c] == 0 {
                        self.touched.push(channel.index());
                    }
                    self.listeners[c] += 1;
                }
                SlotAction::Quiet => {}
            }
        }
        // A delivery implies a listener on that channel, so every delivery
        // channel is already in `touched`.
        for d in &outcome.deliveries {
            self.rx_count[d.channel.index() as usize] += 1;
        }
        // Touched channels are unique, so the unstable sort is
        // deterministic.
        self.touched.sort_unstable();
        for &c16 in &self.touched {
            let c = c16 as usize;
            let resolution = match self.tx_count[c] {
                0 => MediumResolution::Silence {
                    listeners: self.listeners[c],
                },
                1 => MediumResolution::Clear {
                    tx: self.tx_node[c],
                    rx_count: self.rx_count[c],
                },
                contenders => MediumResolution::Collision { contenders },
            };
            sink.on_event(&SimEvent::Channel {
                at,
                channel: ChannelId::new(c16),
                resolution,
            });
            self.tx_count[c] = 0;
            self.listeners[c] = 0;
            self.rx_count[c] = 0;
        }
        self.touched.clear();
    }
}

impl<'n> SyncEngine<'n> {
    /// Creates an engine over `network` with one protocol instance and one
    /// start slot per node.
    ///
    /// # Panics
    ///
    /// Panics if `protocols` or `start_slots` length differs from the node
    /// count.
    pub fn new(
        network: &'n Network,
        protocols: Vec<Box<dyn SyncProtocol>>,
        start_slots: Vec<u64>,
        seed: SeedTree,
    ) -> Self {
        let n = network.node_count();
        assert_eq!(protocols.len(), n, "one protocol per node required");
        assert_eq!(start_slots.len(), n, "one start slot per node required");
        let node_rngs = (0..n)
            .map(|i| seed.branch("node").index(i as u64).rng())
            .collect();
        let beacons = (0..n)
            .map(|i| {
                let u = NodeId::new(i as u32);
                Beacon::new(u, network.available(u).to_owned())
            })
            .collect();
        Self {
            network: Cow::Borrowed(network),
            dynamics: None,
            faults: None,
            protocols,
            start_slots,
            node_rngs,
            medium_rng: seed.branch("medium").rng(),
            tracker: CoverageTracker::new(network),
            slot: 0,
            deliveries: 0,
            collisions: 0,
            impairment_losses: 0,
            beacon_losses: 0,
            jam_losses: 0,
            capture_deliveries: 0,
            action_counts: vec![ActionCounts::default(); n],
            sink: None,
            phases: vec![None; n],
            actions: Vec::with_capacity(n),
            resolver: SlotResolver::new(),
            beacons,
            chan_scratch: ChannelScratch::default(),
        }
    }

    /// Attaches an [`EventSink`] that receives every simulation event.
    ///
    /// Without a sink (or with a disabled one such as
    /// [`mmhew_obs::NullSink`]) the engine skips event assembly entirely.
    pub fn with_sink(mut self, sink: &'n mut dyn EventSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Resolves each slot's medium with up to `shards` worker threads,
    /// partitioned by channel. An execution knob like a build system's
    /// `--jobs`: outcomes, RNG streams, and traces are byte-identical for
    /// every shard count (see [`SlotResolver::with_shards`]), so it is
    /// deliberately *not* part of [`SyncRunConfig`] and never serialized.
    /// `0` and `1` both mean serial.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.resolver.set_shards(shards);
        self
    }

    /// Attaches a [`DynamicsSchedule`]: due events (interpreting `at` as a
    /// slot index) are applied at the start of each slot, before any node
    /// acts. An empty schedule leaves the run bit-identical to a run
    /// without one (dynamics neutrality).
    pub fn with_dynamics(mut self, schedule: DynamicsSchedule) -> Self {
        self.dynamics = Some(schedule);
        self
    }

    /// Attaches a [`FaultPlan`]: link loss models, jammers, the capture
    /// effect, and crash/recover outages, resolved per slot.
    ///
    /// An empty plan is dropped on the floor so the run stays
    /// bit-identical — in outcomes, RNG stream, *and* emitted traces — to
    /// a run without faults (fault neutrality, the same discipline as
    /// [`with_dynamics`](Self::with_dynamics)).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        if !plan.is_empty() {
            plan.validate();
            let n = self.network.node_count();
            let universe = self.network.universe_size() as usize;
            self.faults = Some(ActiveFaults::new(plan, n, universe));
        }
        self
    }

    /// The current absolute slot index (slots executed so far).
    pub fn current_slot(&self) -> u64 {
        self.slot
    }

    /// The link-coverage tracker (inspection between steps).
    pub fn tracker(&self) -> &CoverageTracker<u64> {
        &self.tracker
    }

    /// The network as of the last applied dynamics event (the original
    /// borrow while no event has fired).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Clones every node's current neighbor table — mid-run inspection for
    /// continuous-discovery studies (e.g. staleness sampling in E22).
    pub fn tables_snapshot(&self) -> Vec<NeighborTable> {
        self.protocols.iter().map(|p| p.table().clone()).collect()
    }

    /// Applies every dynamics event due at the current slot, then resyncs
    /// the coverage tracker to the mutated ground truth.
    fn apply_due_dynamics(&mut self) {
        let due: Vec<NetworkEvent> = match self.dynamics.as_mut() {
            None => return,
            Some(schedule) => {
                let mut due = Vec::new();
                while let Some(timed) = schedule.next_due(self.slot) {
                    due.push(timed.event.clone());
                }
                due
            }
        };
        if due.is_empty() {
            return;
        }
        let observing = self.sink.as_ref().is_some_and(|s| s.enabled());
        let at = Stamp::Slot(self.slot);
        for event in &due {
            self.network
                .to_mut()
                .apply(event)
                .expect("dynamics event must be valid for this network");
            if observing {
                let sim = dynamics_sim_event(event, at);
                let sink = self.sink.as_deref_mut().expect("sink checked above");
                sink.on_event(&sim);
            }
        }
        self.tracker.resync(&self.network);
        // Refresh the cached beacon of every node whose availability an
        // event may have changed (join / channel gain / channel loss);
        // topology-only events leave beacons untouched.
        for event in &due {
            let node = match event {
                NetworkEvent::NodeJoin { node, .. }
                | NetworkEvent::ChannelGained { node, .. }
                | NetworkEvent::ChannelLost { node, .. } => *node,
                NetworkEvent::NodeLeave { .. }
                | NetworkEvent::EdgeAdd { .. }
                | NetworkEvent::EdgeRemove { .. } => continue,
            };
            self.beacons[node.as_usize()].update_available(self.network.available(node));
        }
        if observing {
            let covered = self.tracker.covered() as u64;
            let expected = self.tracker.expected() as u64;
            let sink = self.sink.as_deref_mut().expect("sink checked above");
            sink.on_event(&SimEvent::GroundTruthChanged {
                at,
                covered,
                expected,
            });
        }
    }

    /// Executes one slot and returns what happened on the medium. The
    /// returned outcome borrows the engine's reused buffer; copy out
    /// anything needed across steps.
    pub fn step(&mut self, config: &SyncRunConfig) -> &SlotOutcome {
        self.step_traced(config).1
    }

    /// Executes one slot, returning every node's action alongside the
    /// medium outcome — the raw material for timeline visualizations and
    /// debugging. Both slices borrow buffers the engine reuses on the next
    /// step (the steady-state slot loop allocates nothing).
    pub fn step_traced(&mut self, config: &SyncRunConfig) -> (&[SlotAction], &SlotOutcome) {
        self.begin_slot();
        self.actions.clear();
        for i in 0..self.network.node_count() {
            let action = if self.slot < self.start_slots[i] {
                SlotAction::Quiet
            } else {
                self.protocols[i].on_slot(self.slot - self.start_slots[i], &mut self.node_rngs[i])
            };
            self.actions.push(action);
        }
        self.finish_slot(config);
        (&self.actions, self.resolver.last_outcome())
    }

    /// The pre-action half of a slot: apply due dynamics, then advance the
    /// fault plan (emitting crash/recover transitions when observed).
    /// Shared verbatim by the slotted step and the event executor so the
    /// two can never drift.
    pub(crate) fn begin_slot(&mut self) {
        self.apply_due_dynamics();
        if let Some(faults) = self.faults.as_mut() {
            faults.advance_to(self.slot);
            if self.sink.as_ref().is_some_and(|s| s.enabled()) {
                let at = Stamp::Slot(self.slot);
                let sink = self.sink.as_deref_mut().expect("sink checked above");
                for t in faults.transitions() {
                    sink.on_event(&if t.up {
                        SimEvent::NodeRecovered { at, node: t.node }
                    } else {
                        SimEvent::NodeCrashed { at, node: t.node }
                    });
                }
            }
        }
    }

    /// The post-action half of a slot: tally `self.actions`, resolve the
    /// medium, deliver beacons, update counters, advance the slot cursor.
    /// Expects `self.actions` to hold one action per node for the current
    /// slot; shared verbatim by the slotted step and the event executor.
    pub(crate) fn finish_slot(&mut self, config: &SyncRunConfig) {
        for (i, action) in self.actions.iter().enumerate() {
            match action {
                SlotAction::Transmit { .. } => self.action_counts[i].transmit += 1,
                SlotAction::Listen { .. } => self.action_counts[i].listen += 1,
                SlotAction::Quiet => self.action_counts[i].quiet += 1,
            }
        }
        let observing = self.sink.as_ref().is_some_and(|s| s.enabled());
        if observing {
            let at = Stamp::Slot(self.slot);
            let slot = self.slot;
            let sink = self.sink.as_deref_mut().expect("sink checked above");
            sink.on_event(&SimEvent::SlotStart { slot });
            for (i, action) in self.actions.iter().enumerate() {
                sink.on_event(&SimEvent::Action {
                    at,
                    node: NodeId::new(i as u32),
                    action: *action,
                });
            }
        }
        match self.faults.as_mut() {
            None => {
                self.resolver.resolve(
                    &self.network,
                    &self.actions,
                    &config.impairments,
                    &mut self.medium_rng,
                );
            }
            Some(faults) => {
                self.resolver.resolve_faulted(
                    &self.network,
                    &self.actions,
                    &config.impairments,
                    faults,
                    &mut self.medium_rng,
                );
            }
        }
        if observing {
            let universe = self.network.universe_size() as usize;
            let at = Stamp::Slot(self.slot);
            let outcome = self.resolver.last_outcome();
            let sink = self.sink.as_deref_mut().expect("sink checked above");
            self.chan_scratch
                .emit(universe, &self.actions, outcome, at, sink);
        }
        if let Some(faults) = self.faults.as_ref() {
            self.beacon_losses += faults.beacon_losses().len() as u64;
            self.jam_losses += faults
                .jam_losses()
                .iter()
                .map(|&(_, n)| n as u64)
                .sum::<u64>();
            self.capture_deliveries += faults.captures().len() as u64;
            if observing {
                let at = Stamp::Slot(self.slot);
                let sink = self.sink.as_deref_mut().expect("sink checked above");
                for &(from, to) in faults.beacon_losses() {
                    sink.on_event(&SimEvent::BeaconLost { at, from, to });
                }
                for &(channel, losses) in faults.jam_losses() {
                    sink.on_event(&SimEvent::SlotJammed {
                        at,
                        channel,
                        losses,
                    });
                }
                for c in faults.captures() {
                    sink.on_event(&SimEvent::CaptureDelivery {
                        at,
                        to: c.to,
                        from: c.from,
                        contenders: c.contenders,
                    });
                }
            }
        }
        let outcome = self.resolver.last_outcome();
        for d in &outcome.deliveries {
            let beacon = &self.beacons[d.from.as_usize()];
            self.protocols[d.to.as_usize()].on_beacon(beacon, d.channel);
            let newly_covered = self.tracker.record(
                Link {
                    from: d.from,
                    to: d.to,
                },
                self.slot,
            );
            if observing {
                let at = Stamp::Slot(self.slot);
                let covered = self.tracker.covered() as u64;
                let expected = self.tracker.expected() as u64;
                let sink = self.sink.as_deref_mut().expect("sink checked above");
                sink.on_event(&SimEvent::Delivery {
                    at,
                    from: d.from,
                    to: d.to,
                    channel: d.channel,
                });
                if newly_covered {
                    sink.on_event(&SimEvent::LinkCovered {
                        at,
                        from: d.from,
                        to: d.to,
                        covered,
                        expected,
                    });
                }
            }
        }
        let (delivered, collided, lost) = (
            outcome.deliveries.len() as u64,
            outcome.collisions.len() as u64,
            outcome.impairment_losses as u64,
        );
        if observing {
            if lost > 0 {
                let at = Stamp::Slot(self.slot);
                let sink = self.sink.as_deref_mut().expect("sink checked above");
                sink.on_event(&SimEvent::ImpairmentLoss { at, count: lost });
            }
            for i in 0..self.protocols.len() {
                self.poll_phase(i, Stamp::Slot(self.slot));
            }
        }
        self.deliveries += delivered;
        self.collisions += collided;
        self.impairment_losses += lost;
        self.slot += 1;
    }

    /// Emits a [`SimEvent::Phase`] if node `i`'s protocol changed phase.
    fn poll_phase(&mut self, i: usize, at: Stamp) {
        let phase = self.protocols[i].phase();
        if phase != self.phases[i] {
            self.phases[i] = phase;
            if let Some(p) = phase {
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.on_event(&SimEvent::Phase {
                        at,
                        node: NodeId::new(i as u32),
                        phase: p,
                    });
                }
            }
        }
    }

    /// Runs until completion or the slot budget, consuming the engine.
    ///
    /// With a dynamics schedule attached, `stop_when_complete` only fires
    /// once the schedule is exhausted — a transiently complete (or empty)
    /// ground truth with mutations still pending is not the end of the
    /// story.
    pub fn run(mut self, config: SyncRunConfig) -> SyncOutcome {
        let mut terminated_slot = None;
        while self.slot < config.max_slots {
            self.step(&config);
            if self.post_step_stop(&config, &mut terminated_slot) {
                break;
            }
        }
        self.into_outcome(terminated_slot)
    }

    /// The slotted loop's post-step bookkeeping: records the first slot at
    /// which every protocol reports termination and decides whether the run
    /// should stop now. Shared verbatim with the event executor so the two
    /// loops apply identical stop conditions.
    pub(crate) fn post_step_stop(
        &self,
        config: &SyncRunConfig,
        terminated_slot: &mut Option<u64>,
    ) -> bool {
        if terminated_slot.is_none() && self.protocols.iter().all(|p| p.is_terminated()) {
            *terminated_slot = Some(self.slot);
            if config.stop_when_all_terminated {
                return true;
            }
        }
        let dynamics_pending = self.dynamics.as_ref().is_some_and(|s| !s.is_exhausted());
        config.stop_when_complete && self.tracker.is_complete() && !dynamics_pending
    }

    /// Slot index of the next pending dynamics event, if any — the event
    /// executor must wake (and step a full slot) at every such boundary.
    pub(crate) fn next_dynamics_at(&self) -> Option<u64> {
        self.dynamics.as_ref().and_then(|s| s.peek_at())
    }

    /// Whether the event executor's dead-air-skipping fast path may drive
    /// this engine. Trace-bearing runs are excluded (every slot emits
    /// events, so there is no dead air to skip), as are faulted runs (jam,
    /// crash, and loss state advance per slot) and any run whose protocols
    /// don't declare a scan-ahead-safe transmit schedule via
    /// [`SyncProtocol::next_transmission_bound`].
    pub(crate) fn event_fast_path_eligible(&self) -> bool {
        let observing = self.sink.as_ref().is_some_and(|s| s.enabled());
        !observing
            && self.faults.is_none()
            && self
                .protocols
                .iter()
                .all(|p| p.next_transmission_bound(0).is_some())
    }

    /// Consumes the engine into the run outcome (the shared epilogue of
    /// [`run`](Self::run) and the event executor).
    pub(crate) fn into_outcome(self, terminated_slot: Option<u64>) -> SyncOutcome {
        let latest_start = self.start_slots.iter().copied().max().unwrap_or(0);
        SyncOutcome {
            completed: self.tracker.is_complete(),
            completion_slot: self.tracker.completion_time(),
            slots_executed: self.slot,
            latest_start,
            link_coverage: self.tracker.per_link().collect(),
            tables: self.protocols.iter().map(|p| p.table().clone()).collect(),
            deliveries: self.deliveries,
            collisions: self.collisions,
            impairment_losses: self.impairment_losses,
            beacon_losses: self.beacon_losses,
            jam_losses: self.jam_losses,
            capture_deliveries: self.capture_deliveries,
            action_counts: self.action_counts,
            all_terminated: terminated_slot.is_some(),
            terminated_slot,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_radio::Impairments;
    use mmhew_spectrum::{ChannelId, ChannelSet};
    use mmhew_topology::NetworkBuilder;

    /// Transmits on even (or odd) active slots on a fixed channel.
    struct Alternator {
        even_tx: bool,
        channel: ChannelId,
        own: ChannelSet,
        table: NeighborTable,
    }

    impl Alternator {
        fn boxed(even_tx: bool, channel: u16, own: ChannelSet) -> Box<dyn SyncProtocol> {
            Box::new(Self {
                even_tx,
                channel: ChannelId::new(channel),
                own,
                table: NeighborTable::new(),
            })
        }
    }

    impl SyncProtocol for Alternator {
        fn on_slot(&mut self, slot: u64, _rng: &mut Xoshiro256StarStar) -> SlotAction {
            if slot.is_multiple_of(2) == self.even_tx {
                SlotAction::Transmit {
                    channel: self.channel,
                }
            } else {
                SlotAction::Listen {
                    channel: self.channel,
                }
            }
        }

        fn on_beacon(&mut self, beacon: &Beacon, _channel: ChannelId) {
            self.table
                .record(beacon.sender(), beacon.available().intersection(&self.own));
        }

        fn table(&self) -> &NeighborTable {
            &self.table
        }
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn two_nodes_complete_in_two_slots() {
        let net = NetworkBuilder::line(2)
            .universe(1)
            .build(SeedTree::new(0))
            .expect("build");
        let engine = SyncEngine::new(
            &net,
            vec![
                Alternator::boxed(true, 0, ChannelSet::full(1)),
                Alternator::boxed(false, 0, ChannelSet::full(1)),
            ],
            vec![0, 0],
            SeedTree::new(1),
        );
        let out = engine.run(SyncRunConfig::until_complete(100));
        assert!(out.completed());
        // Slot 0: node 0 tx, node 1 rx -> link (0,1). Slot 1: reverse.
        assert_eq!(out.completion_slot(), Some(1));
        assert_eq!(out.slots_to_complete(), Some(2));
        assert_eq!(out.deliveries(), 2);
        assert_eq!(out.collisions(), 0);
        // Tables contain the right common sets.
        assert_eq!(
            out.table(n(0)).to_sorted_vec(),
            vec![(n(1), ChannelSet::full(1))]
        );
        assert_eq!(
            out.table(n(1)).to_sorted_vec(),
            vec![(n(0), ChannelSet::full(1))]
        );
    }

    #[test]
    fn start_slots_delay_participation() {
        let net = NetworkBuilder::line(2)
            .universe(1)
            .build(SeedTree::new(0))
            .expect("build");
        // Node 1 starts at slot 10; before that, node 0's transmissions go
        // unheard.
        let engine = SyncEngine::new(
            &net,
            vec![
                Alternator::boxed(true, 0, ChannelSet::full(1)),
                Alternator::boxed(false, 0, ChannelSet::full(1)),
            ],
            vec![0, 10],
            SeedTree::new(1),
        );
        let out = engine.run(SyncRunConfig::until_complete(100));
        assert!(out.completed());
        // Node 1's active slot 0 is absolute slot 10 (listening); node 0 is
        // transmitting at absolute slot 10 (even): link (0,1) covered at 10.
        let cov: std::collections::BTreeMap<Link, Option<u64>> =
            out.link_coverage().iter().copied().collect();
        assert_eq!(
            cov[&Link {
                from: n(0),
                to: n(1)
            }],
            Some(10)
        );
        assert_eq!(
            cov[&Link {
                from: n(1),
                to: n(0)
            }],
            Some(11)
        );
        assert_eq!(out.latest_start(), 10);
        assert_eq!(out.slots_to_complete(), Some(2));
    }

    #[test]
    fn budget_exhaustion_reports_incomplete() {
        let net = NetworkBuilder::line(2)
            .universe(1)
            .build(SeedTree::new(0))
            .expect("build");
        // Both transmit on even slots, both listen on odd: nobody ever
        // hears anything.
        let engine = SyncEngine::new(
            &net,
            vec![
                Alternator::boxed(true, 0, ChannelSet::full(1)),
                Alternator::boxed(true, 0, ChannelSet::full(1)),
            ],
            vec![0, 0],
            SeedTree::new(1),
        );
        let out = engine.run(SyncRunConfig::until_complete(50));
        assert!(!out.completed());
        assert_eq!(out.completion_slot(), None);
        assert_eq!(out.slots_to_complete(), None);
        assert_eq!(out.slots_executed(), 50);
        assert!(out.link_coverage().iter().all(|(_, t)| t.is_none()));
    }

    #[test]
    fn fixed_budget_runs_past_completion() {
        let net = NetworkBuilder::line(2)
            .universe(1)
            .build(SeedTree::new(0))
            .expect("build");
        let engine = SyncEngine::new(
            &net,
            vec![
                Alternator::boxed(true, 0, ChannelSet::full(1)),
                Alternator::boxed(false, 0, ChannelSet::full(1)),
            ],
            vec![0, 0],
            SeedTree::new(1),
        );
        let out = engine.run(SyncRunConfig::fixed(20));
        assert!(out.completed());
        assert_eq!(out.slots_executed(), 20);
        assert!(out.deliveries() > 2, "keeps delivering after completion");
    }

    #[test]
    fn collisions_are_counted() {
        // Star: both leaves transmit every even slot; hub listens.
        let net = NetworkBuilder::star(3)
            .universe(1)
            .build(SeedTree::new(0))
            .expect("build");
        let engine = SyncEngine::new(
            &net,
            vec![
                Alternator::boxed(false, 0, ChannelSet::full(1)), // hub listens even
                Alternator::boxed(true, 0, ChannelSet::full(1)),
                Alternator::boxed(true, 0, ChannelSet::full(1)),
            ],
            vec![0, 0, 0],
            SeedTree::new(1),
        );
        let out = engine.run(SyncRunConfig::fixed(2));
        assert!(out.collisions() >= 1);
        // The hub never hears the simultaneous leaves.
        assert!(out.table(n(0)).is_empty());
    }

    #[test]
    fn impairments_slow_discovery() {
        let net = NetworkBuilder::line(2)
            .universe(1)
            .build(SeedTree::new(0))
            .expect("build");
        let engine = SyncEngine::new(
            &net,
            vec![
                Alternator::boxed(true, 0, ChannelSet::full(1)),
                Alternator::boxed(false, 0, ChannelSet::full(1)),
            ],
            vec![0, 0],
            SeedTree::new(2),
        );
        let out = engine.run(
            SyncRunConfig::until_complete(10_000)
                .with_impairments(Impairments::with_delivery_probability(0.05)),
        );
        assert!(out.completed());
        assert!(
            out.completion_slot().expect("complete") > 1,
            "lossy channel should not complete in the minimum 2 slots"
        );
        assert!(out.impairment_losses() > 0);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let net = NetworkBuilder::ring(5)
            .universe(2)
            .build(SeedTree::new(0))
            .expect("build");
        let mk = |seed: u64| {
            let engine = SyncEngine::new(
                &net,
                (0..5)
                    .map(|i| Alternator::boxed(i % 2 == 0, 0, ChannelSet::full(2)))
                    .collect(),
                vec![0; 5],
                SeedTree::new(seed),
            );
            engine.run(SyncRunConfig::fixed(100))
        };
        let a = mk(7);
        let b = mk(7);
        assert_eq!(a.deliveries(), b.deliveries());
        assert_eq!(a.collisions(), b.collisions());
        assert_eq!(a.link_coverage(), b.link_coverage());
    }

    #[test]
    fn step_traced_exposes_actions() {
        let net = NetworkBuilder::line(2)
            .universe(1)
            .build(SeedTree::new(0))
            .expect("build");
        let mut engine = SyncEngine::new(
            &net,
            vec![
                Alternator::boxed(true, 0, ChannelSet::full(1)),
                Alternator::boxed(false, 0, ChannelSet::full(1)),
            ],
            vec![0, 0],
            SeedTree::new(1),
        );
        let config = SyncRunConfig::fixed(10);
        let (actions, outcome) = engine.step_traced(&config);
        assert_eq!(actions.len(), 2);
        assert!(actions[0].is_transmit());
        assert!(actions[1].is_listen());
        assert_eq!(outcome.deliveries.len(), 1);
        assert_eq!(engine.current_slot(), 1);
    }

    #[test]
    fn action_counts_account_every_slot() {
        let net = NetworkBuilder::line(2)
            .universe(1)
            .build(SeedTree::new(0))
            .expect("build");
        let engine = SyncEngine::new(
            &net,
            vec![
                Alternator::boxed(true, 0, ChannelSet::full(1)),
                Alternator::boxed(false, 0, ChannelSet::full(1)),
            ],
            vec![0, 6],
            SeedTree::new(1),
        );
        let out = engine.run(SyncRunConfig::fixed(20));
        let counts = out.action_counts();
        // Every node accounts for all 20 slots.
        assert!(counts.iter().all(|c| c.total() == 20));
        // Node 1 was quiet for its 6 pre-start slots.
        assert_eq!(counts[1].quiet, 6);
        assert_eq!(counts[0].quiet, 0);
        // The alternator splits active time evenly.
        assert_eq!(counts[0].transmit, 10);
        assert_eq!(counts[0].listen, 10);
        assert_eq!(counts[1].transmit + counts[1].listen, 14);
        // Energy is positive and dominated by active slots.
        let energy = out.total_energy(&crate::energy::EnergyModel::default());
        assert!(energy > 0.0);
        let all_quiet = crate::energy::EnergyModel::default().cost(&ActionCounts {
            transmit: 0,
            listen: 0,
            quiet: 20,
        }) * 2.0;
        assert!(energy > all_quiet);
    }

    #[test]
    fn dynamics_rewire_ground_truth_mid_run() {
        use mmhew_dynamics::TimedEvent;
        use mmhew_topology::NetworkEvent;

        let net = NetworkBuilder::line(2)
            .universe(1)
            .build(SeedTree::new(0))
            .expect("build");
        // The link vanishes before anyone can use it (slot 0) and returns
        // at slot 10; the alternators then cover it from scratch.
        let schedule = DynamicsSchedule::new(vec![
            TimedEvent::new(
                0,
                NetworkEvent::EdgeRemove {
                    from: n(0),
                    to: n(1),
                },
            ),
            TimedEvent::new(
                0,
                NetworkEvent::EdgeRemove {
                    from: n(1),
                    to: n(0),
                },
            ),
            TimedEvent::new(
                10,
                NetworkEvent::EdgeAdd {
                    from: n(0),
                    to: n(1),
                },
            ),
            TimedEvent::new(
                10,
                NetworkEvent::EdgeAdd {
                    from: n(1),
                    to: n(0),
                },
            ),
        ]);
        let engine = SyncEngine::new(
            &net,
            vec![
                Alternator::boxed(true, 0, ChannelSet::full(1)),
                Alternator::boxed(false, 0, ChannelSet::full(1)),
            ],
            vec![0, 0],
            SeedTree::new(1),
        )
        .with_dynamics(schedule);
        let out = engine.run(SyncRunConfig::until_complete(100));
        assert!(out.completed());
        // Coverage stamps postdate the re-add: slot 10 (0 transmits on even
        // slots) and slot 11.
        let cov: std::collections::BTreeMap<Link, Option<u64>> =
            out.link_coverage().iter().copied().collect();
        assert_eq!(
            cov[&Link {
                from: n(0),
                to: n(1)
            }],
            Some(10)
        );
        assert_eq!(
            cov[&Link {
                from: n(1),
                to: n(0)
            }],
            Some(11)
        );
    }

    #[test]
    fn empty_dynamics_schedule_is_neutral() {
        let net = NetworkBuilder::ring(5)
            .universe(2)
            .build(SeedTree::new(0))
            .expect("build");
        let mk = |dynamics: bool| {
            let engine = SyncEngine::new(
                &net,
                (0..5)
                    .map(|i| Alternator::boxed(i % 2 == 0, 0, ChannelSet::full(2)))
                    .collect(),
                vec![0; 5],
                SeedTree::new(7),
            );
            let engine = if dynamics {
                engine.with_dynamics(DynamicsSchedule::empty())
            } else {
                engine
            };
            engine.run(SyncRunConfig::fixed(100))
        };
        let plain = mk(false);
        let frozen = mk(true);
        assert_eq!(plain.deliveries(), frozen.deliveries());
        assert_eq!(plain.collisions(), frozen.collisions());
        assert_eq!(plain.link_coverage(), frozen.link_coverage());
        assert_eq!(plain.action_counts(), frozen.action_counts());
    }

    #[test]
    #[should_panic(expected = "one protocol per node")]
    fn wrong_protocol_count_panics() {
        let net = NetworkBuilder::line(2)
            .universe(1)
            .build(SeedTree::new(0))
            .expect("build");
        let _ = SyncEngine::new(&net, vec![], vec![0, 0], SeedTree::new(0));
    }

    #[test]
    fn empty_fault_plan_is_neutral() {
        let net = NetworkBuilder::ring(5)
            .universe(2)
            .build(SeedTree::new(0))
            .expect("build");
        let mk = |faults: bool| {
            let engine = SyncEngine::new(
                &net,
                (0..5)
                    .map(|i| Alternator::boxed(i % 2 == 0, 0, ChannelSet::full(2)))
                    .collect(),
                vec![0; 5],
                SeedTree::new(7),
            );
            let engine = if faults {
                engine.with_faults(FaultPlan::new())
            } else {
                engine
            };
            engine.run(
                SyncRunConfig::fixed(100)
                    .with_impairments(Impairments::with_delivery_probability(0.7)),
            )
        };
        let plain = mk(false);
        let faulted = mk(true);
        assert_eq!(plain.deliveries(), faulted.deliveries());
        assert_eq!(plain.collisions(), faulted.collisions());
        assert_eq!(plain.impairment_losses(), faulted.impairment_losses());
        assert_eq!(plain.link_coverage(), faulted.link_coverage());
        assert_eq!(plain.action_counts(), faulted.action_counts());
        assert_eq!(faulted.beacon_losses(), 0);
        assert_eq!(faulted.jam_losses(), 0);
        assert_eq!(faulted.capture_deliveries(), 0);
    }

    #[test]
    fn dead_links_tally_beacon_losses_and_block_discovery() {
        use mmhew_faults::LinkLossModel;
        let net = NetworkBuilder::line(2)
            .universe(1)
            .build(SeedTree::new(0))
            .expect("build");
        let engine = SyncEngine::new(
            &net,
            vec![
                Alternator::boxed(true, 0, ChannelSet::full(1)),
                Alternator::boxed(false, 0, ChannelSet::full(1)),
            ],
            vec![0, 0],
            SeedTree::new(1),
        )
        .with_faults(
            FaultPlan::new().with_default_loss(LinkLossModel::Bernoulli {
                delivery_probability: 0.0,
            }),
        );
        let out = engine.run(SyncRunConfig::fixed(10));
        assert!(!out.completed());
        assert_eq!(out.deliveries(), 0);
        // The alternators line up one clear reception per slot; every one
        // of them dies on the link.
        assert_eq!(out.beacon_losses(), 10);
        assert_eq!(out.impairment_losses(), 0);
    }

    #[test]
    fn crash_outage_delays_coverage_until_recovery() {
        use mmhew_faults::CrashSchedule;
        let net = NetworkBuilder::line(2)
            .universe(1)
            .build(SeedTree::new(0))
            .expect("build");
        // Node 0's radio is dead until slot 10: it neither beacons nor
        // hears, but its protocol keeps alternating (radio brown-out).
        let engine = SyncEngine::new(
            &net,
            vec![
                Alternator::boxed(true, 0, ChannelSet::full(1)),
                Alternator::boxed(false, 0, ChannelSet::full(1)),
            ],
            vec![0, 0],
            SeedTree::new(1),
        )
        .with_faults(FaultPlan::new().with_crashes(CrashSchedule::outage(n(0), 0, 10)));
        let out = engine.run(SyncRunConfig::until_complete(100));
        assert!(out.completed());
        let cov: std::collections::BTreeMap<Link, Option<u64>> =
            out.link_coverage().iter().copied().collect();
        assert_eq!(
            cov[&Link {
                from: n(0),
                to: n(1)
            }],
            Some(10),
            "first beacon after recovery lands at slot 10"
        );
        assert_eq!(
            cov[&Link {
                from: n(1),
                to: n(0)
            }],
            Some(11)
        );
    }

    #[test]
    fn capture_lets_the_hub_hear_through_collisions() {
        let net = NetworkBuilder::star(3)
            .universe(1)
            .build(SeedTree::new(0))
            .expect("build");
        // Both leaves transmit every even slot while the hub listens: with
        // the base model the hub hears nothing (see collisions_are_counted);
        // with p_cap = 1 every collision resolves to one of the leaves.
        let engine = SyncEngine::new(
            &net,
            vec![
                Alternator::boxed(false, 0, ChannelSet::full(1)),
                Alternator::boxed(true, 0, ChannelSet::full(1)),
                Alternator::boxed(true, 0, ChannelSet::full(1)),
            ],
            vec![0, 0, 0],
            SeedTree::new(1),
        )
        .with_faults(FaultPlan::new().with_capture(1.0));
        let out = engine.run(SyncRunConfig::fixed(20));
        assert!(out.capture_deliveries() > 0);
        assert!(!out.table(n(0)).is_empty(), "capture feeds the hub's table");
        assert_eq!(out.collisions(), 0, "p_cap = 1 resolves every collision");
    }

    #[test]
    fn full_jam_blocks_everything_and_is_counted() {
        use mmhew_faults::JamSchedule;
        let net = NetworkBuilder::line(2)
            .universe(1)
            .build(SeedTree::new(0))
            .expect("build");
        let engine = SyncEngine::new(
            &net,
            vec![
                Alternator::boxed(true, 0, ChannelSet::full(1)),
                Alternator::boxed(false, 0, ChannelSet::full(1)),
            ],
            vec![0, 0],
            SeedTree::new(1),
        )
        .with_faults(FaultPlan::new().with_jamming(JamSchedule::fixed(ChannelSet::full(1))));
        let out = engine.run(SyncRunConfig::fixed(10));
        assert!(!out.completed());
        assert_eq!(out.deliveries(), 0);
        assert_eq!(out.jam_losses(), 10);
    }
}
