//! Energy accounting.
//!
//! Neighbor discovery runs at deployment time on battery-powered nodes, so
//! the *energy* cost of a protocol matters as much as its latency (the
//! birthday-protocol literature the paper builds on \[1\] is explicitly
//! about "low energy deployment"). The engines count every node's
//! transmit/receive/quiet slots (or frames); an [`EnergyModel`] converts
//! the counts into energy units.

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Per-node counts of what the transceiver did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionCounts {
    /// Slots (or frames) spent transmitting.
    pub transmit: u64,
    /// Slots (or frames) spent listening.
    pub listen: u64,
    /// Slots (or frames) with the transceiver off.
    pub quiet: u64,
}

impl ActionCounts {
    /// Total accounted slots/frames.
    pub fn total(&self) -> u64 {
        self.transmit + self.listen + self.quiet
    }

    /// Fraction of active (non-quiet) time spent transmitting.
    pub fn duty_cycle(&self) -> f64 {
        let active = self.transmit + self.listen;
        if active == 0 {
            0.0
        } else {
            self.transmit as f64 / active as f64
        }
    }
}

impl AddAssign for ActionCounts {
    fn add_assign(&mut self, rhs: Self) {
        self.transmit += rhs.transmit;
        self.listen += rhs.listen;
        self.quiet += rhs.quiet;
    }
}

/// Linear energy model: cost per transmit/listen/quiet slot.
///
/// Defaults follow the usual radio ordering `tx > rx ≫ idle` (e.g. CC2420
/// class transceivers): 1.0 / 0.7 / 0.01 units per slot.
///
/// # Examples
///
/// ```
/// use mmhew_engine::{ActionCounts, EnergyModel};
///
/// let model = EnergyModel::default();
/// let counts = ActionCounts { transmit: 10, listen: 100, quiet: 890 };
/// let e = model.cost(&counts);
/// assert!((e - (10.0 + 70.0 + 8.9)).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per transmitting slot.
    pub transmit_cost: f64,
    /// Energy per listening slot.
    pub listen_cost: f64,
    /// Energy per quiet slot.
    pub quiet_cost: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            transmit_cost: 1.0,
            listen_cost: 0.7,
            quiet_cost: 0.01,
        }
    }
}

impl EnergyModel {
    /// Total energy of one node's counts.
    pub fn cost(&self, counts: &ActionCounts) -> f64 {
        counts.transmit as f64 * self.transmit_cost
            + counts.listen as f64 * self.listen_cost
            + counts.quiet as f64 * self.quiet_cost
    }

    /// Total energy across all nodes.
    pub fn total_cost(&self, counts: &[ActionCounts]) -> f64 {
        counts.iter().map(|c| self.cost(c)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let mut a = ActionCounts {
            transmit: 1,
            listen: 2,
            quiet: 3,
        };
        a += ActionCounts {
            transmit: 10,
            listen: 20,
            quiet: 30,
        };
        assert_eq!(a.transmit, 11);
        assert_eq!(a.listen, 22);
        assert_eq!(a.quiet, 33);
        assert_eq!(a.total(), 66);
    }

    #[test]
    fn duty_cycle_ignores_quiet() {
        let c = ActionCounts {
            transmit: 25,
            listen: 75,
            quiet: 900,
        };
        assert!((c.duty_cycle() - 0.25).abs() < 1e-12);
        assert_eq!(ActionCounts::default().duty_cycle(), 0.0);
    }

    #[test]
    fn default_model_ordering() {
        let m = EnergyModel::default();
        assert!(m.transmit_cost > m.listen_cost);
        assert!(m.listen_cost > m.quiet_cost);
    }

    #[test]
    fn total_cost_sums_nodes() {
        let m = EnergyModel {
            transmit_cost: 2.0,
            listen_cost: 1.0,
            quiet_cost: 0.0,
        };
        let counts = vec![
            ActionCounts {
                transmit: 1,
                listen: 1,
                quiet: 5,
            },
            ActionCounts {
                transmit: 0,
                listen: 3,
                quiet: 0,
            },
        ];
        assert!((m.total_cost(&counts) - 6.0).abs() < 1e-12);
    }
}
