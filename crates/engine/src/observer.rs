//! Link-coverage tracking.
//!
//! The analysis reasons about links being *covered* (a clear reception of
//! the transmitter's beacon by the receiver). The tracker records the first
//! coverage time of every directed link of a network and detects global
//! completion — the quantity every theorem bounds.

use mmhew_topology::{Link, Network};
use std::collections::BTreeMap;

/// Records the first coverage time of each link of a network.
///
/// Generic over the time type: slot indices (`u64`) for the synchronous
/// engines, real nanoseconds for the asynchronous engine.
///
/// # Examples
///
/// ```
/// use mmhew_engine::CoverageTracker;
/// use mmhew_topology::{Link, NetworkBuilder, NodeId};
/// use mmhew_util::SeedTree;
///
/// let net = NetworkBuilder::line(2).universe(2).build(SeedTree::new(0))?;
/// let mut tracker: CoverageTracker<u64> = CoverageTracker::new(&net);
/// assert!(!tracker.is_complete());
/// tracker.record(Link { from: NodeId::new(0), to: NodeId::new(1) }, 7);
/// tracker.record(Link { from: NodeId::new(1), to: NodeId::new(0) }, 9);
/// assert!(tracker.is_complete());
/// assert_eq!(tracker.completion_time(), Some(9));
/// # Ok::<(), mmhew_topology::BuildError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageTracker<T> {
    first_coverage: BTreeMap<Link, Option<T>>,
    covered: usize,
}

impl<T: Copy + Ord> CoverageTracker<T> {
    /// Creates a tracker expecting every link of `network`.
    pub fn new(network: &Network) -> Self {
        Self {
            first_coverage: network.links().iter().map(|&l| (l, None)).collect(),
            covered: 0,
        }
    }

    /// Records a coverage event and returns `true` if `link` was covered
    /// for the first time. Only the first time per link is kept. Coverage
    /// of links the network does not contain is ignored (can happen only
    /// if callers construct deliveries by hand).
    pub fn record(&mut self, link: Link, time: T) -> bool {
        if let Some(slot @ None) = self.first_coverage.get_mut(&link) {
            *slot = Some(time);
            self.covered += 1;
            true
        } else {
            false
        }
    }

    /// Number of links covered so far.
    pub fn covered(&self) -> usize {
        self.covered
    }

    /// Total links expected.
    pub fn expected(&self) -> usize {
        self.first_coverage.len()
    }

    /// True when every link has been covered.
    pub fn is_complete(&self) -> bool {
        self.covered == self.first_coverage.len()
    }

    /// The time the last link was first covered, if complete.
    pub fn completion_time(&self) -> Option<T> {
        if !self.is_complete() || self.first_coverage.is_empty() {
            return None;
        }
        self.first_coverage
            .values()
            .map(|t| t.expect("complete"))
            .max()
    }

    /// First-coverage time per link (`None` for still-uncovered links).
    pub fn per_link(&self) -> impl Iterator<Item = (Link, Option<T>)> + '_ {
        self.first_coverage.iter().map(|(&l, &t)| (l, t))
    }

    /// Re-aligns the tracker with a mutated network's current link set
    /// (time-varying ground truth under dynamics):
    ///
    /// * links present before and after keep their first-coverage stamp;
    /// * links that vanished are dropped entirely;
    /// * new links — including ones that vanished earlier and came back —
    ///   start uncovered, so re-establishment after an outage is measured
    ///   from scratch.
    pub fn resync(&mut self, network: &Network) {
        let old = std::mem::take(&mut self.first_coverage);
        self.first_coverage = network
            .links()
            .iter()
            .map(|&l| (l, old.get(&l).copied().flatten()))
            .collect();
        self.covered = self.first_coverage.values().filter(|t| t.is_some()).count();
    }

    /// Links not yet covered.
    pub fn uncovered(&self) -> Vec<Link> {
        self.first_coverage
            .iter()
            .filter(|(_, t)| t.is_none())
            .map(|(&l, _)| l)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_topology::{NetworkBuilder, NodeId};
    use mmhew_util::SeedTree;

    fn link(a: u32, b: u32) -> Link {
        Link {
            from: NodeId::new(a),
            to: NodeId::new(b),
        }
    }

    fn line3() -> Network {
        NetworkBuilder::line(3)
            .universe(2)
            .build(SeedTree::new(0))
            .expect("build")
    }

    #[test]
    fn counts_and_completion() {
        let net = line3();
        let mut t: CoverageTracker<u64> = CoverageTracker::new(&net);
        assert_eq!(t.expected(), 4);
        t.record(link(0, 1), 3);
        t.record(link(1, 0), 5);
        t.record(link(1, 2), 2);
        assert_eq!(t.covered(), 3);
        assert!(!t.is_complete());
        assert_eq!(t.completion_time(), None);
        assert_eq!(t.uncovered(), vec![link(2, 1)]);
        t.record(link(2, 1), 9);
        assert!(t.is_complete());
        assert_eq!(t.completion_time(), Some(9));
    }

    #[test]
    fn first_coverage_wins() {
        let net = line3();
        let mut t: CoverageTracker<u64> = CoverageTracker::new(&net);
        assert!(t.record(link(0, 1), 10));
        assert!(!t.record(link(0, 1), 2));
        let times: std::collections::BTreeMap<Link, Option<u64>> = t.per_link().collect();
        assert_eq!(times[&link(0, 1)], Some(10));
    }

    #[test]
    fn unknown_link_ignored() {
        let net = line3();
        let mut t: CoverageTracker<u64> = CoverageTracker::new(&net);
        assert!(!t.record(link(0, 2), 1)); // not neighbors
        assert_eq!(t.covered(), 0);
    }

    #[test]
    fn resync_keeps_survivors_and_resets_returners() {
        let net = line3();
        let mut t: CoverageTracker<u64> = CoverageTracker::new(&net);
        t.record(link(0, 1), 3);
        t.record(link(1, 2), 4);
        // Node 2 departs: its links vanish; link (0,1)/(1,0) survive.
        let mut shrunk = net.clone();
        shrunk
            .apply(&mmhew_topology::NetworkEvent::NodeLeave {
                node: NodeId::new(2),
            })
            .expect("apply");
        t.resync(&shrunk);
        assert_eq!(t.expected(), 2);
        assert_eq!(t.covered(), 1, "only (0,1) still counts");
        let times: std::collections::BTreeMap<Link, Option<u64>> = t.per_link().collect();
        assert_eq!(times[&link(0, 1)], Some(3), "survivor keeps its stamp");
        // Node 2 comes back: its links reappear uncovered.
        t.resync(&net);
        assert_eq!(t.expected(), 4);
        assert_eq!(t.covered(), 1);
        let times: std::collections::BTreeMap<Link, Option<u64>> = t.per_link().collect();
        assert_eq!(times[&link(1, 2)], None, "returning link starts over");
    }

    #[test]
    fn empty_network_is_trivially_complete_with_no_time() {
        let net = NetworkBuilder::line(1)
            .universe(1)
            .build(SeedTree::new(0))
            .expect("build");
        let t: CoverageTracker<u64> = CoverageTracker::new(&net);
        assert!(t.is_complete());
        assert_eq!(t.completion_time(), None);
    }
}
