//! Run configuration: start schedules, clock populations, and stop
//! conditions.

use mmhew_radio::Impairments;
use mmhew_time::{DriftModel, DriftedClock, LocalDuration, LocalTime, RealDuration, RealTime};
use mmhew_util::SeedTree;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// When each node begins executing the protocol, in slots (synchronous
/// engines).
///
/// Algorithms 1–2 assume [`StartSchedule::Identical`]; Algorithm 3 is
/// designed precisely to tolerate the other two.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StartSchedule {
    /// All nodes start at slot 0.
    Identical,
    /// Each node starts at a slot drawn uniformly from `[0, window]`.
    Staggered {
        /// Largest possible start slot.
        window: u64,
    },
    /// Explicit per-node start slots.
    Explicit(Vec<u64>),
}

impl StartSchedule {
    /// Produces the per-node start slots.
    ///
    /// # Panics
    ///
    /// Panics if an `Explicit` schedule has the wrong length.
    pub fn materialize(&self, n: usize, seed: SeedTree) -> Vec<u64> {
        match self {
            StartSchedule::Identical => vec![0; n],
            StartSchedule::Staggered { window } => (0..n)
                .map(|i| {
                    let mut rng = seed.branch("start-slot").index(i as u64).rng();
                    rng.gen_range(0..=*window)
                })
                .collect(),
            StartSchedule::Explicit(slots) => {
                assert_eq!(slots.len(), n, "explicit schedule length mismatch");
                slots.clone()
            }
        }
    }

    /// The latest possible start slot (`T_s` of Theorem 3) for a
    /// materialized schedule.
    pub fn latest(starts: &[u64]) -> u64 {
        starts.iter().copied().max().unwrap_or(0)
    }
}

/// Stop conditions for a synchronous run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncRunConfig {
    /// Hard slot budget: the run aborts (incomplete) after this many slots.
    pub max_slots: u64,
    /// Stop as soon as every link is covered (the usual mode). When false,
    /// runs the full budget — useful for failure-probability estimation.
    pub stop_when_complete: bool,
    /// Stop once every protocol reports local termination (see
    /// [`crate::SyncProtocol::is_terminated`]).
    pub stop_when_all_terminated: bool,
    /// Channel impairments.
    pub impairments: Impairments,
}

impl SyncRunConfig {
    /// Runs until complete, giving up after `max_slots`.
    pub fn until_complete(max_slots: u64) -> Self {
        Self {
            max_slots,
            stop_when_complete: true,
            stop_when_all_terminated: false,
            impairments: Impairments::reliable(),
        }
    }

    /// Runs exactly `slots` slots regardless of completion.
    pub fn fixed(slots: u64) -> Self {
        Self {
            max_slots: slots,
            stop_when_complete: false,
            stop_when_all_terminated: false,
            impairments: Impairments::reliable(),
        }
    }

    /// Runs until every node terminates locally (or the budget runs out):
    /// the engine no longer peeks at global coverage, so the run length is
    /// decided by the nodes themselves, as it would be in a real
    /// deployment.
    pub fn until_all_terminated(max_slots: u64) -> Self {
        Self {
            max_slots,
            stop_when_complete: false,
            stop_when_all_terminated: true,
            impairments: Impairments::reliable(),
        }
    }

    /// Replaces the impairment model.
    pub fn with_impairments(mut self, impairments: Impairments) -> Self {
        self.impairments = impairments;
        self
    }
}

/// When each node begins executing, in real time (asynchronous engine).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AsyncStartSchedule {
    /// All nodes start at real time 0.
    Identical,
    /// Each node starts at a real time drawn uniformly from `[0, window]`.
    Staggered {
        /// Largest possible start time after 0.
        window: RealDuration,
    },
    /// Explicit per-node start times.
    Explicit(Vec<RealTime>),
}

impl AsyncStartSchedule {
    /// Produces the per-node start times.
    ///
    /// # Panics
    ///
    /// Panics if an `Explicit` schedule has the wrong length.
    pub fn materialize(&self, n: usize, seed: SeedTree) -> Vec<RealTime> {
        match self {
            AsyncStartSchedule::Identical => vec![RealTime::ZERO; n],
            AsyncStartSchedule::Staggered { window } => (0..n)
                .map(|i| {
                    let mut rng = seed.branch("start-time").index(i as u64).rng();
                    RealTime::from_nanos(rng.gen_range(0..=window.as_nanos()))
                })
                .collect(),
            AsyncStartSchedule::Explicit(times) => {
                assert_eq!(times.len(), n, "explicit schedule length mismatch");
                times.clone()
            }
        }
    }
}

/// How the population of node clocks is generated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClockConfig {
    /// Drift behaviour shared by all clocks (each gets independent
    /// randomness).
    pub drift: DriftModel,
    /// Clock offsets are drawn uniformly from `[0, offset_window]` — the
    /// paper allows arbitrary offsets between clocks.
    pub offset_window: LocalDuration,
}

impl ClockConfig {
    /// Ideal clocks, zero offsets.
    pub fn ideal() -> Self {
        Self {
            drift: DriftModel::Ideal,
            offset_window: LocalDuration::ZERO,
        }
    }

    /// Produces one clock per node.
    pub fn materialize(&self, n: usize, seed: SeedTree) -> Vec<DriftedClock> {
        (0..n)
            .map(|i| {
                let node_seed = seed.branch("clock").index(i as u64);
                let offset = if self.offset_window.is_zero() {
                    LocalTime::ZERO
                } else {
                    let mut rng = node_seed.branch("offset").rng();
                    LocalTime::from_nanos(rng.gen_range(0..=self.offset_window.as_nanos()))
                };
                DriftedClock::new(self.drift.clone(), offset, node_seed)
            })
            .collect()
    }
}

/// How a transmitting frame is laid out on the air — an ablation knob for
/// Algorithm 4's design choice of repeating the beacon in every slot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BurstPlan {
    /// The paper's design: repeat the beacon in each of the three slots,
    /// so an *aligned* listener frame always contains a complete copy.
    #[default]
    EverySlot,
    /// Ablation: transmit in only one slot of the frame (index 0–2).
    SingleSlot {
        /// Which slot carries the beacon.
        slot: u64,
    },
    /// Ablation: one long beacon spanning the whole frame. A misaligned
    /// listener frame of equal length can never contain it — discovery
    /// relies entirely on drift-induced nesting.
    WholeFrame,
}

/// Full configuration of an asynchronous run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsyncRunConfig {
    /// Local frame length `L` (must be divisible by 3).
    pub frame_len: LocalDuration,
    /// Per-node frame budget: the run aborts once every node has executed
    /// this many frames.
    pub max_frames: u64,
    /// Stop as soon as every link is covered.
    pub stop_when_complete: bool,
    /// Channel impairments.
    pub impairments: Impairments,
    /// Clock population.
    pub clocks: ClockConfig,
    /// Start-time schedule.
    pub starts: AsyncStartSchedule,
    /// On-air layout of transmitting frames (ablation; the paper's design
    /// is [`BurstPlan::EverySlot`]).
    pub burst_plan: BurstPlan,
}

impl AsyncRunConfig {
    /// A sensible default: 3 µs frames, ideal clocks, identical starts,
    /// reliable channels, stop on completion.
    pub fn until_complete(max_frames: u64) -> Self {
        Self {
            frame_len: LocalDuration::from_nanos(3_000),
            max_frames,
            stop_when_complete: true,
            impairments: Impairments::reliable(),
            clocks: ClockConfig::ideal(),
            starts: AsyncStartSchedule::Identical,
            burst_plan: BurstPlan::EverySlot,
        }
    }

    /// Replaces the clock configuration.
    pub fn with_clocks(mut self, clocks: ClockConfig) -> Self {
        self.clocks = clocks;
        self
    }

    /// Replaces the start schedule.
    pub fn with_starts(mut self, starts: AsyncStartSchedule) -> Self {
        self.starts = starts;
        self
    }

    /// Replaces the frame length.
    pub fn with_frame_len(mut self, frame_len: LocalDuration) -> Self {
        self.frame_len = frame_len;
        self
    }

    /// Replaces the impairment model.
    pub fn with_impairments(mut self, impairments: Impairments) -> Self {
        self.impairments = impairments;
        self
    }

    /// Replaces the on-air burst plan (ablations only).
    pub fn with_burst_plan(mut self, burst_plan: BurstPlan) -> Self {
        self.burst_plan = burst_plan;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_time::DriftBound;

    #[test]
    fn identical_schedule() {
        let s = StartSchedule::Identical.materialize(4, SeedTree::new(0));
        assert_eq!(s, vec![0, 0, 0, 0]);
        assert_eq!(StartSchedule::latest(&s), 0);
    }

    #[test]
    fn staggered_schedule_in_window_and_deterministic() {
        let sched = StartSchedule::Staggered { window: 100 };
        let a = sched.materialize(50, SeedTree::new(1));
        let b = sched.materialize(50, SeedTree::new(1));
        assert_eq!(a, b);
        assert!(a.iter().all(|&s| s <= 100));
        assert!(a.iter().any(|&s| s > 0), "some node should start late");
        assert_eq!(
            StartSchedule::latest(&a),
            *a.iter().max().expect("nonempty")
        );
    }

    #[test]
    fn explicit_schedule_round_trip() {
        let s = StartSchedule::Explicit(vec![5, 0, 9]).materialize(3, SeedTree::new(0));
        assert_eq!(s, vec![5, 0, 9]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn explicit_wrong_length_panics() {
        StartSchedule::Explicit(vec![1]).materialize(2, SeedTree::new(0));
    }

    #[test]
    fn async_schedules() {
        let ident = AsyncStartSchedule::Identical.materialize(3, SeedTree::new(0));
        assert!(ident.iter().all(|&t| t == RealTime::ZERO));
        let stag = AsyncStartSchedule::Staggered {
            window: RealDuration::from_nanos(1_000),
        }
        .materialize(20, SeedTree::new(2));
        assert!(stag.iter().all(|&t| t.as_nanos() <= 1_000));
        assert!(stag.iter().any(|&t| t.as_nanos() > 0));
    }

    #[test]
    fn clock_config_materializes_population() {
        let cfg = ClockConfig {
            drift: DriftModel::RandomPiecewise {
                bound: DriftBound::PAPER,
                segment: RealDuration::from_micros(10),
            },
            offset_window: LocalDuration::from_nanos(500),
        };
        let clocks = cfg.materialize(10, SeedTree::new(3));
        assert_eq!(clocks.len(), 10);
        let offsets: Vec<u64> = clocks.iter().map(|c| c.offset().as_nanos()).collect();
        assert!(offsets.iter().all(|&o| o <= 500));
        assert!(
            offsets
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len()
                > 1,
            "offsets should vary"
        );
        for c in &clocks {
            assert!(c.rates_within(DriftBound::PAPER));
        }
    }

    #[test]
    fn ideal_clock_config() {
        let clocks = ClockConfig::ideal().materialize(3, SeedTree::new(0));
        for mut c in clocks {
            assert_eq!(
                c.local_at(RealTime::from_nanos(777)),
                mmhew_time::LocalTime::from_nanos(777)
            );
        }
    }

    #[test]
    fn run_config_builders() {
        let s = SyncRunConfig::until_complete(100);
        assert!(s.stop_when_complete);
        assert_eq!(s.max_slots, 100);
        let f =
            SyncRunConfig::fixed(50).with_impairments(Impairments::with_delivery_probability(0.5));
        assert!(!f.stop_when_complete);
        assert_eq!(f.impairments.delivery_probability(), 0.5);

        let a = AsyncRunConfig::until_complete(1_000)
            .with_frame_len(LocalDuration::from_nanos(600))
            .with_starts(AsyncStartSchedule::Identical);
        assert_eq!(a.frame_len.as_nanos(), 600);
        assert_eq!(a.max_frames, 1_000);
    }
}
