//! The event-driven continuous-time engine (Algorithm 4).
//!
//! Each node owns a drifting clock and divides its *local* time into
//! frames; the engine projects frame and slot boundaries onto real time,
//! maintains a priority queue of frame-start/frame-end events, and resolves
//! receptions with the continuous-time medium of
//! [`mmhew_radio::continuous`].
//!
//! Causality: a node's action for frame `f` is requested at the real
//! instant frame `f` begins, by which time every reception that completed
//! earlier has been delivered (frame-end events sort before frame-start
//! events at equal timestamps). Every burst that can influence a listening
//! window has been registered before the window's end event fires, because
//! its originating frame starts before the window ends.

use crate::config::{AsyncRunConfig, BurstPlan};
use crate::dynamics::dynamics_sim_event;
use crate::energy::{ActionCounts, EnergyModel};
use crate::observer::CoverageTracker;
use crate::protocol::AsyncProtocol;
use crate::table::NeighborTable;
use mmhew_dynamics::DynamicsSchedule;
use mmhew_faults::{ActiveFaults, FaultPlan};
use mmhew_obs::{EventSink, ProtocolPhase, SimEvent, Stamp};
use mmhew_radio::{
    Beacon, ContinuousResolver, FrameAction, ListenWindow, SlotAction, Transmission,
};
use mmhew_time::{DriftedClock, FrameSchedule, RealTime, SLOTS_PER_FRAME};
use mmhew_topology::{Link, Network, NetworkEvent, NodeId};
use mmhew_util::{SeedTree, Xoshiro256StarStar};
use serde::Serialize;
use std::borrow::Cow;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of an asynchronous run.
#[derive(Debug, Clone, Serialize)]
pub struct AsyncOutcome {
    completed: bool,
    completion_time: Option<RealTime>,
    latest_start: RealTime,
    frames_executed: Vec<u64>,
    min_full_frames_at_completion: Option<u64>,
    link_coverage: Vec<(Link, Option<RealTime>)>,
    tables: Vec<NeighborTable>,
    deliveries: u64,
    impairment_losses: u64,
    beacon_losses: u64,
    jam_losses: u64,
    action_counts: Vec<ActionCounts>,
}

impl AsyncOutcome {
    /// True if every link was covered within the frame budget.
    pub fn completed(&self) -> bool {
        self.completed
    }

    /// Real time at which the last link was first covered.
    pub fn completion_time(&self) -> Option<RealTime> {
        self.completion_time
    }

    /// The latest protocol start time `T_s`.
    pub fn latest_start(&self) -> RealTime {
        self.latest_start
    }

    /// Frames fully executed per node.
    pub fn frames_executed(&self) -> &[u64] {
        &self.frames_executed
    }

    /// The minimum, over nodes, of full frames executed between `T_s` and
    /// completion — the measured analogue of the `M` frames Theorem 9
    /// requires of *every* node. `None` if incomplete.
    pub fn min_full_frames_at_completion(&self) -> Option<u64> {
        self.min_full_frames_at_completion
    }

    /// First-coverage real time per link.
    pub fn link_coverage(&self) -> &[(Link, Option<RealTime>)] {
        &self.link_coverage
    }

    /// Final neighbor table of node `u`.
    pub fn table(&self, u: NodeId) -> &NeighborTable {
        &self.tables[u.as_usize()]
    }

    /// Final neighbor tables, indexed by node.
    pub fn tables(&self) -> &[NeighborTable] {
        &self.tables
    }

    /// Total clear deliveries.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// Clear receptions dropped by channel impairments.
    pub fn impairment_losses(&self) -> u64 {
        self.impairment_losses
    }

    /// Clear receptions destroyed by the fault plan's link loss models.
    /// Zero without faults.
    pub fn beacon_losses(&self) -> u64 {
        self.beacon_losses
    }

    /// Receptions suppressed because a jammer overlapped their burst.
    /// Zero without faults.
    pub fn jam_losses(&self) -> u64 {
        self.jam_losses
    }

    /// Per-node frame action counts (transmit/listen frames), for energy
    /// accounting.
    pub fn action_counts(&self) -> &[ActionCounts] {
        &self.action_counts
    }

    /// Total energy spent across the network under `model` (per-frame
    /// costs).
    pub fn total_energy(&self, model: &EnergyModel) -> f64 {
        model.total_cost(&self.action_counts)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// Resolve a finished frame (receptions delivered here). Sorts before
    /// `FrameStart` at the same instant.
    FrameEnd,
    /// Ask the protocol for its next frame action.
    FrameStart,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: RealTime,
    kind: EventKind,
    node: u32,
    frame: u64,
}

struct NodeState {
    clock: DriftedClock,
    schedule: FrameSchedule,
    pending_listen: Option<ListenWindow>,
    frames_executed: u64,
}

/// The asynchronous engine.
///
/// Constructed via [`AsyncEngine::new`] from an [`AsyncRunConfig`] (clocks
/// and start times are materialized from the seed) and consumed by
/// [`AsyncEngine::run`].
pub struct AsyncEngine<'n> {
    /// Borrowed while static; promoted to an owned copy on the first
    /// dynamics mutation (copy-on-write keeps static runs allocation-free).
    network: Cow<'n, Network>,
    dynamics: Option<DynamicsSchedule>,
    /// `None` when the fault plan is empty, so fault-free runs take the
    /// exact pre-fault code path (neutrality).
    faults: Option<ActiveFaults>,
    protocols: Vec<Box<dyn AsyncProtocol>>,
    nodes: Vec<NodeState>,
    starts: Vec<RealTime>,
    node_rngs: Vec<Xoshiro256StarStar>,
    medium_rng: Xoshiro256StarStar,
    tracker: CoverageTracker<RealTime>,
    queue: BinaryHeap<Reverse<Event>>,
    bursts: Vec<Vec<Transmission>>,
    deliveries: u64,
    impairment_losses: u64,
    beacon_losses: u64,
    jam_losses: u64,
    action_counts: Vec<ActionCounts>,
    config: AsyncRunConfig,
    sink: Option<&'n mut dyn EventSink>,
    phases: Vec<Option<ProtocolPhase>>,
    /// Continuous-time medium resolution with persistent scratch.
    resolver: ContinuousResolver,
    /// One prebuilt beacon per node, refreshed only when a dynamics event
    /// changes that node's availability (`NodeJoin`, `ChannelGained`,
    /// `ChannelLost`).
    beacons: Vec<Beacon>,
}

impl<'n> AsyncEngine<'n> {
    /// Creates an engine, materializing clocks and start times from
    /// `config` and `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `protocols` length differs from the node count, or the
    /// frame length is not divisible by [`SLOTS_PER_FRAME`].
    pub fn new(
        network: &'n Network,
        protocols: Vec<Box<dyn AsyncProtocol>>,
        config: AsyncRunConfig,
        seed: SeedTree,
    ) -> Self {
        let n = network.node_count();
        let clocks = config.clocks.materialize(n, seed.branch("clocks"));
        let starts = config.starts.materialize(n, seed.branch("starts"));
        Self::with_clocks_and_starts(network, protocols, config, clocks, starts, seed)
    }

    /// Creates an engine with explicitly provided clocks and start times
    /// (the `clocks`/`starts` fields of `config` are ignored).
    ///
    /// # Panics
    ///
    /// Panics on any per-node vector length mismatch, or a frame length not
    /// divisible by [`SLOTS_PER_FRAME`].
    pub fn with_clocks_and_starts(
        network: &'n Network,
        protocols: Vec<Box<dyn AsyncProtocol>>,
        config: AsyncRunConfig,
        clocks: Vec<DriftedClock>,
        starts: Vec<RealTime>,
        seed: SeedTree,
    ) -> Self {
        let n = network.node_count();
        assert_eq!(protocols.len(), n, "one protocol per node required");
        assert_eq!(clocks.len(), n, "one clock per node required");
        assert_eq!(starts.len(), n, "one start time per node required");
        let mut queue = BinaryHeap::new();
        let mut nodes = Vec::with_capacity(n);
        for (i, mut clock) in clocks.into_iter().enumerate() {
            let start_local = clock.local_at(starts[i]);
            let schedule = FrameSchedule::new(start_local, config.frame_len);
            let first = schedule.frame_interval(0, &mut clock);
            if config.max_frames > 0 {
                queue.push(Reverse(Event {
                    time: first.start(),
                    kind: EventKind::FrameStart,
                    node: i as u32,
                    frame: 0,
                }));
            }
            nodes.push(NodeState {
                clock,
                schedule,
                pending_listen: None,
                frames_executed: 0,
            });
        }
        let node_rngs = (0..n)
            .map(|i| seed.branch("node").index(i as u64).rng())
            .collect();
        let beacons = (0..n)
            .map(|i| {
                let u = NodeId::new(i as u32);
                Beacon::new(u, network.available(u).to_owned())
            })
            .collect();
        Self {
            network: Cow::Borrowed(network),
            dynamics: None,
            faults: None,
            protocols,
            nodes,
            starts,
            node_rngs,
            medium_rng: seed.branch("medium").rng(),
            tracker: CoverageTracker::new(network),
            queue,
            bursts: vec![Vec::new(); network.universe_size() as usize],
            deliveries: 0,
            impairment_losses: 0,
            beacon_losses: 0,
            jam_losses: 0,
            action_counts: vec![ActionCounts::default(); n],
            config,
            sink: None,
            phases: vec![None; n],
            resolver: ContinuousResolver::new(),
            beacons,
        }
    }

    /// Attaches an [`EventSink`] that receives every simulation event.
    ///
    /// Without a sink (or with a disabled one such as
    /// [`mmhew_obs::NullSink`]) the engine skips event assembly entirely.
    pub fn with_sink(mut self, sink: &'n mut dyn EventSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attaches a [`DynamicsSchedule`]: due events (interpreting `at` as
    /// real nanoseconds) are applied at frame-start boundaries, before the
    /// starting node's protocol is consulted. An empty schedule leaves the
    /// run bit-identical to a run without one (dynamics neutrality).
    pub fn with_dynamics(mut self, schedule: DynamicsSchedule) -> Self {
        self.dynamics = Some(schedule);
        self
    }

    /// Attaches a [`FaultPlan`]: link loss models, jammer schedules
    /// (matched against each burst's real-time interval), and
    /// crash/recover outages. The capture effect is a slot-synchronous
    /// concept and is not modelled here.
    ///
    /// An empty plan is dropped on the floor so the run stays
    /// bit-identical — outcomes, RNG stream, and traces — to a run
    /// without faults (fault neutrality).
    ///
    /// Crash state is sampled at frame boundaries: a node crashed when
    /// its transmit frame starts radiates nothing that frame, and a node
    /// crashed when its listen frame ends hears nothing from it.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        if !plan.is_empty() {
            plan.validate();
            let n = self.network.node_count();
            let universe = self.network.universe_size() as usize;
            self.faults = Some(ActiveFaults::new(plan, n, universe));
        }
        self
    }

    /// The network as of the last applied dynamics event (the original
    /// borrow while no event has fired).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Advances the fault runtime to `now` (queue pops are time-ordered,
    /// so stamps are nondecreasing) and surfaces crash transitions.
    fn advance_faults(&mut self, now: RealTime) {
        let Some(faults) = self.faults.as_mut() else {
            return;
        };
        faults.advance_to(now.as_nanos());
        if self.sink.as_ref().is_some_and(|s| s.enabled()) {
            let at = Stamp::Real(now);
            let sink = self.sink.as_deref_mut().expect("sink checked above");
            for t in faults.transitions() {
                sink.on_event(&if t.up {
                    SimEvent::NodeRecovered { at, node: t.node }
                } else {
                    SimEvent::NodeCrashed { at, node: t.node }
                });
            }
        }
    }

    /// Applies every dynamics event due at real time `now`, then resyncs
    /// the coverage tracker to the mutated ground truth.
    fn apply_due_dynamics(&mut self, now: RealTime) {
        let due: Vec<NetworkEvent> = match self.dynamics.as_mut() {
            None => return,
            Some(schedule) => {
                let mut due = Vec::new();
                while let Some(timed) = schedule.next_due(now.as_nanos()) {
                    due.push(timed.event.clone());
                }
                due
            }
        };
        if due.is_empty() {
            return;
        }
        let observing = self.sink.as_ref().is_some_and(|s| s.enabled());
        let at = Stamp::Real(now);
        for event in &due {
            self.network
                .to_mut()
                .apply(event)
                .expect("dynamics event must be valid for this network");
            if observing {
                let sim = dynamics_sim_event(event, at);
                let sink = self.sink.as_deref_mut().expect("sink checked above");
                sink.on_event(&sim);
            }
        }
        self.tracker.resync(&self.network);
        // Refresh the cached beacon of every node whose availability an
        // event may have changed (join / channel gain / channel loss);
        // topology-only events leave beacons untouched.
        for event in &due {
            let node = match event {
                NetworkEvent::NodeJoin { node, .. }
                | NetworkEvent::ChannelGained { node, .. }
                | NetworkEvent::ChannelLost { node, .. } => *node,
                NetworkEvent::NodeLeave { .. }
                | NetworkEvent::EdgeAdd { .. }
                | NetworkEvent::EdgeRemove { .. } => continue,
            };
            self.beacons[node.as_usize()].update_available(self.network.available(node));
        }
        if observing {
            let covered = self.tracker.covered() as u64;
            let expected = self.tracker.expected() as u64;
            let sink = self.sink.as_deref_mut().expect("sink checked above");
            sink.on_event(&SimEvent::GroundTruthChanged {
                at,
                covered,
                expected,
            });
        }
    }

    /// Runs to completion or budget exhaustion.
    ///
    /// With a dynamics schedule attached, `stop_when_complete` only fires
    /// once the schedule is exhausted — a transiently complete (or empty)
    /// ground truth with mutations still pending is not the end of the
    /// story.
    pub fn run(mut self) -> AsyncOutcome {
        while let Some(Reverse(event)) = self.queue.pop() {
            match event.kind {
                EventKind::FrameStart => self.on_frame_start(event),
                EventKind::FrameEnd => {
                    self.on_frame_end(event);
                    let dynamics_pending =
                        self.dynamics.as_ref().is_some_and(|s| !s.is_exhausted());
                    if self.config.stop_when_complete
                        && self.tracker.is_complete()
                        && !dynamics_pending
                    {
                        break;
                    }
                }
            }
        }
        self.finish()
    }

    fn on_frame_start(&mut self, event: Event) {
        self.apply_due_dynamics(event.time);
        self.advance_faults(event.time);
        let i = event.node as usize;
        let f = event.frame;
        if self.protocols[i].is_terminated() {
            // The node shut itself down: schedule nothing further; its
            // radio stays off for the rest of the run.
            return;
        }
        let state = &mut self.nodes[i];
        let interval = state.schedule.frame_interval(f, &mut state.clock);
        let action = self.protocols[i].on_frame(f, &mut self.node_rngs[i]);
        // Under dynamics a protocol may lag behind a spectrum mutation and
        // transmit on a channel it just lost; the medium simply never
        // delivers it. Statically that is a protocol bug.
        debug_assert!(
            self.dynamics.is_some()
                || self
                    .network
                    .available(NodeId::new(event.node))
                    .contains(action.channel()),
            "protocol chose a channel outside its available set"
        );
        let observing = self.sink.as_ref().is_some_and(|s| s.enabled());
        if observing {
            let local = state.schedule.frame_start_local(f);
            let node = NodeId::new(event.node);
            let slot_action = match action {
                FrameAction::Transmit { channel } => SlotAction::Transmit { channel },
                FrameAction::Listen { channel } => SlotAction::Listen { channel },
            };
            let sink = self.sink.as_deref_mut().expect("sink checked above");
            sink.on_event(&SimEvent::FrameStart {
                node,
                frame: f,
                real: interval.start(),
                local,
            });
            sink.on_event(&SimEvent::Action {
                at: Stamp::Real(interval.start()),
                node,
                action: slot_action,
            });
        }
        // A crashed radio still burns the frame (the protocol acted and is
        // charged for it) but puts nothing on the medium and arms no
        // listening window.
        let crashed = self
            .faults
            .as_ref()
            .is_some_and(|fa| fa.is_crashed(NodeId::new(event.node)));
        match action {
            FrameAction::Transmit { channel } => {
                self.action_counts[i].transmit += 1;
                if !crashed {
                    let mut push = |interval| {
                        self.bursts[channel.index() as usize].push(Transmission {
                            from: NodeId::new(event.node),
                            channel,
                            interval,
                        });
                    };
                    match self.config.burst_plan {
                        BurstPlan::EverySlot => {
                            for slot in 0..SLOTS_PER_FRAME {
                                push(state.schedule.slot_interval(f, slot, &mut state.clock));
                            }
                        }
                        BurstPlan::SingleSlot { slot } => {
                            let slot = slot.min(SLOTS_PER_FRAME - 1);
                            push(state.schedule.slot_interval(f, slot, &mut state.clock));
                        }
                        BurstPlan::WholeFrame => push(interval),
                    }
                }
            }
            FrameAction::Listen { channel } => {
                self.action_counts[i].listen += 1;
                if !crashed {
                    state.pending_listen = Some(ListenWindow {
                        listener: NodeId::new(event.node),
                        channel,
                        interval,
                    });
                }
            }
        }
        self.queue.push(Reverse(Event {
            time: interval.end(),
            kind: EventKind::FrameEnd,
            node: event.node,
            frame: f,
        }));
        if f + 1 < self.config.max_frames {
            self.queue.push(Reverse(Event {
                time: interval.end(),
                kind: EventKind::FrameStart,
                node: event.node,
                frame: f + 1,
            }));
        }
        if observing {
            self.poll_phase(i, Stamp::Real(interval.start()));
        }
    }

    fn on_frame_end(&mut self, event: Event) {
        self.advance_faults(event.time);
        let i = event.node as usize;
        self.nodes[i].frames_executed = event.frame + 1;
        let observing = self.sink.as_ref().is_some_and(|s| s.enabled());
        if observing {
            let local = self.nodes[i].schedule.frame_start_local(event.frame + 1);
            let sink = self.sink.as_deref_mut().expect("sink checked above");
            sink.on_event(&SimEvent::FrameEnd {
                node: NodeId::new(event.node),
                frame: event.frame,
                real: event.time,
                local,
            });
        }
        let listener_crashed = self
            .faults
            .as_ref()
            .is_some_and(|fa| fa.is_crashed(NodeId::new(event.node)));
        if let Some(window) = self.nodes[i].pending_listen.take() {
            if listener_crashed {
                // The radio died while listening: the window resolves to
                // nothing (and its would-be receptions are not tallied).
                self.prune_bursts(event.time);
                if observing {
                    self.poll_phase(i, Stamp::Real(event.time));
                }
                return;
            }
            if let Some(faults) = self.faults.as_mut() {
                faults.begin_resolution();
            }
            let channel_bursts = &self.bursts[window.channel.index() as usize];
            self.resolver
                .resolve(&self.network, &window, channel_bursts);
            for &r in self.resolver.receptions() {
                if let Some(faults) = self.faults.as_mut() {
                    if faults.is_jammed_in(
                        window.channel,
                        r.burst.start().as_nanos(),
                        r.burst.end().as_nanos(),
                    ) {
                        self.jam_losses += 1;
                        if observing {
                            let sink = self.sink.as_deref_mut().expect("sink checked above");
                            sink.on_event(&SimEvent::SlotJammed {
                                at: Stamp::Real(event.time),
                                channel: window.channel,
                                losses: 1,
                            });
                        }
                        continue;
                    }
                    if !faults.link_delivers(r.from, NodeId::new(event.node), &mut self.medium_rng)
                    {
                        self.beacon_losses += 1;
                        if observing {
                            let sink = self.sink.as_deref_mut().expect("sink checked above");
                            sink.on_event(&SimEvent::BeaconLost {
                                at: Stamp::Real(event.time),
                                from: r.from,
                                to: NodeId::new(event.node),
                            });
                        }
                        continue;
                    }
                }
                if self.config.impairments.delivers(&mut self.medium_rng) {
                    let beacon = &self.beacons[r.from.as_usize()];
                    self.protocols[i].on_beacon(beacon, window.channel);
                    let newly_covered = self.tracker.record(
                        Link {
                            from: r.from,
                            to: NodeId::new(event.node),
                        },
                        r.burst.end(),
                    );
                    self.deliveries += 1;
                    if observing {
                        let at = Stamp::Real(r.burst.end());
                        let covered = self.tracker.covered() as u64;
                        let expected = self.tracker.expected() as u64;
                        let sink = self.sink.as_deref_mut().expect("sink checked above");
                        sink.on_event(&SimEvent::Delivery {
                            at,
                            from: r.from,
                            to: NodeId::new(event.node),
                            channel: window.channel,
                        });
                        if newly_covered {
                            sink.on_event(&SimEvent::LinkCovered {
                                at,
                                from: r.from,
                                to: NodeId::new(event.node),
                                covered,
                                expected,
                            });
                        }
                    }
                } else {
                    self.impairment_losses += 1;
                    if observing {
                        let sink = self.sink.as_deref_mut().expect("sink checked above");
                        sink.on_event(&SimEvent::ImpairmentLoss {
                            at: Stamp::Real(event.time),
                            count: 1,
                        });
                    }
                }
            }
        }
        if observing {
            self.poll_phase(i, Stamp::Real(event.time));
        }
        self.prune_bursts(event.time);
    }

    /// Emits a [`SimEvent::Phase`] if node `i`'s protocol changed phase.
    fn poll_phase(&mut self, i: usize, at: Stamp) {
        let phase = self.protocols[i].phase();
        if phase != self.phases[i] {
            self.phases[i] = phase;
            if let Some(p) = phase {
                if let Some(sink) = self.sink.as_deref_mut() {
                    sink.on_event(&SimEvent::Phase {
                        at,
                        node: NodeId::new(i as u32),
                        phase: p,
                    });
                }
            }
        }
    }

    /// Drops bursts too old to affect any unresolved listening window.
    /// Windows are one frame long; with drift < 1/2, a frame's real length
    /// is below `2L`, so bursts ending more than `2L` before now are dead.
    fn prune_bursts(&mut self, now: RealTime) {
        const PRUNE_ABOVE: usize = 1024;
        let horizon = self.config.frame_len.as_nanos().saturating_mul(2);
        let cutoff = RealTime::from_nanos(now.as_nanos().saturating_sub(horizon));
        for channel in &mut self.bursts {
            if channel.len() > PRUNE_ABOVE {
                channel.retain(|b| b.interval.end() > cutoff);
            }
        }
    }

    fn finish(mut self) -> AsyncOutcome {
        let latest_start = self.starts.iter().copied().max().unwrap_or(RealTime::ZERO);
        let completion_time = self.tracker.completion_time();
        let min_full_frames = completion_time.map(|tc| {
            (0..self.nodes.len())
                .map(|i| {
                    let state = &mut self.nodes[i];
                    let k0 = state
                        .schedule
                        .first_full_frame_after(latest_start, &mut state.clock);
                    let local_tc = state.clock.local_at(tc);
                    let sched_start = state.schedule.start_local();
                    if local_tc <= sched_start {
                        return 0;
                    }
                    let elapsed = local_tc.as_nanos() - sched_start.as_nanos();
                    let last_full_end = elapsed / state.schedule.frame_len().as_nanos();
                    last_full_end.saturating_sub(k0)
                })
                .min()
                .unwrap_or(0)
        });
        AsyncOutcome {
            completed: self.tracker.is_complete(),
            completion_time,
            latest_start,
            frames_executed: self.nodes.iter().map(|s| s.frames_executed).collect(),
            min_full_frames_at_completion: min_full_frames,
            link_coverage: self.tracker.per_link().collect(),
            tables: self.protocols.iter().map(|p| p.table().clone()).collect(),
            deliveries: self.deliveries,
            impairment_losses: self.impairment_losses,
            beacon_losses: self.beacon_losses,
            jam_losses: self.jam_losses,
            action_counts: self.action_counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AsyncStartSchedule, ClockConfig};
    use mmhew_spectrum::{ChannelId, ChannelSet};
    use mmhew_time::{DriftBound, DriftModel, LocalDuration, RealDuration};
    use mmhew_topology::NetworkBuilder;

    /// Transmits on even frames, listens on odd frames (or the reverse), on
    /// a fixed channel.
    struct FrameAlternator {
        even_tx: bool,
        channel: ChannelId,
        own: ChannelSet,
        table: NeighborTable,
    }

    impl FrameAlternator {
        fn boxed(even_tx: bool, own: ChannelSet) -> Box<dyn AsyncProtocol> {
            Box::new(Self {
                even_tx,
                channel: ChannelId::new(0),
                own,
                table: NeighborTable::new(),
            })
        }
    }

    impl AsyncProtocol for FrameAlternator {
        fn on_frame(&mut self, frame: u64, _rng: &mut Xoshiro256StarStar) -> FrameAction {
            if frame.is_multiple_of(2) == self.even_tx {
                FrameAction::Transmit {
                    channel: self.channel,
                }
            } else {
                FrameAction::Listen {
                    channel: self.channel,
                }
            }
        }

        fn on_beacon(&mut self, beacon: &Beacon, _channel: ChannelId) {
            self.table
                .record(beacon.sender(), beacon.available().intersection(&self.own));
        }

        fn table(&self) -> &NeighborTable {
            &self.table
        }
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn run_two_nodes(config: AsyncRunConfig, seed: u64) -> AsyncOutcome {
        let net = NetworkBuilder::line(2)
            .universe(1)
            .build(SeedTree::new(0))
            .expect("build");
        let engine = AsyncEngine::new(
            &net,
            vec![
                FrameAlternator::boxed(true, ChannelSet::full(1)),
                FrameAlternator::boxed(false, ChannelSet::full(1)),
            ],
            config,
            SeedTree::new(seed),
        );
        engine.run()
    }

    #[test]
    fn ideal_clocks_identical_starts_complete_in_two_frames() {
        let out = run_two_nodes(AsyncRunConfig::until_complete(100), 1);
        assert!(out.completed());
        // Frame 0: node 0 transmits, node 1 listens -> (0,1) covered by the
        // first burst; frame 1 reverses.
        let tc = out.completion_time().expect("complete");
        assert!(tc.as_nanos() <= 2 * 3_000, "completed at {tc}");
        assert_eq!(
            out.table(n(1)).to_sorted_vec(),
            vec![(n(0), ChannelSet::full(1))]
        );
        assert_eq!(
            out.table(n(0)).to_sorted_vec(),
            vec![(n(1), ChannelSet::full(1))]
        );
        assert!(out.deliveries() >= 2);
    }

    #[test]
    fn budget_exhaustion_incomplete() {
        // Both nodes transmit on even frames and listen on odd: with ideal
        // clocks and identical starts they are always in the same mode, so
        // nothing is ever heard.
        let net = NetworkBuilder::line(2)
            .universe(1)
            .build(SeedTree::new(0))
            .expect("build");
        let engine = AsyncEngine::new(
            &net,
            vec![
                FrameAlternator::boxed(true, ChannelSet::full(1)),
                FrameAlternator::boxed(true, ChannelSet::full(1)),
            ],
            AsyncRunConfig::until_complete(50),
            SeedTree::new(1),
        );
        let out = engine.run();
        assert!(!out.completed());
        assert_eq!(out.completion_time(), None);
        assert_eq!(out.frames_executed(), &[50, 50]);
        assert_eq!(out.min_full_frames_at_completion(), None);
    }

    #[test]
    fn misaligned_same_mode_nodes_hear_each_other() {
        // Same always-conflicting protocols as above, but node 1 starts
        // half a frame later: its listening frames now straddle node 0's
        // transmitting frames, and slots within them are heard.
        let net = NetworkBuilder::line(2)
            .universe(1)
            .build(SeedTree::new(0))
            .expect("build");
        let config =
            AsyncRunConfig::until_complete(100).with_starts(AsyncStartSchedule::Explicit(vec![
                RealTime::ZERO,
                RealTime::from_nanos(1_500),
            ]));
        let engine = AsyncEngine::new(
            &net,
            vec![
                FrameAlternator::boxed(true, ChannelSet::full(1)),
                FrameAlternator::boxed(true, ChannelSet::full(1)),
            ],
            config,
            SeedTree::new(1),
        );
        let out = engine.run();
        assert!(out.completed(), "offset starts must break the symmetry");
    }

    #[test]
    fn drifted_clocks_still_complete() {
        let config = AsyncRunConfig::until_complete(2_000).with_clocks(ClockConfig {
            drift: DriftModel::RandomPiecewise {
                bound: DriftBound::PAPER,
                segment: RealDuration::from_nanos(7_000),
            },
            offset_window: LocalDuration::from_nanos(9_000),
        });
        let out = run_two_nodes(config, 3);
        assert!(out.completed());
    }

    #[test]
    fn min_full_frames_counts_from_latest_start() {
        let config =
            AsyncRunConfig::until_complete(1_000).with_starts(AsyncStartSchedule::Explicit(vec![
                RealTime::ZERO,
                RealTime::from_nanos(30_000), // 10 frames late
            ]));
        let out = run_two_nodes(config, 2);
        assert!(out.completed());
        assert_eq!(out.latest_start(), RealTime::from_nanos(30_000));
        let m = out.min_full_frames_at_completion().expect("complete");
        // Completion must occur within a few frames of the late start.
        assert!(m <= 4, "took {m} frames after T_s");
        let tc = out.completion_time().expect("complete");
        assert!(tc > out.latest_start(), "cannot complete before T_s");
    }

    #[test]
    fn determinism() {
        let config = AsyncRunConfig::until_complete(500).with_clocks(ClockConfig {
            drift: DriftModel::RandomPiecewise {
                bound: DriftBound::PAPER,
                segment: RealDuration::from_nanos(5_000),
            },
            offset_window: LocalDuration::from_nanos(4_000),
        });
        let a = run_two_nodes(config.clone(), 9);
        let b = run_two_nodes(config, 9);
        assert_eq!(a.completion_time(), b.completion_time());
        assert_eq!(a.link_coverage(), b.link_coverage());
        assert_eq!(a.deliveries(), b.deliveries());
    }

    #[test]
    fn burst_pruning_does_not_lose_live_receptions() {
        // Node 0 alternates tx/listen from time 0, accumulating thousands
        // of bursts (well past the pruning threshold) before node 1 starts
        // 3000 frames later. If pruning ever dropped live bursts,
        // completion right after the late start would fail.
        let config =
            AsyncRunConfig::until_complete(10_000).with_starts(AsyncStartSchedule::Explicit(vec![
                RealTime::ZERO,
                RealTime::from_nanos(3_000 * 3_000),
            ]));
        let out = run_two_nodes(config, 4);
        assert!(out.completed());
        let m = out.min_full_frames_at_completion().expect("complete");
        assert!(
            m <= 4,
            "should complete within a few frames of T_s, took {m}"
        );
    }

    #[test]
    fn action_counts_cover_all_frames() {
        let out = run_two_nodes(
            AsyncRunConfig::until_complete(50).with_starts(AsyncStartSchedule::Explicit(vec![
                RealTime::ZERO,
                RealTime::ZERO,
            ])),
            1,
        );
        for c in out.action_counts() {
            assert_eq!(
                c.transmit + c.listen,
                out.frames_executed()[0].min(c.total())
            );
            assert!(c.total() > 0);
        }
        assert!(out.total_energy(&crate::energy::EnergyModel::default()) > 0.0);
    }

    #[test]
    fn whole_frame_beacon_fails_on_misaligned_equal_clocks() {
        // Ideal clocks, equal frame lengths, node 1 offset by half a
        // frame: a beacon spanning node 0's whole frame can never lie
        // inside any single frame of node 1, so the WholeFrame ablation
        // must never discover anything — demonstrating why Algorithm 4
        // subdivides frames into repeated slot bursts.
        let starts =
            AsyncStartSchedule::Explicit(vec![RealTime::ZERO, RealTime::from_nanos(1_500)]);
        let base = AsyncRunConfig::until_complete(300).with_starts(starts);

        let whole = run_two_nodes(base.clone().with_burst_plan(BurstPlan::WholeFrame), 3);
        assert!(!whole.completed(), "whole-frame beacon should never fit");
        assert_eq!(whole.deliveries(), 0);

        let repeated = run_two_nodes(base.with_burst_plan(BurstPlan::EverySlot), 3);
        assert!(repeated.completed(), "the paper's design succeeds");
    }

    #[test]
    fn single_slot_burst_still_completes_but_with_fewer_opportunities() {
        // A one-third-frame offset puts the middle slot of each
        // transmitter inside the other's listening window in both
        // directions (offset 1000 of a 3000ns frame: slot 1 spans
        // [1000,2000) ⊆ [1000,4000) one way and [5000,6000) ⊆ [3000,6000)
        // the other).
        let starts =
            AsyncStartSchedule::Explicit(vec![RealTime::ZERO, RealTime::from_nanos(1_000)]);
        let out = run_two_nodes(
            AsyncRunConfig::until_complete(5_000)
                .with_starts(starts)
                .with_burst_plan(BurstPlan::SingleSlot { slot: 1 }),
            5,
        );
        assert!(out.completed());
    }

    #[test]
    fn dynamics_rewire_ground_truth_mid_run() {
        use mmhew_dynamics::TimedEvent;
        use mmhew_topology::NetworkEvent;

        let net = NetworkBuilder::line(2)
            .universe(1)
            .build(SeedTree::new(0))
            .expect("build");
        // The link vanishes before the first frame fires and returns at
        // t = 30µs (frame 10 with ideal clocks); completion must postdate
        // the re-add.
        let schedule = DynamicsSchedule::new(vec![
            TimedEvent::new(
                0,
                NetworkEvent::EdgeRemove {
                    from: n(0),
                    to: n(1),
                },
            ),
            TimedEvent::new(
                0,
                NetworkEvent::EdgeRemove {
                    from: n(1),
                    to: n(0),
                },
            ),
            TimedEvent::new(
                30_000,
                NetworkEvent::EdgeAdd {
                    from: n(0),
                    to: n(1),
                },
            ),
            TimedEvent::new(
                30_000,
                NetworkEvent::EdgeAdd {
                    from: n(1),
                    to: n(0),
                },
            ),
        ]);
        let engine = AsyncEngine::new(
            &net,
            vec![
                FrameAlternator::boxed(true, ChannelSet::full(1)),
                FrameAlternator::boxed(false, ChannelSet::full(1)),
            ],
            AsyncRunConfig::until_complete(100),
            SeedTree::new(1),
        )
        .with_dynamics(schedule);
        let out = engine.run();
        assert!(out.completed());
        let tc = out.completion_time().expect("complete");
        assert!(
            tc >= RealTime::from_nanos(30_000),
            "covered a link that did not exist yet: {tc}"
        );
    }

    #[test]
    fn empty_dynamics_schedule_is_neutral() {
        let net = NetworkBuilder::line(2)
            .universe(1)
            .build(SeedTree::new(0))
            .expect("build");
        let mk = |dynamics: bool| {
            let engine = AsyncEngine::new(
                &net,
                vec![
                    FrameAlternator::boxed(true, ChannelSet::full(1)),
                    FrameAlternator::boxed(false, ChannelSet::full(1)),
                ],
                AsyncRunConfig::until_complete(100),
                SeedTree::new(9),
            );
            let engine = if dynamics {
                engine.with_dynamics(DynamicsSchedule::empty())
            } else {
                engine
            };
            engine.run()
        };
        let plain = mk(false);
        let frozen = mk(true);
        assert_eq!(plain.completion_time(), frozen.completion_time());
        assert_eq!(plain.link_coverage(), frozen.link_coverage());
        assert_eq!(plain.deliveries(), frozen.deliveries());
        assert_eq!(plain.action_counts(), frozen.action_counts());
    }

    #[test]
    fn empty_fault_plan_is_neutral() {
        let mk = |faults: bool| {
            let net = NetworkBuilder::line(2)
                .universe(1)
                .build(SeedTree::new(0))
                .expect("build");
            let engine = AsyncEngine::new(
                &net,
                vec![
                    FrameAlternator::boxed(true, ChannelSet::full(1)),
                    FrameAlternator::boxed(false, ChannelSet::full(1)),
                ],
                AsyncRunConfig::until_complete(100)
                    .with_impairments(mmhew_radio::Impairments::with_delivery_probability(0.7)),
                SeedTree::new(9),
            );
            let engine = if faults {
                engine.with_faults(FaultPlan::new())
            } else {
                engine
            };
            engine.run()
        };
        let plain = mk(false);
        let faulted = mk(true);
        assert_eq!(plain.completion_time(), faulted.completion_time());
        assert_eq!(plain.link_coverage(), faulted.link_coverage());
        assert_eq!(plain.deliveries(), faulted.deliveries());
        assert_eq!(plain.impairment_losses(), faulted.impairment_losses());
        assert_eq!(faulted.beacon_losses(), 0);
        assert_eq!(faulted.jam_losses(), 0);
    }

    #[test]
    fn dead_links_block_async_discovery() {
        use mmhew_faults::LinkLossModel;
        let net = NetworkBuilder::line(2)
            .universe(1)
            .build(SeedTree::new(0))
            .expect("build");
        let mut cfg = AsyncRunConfig::until_complete(50);
        cfg.stop_when_complete = false;
        let engine = AsyncEngine::new(
            &net,
            vec![
                FrameAlternator::boxed(true, ChannelSet::full(1)),
                FrameAlternator::boxed(false, ChannelSet::full(1)),
            ],
            cfg,
            SeedTree::new(1),
        )
        .with_faults(
            FaultPlan::new().with_default_loss(LinkLossModel::Bernoulli {
                delivery_probability: 0.0,
            }),
        );
        let out = engine.run();
        assert!(!out.completed());
        assert_eq!(out.deliveries(), 0);
        assert!(out.beacon_losses() > 0);
    }

    #[test]
    fn crash_outage_silences_a_node_until_recovery() {
        use mmhew_faults::CrashSchedule;
        let net = NetworkBuilder::line(2)
            .universe(1)
            .build(SeedTree::new(0))
            .expect("build");
        // Node 0 is dead until t = 30µs; completion must postdate its
        // recovery (frames are 3µs with ideal clocks).
        let engine = AsyncEngine::new(
            &net,
            vec![
                FrameAlternator::boxed(true, ChannelSet::full(1)),
                FrameAlternator::boxed(false, ChannelSet::full(1)),
            ],
            AsyncRunConfig::until_complete(100),
            SeedTree::new(1),
        )
        .with_faults(FaultPlan::new().with_crashes(CrashSchedule::outage(n(0), 0, 30_000)));
        let out = engine.run();
        assert!(out.completed());
        let tc = out.completion_time().expect("complete");
        assert!(
            tc >= RealTime::from_nanos(30_000),
            "heard a crashed radio: {tc}"
        );
    }

    #[test]
    fn jammed_channel_suppresses_bursts_in_interval() {
        use mmhew_faults::JamSchedule;
        let net = NetworkBuilder::line(2)
            .universe(1)
            .build(SeedTree::new(0))
            .expect("build");
        // The single channel is jammed for the first 30µs: every burst in
        // that window dies, so completion postdates the jammer.
        let jam = JamSchedule::new(vec![
            mmhew_faults::JamStep {
                at: 0,
                channels: ChannelSet::full(1),
            },
            mmhew_faults::JamStep {
                at: 30_000,
                channels: ChannelSet::new(),
            },
        ]);
        let engine = AsyncEngine::new(
            &net,
            vec![
                FrameAlternator::boxed(true, ChannelSet::full(1)),
                FrameAlternator::boxed(false, ChannelSet::full(1)),
            ],
            AsyncRunConfig::until_complete(100),
            SeedTree::new(1),
        )
        .with_faults(FaultPlan::new().with_jamming(jam));
        let out = engine.run();
        assert!(out.completed());
        assert!(out.jam_losses() > 0);
        let tc = out.completion_time().expect("complete");
        assert!(
            tc >= RealTime::from_nanos(30_000),
            "a jammed burst was delivered: {tc}"
        );
    }

    #[test]
    fn zero_max_frames_is_a_noop() {
        let mut cfg = AsyncRunConfig::until_complete(0);
        cfg.stop_when_complete = false;
        let out = run_two_nodes(cfg, 1);
        assert!(!out.completed());
        assert_eq!(out.frames_executed(), &[0, 0]);
    }
}
