//! Simulation engines for M²HeW neighbor discovery.
//!
//! Two engines execute [`SyncProtocol`]/[`AsyncProtocol`] state machines
//! over a [`mmhew_topology::Network`]:
//!
//! * [`SyncEngine`] — globally synchronized slots with the paper's
//!   collision model; supports per-node start slots (Algorithm 3's
//!   variable start times). Sparse runs can opt into the dead-air-skipping
//!   event executor ([`SyncEngine::run_event`], module [`event`]), which
//!   is held byte-identical to the slot-by-slot oracle;
//! * [`AsyncEngine`] — event-driven continuous time; per-node drifting
//!   clocks, local frames split into three slots, interval-based reception
//!   (Algorithm 4).
//!
//! Both engines track per-link first-coverage times with a
//! [`CoverageTracker`] and return rich outcomes ([`SyncOutcome`],
//! [`AsyncOutcome`]) the experiment harness consumes.
//!
//! The engines enforce the distributed-computing boundary: a protocol only
//! ever sees its own slot/frame counter, its own RNG stream, and the
//! beacons it hears.
//!
//! Both engines accept a pluggable [`mmhew_obs::EventSink`] (via
//! `with_sink`) and emit the shared [`mmhew_obs::SimEvent`] vocabulary —
//! slot/frame boundaries, per-node actions, per-channel medium
//! resolutions, deliveries, link coverage, and protocol phase
//! transitions. Without a sink the instrumentation costs one branch per
//! slot.
//!
//! Both engines also accept a [`mmhew_faults::FaultPlan`] (via
//! `with_faults`): per-link loss models, jammer schedules, the capture
//! effect (slotted engine only), and crash/recover outages. An empty plan
//! is provably neutral — outcomes, RNG streams, and traces are
//! bit-identical to a run without faults.

pub mod async_engine;
pub mod config;
mod dynamics;
pub mod energy;
pub mod event;
pub mod observer;
pub mod protocol;
pub mod sync;
pub mod table;

pub use async_engine::{AsyncEngine, AsyncOutcome};
pub use config::{
    AsyncRunConfig, AsyncStartSchedule, BurstPlan, ClockConfig, StartSchedule, SyncRunConfig,
};
pub use energy::{ActionCounts, EnergyModel};
pub use event::{Engine, EventCursor};
pub use mmhew_dynamics::DynamicsSchedule;
pub use mmhew_faults::FaultPlan;
pub use observer::CoverageTracker;
pub use protocol::{AsyncProtocol, SyncProtocol};
pub use sync::{SyncEngine, SyncOutcome};
pub use table::NeighborTable;
