//! Protocol traits implemented by the discovery algorithms.
//!
//! A protocol is a *per-node* state machine: it sees only its own slot or
//! frame counter, its own randomness, and the beacons it hears. Engines
//! guarantee nodes cannot observe global state, so an implementation of
//! these traits is a genuinely distributed algorithm.

use crate::table::NeighborTable;
use mmhew_obs::ProtocolPhase;
use mmhew_radio::{Beacon, FrameAction, SlotAction};
use mmhew_spectrum::ChannelId;
use mmhew_util::Xoshiro256StarStar;

/// A node's behaviour under the slot-synchronous engines (Algorithms 1–3).
pub trait SyncProtocol {
    /// Decides the action for the node's `active_slot`-th slot since it
    /// started executing (0-based). Called once per slot while the node is
    /// active.
    fn on_slot(&mut self, active_slot: u64, rng: &mut Xoshiro256StarStar) -> SlotAction;

    /// Delivers a clear beacon heard while listening on `channel`.
    fn on_beacon(&mut self, beacon: &Beacon, channel: ChannelId);

    /// The neighbors discovered so far.
    fn table(&self) -> &NeighborTable;

    /// True once the node has locally decided to stop participating (the
    /// paper's algorithms run forever; termination-detection wrappers
    /// override this). The engine can be configured to stop once every
    /// node reports termination.
    fn is_terminated(&self) -> bool {
        false
    }

    /// Declares how far ahead of active slot `now` the event executor may
    /// scan this protocol's transmit schedule (the dead-air-skipping fast
    /// path of `run_event`).
    ///
    /// Returning `Some(b)` (with `b >= now`) is a three-part promise:
    ///
    /// 1. **Draw-free repeat window** — `on_slot` for every active slot in
    ///    `[now, b)` performs no RNG draws and returns the same action the
    ///    most recent `on_slot` call returned. `b == now` declares the
    ///    window empty (the paper's geometric per-slot schedules draw
    ///    every slot); blocked schedules such as
    ///    `RobustDiscovery` return the next block boundary.
    /// 2. **Transmission bound** — no slot before `b` can introduce a
    ///    *new* transmission: the earliest slot whose action may differ
    ///    from the repeated one (and thus may transmit) is `b`.
    /// 3. **Scan-ahead safety** — from `now` on, the action stream is
    ///    independent of beacon receptions (`on_beacon` only updates the
    ///    table) and `is_terminated` is constant, so the executor may
    ///    evaluate `on_slot` eagerly, ahead of virtual time.
    ///
    /// The default `None` opts out: the engine falls back to the
    /// slot-by-slot oracle for the whole run. Reception-coupled wrappers
    /// (quiescent termination, continuous re-discovery) must keep the
    /// default.
    fn next_transmission_bound(&self, now: u64) -> Option<u64> {
        let _ = now;
        None
    }

    /// The protocol's current internal phase, if it has a notion of one
    /// (Algorithm 1 reports its stage, Algorithm 2 its estimate,
    /// termination wrappers their vote). Observing engines emit a
    /// [`mmhew_obs::SimEvent::Phase`] whenever this changes.
    fn phase(&self) -> Option<ProtocolPhase> {
        None
    }
}

/// A node's behaviour under the asynchronous engine (Algorithm 4).
pub trait AsyncProtocol {
    /// Decides the action for the node's `frame`-th frame since it started
    /// executing (0-based). Called once per frame.
    fn on_frame(&mut self, frame: u64, rng: &mut Xoshiro256StarStar) -> FrameAction;

    /// Delivers a clear beacon heard during a listening frame on `channel`.
    fn on_beacon(&mut self, beacon: &Beacon, channel: ChannelId);

    /// The neighbors discovered so far.
    fn table(&self) -> &NeighborTable;

    /// True once the node has locally decided to stop participating: the
    /// engine stops scheduling frames for a terminated node, and the run
    /// ends once every node has terminated (or the budget is exhausted).
    fn is_terminated(&self) -> bool {
        false
    }

    /// The protocol's current internal phase, if it has a notion of one.
    /// See [`SyncProtocol::phase`].
    fn phase(&self) -> Option<ProtocolPhase> {
        None
    }
}
