//! Two-hop neighborhood computation.
//!
//! The paper's introduction notes that many downstream algorithms
//! "implicitly assume that all nodes know their one-hop and sometimes even
//! two-hop neighbors". One-hop knowledge is the discovery output; two-hop
//! knowledge follows from one extra round in which every node shares its
//! neighbor table with its discovered neighbors (over the common channels
//! discovery just established). This module computes the result of that
//! exchange from the per-node tables.

use mmhew_engine::NeighborTable;
use mmhew_topology::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// The two-hop view a node obtains after the table-exchange round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TwoHopView {
    /// Strict two-hop neighbors: reachable through some one-hop neighbor,
    /// not one-hop neighbors themselves, and not the node itself.
    pub two_hop: BTreeSet<NodeId>,
    /// For each two-hop neighbor, the one-hop relays through which it was
    /// learned (useful for routing/clustering decisions).
    pub relays: BTreeMap<NodeId, BTreeSet<NodeId>>,
}

/// Computes every node's two-hop view from the discovery tables.
///
/// `tables[i]` is node `i`'s neighbor table. The exchange is asymmetric
/// exactly like discovery: node `u` learns the table of `v` iff `u`
/// discovered `v` (i.e. `u` can hear `v`), so on asymmetric graphs the
/// two-hop view follows the directed reachability `w → v → u`.
///
/// # Examples
///
/// ```
/// use mmhew_discovery::two_hop::two_hop_views;
/// use mmhew_engine::NeighborTable;
/// use mmhew_topology::NodeId;
///
/// // Line 0 - 1 - 2: after exchange, 0 learns about 2 through 1.
/// let mut t0 = NeighborTable::new();
/// t0.record(NodeId::new(1), [0u16].into_iter().collect());
/// let mut t1 = NeighborTable::new();
/// t1.record(NodeId::new(0), [0u16].into_iter().collect());
/// t1.record(NodeId::new(2), [0u16].into_iter().collect());
/// let mut t2 = NeighborTable::new();
/// t2.record(NodeId::new(1), [0u16].into_iter().collect());
///
/// let views = two_hop_views(&[t0, t1, t2]);
/// assert!(views[0].two_hop.contains(&NodeId::new(2)));
/// assert!(views[1].two_hop.is_empty());
/// ```
pub fn two_hop_views(tables: &[NeighborTable]) -> Vec<TwoHopView> {
    tables
        .iter()
        .enumerate()
        .map(|(i, table)| {
            let me = NodeId::new(i as u32);
            let one_hop: BTreeSet<NodeId> = table.iter().map(|(v, _)| v).collect();
            let mut view = TwoHopView::default();
            for &relay in &one_hop {
                for (w, _) in tables[relay.as_usize()].iter() {
                    if w != me && !one_hop.contains(&w) {
                        view.two_hop.insert(w);
                        view.relays.entry(w).or_default().insert(relay);
                    }
                }
            }
            view
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SyncParams;
    use crate::runner::SyncAlgorithm;
    use crate::scenario::Scenario;
    use mmhew_engine::SyncRunConfig;
    use mmhew_spectrum::ChannelSet;
    use mmhew_topology::NetworkBuilder;
    use mmhew_util::SeedTree;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn table_of(neighbors: &[u32]) -> NeighborTable {
        let mut t = NeighborTable::new();
        for &v in neighbors {
            t.record(n(v), ChannelSet::full(1));
        }
        t
    }

    #[test]
    fn line_of_five() {
        let tables = vec![
            table_of(&[1]),
            table_of(&[0, 2]),
            table_of(&[1, 3]),
            table_of(&[2, 4]),
            table_of(&[3]),
        ];
        let views = two_hop_views(&tables);
        assert_eq!(views[0].two_hop, [n(2)].into_iter().collect());
        assert_eq!(views[2].two_hop, [n(0), n(4)].into_iter().collect());
        assert_eq!(views[2].relays[&n(0)], [n(1)].into_iter().collect());
        assert_eq!(views[2].relays[&n(4)], [n(3)].into_iter().collect());
    }

    #[test]
    fn triangle_has_no_strict_two_hop() {
        let tables = vec![table_of(&[1, 2]), table_of(&[0, 2]), table_of(&[0, 1])];
        let views = two_hop_views(&tables);
        assert!(views.iter().all(|v| v.two_hop.is_empty()));
    }

    #[test]
    fn multiple_relays_recorded() {
        // Diamond: 0-1, 0-2, 1-3, 2-3. Node 0 reaches 3 via both 1 and 2.
        let tables = vec![
            table_of(&[1, 2]),
            table_of(&[0, 3]),
            table_of(&[0, 3]),
            table_of(&[1, 2]),
        ];
        let views = two_hop_views(&tables);
        assert_eq!(views[0].two_hop, [n(3)].into_iter().collect());
        assert_eq!(views[0].relays[&n(3)], [n(1), n(2)].into_iter().collect());
    }

    #[test]
    fn asymmetric_exchange_follows_hearing_direction() {
        // 0 hears 1 (t0 contains 1), but 1 does not hear 0. 1 hears 2.
        let tables = vec![table_of(&[1]), table_of(&[2]), table_of(&[])];
        let views = two_hop_views(&tables);
        // 0 learned 1's table, so 0 knows about 2.
        assert_eq!(views[0].two_hop, [n(2)].into_iter().collect());
        // 1 learned only 2's (empty) table.
        assert!(views[1].two_hop.is_empty());
        assert!(views[2].two_hop.is_empty());
    }

    #[test]
    fn matches_graph_distance_after_real_discovery() {
        let seed = SeedTree::new(77);
        let net = NetworkBuilder::grid(4, 4)
            .universe(4)
            .build(seed.branch("net"))
            .expect("build");
        let delta = net.max_degree().max(1) as u64;
        let out = Scenario::sync(
            &net,
            SyncAlgorithm::Staged(SyncParams::new(delta).expect("positive")),
        )
        .config(SyncRunConfig::until_complete(1_000_000))
        .run(seed.branch("run"))
        .expect("run");
        assert!(out.completed());
        let views = two_hop_views(out.tables());
        // Ground truth: BFS distance exactly 2 in the grid.
        for u in net.topology().nodes() {
            let one: BTreeSet<NodeId> = net.topology().in_neighbors(u).iter().copied().collect();
            let mut expected = BTreeSet::new();
            for &v in &one {
                for &w in net.topology().in_neighbors(v) {
                    if w != u && !one.contains(&w) {
                        expected.insert(w);
                    }
                }
            }
            assert_eq!(
                views[u.as_usize()].two_hop,
                expected,
                "two-hop mismatch at {u}"
            );
        }
    }
}
