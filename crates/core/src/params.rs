//! Algorithm parameters.

use mmhew_spectrum::ChannelSetRef;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors constructing a protocol instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A node cannot participate with an empty available channel set.
    EmptyChannelSet,
    /// The degree estimate must be at least 1.
    ZeroDegreeEstimate,
    /// Continuous-discovery periods (re-announce, stale timeout) must be
    /// at least 1 slot.
    ZeroContinuousParameter,
    /// Writing the Perfetto tee file requested via
    /// `Scenario::with_perfetto` failed (payload: the I/O error text).
    TraceWrite(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::EmptyChannelSet => {
                write!(f, "available channel set is empty")
            }
            ProtocolError::ZeroDegreeEstimate => {
                write!(f, "degree estimate must be at least 1")
            }
            ProtocolError::ZeroContinuousParameter => {
                write!(f, "continuous-discovery periods must be at least 1 slot")
            }
            ProtocolError::TraceWrite(e) => {
                write!(f, "writing the Perfetto trace failed: {e}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Parameters of the degree-aware synchronous algorithms (1 and 3): the
/// common upper bound `Δ_est` on the maximum per-channel node degree that
/// all nodes agree on.
///
/// # Examples
///
/// ```
/// use mmhew_discovery::SyncParams;
///
/// let p = SyncParams::new(10)?;
/// assert_eq!(p.delta_est(), 10);
/// // Algorithm 1 stages have ⌈log₂ Δ_est⌉ slots (at least 1).
/// assert_eq!(p.stage_len(), 4);
/// # Ok::<(), mmhew_discovery::ProtocolError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SyncParams {
    delta_est: u64,
}

impl SyncParams {
    /// Creates parameters with the given degree upper bound.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::ZeroDegreeEstimate`] if `delta_est == 0`.
    pub fn new(delta_est: u64) -> Result<Self, ProtocolError> {
        if delta_est == 0 {
            return Err(ProtocolError::ZeroDegreeEstimate);
        }
        Ok(Self { delta_est })
    }

    /// The degree upper bound `Δ_est`.
    pub fn delta_est(&self) -> u64 {
        self.delta_est
    }

    /// Slots per stage of Algorithm 1: `⌈log₂ Δ_est⌉`, but at least 1 so a
    /// stage is never empty (`Δ_est = 1` still needs one slot to transmit
    /// in).
    pub fn stage_len(&self) -> u64 {
        ceil_log2(self.delta_est).max(1)
    }
}

/// Parameters of the asynchronous algorithm (4): the degree bound `Δ_est`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AsyncParams {
    delta_est: u64,
}

impl AsyncParams {
    /// Creates parameters with the given degree upper bound.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::ZeroDegreeEstimate`] if `delta_est == 0`.
    pub fn new(delta_est: u64) -> Result<Self, ProtocolError> {
        if delta_est == 0 {
            return Err(ProtocolError::ZeroDegreeEstimate);
        }
        Ok(Self { delta_est })
    }

    /// The degree upper bound `Δ_est`.
    pub fn delta_est(&self) -> u64 {
        self.delta_est
    }
}

/// `⌈log₂ x⌉` for `x ≥ 1`.
pub(crate) fn ceil_log2(x: u64) -> u64 {
    debug_assert!(x >= 1);
    64 - (x - 1).leading_zeros() as u64
}

/// The transmission probability `min(1/2, |A(u)|/denominator)` common to
/// all the paper's algorithms.
pub(crate) fn tx_probability(available: ChannelSetRef<'_>, denominator: f64) -> f64 {
    debug_assert!(denominator > 0.0);
    (available.len() as f64 / denominator).min(0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn stage_lengths() {
        assert_eq!(SyncParams::new(1).expect("valid").stage_len(), 1);
        assert_eq!(SyncParams::new(2).expect("valid").stage_len(), 1);
        assert_eq!(SyncParams::new(3).expect("valid").stage_len(), 2);
        assert_eq!(SyncParams::new(16).expect("valid").stage_len(), 4);
        assert_eq!(SyncParams::new(100).expect("valid").stage_len(), 7);
    }

    #[test]
    fn zero_estimate_rejected() {
        assert_eq!(SyncParams::new(0), Err(ProtocolError::ZeroDegreeEstimate));
        assert_eq!(AsyncParams::new(0), Err(ProtocolError::ZeroDegreeEstimate));
        assert_eq!(AsyncParams::new(5).expect("valid").delta_est(), 5);
    }

    #[test]
    fn tx_probability_caps_at_half() {
        use mmhew_spectrum::ChannelSet;
        let small: ChannelSet = [0u16].into_iter().collect();
        let big = ChannelSet::full(40);
        assert_eq!(tx_probability(big.view(), 8.0), 0.5);
        assert!((tx_probability(small.view(), 8.0) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn error_display() {
        assert_eq!(
            ProtocolError::EmptyChannelSet.to_string(),
            "available channel set is empty"
        );
    }
}
