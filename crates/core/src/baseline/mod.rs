//! Baseline protocols the paper compares against (implicitly or
//! explicitly): the single-channel birthday primitive and the
//! per-universal-channel strawman of §I.

pub mod birthday;
pub mod per_channel;

pub use birthday::BirthdayProtocol;
pub use per_channel::PerChannelBirthday;
