//! The multi-channel strawman the paper argues against (§I).
//!
//! "Execute a separate instance of a single-channel neighbor discovery
//! algorithm on all channels in the universal channel set concurrently. A
//! node only participates in instances associated with channels in its
//! available channel set." With a single half-duplex transceiver,
//! concurrency means time-multiplexing: slot `t` belongs to the instance
//! of channel `t mod |U|`.
//!
//! The paper lists three disadvantages, all reproduced by this
//! implementation and exercised in experiment E11:
//!
//! 1. all nodes must agree on the universal channel set `U`;
//! 2. running time is **linear in `|U|`** even when available sets are
//!    tiny (a node idles through slots of channels it lacks);
//! 3. all nodes must start simultaneously, or instances misalign.

use crate::params::ProtocolError;
use mmhew_engine::{NeighborTable, SyncProtocol};
use mmhew_radio::{Beacon, SlotAction};
use mmhew_spectrum::{ChannelId, ChannelSet};
use mmhew_util::Xoshiro256StarStar;
use rand::Rng;

/// Per-node state of the per-universal-channel birthday baseline.
///
/// # Examples
///
/// ```
/// use mmhew_discovery::baseline::PerChannelBirthday;
///
/// // Universe of 8 channels, node owns only two of them.
/// let proto = PerChannelBirthday::new(
///     8,
///     0.5,
///     [1u16, 6].into_iter().collect(),
/// )?;
/// # let _ = proto;
/// # Ok::<(), mmhew_discovery::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PerChannelBirthday {
    universe: u16,
    probability: f64,
    available: ChannelSet,
    table: NeighborTable,
}

impl PerChannelBirthday {
    /// Creates the baseline over a universal channel set of size
    /// `universe`, transmitting with probability `probability` in slots
    /// belonging to channels of `available`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::EmptyChannelSet`] if `available` is empty.
    ///
    /// # Panics
    ///
    /// Panics if `universe == 0` or `probability` is outside `[0, 1]`.
    pub fn new(
        universe: u16,
        probability: f64,
        available: ChannelSet,
    ) -> Result<Self, ProtocolError> {
        assert!(universe > 0, "universe must be non-empty");
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability out of range"
        );
        if available.is_empty() {
            return Err(ProtocolError::EmptyChannelSet);
        }
        Ok(Self {
            universe,
            probability,
            available,
            table: NeighborTable::new(),
        })
    }

    /// The channel whose instance owns slot `slot`.
    pub fn slot_channel(&self, slot: u64) -> ChannelId {
        ChannelId::new((slot % self.universe as u64) as u16)
    }
}

impl SyncProtocol for PerChannelBirthday {
    fn on_slot(&mut self, active_slot: u64, rng: &mut Xoshiro256StarStar) -> SlotAction {
        let channel = self.slot_channel(active_slot);
        if !self.available.contains(channel) {
            // Disadvantage 2: the node idles through the rest of the
            // universe's schedule.
            return SlotAction::Quiet;
        }
        if rng.gen_bool(self.probability) {
            SlotAction::Transmit { channel }
        } else {
            SlotAction::Listen { channel }
        }
    }

    /// The channel rotation is a fixed function of the slot index and the
    /// transmit coin is memoryless, so the stream is beacon-independent
    /// with an empty draw-free repeat window (unavailable-channel slots
    /// draw nothing, but the *next* slot may draw again).
    fn next_transmission_bound(&self, now: u64) -> Option<u64> {
        Some(now)
    }

    fn on_beacon(&mut self, beacon: &Beacon, _channel: ChannelId) {
        self.table.record(
            beacon.sender(),
            beacon.available().intersection(&self.available),
        );
    }

    fn table(&self) -> &NeighborTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_util::SeedTree;

    #[test]
    fn empty_set_rejected() {
        assert!(matches!(
            PerChannelBirthday::new(4, 0.5, ChannelSet::new()),
            Err(ProtocolError::EmptyChannelSet)
        ));
    }

    #[test]
    fn idles_outside_available_channels() {
        let mut p = PerChannelBirthday::new(4, 0.5, [1u16].into_iter().collect()).expect("valid");
        let mut rng = SeedTree::new(0).rng();
        for slot in 0..40 {
            let a = p.on_slot(slot, &mut rng);
            if slot % 4 == 1 {
                assert!(a.channel() == Some(ChannelId::new(1)));
            } else {
                assert_eq!(a, SlotAction::Quiet, "slot {slot}");
            }
        }
    }

    #[test]
    fn round_robin_covers_whole_universe() {
        let p = PerChannelBirthday::new(5, 0.5, ChannelSet::full(5)).expect("valid");
        let channels: Vec<u16> = (0..5).map(|s| p.slot_channel(s).index()).collect();
        assert_eq!(channels, vec![0, 1, 2, 3, 4]);
        assert_eq!(p.slot_channel(7), ChannelId::new(2));
    }

    #[test]
    fn active_slots_use_probability() {
        let mut p = PerChannelBirthday::new(2, 0.5, ChannelSet::full(2)).expect("valid");
        let mut rng = SeedTree::new(1).rng();
        let trials = 40_000u64;
        let tx = (0..trials)
            .filter(|&k| p.on_slot(k, &mut rng).is_transmit())
            .count();
        let rate = tx as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.01, "rate {rate}");
    }
}
