//! Single-channel birthday protocol (baseline substrate).
//!
//! The classic randomized neighbor-discovery primitive for single-channel
//! networks (McGlynn–Borbash \[1\], Vasudevan et al. \[2\]): in every slot a
//! node transmits with a fixed probability `p` on one fixed channel and
//! listens otherwise. It is both a baseline in its own right (on
//! single-channel networks) and the per-channel building block of the
//! multi-channel strawman in [`crate::baseline::PerChannelBirthday`].

use crate::params::ProtocolError;
use mmhew_engine::{NeighborTable, SyncProtocol};
use mmhew_radio::{Beacon, SlotAction};
use mmhew_spectrum::{ChannelId, ChannelSet};
use mmhew_util::Xoshiro256StarStar;
use rand::Rng;

/// Per-node state of the single-channel birthday protocol.
///
/// # Examples
///
/// ```
/// use mmhew_discovery::baseline::BirthdayProtocol;
/// use mmhew_spectrum::ChannelId;
///
/// let proto = BirthdayProtocol::new(
///     ChannelId::new(0),
///     0.5,
///     [0u16].into_iter().collect(),
/// )?;
/// assert_eq!(proto.probability(), 0.5);
/// # Ok::<(), mmhew_discovery::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BirthdayProtocol {
    channel: ChannelId,
    probability: f64,
    available: ChannelSet,
    table: NeighborTable,
}

impl BirthdayProtocol {
    /// Creates the protocol transmitting on `channel` with probability
    /// `probability` per slot. `available` is the node's full channel set
    /// (used to compute common sets from received beacons).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::EmptyChannelSet`] if `available` does not
    /// contain `channel`.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is outside `[0, 1]`.
    pub fn new(
        channel: ChannelId,
        probability: f64,
        available: ChannelSet,
    ) -> Result<Self, ProtocolError> {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability out of range"
        );
        if !available.contains(channel) {
            return Err(ProtocolError::EmptyChannelSet);
        }
        Ok(Self {
            channel,
            probability,
            available,
            table: NeighborTable::new(),
        })
    }

    /// The per-slot transmission probability.
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// The fixed channel this instance operates on.
    pub fn channel(&self) -> ChannelId {
        self.channel
    }
}

impl SyncProtocol for BirthdayProtocol {
    fn on_slot(&mut self, _active_slot: u64, rng: &mut Xoshiro256StarStar) -> SlotAction {
        if rng.gen_bool(self.probability) {
            SlotAction::Transmit {
                channel: self.channel,
            }
        } else {
            SlotAction::Listen {
                channel: self.channel,
            }
        }
    }

    /// Memoryless per-slot coin: empty repeat window, beacon-independent
    /// stream — scan-ahead-safe for the event executor.
    fn next_transmission_bound(&self, now: u64) -> Option<u64> {
        Some(now)
    }

    fn on_beacon(&mut self, beacon: &Beacon, _channel: ChannelId) {
        self.table.record(
            beacon.sender(),
            beacon.available().intersection(&self.available),
        );
    }

    fn table(&self) -> &NeighborTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_util::SeedTree;

    #[test]
    fn requires_channel_in_set() {
        assert!(matches!(
            BirthdayProtocol::new(ChannelId::new(3), 0.5, ChannelSet::full(2)),
            Err(ProtocolError::EmptyChannelSet)
        ));
        assert!(BirthdayProtocol::new(ChannelId::new(1), 0.5, ChannelSet::full(2)).is_ok());
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn invalid_probability_panics() {
        let _ = BirthdayProtocol::new(ChannelId::new(0), 1.5, ChannelSet::full(1));
    }

    #[test]
    fn always_uses_its_channel() {
        let mut p =
            BirthdayProtocol::new(ChannelId::new(2), 0.3, ChannelSet::full(4)).expect("valid");
        let mut rng = SeedTree::new(0).rng();
        for slot in 0..500 {
            assert_eq!(p.on_slot(slot, &mut rng).channel(), Some(ChannelId::new(2)));
        }
    }

    #[test]
    fn empirical_rate() {
        let mut p =
            BirthdayProtocol::new(ChannelId::new(0), 0.3, ChannelSet::full(1)).expect("valid");
        let mut rng = SeedTree::new(1).rng();
        let tx = (0..30_000)
            .filter(|&k| p.on_slot(k, &mut rng).is_transmit())
            .count();
        let rate = tx as f64 / 30_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }
}
