//! Quiescence-based termination detection.
//!
//! The paper's algorithms run forever ("while true") and the analysis
//! reasons about when discovery *has* completed — a node never learns that
//! it has. The companion line of work (\[22\], "lightweight termination
//! detection") addresses exactly this gap. This module provides the
//! simplest practical detector: a node stops once it has gone
//! `quiet_slots` consecutive slots without discovering anyone new.
//!
//! The detector trades energy for completeness: too small a threshold
//! stops before the slow links are covered; a threshold of a few multiples
//! of the expected per-link coverage time makes misses exponentially rare
//! (experiment E18 quantifies the trade-off).

use crate::params::ProtocolError;
use mmhew_engine::{AsyncProtocol, NeighborTable, SyncProtocol};
use mmhew_obs::ProtocolPhase;
use mmhew_radio::{Beacon, FrameAction, SlotAction};
use mmhew_spectrum::ChannelId;
use mmhew_util::Xoshiro256StarStar;

/// Wraps any synchronous protocol with a quiescence detector: after
/// `quiet_slots` consecutive active slots without a *new* neighbor, the
/// node shuts its transceiver off for good.
///
/// # Examples
///
/// ```
/// use mmhew_discovery::{QuiescentTermination, UniformDiscovery, SyncParams};
///
/// let inner = UniformDiscovery::new([0u16].into_iter().collect(), SyncParams::new(2)?)?;
/// let wrapped = QuiescentTermination::new(Box::new(inner), 500)?;
/// assert!(!wrapped.is_terminated_now());
/// # Ok::<(), mmhew_discovery::ProtocolError>(())
/// ```
pub struct QuiescentTermination {
    inner: Box<dyn SyncProtocol>,
    quiet_slots: u64,
    slots_since_new: u64,
    neighbors_seen: usize,
    terminated: bool,
}

impl QuiescentTermination {
    /// Wraps `inner` with a quiescence threshold of `quiet_slots`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::ZeroDegreeEstimate`] if `quiet_slots` is
    /// zero (the node would quit before its first slot).
    pub fn new(inner: Box<dyn SyncProtocol>, quiet_slots: u64) -> Result<Self, ProtocolError> {
        if quiet_slots == 0 {
            return Err(ProtocolError::ZeroDegreeEstimate);
        }
        Ok(Self {
            inner,
            quiet_slots,
            slots_since_new: 0,
            neighbors_seen: 0,
            terminated: false,
        })
    }

    /// The quiescence threshold.
    pub fn quiet_slots(&self) -> u64 {
        self.quiet_slots
    }

    /// Current detector verdict (same as the trait method, named to avoid
    /// requiring the trait in scope).
    pub fn is_terminated_now(&self) -> bool {
        self.terminated
    }
}

impl SyncProtocol for QuiescentTermination {
    fn on_slot(&mut self, active_slot: u64, rng: &mut Xoshiro256StarStar) -> SlotAction {
        if self.terminated {
            return SlotAction::Quiet;
        }
        if self.slots_since_new >= self.quiet_slots {
            self.terminated = true;
            return SlotAction::Quiet;
        }
        self.slots_since_new += 1;
        self.inner.on_slot(active_slot, rng)
    }

    fn on_beacon(&mut self, beacon: &Beacon, channel: ChannelId) {
        self.inner.on_beacon(beacon, channel);
        let now = self.inner.table().len();
        if now > self.neighbors_seen {
            self.neighbors_seen = now;
            self.slots_since_new = 0;
        }
    }

    fn table(&self) -> &NeighborTable {
        self.inner.table()
    }

    fn is_terminated(&self) -> bool {
        self.terminated
    }

    fn phase(&self) -> Option<ProtocolPhase> {
        if self.terminated {
            Some(ProtocolPhase::Terminated)
        } else {
            self.inner.phase()
        }
    }
}

/// The asynchronous counterpart of [`QuiescentTermination`]: after
/// `quiet_frames` consecutive frames without a new neighbor, the node
/// stops for good (the engine then schedules no further frames for it).
///
/// # Examples
///
/// ```
/// use mmhew_discovery::{AsyncFrameDiscovery, AsyncParams, QuiescentAsyncTermination};
///
/// let inner = AsyncFrameDiscovery::new([0u16].into_iter().collect(), AsyncParams::new(2)?)?;
/// let wrapped = QuiescentAsyncTermination::new(Box::new(inner), 200)?;
/// assert!(!wrapped.is_terminated_now());
/// # Ok::<(), mmhew_discovery::ProtocolError>(())
/// ```
pub struct QuiescentAsyncTermination {
    inner: Box<dyn AsyncProtocol>,
    quiet_frames: u64,
    frames_since_new: u64,
    neighbors_seen: usize,
    terminated: bool,
}

impl QuiescentAsyncTermination {
    /// Wraps `inner` with a quiescence threshold of `quiet_frames`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::ZeroDegreeEstimate`] if `quiet_frames` is
    /// zero.
    pub fn new(inner: Box<dyn AsyncProtocol>, quiet_frames: u64) -> Result<Self, ProtocolError> {
        if quiet_frames == 0 {
            return Err(ProtocolError::ZeroDegreeEstimate);
        }
        Ok(Self {
            inner,
            quiet_frames,
            frames_since_new: 0,
            neighbors_seen: 0,
            terminated: false,
        })
    }

    /// Current detector verdict.
    pub fn is_terminated_now(&self) -> bool {
        self.terminated
    }
}

impl AsyncProtocol for QuiescentAsyncTermination {
    fn on_frame(&mut self, frame: u64, rng: &mut Xoshiro256StarStar) -> FrameAction {
        if self.frames_since_new >= self.quiet_frames {
            self.terminated = true;
        }
        self.frames_since_new += 1;
        self.inner.on_frame(frame, rng)
    }

    fn on_beacon(&mut self, beacon: &Beacon, channel: ChannelId) {
        self.inner.on_beacon(beacon, channel);
        let now = self.inner.table().len();
        if now > self.neighbors_seen {
            self.neighbors_seen = now;
            self.frames_since_new = 0;
        }
    }

    fn table(&self) -> &NeighborTable {
        self.inner.table()
    }

    fn is_terminated(&self) -> bool {
        self.terminated
    }

    fn phase(&self) -> Option<ProtocolPhase> {
        if self.terminated {
            Some(ProtocolPhase::Terminated)
        } else {
            self.inner.phase()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg3_uniform::UniformDiscovery;
    use crate::params::SyncParams;
    use mmhew_spectrum::ChannelSet;
    use mmhew_topology::NodeId;
    use mmhew_util::SeedTree;

    fn wrapped(quiet: u64) -> QuiescentTermination {
        let inner =
            UniformDiscovery::new(ChannelSet::full(2), SyncParams::new(2).expect("positive"))
                .expect("valid");
        QuiescentTermination::new(Box::new(inner), quiet).expect("valid threshold")
    }

    #[test]
    fn zero_threshold_rejected() {
        let inner =
            UniformDiscovery::new(ChannelSet::full(1), SyncParams::new(1).expect("positive"))
                .expect("valid");
        assert!(QuiescentTermination::new(Box::new(inner), 0).is_err());
    }

    #[test]
    fn terminates_after_quiet_period() {
        let mut p = wrapped(10);
        let mut rng = SeedTree::new(0).rng();
        for slot in 0..10 {
            assert!(!p.is_terminated(), "slot {slot}");
            let a = p.on_slot(slot, &mut rng);
            assert_ne!(a, SlotAction::Quiet, "still active");
        }
        // Threshold reached: the next call flips to terminated and quiet.
        assert_eq!(p.on_slot(10, &mut rng), SlotAction::Quiet);
        assert!(p.is_terminated());
        assert_eq!(p.on_slot(11, &mut rng), SlotAction::Quiet);
    }

    #[test]
    fn discovery_resets_the_quiet_counter() {
        let mut p = wrapped(5);
        let mut rng = SeedTree::new(1).rng();
        for slot in 0..4 {
            let _ = p.on_slot(slot, &mut rng);
        }
        // A new neighbor arrives just before the threshold.
        p.on_beacon(
            &Beacon::new(NodeId::new(9), ChannelSet::full(2)),
            ChannelId::new(0),
        );
        for slot in 4..9 {
            let a = p.on_slot(slot, &mut rng);
            assert_ne!(
                a,
                SlotAction::Quiet,
                "reset should keep it alive at slot {slot}"
            );
        }
        assert_eq!(p.on_slot(9, &mut rng), SlotAction::Quiet);
        assert!(p.is_terminated());
    }

    #[test]
    fn rediscovery_of_known_neighbor_does_not_reset() {
        let mut p = wrapped(5);
        let mut rng = SeedTree::new(2).rng();
        let beacon = Beacon::new(NodeId::new(9), ChannelSet::full(2));
        p.on_beacon(&beacon, ChannelId::new(0));
        for slot in 0..3 {
            let _ = p.on_slot(slot, &mut rng);
        }
        // Same neighbor again: counter must NOT reset.
        p.on_beacon(&beacon, ChannelId::new(0));
        let _ = p.on_slot(3, &mut rng);
        let _ = p.on_slot(4, &mut rng);
        assert_eq!(p.on_slot(5, &mut rng), SlotAction::Quiet);
        assert!(p.is_terminated());
    }

    #[test]
    fn async_wrapper_terminates_and_resets() {
        use crate::alg4_async::AsyncFrameDiscovery;
        use crate::params::AsyncParams;
        let inner =
            AsyncFrameDiscovery::new(ChannelSet::full(2), AsyncParams::new(2).expect("positive"))
                .expect("valid");
        let mut p = QuiescentAsyncTermination::new(Box::new(inner), 4).expect("valid");
        let mut rng = SeedTree::new(3).rng();
        for f in 0..4 {
            let _ = p.on_frame(f, &mut rng);
            assert!(!p.is_terminated(), "frame {f}");
        }
        // New neighbor resets the counter.
        p.on_beacon(
            &Beacon::new(NodeId::new(7), ChannelSet::full(2)),
            ChannelId::new(0),
        );
        for f in 4..8 {
            let _ = p.on_frame(f, &mut rng);
            assert!(!p.is_terminated(), "frame {f} after reset");
        }
        let _ = p.on_frame(8, &mut rng);
        assert!(p.is_terminated());
        assert!(p.table().contains(NodeId::new(7)));
    }

    #[test]
    fn async_zero_threshold_rejected() {
        use crate::alg4_async::AsyncFrameDiscovery;
        use crate::params::AsyncParams;
        let inner =
            AsyncFrameDiscovery::new(ChannelSet::full(1), AsyncParams::new(1).expect("positive"))
                .expect("valid");
        assert!(QuiescentAsyncTermination::new(Box::new(inner), 0).is_err());
    }

    #[test]
    fn phase_switches_to_terminated() {
        let mut p = wrapped(2);
        // UniformDiscovery has no phase of its own, so the wrapper reports
        // None until the detector trips.
        assert_eq!(p.phase(), None);
        let mut rng = SeedTree::new(4).rng();
        for slot in 0..3 {
            let _ = p.on_slot(slot, &mut rng);
        }
        assert!(p.is_terminated());
        assert_eq!(p.phase(), Some(ProtocolPhase::Terminated));
    }

    #[test]
    fn table_passthrough() {
        let mut p = wrapped(5);
        p.on_beacon(
            &Beacon::new(NodeId::new(3), ChannelSet::full(2)),
            ChannelId::new(1),
        );
        assert_eq!(p.table().len(), 1);
        assert!(p.table().contains(NodeId::new(3)));
    }
}
