//! Loss-robust discovery: repetition-factor inflation for unreliable
//! channels.
//!
//! The paper's conclusion claims the algorithms extend to unreliable
//! channels by inflating the slot budget. This module makes that concrete:
//! [`RobustDiscovery`] wraps any [`SyncProtocol`] and *time-dilates* it by
//! a repetition factor `r` — the inner protocol's slot `t` is stretched
//! into `r` consecutive physical slots carrying the same action. Under
//! identical starts every wrapped node stretches identically, so each
//! logical transmit/listen pairing is attempted `r` times in a row and an
//! i.i.d. per-reception loss probability `p` is driven down to `pʳ` per
//! logical slot.
//!
//! Choosing `r = ⌈ln(N²/ε) / ln(1/p)⌉` (see [`repetition_factor`]) makes
//! `pʳ ≤ ε/N²`, so a union bound over all `< N²` directed links restores
//! the `1 − ε` success guarantee of the underlying analysis at an `r×`
//! slot-budget cost — the `Θ(ln(N²/ε)/ln(1/p))` scaling experiment E26
//! measures.

use crate::params::ProtocolError;
use crate::runner::{build_sync_protocols, SyncAlgorithm};
use mmhew_engine::{NeighborTable, SyncProtocol};
use mmhew_obs::ProtocolPhase;
use mmhew_radio::{Beacon, SlotAction};
use mmhew_spectrum::ChannelId;
use mmhew_topology::Network;
use mmhew_util::Xoshiro256StarStar;

/// The repetition factor `⌈ln(N²/ε) / ln(1/p_loss)⌉` that restores a
/// `1 − ε` success probability when every reception is lost independently
/// with probability `p_loss`.
///
/// Returns at least 1 (a reliable channel needs no inflation).
///
/// # Panics
///
/// Panics unless `epsilon` is in `(0, 1)` and `p_loss` in `[0, 1)`.
pub fn repetition_factor(n: usize, epsilon: f64, p_loss: f64) -> u64 {
    assert!(
        epsilon > 0.0 && epsilon < 1.0,
        "failure probability must be in (0,1)"
    );
    assert!(
        (0.0..1.0).contains(&p_loss),
        "loss probability must be in [0,1)"
    );
    if p_loss == 0.0 {
        return 1;
    }
    let amplification = ((n as f64).powi(2) / epsilon).ln().max(1.0);
    let per_try = (1.0 / p_loss).ln();
    (amplification / per_try).ceil().max(1.0) as u64
}

/// Wraps a [`SyncProtocol`], repeating each of its actions for
/// `repetition` consecutive physical slots (time dilation).
///
/// The wrapper is transparent to the inner protocol: it sees a contiguous
/// logical slot counter `0, 1, 2, …` and every beacon heard during any of
/// the repeated physical slots. Its table, termination vote, and phase are
/// forwarded unchanged.
pub struct RobustDiscovery {
    inner: Box<dyn SyncProtocol>,
    repetition: u64,
    current: SlotAction,
}

impl RobustDiscovery {
    /// Wraps `inner` with the given repetition factor.
    ///
    /// # Panics
    ///
    /// Panics if `repetition` is zero.
    pub fn new(inner: Box<dyn SyncProtocol>, repetition: u64) -> Self {
        assert!(repetition >= 1, "repetition factor must be at least 1");
        Self {
            inner,
            repetition,
            current: SlotAction::Quiet,
        }
    }

    /// The repetition factor.
    pub fn repetition(&self) -> u64 {
        self.repetition
    }
}

impl SyncProtocol for RobustDiscovery {
    fn on_slot(&mut self, active_slot: u64, rng: &mut Xoshiro256StarStar) -> SlotAction {
        if active_slot.is_multiple_of(self.repetition) {
            self.current = self.inner.on_slot(active_slot / self.repetition, rng);
        }
        self.current
    }

    fn on_beacon(&mut self, beacon: &Beacon, channel: ChannelId) {
        self.inner.on_beacon(beacon, channel);
    }

    fn table(&self) -> &NeighborTable {
        self.inner.table()
    }

    fn is_terminated(&self) -> bool {
        self.inner.is_terminated()
    }

    /// Time dilation is a blocked schedule: the inner protocol only draws
    /// at multiples of `repetition`, and every mid-block slot repeats
    /// `current` without touching the RNG. The draw-free repeat window
    /// therefore runs to the next block boundary — the event executor
    /// fills it without a single virtual call. Scanning is only sound if
    /// the inner schedule is itself scan-ahead-safe.
    fn next_transmission_bound(&self, now: u64) -> Option<u64> {
        self.inner.next_transmission_bound(now / self.repetition)?;
        if now.is_multiple_of(self.repetition) {
            Some(now)
        } else {
            Some((now / self.repetition + 1) * self.repetition)
        }
    }

    fn phase(&self) -> Option<ProtocolPhase> {
        self.inner.phase()
    }
}

/// Builds one [`RobustDiscovery`]-wrapped protocol instance per node.
///
/// # Errors
///
/// Returns [`ProtocolError`] if any node's available channel set is empty.
///
/// # Panics
///
/// Panics if `repetition` is zero.
pub fn build_robust_protocols(
    network: &Network,
    algorithm: SyncAlgorithm,
    repetition: u64,
) -> Result<Vec<Box<dyn SyncProtocol>>, ProtocolError> {
    Ok(build_sync_protocols(network, algorithm)?
        .into_iter()
        .map(|inner| Box::new(RobustDiscovery::new(inner, repetition)) as Box<dyn SyncProtocol>)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_spectrum::ChannelSet;
    use mmhew_topology::NodeId;
    use mmhew_util::SeedTree;

    /// Alternates transmit/listen on its *logical* clock so the
    /// repetition pattern is visible from outside.
    struct Scripted {
        table: NeighborTable,
    }

    impl SyncProtocol for Scripted {
        fn on_slot(&mut self, active_slot: u64, _rng: &mut Xoshiro256StarStar) -> SlotAction {
            if active_slot.is_multiple_of(2) {
                SlotAction::Transmit {
                    channel: ChannelId::new(0),
                }
            } else {
                SlotAction::Listen {
                    channel: ChannelId::new(0),
                }
            }
        }

        fn on_beacon(&mut self, beacon: &Beacon, _channel: ChannelId) {
            self.table
                .record(beacon.sender(), beacon.available().clone());
        }

        fn table(&self) -> &NeighborTable {
            &self.table
        }
    }

    #[test]
    fn dilation_repeats_each_action_and_contracts_the_clock() {
        let mut robust = RobustDiscovery::new(
            Box::new(Scripted {
                table: NeighborTable::new(),
            }),
            3,
        );
        let mut rng = SeedTree::new(0).rng();
        let actions: Vec<SlotAction> = (0..12).map(|t| robust.on_slot(t, &mut rng)).collect();
        for chunk in actions.chunks(3) {
            assert!(chunk.iter().all(|a| *a == chunk[0]), "runs of 3 identical");
        }
        assert!(actions[0].is_transmit());
        assert!(actions[3].is_listen());
        assert!(actions[6].is_transmit());
    }

    #[test]
    fn repetition_one_is_transparent() {
        let mut robust = RobustDiscovery::new(
            Box::new(Scripted {
                table: NeighborTable::new(),
            }),
            1,
        );
        let mut rng = SeedTree::new(0).rng();
        for t in 0..5 {
            robust.on_slot(t, &mut rng);
        }
        // With r = 1 the inner clock advances 1:1.
        let beacon = Beacon::new(NodeId::new(3), ChannelSet::full(2));
        robust.on_beacon(&beacon, ChannelId::new(0));
        assert_eq!(robust.table().len(), 1);
        assert_eq!(robust.repetition(), 1);
    }

    #[test]
    fn repetition_factor_formula() {
        // Reliable channel: no inflation.
        assert_eq!(repetition_factor(10, 0.1, 0.0), 1);
        // p = 1/e makes the denominator 1, so r = ⌈ln(N²/ε)⌉.
        let r = repetition_factor(10, 0.1, (-1.0f64).exp());
        assert_eq!(r, ((100.0f64 / 0.1).ln()).ceil() as u64);
        // Heavier loss needs more repetition.
        assert!(repetition_factor(10, 0.1, 0.9) > repetition_factor(10, 0.1, 0.5));
        // Stricter ε needs more repetition.
        assert!(repetition_factor(10, 0.001, 0.5) > repetition_factor(10, 0.1, 0.5));
        // The guarantee the factor is derived from: pʳ ≤ ε/N².
        let (n, eps, p) = (10usize, 0.1, 0.75);
        let r = repetition_factor(n, eps, p);
        assert!(p.powi(r as i32) <= eps / (n as f64).powi(2));
    }

    #[test]
    #[should_panic(expected = "repetition factor must be at least 1")]
    fn zero_repetition_panics() {
        let _ = RobustDiscovery::new(
            Box::new(Scripted {
                table: NeighborTable::new(),
            }),
            0,
        );
    }

    #[test]
    #[should_panic(expected = "loss probability must be in [0,1)")]
    fn certain_loss_is_rejected() {
        let _ = repetition_factor(4, 0.1, 1.0);
    }
}
