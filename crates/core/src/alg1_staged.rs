//! Algorithm 1: synchronous discovery with identical start times and a
//! known upper bound on the maximum node degree.
//!
//! Execution is divided into *stages* of `⌈log₂ Δ_est⌉` slots. In slot `i`
//! of a stage (1-based), a node picks a channel uniformly from `A(u)` and
//! transmits with probability `min(1/2, |A(u)|/2^i)`, listening otherwise.
//! Sweeping the probability geometrically guarantees that, whatever the
//! true degree `Δ(u,c)`, some slot of every stage has a transmission
//! probability within a factor 2 of the optimal `1/Δ(u,c)` (Eq. 2).
//!
//! Theorem 1: completes within
//! `O((max(S,Δ)/ρ)·log Δ_est·log(N/ε))` slots w.p. ≥ 1−ε.

use crate::params::{tx_probability, ProtocolError, SyncParams};
use mmhew_engine::{NeighborTable, SyncProtocol};
use mmhew_obs::ProtocolPhase;
use mmhew_radio::{Beacon, SlotAction};
use mmhew_spectrum::{ChannelId, ChannelSet};
use mmhew_util::Xoshiro256StarStar;
use rand::Rng;

/// Per-node state of Algorithm 1.
///
/// # Examples
///
/// ```
/// use mmhew_discovery::{StagedDiscovery, SyncParams};
///
/// let proto = StagedDiscovery::new(
///     [0u16, 1, 2].into_iter().collect(),
///     SyncParams::new(8)?,
/// )?;
/// # let _ = proto;
/// # Ok::<(), mmhew_discovery::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StagedDiscovery {
    available: ChannelSet,
    params: SyncParams,
    table: NeighborTable,
    stage: u64,
}

impl StagedDiscovery {
    /// Creates the protocol for a node with available channel set
    /// `available`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::EmptyChannelSet`] if `available` is empty.
    pub fn new(available: ChannelSet, params: SyncParams) -> Result<Self, ProtocolError> {
        if available.is_empty() {
            return Err(ProtocolError::EmptyChannelSet);
        }
        Ok(Self {
            available,
            params,
            table: NeighborTable::new(),
            stage: 0,
        })
    }

    /// The transmission probability used in slot `i` (1-based) of a stage.
    pub fn slot_probability(&self, i: u64) -> f64 {
        tx_probability(self.available.view(), (2.0f64).powi(i as i32))
    }

    /// The stage length `⌈log₂ Δ_est⌉` (≥ 1).
    pub fn stage_len(&self) -> u64 {
        self.params.stage_len()
    }
}

impl SyncProtocol for StagedDiscovery {
    fn on_slot(&mut self, active_slot: u64, rng: &mut Xoshiro256StarStar) -> SlotAction {
        // Slot index within the current stage, 1-based (Algorithm 1 line 2).
        self.stage = active_slot / self.stage_len();
        let i = active_slot % self.stage_len() + 1;
        let channel = self
            .available
            .choose_uniform(rng)
            .expect("validated non-empty");
        let p = self.slot_probability(i);
        if rng.gen_bool(p) {
            SlotAction::Transmit { channel }
        } else {
            SlotAction::Listen { channel }
        }
    }

    /// Every active slot draws a fresh channel and a fresh transmit coin
    /// (a geometric-style schedule), so the draw-free repeat window is
    /// empty — but the stream is beacon-independent, which is what lets
    /// the event executor scan ahead.
    fn next_transmission_bound(&self, now: u64) -> Option<u64> {
        Some(now)
    }

    fn on_beacon(&mut self, beacon: &Beacon, _channel: ChannelId) {
        self.table.record(
            beacon.sender(),
            beacon.available().intersection(&self.available),
        );
    }

    fn table(&self) -> &NeighborTable {
        &self.table
    }

    fn phase(&self) -> Option<ProtocolPhase> {
        Some(ProtocolPhase::Stage(self.stage))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_util::SeedTree;

    fn proto(channels: u16, delta_est: u64) -> StagedDiscovery {
        StagedDiscovery::new(
            ChannelSet::full(channels),
            SyncParams::new(delta_est).expect("valid"),
        )
        .expect("valid")
    }

    #[test]
    fn empty_set_rejected() {
        assert_eq!(
            StagedDiscovery::new(ChannelSet::new(), SyncParams::new(4).expect("valid")).err(),
            Some(ProtocolError::EmptyChannelSet)
        );
    }

    #[test]
    fn slot_probabilities_sweep_geometrically() {
        // |A| = 4, Δ_est = 64 -> stage of 6 slots.
        let p = proto(4, 64);
        assert_eq!(p.stage_len(), 6);
        assert_eq!(p.slot_probability(1), 0.5); // min(1/2, 4/2)
        assert_eq!(p.slot_probability(2), 0.5); // min(1/2, 4/4)
        assert_eq!(p.slot_probability(3), 0.5); // min(1/2, 4/8)
        assert_eq!(p.slot_probability(4), 0.25); // 4/16
        assert_eq!(p.slot_probability(5), 0.125); // 4/32
        assert_eq!(p.slot_probability(6), 0.0625); // 4/64
    }

    #[test]
    fn actions_never_quiet_and_channel_in_set() {
        let mut p = proto(3, 8);
        let mut rng = SeedTree::new(1).rng();
        for slot in 0..200 {
            let a = p.on_slot(slot, &mut rng);
            let c = a.channel().expect("never quiet");
            assert!(c.index() < 3);
        }
    }

    #[test]
    fn empirical_tx_rate_matches_slot_probability() {
        // Stage length 4 (Δ_est = 16), |A| = 2:
        // probabilities: slot1 1/2, slot2 1/2, slot3 1/4, slot4 1/8.
        let mut p = proto(2, 16);
        let mut rng = SeedTree::new(2).rng();
        let trials = 40_000u64;
        let mut tx = [0u32; 4];
        for k in 0..trials {
            if p.on_slot(k, &mut rng).is_transmit() {
                tx[(k % 4) as usize] += 1;
            }
        }
        let per = trials as f64 / 4.0;
        for (i, want) in [(0usize, 0.5), (1, 0.5), (2, 0.25), (3, 0.125)] {
            let got = tx[i] as f64 / per;
            assert!(
                (got - want).abs() < 0.03,
                "slot {} rate {got}, want {want}",
                i + 1
            );
        }
    }

    #[test]
    fn channel_choice_is_uniform() {
        let mut p = proto(4, 4);
        let mut rng = SeedTree::new(3).rng();
        let mut counts = [0u32; 4];
        for k in 0..40_000 {
            let c = p.on_slot(k, &mut rng).channel().expect("never quiet");
            counts[c.index() as usize] += 1;
        }
        for &c in &counts {
            let f = c as f64 / 40_000.0;
            assert!((f - 0.25).abs() < 0.02, "channel frequency {f}");
        }
    }

    #[test]
    fn beacon_recording_intersects_with_own_set() {
        let mut p = StagedDiscovery::new(
            [0u16, 1].into_iter().collect(),
            SyncParams::new(4).expect("valid"),
        )
        .expect("valid");
        let beacon = Beacon::new(
            mmhew_topology::NodeId::new(9),
            [1u16, 2].into_iter().collect(),
        );
        p.on_beacon(&beacon, ChannelId::new(1));
        assert_eq!(
            p.table().get(mmhew_topology::NodeId::new(9)),
            Some(&[1u16].into_iter().collect())
        );
    }

    #[test]
    fn phase_reports_current_stage() {
        let mut p = proto(4, 64); // stage length 6
        assert_eq!(p.phase(), Some(ProtocolPhase::Stage(0)));
        let mut rng = SeedTree::new(5).rng();
        for slot in 0..6 {
            let _ = p.on_slot(slot, &mut rng);
        }
        assert_eq!(p.phase(), Some(ProtocolPhase::Stage(0)));
        let _ = p.on_slot(6, &mut rng);
        assert_eq!(p.phase(), Some(ProtocolPhase::Stage(1)));
    }

    #[test]
    fn delta_est_one_still_transmits() {
        // Degenerate estimate: stage of one slot, p = min(1/2, |A|/2).
        let mut p = proto(1, 1);
        let mut rng = SeedTree::new(4).rng();
        let tx = (0..10_000)
            .filter(|&k| p.on_slot(k, &mut rng).is_transmit())
            .count();
        let rate = tx as f64 / 10_000.0;
        assert!((rate - 0.5).abs() < 0.03, "rate {rate}");
    }
}
