//! Algorithm 2: synchronous discovery with identical start times and *no*
//! knowledge of the maximum node degree.
//!
//! Starting from an estimate `d = 2`, the node repeatedly executes one
//! stage of Algorithm 1 with `Δ_est = d`, then increments `d` (the
//! sequential-estimate technique of Nakano–Olariu \[24\] rather than
//! geometric doubling, because computing how long to dwell on one estimate
//! would require knowing `N`, `S` and `ρ`). Once `d ≥ Δ`, every stage
//! contains a slot satisfying Eq. 2, and the analysis of Algorithm 1
//! applies.
//!
//! Theorem 2: completes within `O(M log M)` slots w.p. ≥ 1−ε, where
//! `M = (16·max(S,Δ)/ρ)·ln(N²/ε)`.

use crate::params::{ceil_log2, tx_probability, ProtocolError};
use mmhew_engine::{NeighborTable, SyncProtocol};
use mmhew_obs::ProtocolPhase;
use mmhew_radio::{Beacon, SlotAction};
use mmhew_spectrum::{ChannelId, ChannelSet};
use mmhew_util::Xoshiro256StarStar;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How Algorithm 2 grows its degree estimate between stages.
///
/// The paper uses [`GrowthStrategy::IncrementByOne`] (after Nakano–Olariu
/// \[24\]) and explicitly rejects geometric doubling, because choosing how
/// long to dwell on each doubled estimate requires knowing `N`, `S` and
/// `ρ`. [`GrowthStrategy::Double`] implements the rejected scheme with a
/// fixed dwell so experiment E17 can measure what that rejection costs or
/// saves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GrowthStrategy {
    /// The paper's scheme: `d ← d + 1` after every stage.
    #[default]
    IncrementByOne,
    /// The rejected alternative: run `dwell` stages at each estimate, then
    /// `d ← 2d`.
    Double {
        /// Stages spent at each estimate before doubling.
        dwell: u64,
    },
}

/// Per-node state of Algorithm 2.
///
/// # Examples
///
/// ```
/// use mmhew_discovery::AdaptiveDiscovery;
///
/// let proto = AdaptiveDiscovery::new([0u16, 5].into_iter().collect())?;
/// assert_eq!(proto.current_estimate(), 2);
/// # Ok::<(), mmhew_discovery::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveDiscovery {
    available: ChannelSet,
    /// Current degree estimate `d` (Algorithm 2 line 1: starts at 2).
    estimate: u64,
    /// 0-based slot position within the current stage.
    pos: u64,
    /// Stages completed at the current estimate (for `Double` dwell).
    stages_at_estimate: u64,
    strategy: GrowthStrategy,
    table: NeighborTable,
}

impl AdaptiveDiscovery {
    /// Creates the protocol for a node with available channel set
    /// `available`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::EmptyChannelSet`] if `available` is empty.
    pub fn new(available: ChannelSet) -> Result<Self, ProtocolError> {
        Self::with_strategy(available, GrowthStrategy::IncrementByOne)
    }

    /// Creates the protocol with an explicit estimate-growth strategy
    /// (ablation use; the paper's algorithm is [`AdaptiveDiscovery::new`]).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::EmptyChannelSet`] if `available` is empty,
    /// or [`ProtocolError::ZeroDegreeEstimate`] for a zero dwell.
    pub fn with_strategy(
        available: ChannelSet,
        strategy: GrowthStrategy,
    ) -> Result<Self, ProtocolError> {
        if available.is_empty() {
            return Err(ProtocolError::EmptyChannelSet);
        }
        if let GrowthStrategy::Double { dwell: 0 } = strategy {
            return Err(ProtocolError::ZeroDegreeEstimate);
        }
        Ok(Self {
            available,
            estimate: 2,
            pos: 0,
            stages_at_estimate: 0,
            strategy,
            table: NeighborTable::new(),
        })
    }

    /// The current degree estimate `d`.
    pub fn current_estimate(&self) -> u64 {
        self.estimate
    }

    /// Length of the current stage, `⌈log₂ d⌉` (≥ 1).
    pub fn current_stage_len(&self) -> u64 {
        ceil_log2(self.estimate).max(1)
    }
}

impl SyncProtocol for AdaptiveDiscovery {
    /// Every active slot draws a fresh channel and a fresh transmit coin,
    /// so the draw-free repeat window is empty; the estimate machinery
    /// advances on slot count alone (beacon-independent), so the event
    /// executor may scan ahead.
    fn next_transmission_bound(&self, now: u64) -> Option<u64> {
        Some(now)
    }

    fn on_slot(&mut self, _active_slot: u64, rng: &mut Xoshiro256StarStar) -> SlotAction {
        let i = self.pos + 1; // 1-based slot within the stage
        let p = tx_probability(self.available.view(), (2.0f64).powi(i as i32));
        let channel = self
            .available
            .choose_uniform(rng)
            .expect("validated non-empty");
        // Advance the stage machinery.
        self.pos += 1;
        if self.pos == self.current_stage_len() {
            self.pos = 0;
            self.stages_at_estimate += 1;
            match self.strategy {
                GrowthStrategy::IncrementByOne => {
                    self.estimate += 1;
                    self.stages_at_estimate = 0;
                }
                GrowthStrategy::Double { dwell } => {
                    if self.stages_at_estimate >= dwell {
                        self.estimate = self.estimate.saturating_mul(2);
                        self.stages_at_estimate = 0;
                    }
                }
            }
        }
        if rng.gen_bool(p) {
            SlotAction::Transmit { channel }
        } else {
            SlotAction::Listen { channel }
        }
    }

    fn on_beacon(&mut self, beacon: &Beacon, _channel: ChannelId) {
        self.table.record(
            beacon.sender(),
            beacon.available().intersection(&self.available),
        );
    }

    fn table(&self) -> &NeighborTable {
        &self.table
    }

    fn phase(&self) -> Option<ProtocolPhase> {
        Some(ProtocolPhase::Estimate(self.estimate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_util::SeedTree;

    fn proto(channels: u16) -> AdaptiveDiscovery {
        AdaptiveDiscovery::new(ChannelSet::full(channels)).expect("valid")
    }

    #[test]
    fn empty_set_rejected() {
        assert!(matches!(
            AdaptiveDiscovery::new(ChannelSet::new()),
            Err(ProtocolError::EmptyChannelSet)
        ));
    }

    #[test]
    fn estimate_advances_after_each_stage() {
        let mut p = proto(2);
        let mut rng = SeedTree::new(0).rng();
        // d=2 -> stage length 1; d=3,4 -> 2; d=5..8 -> 3; ...
        let mut estimates = Vec::new();
        for slot in 0..11 {
            estimates.push(p.current_estimate());
            let _ = p.on_slot(slot, &mut rng);
        }
        assert_eq!(estimates, vec![2, 3, 3, 4, 4, 5, 5, 5, 6, 6, 6]);
    }

    #[test]
    fn stage_lengths_track_estimate() {
        let mut p = proto(2);
        assert_eq!(p.current_stage_len(), 1); // d=2
        p.estimate = 3;
        assert_eq!(p.current_stage_len(), 2);
        p.estimate = 9;
        assert_eq!(p.current_stage_len(), 4);
    }

    #[test]
    fn total_slots_to_reach_estimate_matches_sum_of_logs() {
        let mut p = proto(1);
        let mut rng = SeedTree::new(1).rng();
        let mut slots = 0u64;
        while p.current_estimate() < 20 {
            let _ = p.on_slot(slots, &mut rng);
            slots += 1;
        }
        let expected: u64 = (2..20u64).map(|d| ceil_log2(d).max(1)).sum();
        assert_eq!(slots, expected);
    }

    #[test]
    fn first_slot_probability_is_half_of_a_over_two() {
        // In slot 1 of every stage, p = min(1/2, |A|/2): with |A| = 1 that
        // is 1/2.
        let mut p = proto(1);
        let mut rng = SeedTree::new(2).rng();
        let mut first_slot_txs = 0u32;
        let mut first_slots = 0u32;
        for slot in 0..20_000 {
            let at_stage_start = p.pos == 0;
            let a = p.on_slot(slot, &mut rng);
            if at_stage_start {
                first_slots += 1;
                if a.is_transmit() {
                    first_slot_txs += 1;
                }
            }
        }
        let rate = first_slot_txs as f64 / first_slots as f64;
        assert!((rate - 0.5).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn late_stage_probabilities_decay() {
        // Drive the estimate high, then check the last slot of a stage has
        // a small transmit probability empirically.
        let mut p = proto(1);
        p.estimate = 1 << 10; // stage length 10, last slot p = 1/1024
        p.pos = 9;
        let mut rng = SeedTree::new(3).rng();
        let mut tx = 0u32;
        for _ in 0..10_000 {
            // Reset to the last slot of the same stage each iteration.
            p.estimate = 1 << 10;
            p.pos = 9;
            if p.on_slot(0, &mut rng).is_transmit() {
                tx += 1;
            }
        }
        let rate = tx as f64 / 10_000.0;
        assert!(rate < 0.005, "rate {rate} should be near 1/1024");
    }

    #[test]
    fn doubling_strategy_grows_geometrically() {
        let mut p = AdaptiveDiscovery::with_strategy(
            ChannelSet::full(2),
            GrowthStrategy::Double { dwell: 1 },
        )
        .expect("valid");
        let mut rng = SeedTree::new(5).rng();
        let mut estimates = vec![p.current_estimate()];
        for slot in 0..40 {
            let _ = p.on_slot(slot, &mut rng);
            if *estimates.last().expect("non-empty") != p.current_estimate() {
                estimates.push(p.current_estimate());
            }
        }
        assert!(estimates.starts_with(&[2, 4, 8, 16]), "{estimates:?}");
    }

    #[test]
    fn doubling_strategy_respects_dwell() {
        let mut p = AdaptiveDiscovery::with_strategy(
            ChannelSet::full(2),
            GrowthStrategy::Double { dwell: 3 },
        )
        .expect("valid");
        let mut rng = SeedTree::new(6).rng();
        // d=2 has stage length 1: three stages of one slot each pass
        // before doubling.
        for slot in 0..3 {
            assert_eq!(p.current_estimate(), 2, "slot {slot}");
            let _ = p.on_slot(slot, &mut rng);
        }
        assert_eq!(p.current_estimate(), 4);
    }

    #[test]
    fn zero_dwell_rejected() {
        assert_eq!(
            AdaptiveDiscovery::with_strategy(
                ChannelSet::full(1),
                GrowthStrategy::Double { dwell: 0 },
            )
            .err(),
            Some(ProtocolError::ZeroDegreeEstimate)
        );
    }

    #[test]
    fn phase_tracks_estimate() {
        let mut p = proto(2);
        assert_eq!(p.phase(), Some(ProtocolPhase::Estimate(2)));
        let mut rng = SeedTree::new(7).rng();
        // d=2 has a one-slot stage: one slot advances the estimate to 3.
        let _ = p.on_slot(0, &mut rng);
        assert_eq!(p.phase(), Some(ProtocolPhase::Estimate(3)));
    }

    #[test]
    fn beacon_recording() {
        let mut p = proto(2);
        let beacon = Beacon::new(mmhew_topology::NodeId::new(4), ChannelSet::full(8));
        p.on_beacon(&beacon, ChannelId::new(0));
        assert_eq!(
            p.table().get(mmhew_topology::NodeId::new(4)),
            Some(&ChannelSet::full(2))
        );
    }
}
