//! Algorithm 3: synchronous discovery with *variable* start times and a
//! known upper bound on the maximum node degree.
//!
//! The staged probability sweep of Algorithm 1 breaks when nodes start at
//! different slots (their stages misalign), so here every node uses the
//! *same* transmission probability in every slot:
//! `min(1/2, |A(u)|/Δ_est)`. Any slot after all nodes have started then
//! covers any link with probability ≥ `ρ/(8·max(2S, Δ_est))` (Eqs. 9, 4,
//! 5) regardless of alignment.
//!
//! Theorem 3: completes within `O((max(2S, Δ_est)/ρ)·log(N/ε))` slots
//! after the last start `T_s` — no `log Δ_est` stage factor, but the
//! dependence on `Δ_est` is now linear, so the bound should be good.

use crate::params::{tx_probability, ProtocolError, SyncParams};
use mmhew_engine::{NeighborTable, SyncProtocol};
use mmhew_radio::{Beacon, SlotAction};
use mmhew_spectrum::{ChannelId, ChannelSet};
use mmhew_util::Xoshiro256StarStar;
use rand::Rng;

/// Per-node state of Algorithm 3.
///
/// # Examples
///
/// ```
/// use mmhew_discovery::{SyncParams, UniformDiscovery};
///
/// let proto = UniformDiscovery::new(
///     [2u16, 7].into_iter().collect(),
///     SyncParams::new(6)?,
/// )?;
/// assert!((proto.probability() - 2.0 / 6.0).abs() < 1e-12);
/// # Ok::<(), mmhew_discovery::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct UniformDiscovery {
    available: ChannelSet,
    probability: f64,
    table: NeighborTable,
}

impl UniformDiscovery {
    /// Creates the protocol for a node with available channel set
    /// `available`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::EmptyChannelSet`] if `available` is empty.
    pub fn new(available: ChannelSet, params: SyncParams) -> Result<Self, ProtocolError> {
        if available.is_empty() {
            return Err(ProtocolError::EmptyChannelSet);
        }
        let probability = tx_probability(available.view(), params.delta_est() as f64);
        Ok(Self {
            available,
            probability,
            table: NeighborTable::new(),
        })
    }

    /// The per-slot transmission probability `min(1/2, |A(u)|/Δ_est)`.
    pub fn probability(&self) -> f64 {
        self.probability
    }
}

impl SyncProtocol for UniformDiscovery {
    fn on_slot(&mut self, _active_slot: u64, rng: &mut Xoshiro256StarStar) -> SlotAction {
        let channel = self
            .available
            .choose_uniform(rng)
            .expect("validated non-empty");
        if rng.gen_bool(self.probability) {
            SlotAction::Transmit { channel }
        } else {
            SlotAction::Listen { channel }
        }
    }

    /// Every active slot draws a fresh channel and a fresh transmit coin
    /// (the memoryless 1/(2ρ̂) schedule), so the draw-free repeat window
    /// is empty — but the stream is beacon-independent, which is what
    /// lets the event executor scan ahead.
    fn next_transmission_bound(&self, now: u64) -> Option<u64> {
        Some(now)
    }

    fn on_beacon(&mut self, beacon: &Beacon, _channel: ChannelId) {
        self.table.record(
            beacon.sender(),
            beacon.available().intersection(&self.available),
        );
    }

    fn table(&self) -> &NeighborTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_util::SeedTree;

    fn proto(channels: u16, delta_est: u64) -> UniformDiscovery {
        UniformDiscovery::new(
            ChannelSet::full(channels),
            SyncParams::new(delta_est).expect("valid"),
        )
        .expect("valid")
    }

    #[test]
    fn probability_formula() {
        assert_eq!(proto(4, 4).probability(), 0.5); // min(1/2, 1)
        assert_eq!(proto(2, 8).probability(), 0.25);
        assert_eq!(proto(1, 100).probability(), 0.01);
        assert_eq!(proto(30, 10).probability(), 0.5);
    }

    #[test]
    fn empty_set_rejected() {
        assert!(matches!(
            UniformDiscovery::new(ChannelSet::new(), SyncParams::new(2).expect("valid")),
            Err(ProtocolError::EmptyChannelSet)
        ));
    }

    #[test]
    fn probability_is_constant_across_slots() {
        let mut p = proto(2, 16); // p = 1/8
        let mut rng = SeedTree::new(0).rng();
        // Empirical rate in the first half vs second half of a long run
        // must match (no stage structure).
        let half = 40_000u64;
        let tx1 = (0..half)
            .filter(|&k| p.on_slot(k, &mut rng).is_transmit())
            .count();
        let tx2 = (half..2 * half)
            .filter(|&k| p.on_slot(k, &mut rng).is_transmit())
            .count();
        let r1 = tx1 as f64 / half as f64;
        let r2 = tx2 as f64 / half as f64;
        assert!((r1 - 0.125).abs() < 0.01, "rate {r1}");
        assert!((r2 - 0.125).abs() < 0.01, "rate {r2}");
    }

    #[test]
    fn channel_uniformity() {
        let mut p = proto(5, 4);
        let mut rng = SeedTree::new(1).rng();
        let mut counts = [0u32; 5];
        for k in 0..50_000 {
            counts[p
                .on_slot(k, &mut rng)
                .channel()
                .expect("never quiet")
                .index() as usize] += 1;
        }
        for &c in &counts {
            let f = c as f64 / 50_000.0;
            assert!((f - 0.2).abs() < 0.02, "frequency {f}");
        }
    }

    #[test]
    fn beacon_recording() {
        let mut p = proto(3, 2);
        let beacon = Beacon::new(
            mmhew_topology::NodeId::new(1),
            [2u16, 9].into_iter().collect(),
        );
        p.on_beacon(&beacon, ChannelId::new(2));
        assert_eq!(
            p.table().get(mmhew_topology::NodeId::new(1)),
            Some(&[2u16].into_iter().collect())
        );
    }
}
