//! The unified `Scenario` builder: one composable entry point replacing
//! the 16-function `run_*` runner matrix.
//!
//! Every feature the engines grew across the observability, dynamics and
//! fault PRs — event sinks, dynamics schedules, fault plans, robust
//! time-dilation, continuous re-announcement, quiescent termination —
//! used to require its own `run_{sync,async}_discovery_…` variant, and
//! the combinations multiplied. [`Scenario`] collapses them into a
//! builder:
//!
//! ```text
//! Scenario::sync(&net, algorithm)
//!     .starts(..)            // start-slot schedule (default Identical)
//!     .config(..)            // run budget / stop conditions
//!     .engine(..)            // executor: Slotted oracle / Event skipper
//!     .with_dynamics(..)     // churn / mobility / spectrum events
//!     .with_faults(..)       // loss, jamming, capture, crashes
//!     .with_sink(..)         // event observation
//!     .with_perfetto(..)     // tee a Perfetto .pftrace of the run
//!     .robust(r)             // time-dilation wrapper
//!     .continuous(cfg)       // re-announce / stale-evict wrapper
//!     .terminating(q)        // local quiescence detection
//!     .run(seed)?            // -> SyncOutcome
//! ```
//!
//! # Neutrality guarantees
//!
//! A `Scenario` with no extras attached is **RNG- and trace-neutral**
//! with respect to the legacy plain runner: it performs the exact same
//! wiring (`build protocols → starts.materialize(n, seed.branch("starts"))
//! → Engine::new(…, seed.branch("engine")) → run(config)`), touching the
//! engine's optional hooks only when explicitly configured, so outcomes
//! and JSONL traces are byte-identical at the same seed. The
//! `scenario_equivalence` test suite asserts this for every cell of the
//! legacy matrix on both engines.
//!
//! # Wrapper composition order
//!
//! Protocol wrappers nest base → robust → continuous → terminating: the
//! robust wrapper dilates the innermost clock, continuous re-announcement
//! rides on the dilated protocol, and the quiescence detector watches the
//! outermost table. Single-wrapper scenarios reproduce the corresponding
//! legacy runner exactly; multi-wrapper scenarios compose combinations
//! the runner matrix never offered.

use crate::continuous::{ContinuousConfig, ContinuousDiscovery};
use crate::params::ProtocolError;
use crate::robust::RobustDiscovery;
use crate::runner::{build_async_protocols, build_sync_protocols, AsyncAlgorithm, SyncAlgorithm};
use crate::termination::{QuiescentAsyncTermination, QuiescentTermination};
use mmhew_dynamics::DynamicsSchedule;
use mmhew_engine::{
    AsyncEngine, AsyncOutcome, AsyncProtocol, AsyncRunConfig, Engine, StartSchedule, SyncEngine,
    SyncOutcome, SyncProtocol, SyncRunConfig,
};
use mmhew_faults::FaultPlan;
use mmhew_obs::{EventSink, FanoutSink};
use mmhew_perfetto::PerfettoSink;
use mmhew_topology::{Network, NodeId};
use mmhew_util::SeedTree;
use std::path::PathBuf;

/// Default slot/frame budget when no [`SyncRunConfig`]/[`AsyncRunConfig`]
/// is supplied: run until complete within one million slots (frames).
pub const DEFAULT_BUDGET: u64 = 1_000_000;

/// Entry point for building simulation scenarios.
///
/// `Scenario` is a pure namespace: [`Scenario::sync`] opens a
/// [`SyncScenario`] on the slot-synchronous engine, and
/// [`Scenario::asynchronous`] an [`AsyncScenario`] on the
/// unsynchronized-clock engine.
///
/// # Examples
///
/// ```
/// use mmhew_discovery::{Scenario, SyncAlgorithm, SyncParams};
/// use mmhew_topology::NetworkBuilder;
/// use mmhew_util::SeedTree;
///
/// let net = NetworkBuilder::complete(4).universe(4).build(SeedTree::new(0))?;
/// let outcome = Scenario::sync(&net, SyncAlgorithm::Staged(SyncParams::new(4)?))
///     .run(SeedTree::new(1))?;
/// assert!(outcome.completed());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Scenario;

impl Scenario {
    /// Opens a slot-synchronous scenario on `network` running `algorithm`.
    pub fn sync(network: &Network, algorithm: SyncAlgorithm) -> SyncScenario<'_> {
        Self::sync_source(network, SyncSource::Named(algorithm))
    }

    /// Opens a slot-synchronous scenario on `network` running an
    /// externally built per-node protocol stack (e.g. from the
    /// `mmhew-rivals` catalog). `protocols[i]` drives node `i`; the stack
    /// length must equal `network.node_count()`. All builder knobs —
    /// wrappers, engines, faults, sinks — compose exactly as with
    /// [`Scenario::sync`].
    ///
    /// # Panics
    ///
    /// [`run`](SyncScenario::run) panics if the stack length does not
    /// match the node count.
    pub fn sync_stack(
        network: &Network,
        protocols: Vec<Box<dyn SyncProtocol>>,
    ) -> SyncScenario<'_> {
        Self::sync_source(network, SyncSource::Stack(protocols))
    }

    fn sync_source(network: &Network, source: SyncSource) -> SyncScenario<'_> {
        SyncScenario {
            network,
            source,
            starts: StartSchedule::Identical,
            config: SyncRunConfig::until_complete(DEFAULT_BUDGET),
            engine: Engine::Slotted,
            robust: None,
            continuous: None,
            terminating: None,
            dynamics: None,
            faults: None,
            sink: None,
            perfetto: None,
            shards: 1,
        }
    }

    /// Opens an asynchronous (unsynchronized clocks) scenario on
    /// `network` running `algorithm`.
    pub fn asynchronous(network: &Network, algorithm: AsyncAlgorithm) -> AsyncScenario<'_> {
        AsyncScenario {
            network,
            algorithm,
            config: AsyncRunConfig::until_complete(DEFAULT_BUDGET),
            terminating: None,
            dynamics: None,
            faults: None,
            sink: None,
            perfetto: None,
        }
    }
}

/// Composes the user sink (if any) with the Perfetto tee (if any) and
/// runs `run` with the result. Keeping the composition in one helper
/// guarantees both scenario flavours wire it identically: the tee rides
/// the exact event stream the user sink sees, and attaching it cannot
/// perturb the simulation (sinks only observe).
fn run_with_tee<T>(
    user: Option<&mut dyn EventSink>,
    perfetto: Option<PathBuf>,
    run: impl FnOnce(Option<&mut dyn EventSink>) -> T,
) -> Result<T, ProtocolError> {
    let mut tee = perfetto.map(PerfettoSink::create);
    let outcome = match (user, tee.as_mut()) {
        (Some(user), Some(t)) => {
            let mut fanout = FanoutSink::new(vec![user, t as &mut dyn EventSink]);
            run(Some(&mut fanout))
        }
        (Some(user), None) => run(Some(user)),
        (None, Some(t)) => run(Some(t as &mut dyn EventSink)),
        (None, None) => run(None),
    };
    if let Some(tee) = tee {
        tee.finish()
            .map_err(|e| ProtocolError::TraceWrite(e.to_string()))?;
    }
    Ok(outcome)
}

/// A configured slot-synchronous run, built by [`Scenario::sync`].
///
/// See the [module docs](self) for the builder grammar and the
/// neutrality / composition-order guarantees.
/// Where a [`SyncScenario`]'s per-node protocols come from: a named
/// algorithm built on demand, or a ready-made stack handed in by the
/// caller.
enum SyncSource {
    Named(SyncAlgorithm),
    Stack(Vec<Box<dyn SyncProtocol>>),
}

pub struct SyncScenario<'a> {
    network: &'a Network,
    source: SyncSource,
    starts: StartSchedule,
    config: SyncRunConfig,
    engine: Engine,
    robust: Option<u64>,
    continuous: Option<ContinuousConfig>,
    terminating: Option<u64>,
    dynamics: Option<DynamicsSchedule>,
    faults: Option<FaultPlan>,
    sink: Option<&'a mut dyn EventSink>,
    perfetto: Option<PathBuf>,
    shards: usize,
}

impl<'a> SyncScenario<'a> {
    /// Sets the start-slot schedule (default [`StartSchedule::Identical`]).
    #[must_use]
    pub fn starts(mut self, starts: StartSchedule) -> Self {
        self.starts = starts;
        self
    }

    /// Sets the run configuration (budget, stop conditions, impairments).
    /// Defaults to [`SyncRunConfig::until_complete`] with
    /// [`DEFAULT_BUDGET`] slots.
    #[must_use]
    pub fn config(mut self, config: SyncRunConfig) -> Self {
        self.config = config;
        self
    }

    /// Selects the executor driving the run (default
    /// [`Engine::Slotted`], the slot-by-slot oracle).
    /// [`Engine::Event`] skips dead air — stretches of slots with no
    /// transmission and no due dynamics — while staying byte-identical to
    /// the oracle at the same seed, and falls back to it wholesale
    /// whenever the fast path's preconditions fail (an attached sink, a
    /// fault plan, or a protocol stack without a scan-ahead-safe
    /// transmit-schedule hook).
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Attaches a [`DynamicsSchedule`] (churn, mobility, spectrum events;
    /// `at` interpreted as slot indices).
    #[must_use]
    pub fn with_dynamics(mut self, dynamics: DynamicsSchedule) -> Self {
        self.dynamics = Some(dynamics);
        self
    }

    /// Attaches a [`FaultPlan`] (per-link loss, jammers, capture, crash
    /// outages).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Attaches an [`EventSink`] observing every simulation event.
    #[must_use]
    pub fn with_sink(mut self, sink: &'a mut dyn EventSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Tees the run's event stream through the Perfetto converter and
    /// writes a `.pftrace` file at `path` when the run finishes (open it
    /// at <https://ui.perfetto.dev>). Composes with [`with_sink`]: the
    /// user sink observes the identical stream. Attaching the tee is
    /// RNG- and outcome-neutral — sinks only observe.
    ///
    /// [`with_sink`]: Self::with_sink
    #[must_use]
    pub fn with_perfetto<P: Into<PathBuf>>(mut self, path: P) -> Self {
        self.perfetto = Some(path.into());
        self
    }

    /// Resolves each slot's medium with up to `shards` worker threads,
    /// partitioned by channel. Purely an execution knob (like a build
    /// system's `--jobs`): outcomes, RNG streams, and traces are
    /// byte-identical for every shard count, so the value is *not* part
    /// of [`SyncRunConfig`] and never appears in serialized run
    /// manifests. `0` and `1` both mean serial resolution.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Wraps every node in [`crate::RobustDiscovery`] with the given
    /// repetition factor (see [`crate::repetition_factor`]). Remember to
    /// inflate the slot budget by the same factor.
    ///
    /// # Panics
    ///
    /// [`run`](Self::run) panics if `repetition` is zero.
    #[must_use]
    pub fn robust(mut self, repetition: u64) -> Self {
        self.robust = Some(repetition);
        self
    }

    /// Wraps every node in [`crate::ContinuousDiscovery`] (periodic
    /// re-announcement + stale eviction). Continuous runs never complete;
    /// pair with [`SyncRunConfig::fixed`].
    #[must_use]
    pub fn continuous(mut self, config: ContinuousConfig) -> Self {
        self.continuous = Some(config);
        self
    }

    /// Wraps every node in a [`crate::QuiescentTermination`] detector
    /// with the given threshold, so nodes decide *locally* when to stop.
    /// Pair with [`SyncRunConfig::until_all_terminated`].
    #[must_use]
    pub fn terminating(mut self, quiet_slots: u64) -> Self {
        self.terminating = Some(quiet_slots);
        self
    }

    /// Builds the per-node protocol stack and runs the engine.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] if any node's available channel set is
    /// empty, or a wrapper threshold/parameter is zero.
    pub fn run(self, seed: SeedTree) -> Result<SyncOutcome, ProtocolError> {
        let mut protocols = match self.source {
            SyncSource::Named(algorithm) => build_sync_protocols(self.network, algorithm)?,
            SyncSource::Stack(stack) => {
                assert_eq!(
                    stack.len(),
                    self.network.node_count(),
                    "protocol stack length must equal the node count"
                );
                stack
            }
        };
        if let Some(repetition) = self.robust {
            protocols = protocols
                .into_iter()
                .map(|inner| {
                    Box::new(RobustDiscovery::new(inner, repetition)) as Box<dyn SyncProtocol>
                })
                .collect();
        }
        if let Some(config) = self.continuous {
            protocols = protocols
                .into_iter()
                .enumerate()
                .map(|(i, inner)| {
                    let available = self.network.available(NodeId::new(i as u32)).to_owned();
                    ContinuousDiscovery::new(inner, available, config)
                        .map(|p| Box::new(p) as Box<dyn SyncProtocol>)
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(quiet_slots) = self.terminating {
            protocols = protocols
                .into_iter()
                .map(|inner| {
                    QuiescentTermination::new(inner, quiet_slots)
                        .map(|p| Box::new(p) as Box<dyn SyncProtocol>)
                })
                .collect::<Result<_, _>>()?;
        }
        let start_slots = self
            .starts
            .materialize(self.network.node_count(), seed.branch("starts"));
        let network = self.network;
        let dynamics = self.dynamics;
        let faults = self.faults;
        let config = self.config;
        let executor = self.engine;
        let shards = self.shards;
        let engine_seed = seed.branch("engine");
        run_with_tee(self.sink, self.perfetto, move |sink| {
            let mut engine =
                SyncEngine::new(network, protocols, start_slots, engine_seed).with_shards(shards);
            if let Some(dynamics) = dynamics {
                engine = engine.with_dynamics(dynamics);
            }
            if let Some(faults) = faults {
                engine = engine.with_faults(faults);
            }
            if let Some(sink) = sink {
                engine = engine.with_sink(sink);
            }
            match executor {
                Engine::Slotted => engine.run(config),
                Engine::Event => engine.run_event(config),
            }
        })
    }
}

/// A configured asynchronous run, built by [`Scenario::asynchronous`].
///
/// The asynchronous engine has no start-slot schedule (starts live in
/// [`AsyncRunConfig`]) and no robust/continuous wrappers (both are
/// slot-synchronous constructions).
///
/// # Examples
///
/// ```
/// use mmhew_discovery::{AsyncAlgorithm, AsyncParams, Scenario};
/// use mmhew_engine::AsyncRunConfig;
/// use mmhew_topology::NetworkBuilder;
/// use mmhew_util::SeedTree;
///
/// let net = NetworkBuilder::complete(4).universe(4).build(SeedTree::new(0))?;
/// let outcome = Scenario::asynchronous(&net, AsyncAlgorithm::FrameBased(AsyncParams::new(3)?))
///     .config(AsyncRunConfig::until_complete(100_000))
///     .run(SeedTree::new(1))?;
/// assert!(outcome.completed());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct AsyncScenario<'a> {
    network: &'a Network,
    algorithm: AsyncAlgorithm,
    config: AsyncRunConfig,
    terminating: Option<u64>,
    dynamics: Option<DynamicsSchedule>,
    faults: Option<FaultPlan>,
    sink: Option<&'a mut dyn EventSink>,
    perfetto: Option<PathBuf>,
}

impl<'a> AsyncScenario<'a> {
    /// Sets the run configuration (frame budget, clocks, starts, stop
    /// conditions). Defaults to [`AsyncRunConfig::until_complete`] with
    /// [`DEFAULT_BUDGET`] frames.
    #[must_use]
    pub fn config(mut self, config: AsyncRunConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a [`DynamicsSchedule`] (`at` interpreted as real
    /// nanoseconds, applied at frame-start boundaries).
    #[must_use]
    pub fn with_dynamics(mut self, dynamics: DynamicsSchedule) -> Self {
        self.dynamics = Some(dynamics);
        self
    }

    /// Attaches a [`FaultPlan`] (`at` interpreted as real nanoseconds;
    /// the capture effect is not modelled asynchronously).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Attaches an [`EventSink`] observing every simulation event.
    #[must_use]
    pub fn with_sink(mut self, sink: &'a mut dyn EventSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Tees the run's event stream through the Perfetto converter and
    /// writes a `.pftrace` file at `path` when the run finishes; see
    /// [`SyncScenario::with_perfetto`].
    #[must_use]
    pub fn with_perfetto<P: Into<PathBuf>>(mut self, path: P) -> Self {
        self.perfetto = Some(path.into());
        self
    }

    /// Wraps every node in a [`crate::QuiescentAsyncTermination`]
    /// detector: nodes go silent for good after `quiet_frames` frames
    /// without a new neighbor.
    #[must_use]
    pub fn terminating(mut self, quiet_frames: u64) -> Self {
        self.terminating = Some(quiet_frames);
        self
    }

    /// Builds the per-node protocol stack and runs the engine.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] if any node's available channel set is
    /// empty, or the termination threshold is zero.
    pub fn run(self, seed: SeedTree) -> Result<AsyncOutcome, ProtocolError> {
        let mut protocols = build_async_protocols(self.network, self.algorithm)?;
        if let Some(quiet_frames) = self.terminating {
            protocols = protocols
                .into_iter()
                .map(|inner| {
                    QuiescentAsyncTermination::new(inner, quiet_frames)
                        .map(|p| Box::new(p) as Box<dyn AsyncProtocol>)
                })
                .collect::<Result<_, _>>()?;
        }
        let network = self.network;
        let dynamics = self.dynamics;
        let faults = self.faults;
        let config = self.config;
        let engine_seed = seed.branch("engine");
        run_with_tee(self.sink, self.perfetto, move |sink| {
            let mut engine = AsyncEngine::new(network, protocols, config, engine_seed);
            if let Some(dynamics) = dynamics {
                engine = engine.with_dynamics(dynamics);
            }
            if let Some(faults) = faults {
                engine = engine.with_faults(faults);
            }
            if let Some(sink) = sink {
                engine = engine.with_sink(sink);
            }
            engine.run()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SyncParams;
    use crate::runner::tables_match_ground_truth;
    use mmhew_topology::NetworkBuilder;

    fn small_net() -> Network {
        NetworkBuilder::complete(4)
            .universe(4)
            .build(SeedTree::new(0))
            .expect("build")
    }

    #[test]
    fn plain_scenario_completes() {
        let net = small_net();
        let out = Scenario::sync(
            &net,
            SyncAlgorithm::Staged(SyncParams::new(4).expect("valid")),
        )
        .config(SyncRunConfig::until_complete(200_000))
        .run(SeedTree::new(1))
        .expect("run");
        assert!(out.completed());
        assert!(tables_match_ground_truth(&net, out.tables()));
    }

    #[test]
    fn wrappers_compose_robust_then_terminating() {
        // A combination the legacy matrix never offered: time-dilated
        // protocols under local quiescence detection.
        let net = small_net();
        let out = Scenario::sync(
            &net,
            SyncAlgorithm::Uniform(SyncParams::new(3).expect("valid")),
        )
        .robust(2)
        .terminating(4_000)
        .config(SyncRunConfig::until_all_terminated(400_000))
        .run(SeedTree::new(5))
        .expect("run");
        assert!(out.all_terminated(), "nodes decide to stop");
        assert!(out.completed(), "generous threshold finds all links");
        assert!(tables_match_ground_truth(&net, out.tables()));
    }

    #[test]
    fn sync_stack_matches_the_named_algorithm_byte_for_byte() {
        // A caller-built stack constructed like build_sync_protocols must
        // be indistinguishable from the named path: same seeds, same
        // draws, same outcome.
        let net = small_net();
        let params = SyncParams::new(4).expect("valid");
        let named = Scenario::sync(&net, SyncAlgorithm::Staged(params))
            .config(SyncRunConfig::until_complete(200_000))
            .run(SeedTree::new(1))
            .expect("run");
        let stack: Vec<Box<dyn SyncProtocol>> = (0..net.node_count())
            .map(|i| {
                let available = net.available(NodeId::new(i as u32)).to_owned();
                Box::new(crate::StagedDiscovery::new(available, params).expect("valid"))
                    as Box<dyn SyncProtocol>
            })
            .collect();
        let stacked = Scenario::sync_stack(&net, stack)
            .config(SyncRunConfig::until_complete(200_000))
            .run(SeedTree::new(1))
            .expect("run");
        assert_eq!(named.slots_to_complete(), stacked.slots_to_complete());
        assert_eq!(named.deliveries(), stacked.deliveries());
        assert_eq!(named.collisions(), stacked.collisions());
        assert_eq!(named.tables(), stacked.tables());
    }

    #[test]
    fn shard_count_never_changes_a_full_run() {
        // The sharded medium resolver is an execution knob: a complete
        // scenario run — protocol RNG streams, medium RNG, coverage
        // stamps, tables — is identical at every thread count.
        let net = small_net();
        let mk = |shards: usize| {
            Scenario::sync(
                &net,
                SyncAlgorithm::Uniform(SyncParams::new(3).expect("valid")),
            )
            .shards(shards)
            .config(SyncRunConfig::until_complete(200_000))
            .run(SeedTree::new(11))
            .expect("run")
        };
        let serial = mk(1);
        for shards in [0, 2, 3, 8] {
            let sharded = mk(shards);
            assert_eq!(serial.slots_to_complete(), sharded.slots_to_complete());
            assert_eq!(serial.deliveries(), sharded.deliveries());
            assert_eq!(serial.collisions(), sharded.collisions());
            assert_eq!(serial.link_coverage(), sharded.link_coverage());
            assert_eq!(serial.tables(), sharded.tables());
        }
    }

    #[test]
    #[should_panic(expected = "stack length")]
    fn mismatched_stack_length_panics() {
        let net = small_net();
        let _ = Scenario::sync_stack(&net, Vec::new()).run(SeedTree::new(1));
    }

    #[test]
    fn zero_terminating_threshold_is_an_error() {
        let net = small_net();
        let err = Scenario::sync(
            &net,
            SyncAlgorithm::Uniform(SyncParams::new(3).expect("valid")),
        )
        .terminating(0)
        .run(SeedTree::new(5))
        .expect_err("zero threshold");
        assert_eq!(err, ProtocolError::ZeroDegreeEstimate);
    }
}
