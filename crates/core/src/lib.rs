//! The paper's contribution: randomized neighbor-discovery algorithms for
//! multi-hop multi-channel heterogeneous wireless (M²HeW) networks.
//!
//! Reproduces *"Randomized Distributed Algorithms for Neighbor Discovery in
//! Multi-Hop Multi-Channel Heterogeneous Wireless Networks"* (Mittal, Zeng,
//! Venkatesan, Chandrasekaran — ICDCS 2011):
//!
//! | Paper | Here | Setting |
//! |-------|------|---------|
//! | Algorithm 1 | [`StagedDiscovery`] | synchronous, identical starts, known `Δ_est` |
//! | Algorithm 2 | [`AdaptiveDiscovery`] | synchronous, identical starts, no degree knowledge |
//! | Algorithm 3 | [`UniformDiscovery`] | synchronous, variable starts, known `Δ_est` |
//! | Algorithm 4 | [`AsyncFrameDiscovery`] | asynchronous, drifting clocks (`δ ≤ 1/7`), known `Δ_est` |
//! | §I strawman | [`baseline::PerChannelBirthday`] | per-universal-channel birthday instances |
//!
//! [`Bounds`] provides the closed-form running-time bounds of Theorems 1–3
//! and 9–10 so experiments can print prediction next to measurement, and
//! the [`Scenario`] builder wires everything to the simulation engines in
//! one composable call chain (the legacy `run_*` one-call runners remain
//! as deprecated shims).
//!
//! # Examples
//!
//! ```
//! use mmhew_discovery::{Bounds, Scenario, SyncAlgorithm, SyncParams};
//! use mmhew_engine::SyncRunConfig;
//! use mmhew_spectrum::AvailabilityModel;
//! use mmhew_topology::NetworkBuilder;
//! use mmhew_util::SeedTree;
//!
//! let net = NetworkBuilder::grid(3, 3)
//!     .universe(12)
//!     .availability(AvailabilityModel::UniformSubset { size: 6 })
//!     .build(SeedTree::new(42))?;
//! let delta_est = net.max_degree().max(1) as u64;
//! let outcome = Scenario::sync(&net, SyncAlgorithm::Staged(SyncParams::new(delta_est)?))
//!     .config(SyncRunConfig::until_complete(1_000_000))
//!     .run(SeedTree::new(7))?;
//! assert!(outcome.completed());
//! let bound = Bounds::from_network(&net, delta_est, 0.01).theorem1_slots();
//! assert!((outcome.slots_to_complete().unwrap() as f64) < bound);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod alg1_staged;
pub mod alg2_adaptive;
pub mod alg3_uniform;
pub mod alg4_async;
pub mod baseline;
pub mod bounds;
pub mod continuous;
pub mod params;
pub mod robust;
pub mod runner;
pub mod scenario;
pub mod termination;
pub mod two_hop;

pub use alg1_staged::StagedDiscovery;
pub use alg2_adaptive::{AdaptiveDiscovery, GrowthStrategy};
pub use alg3_uniform::UniformDiscovery;
pub use alg4_async::AsyncFrameDiscovery;
pub use bounds::{alg3_link_coverage_probability, Bounds};
pub use continuous::{
    build_continuous_protocols, staleness, ContinuousConfig, ContinuousDiscovery, StalenessReport,
};
pub use mmhew_engine::Engine;
pub use params::{AsyncParams, ProtocolError, SyncParams};
pub use robust::{build_robust_protocols, repetition_factor, RobustDiscovery};
#[allow(deprecated)] // compatibility re-exports: the shims stay reachable unchanged
pub use runner::{
    run_async_discovery, run_async_discovery_dynamic, run_async_discovery_dynamic_observed,
    run_async_discovery_faulted, run_async_discovery_faulted_observed,
    run_async_discovery_observed, run_async_discovery_terminating, run_continuous_discovery,
    run_sync_discovery, run_sync_discovery_dynamic, run_sync_discovery_dynamic_observed,
    run_sync_discovery_faulted, run_sync_discovery_faulted_observed, run_sync_discovery_observed,
    run_sync_discovery_robust, run_sync_discovery_terminating,
};
pub use runner::{tables_are_sound, tables_match_ground_truth, AsyncAlgorithm, SyncAlgorithm};
pub use scenario::{AsyncScenario, Scenario, SyncScenario, DEFAULT_BUDGET};
pub use termination::{QuiescentAsyncTermination, QuiescentTermination};
pub use two_hop::{two_hop_views, TwoHopView};
