//! Legacy one-call runners, now thin shims over [`crate::Scenario`].
//!
//! Each `run_*` variant below wires exactly one cell of the historical
//! engine-feature matrix. The [`Scenario`](crate::Scenario) builder
//! subsumes them all; every shim here is `#[deprecated]` and delegates
//! verbatim (same wiring, same seed branches), so existing callers keep
//! compiling and produce byte-identical outcomes and traces. The
//! `scenario_equivalence` integration tests pin that guarantee.

use crate::alg1_staged::StagedDiscovery;
use crate::alg2_adaptive::{AdaptiveDiscovery, GrowthStrategy};
use crate::alg3_uniform::UniformDiscovery;
use crate::alg4_async::AsyncFrameDiscovery;
use crate::baseline::PerChannelBirthday;
use crate::continuous::ContinuousConfig;
use crate::params::{AsyncParams, ProtocolError, SyncParams};
use crate::scenario::Scenario;
use mmhew_dynamics::DynamicsSchedule;
use mmhew_engine::{
    AsyncOutcome, AsyncProtocol, AsyncRunConfig, NeighborTable, StartSchedule, SyncOutcome,
    SyncProtocol, SyncRunConfig,
};
use mmhew_faults::FaultPlan;
use mmhew_obs::EventSink;
use mmhew_topology::{Network, NodeId};
use mmhew_util::SeedTree;
use serde::{Deserialize, Serialize};

/// Which synchronous algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SyncAlgorithm {
    /// Algorithm 1 — staged probability sweep; identical starts, known
    /// `Δ_est`.
    Staged(SyncParams),
    /// Algorithm 2 — sequentially growing degree estimate; identical
    /// starts, no knowledge.
    Adaptive,
    /// Algorithm 3 — constant probability; tolerates variable starts,
    /// known `Δ_est`.
    Uniform(SyncParams),
    /// Ablation: Algorithm 2 with the geometric-doubling estimate growth
    /// the paper rejects, dwelling a fixed number of stages per estimate.
    AdaptiveDoubling {
        /// Stages per estimate before doubling.
        dwell: u64,
    },
    /// The §I strawman baseline: per-universal-channel birthday instances,
    /// time-multiplexed round-robin over the universe.
    PerChannelBirthday {
        /// Per-active-slot transmission probability.
        tx_probability: f64,
    },
}

/// Which asynchronous algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AsyncAlgorithm {
    /// Algorithm 4 — frame-based discovery under drifting clocks.
    FrameBased(AsyncParams),
}

/// Builds per-node protocol instances and runs the slot-synchronous engine.
///
/// # Errors
///
/// Returns [`ProtocolError`] if any node's available channel set is empty
/// (the paper assumes every participating node has at least one channel).
#[deprecated(note = "use Scenario::sync(network, algorithm)")]
pub fn run_sync_discovery(
    network: &Network,
    algorithm: SyncAlgorithm,
    starts: StartSchedule,
    config: SyncRunConfig,
    seed: SeedTree,
) -> Result<SyncOutcome, ProtocolError> {
    Scenario::sync(network, algorithm)
        .starts(starts)
        .config(config)
        .run(seed)
}

/// Like [`run_sync_discovery`], but attaches `sink` to the engine so
/// every simulation event (slots, actions, channel resolutions,
/// deliveries, link coverage, phase transitions) is observable.
///
/// # Errors
///
/// Returns [`ProtocolError`] if any node's available channel set is empty.
#[deprecated(note = "use Scenario::sync(network, algorithm).with_sink(sink)")]
pub fn run_sync_discovery_observed(
    network: &Network,
    algorithm: SyncAlgorithm,
    starts: StartSchedule,
    config: SyncRunConfig,
    seed: SeedTree,
    sink: &mut dyn EventSink,
) -> Result<SyncOutcome, ProtocolError> {
    Scenario::sync(network, algorithm)
        .starts(starts)
        .config(config)
        .with_sink(sink)
        .run(seed)
}

/// Like [`run_sync_discovery`], but wraps every node in a
/// [`crate::QuiescentTermination`] detector with the given threshold, so
/// nodes decide *locally* when to stop. Pair with
/// [`SyncRunConfig::until_all_terminated`] for a deployment-faithful run.
///
/// # Errors
///
/// Returns [`ProtocolError`] for empty availability sets or a zero
/// threshold.
#[deprecated(note = "use Scenario::sync(network, algorithm).terminating(quiet_slots)")]
pub fn run_sync_discovery_terminating(
    network: &Network,
    algorithm: SyncAlgorithm,
    quiet_slots: u64,
    starts: StartSchedule,
    config: SyncRunConfig,
    seed: SeedTree,
) -> Result<SyncOutcome, ProtocolError> {
    Scenario::sync(network, algorithm)
        .terminating(quiet_slots)
        .starts(starts)
        .config(config)
        .run(seed)
}

pub(crate) fn build_sync_protocols(
    network: &Network,
    algorithm: SyncAlgorithm,
) -> Result<Vec<Box<dyn SyncProtocol>>, ProtocolError> {
    let n = network.node_count();
    let mut protocols: Vec<Box<dyn SyncProtocol>> = Vec::with_capacity(n);
    for i in 0..n {
        let available = network.available(NodeId::new(i as u32)).to_owned();
        let protocol: Box<dyn SyncProtocol> = match algorithm {
            SyncAlgorithm::Staged(params) => Box::new(StagedDiscovery::new(available, params)?),
            SyncAlgorithm::Adaptive => Box::new(AdaptiveDiscovery::new(available)?),
            SyncAlgorithm::AdaptiveDoubling { dwell } => Box::new(
                AdaptiveDiscovery::with_strategy(available, GrowthStrategy::Double { dwell })?,
            ),
            SyncAlgorithm::Uniform(params) => Box::new(UniformDiscovery::new(available, params)?),
            SyncAlgorithm::PerChannelBirthday { tx_probability } => Box::new(
                PerChannelBirthday::new(network.universe_size(), tx_probability, available)?,
            ),
        };
        protocols.push(protocol);
    }
    Ok(protocols)
}

/// Like [`run_sync_discovery`], but attaches a [`DynamicsSchedule`]
/// (churn, mobility, spectrum dynamics; `at` interpreted as slot indices)
/// to the engine. An empty schedule reproduces [`run_sync_discovery`]
/// bit for bit.
///
/// # Errors
///
/// Returns [`ProtocolError`] if any node's available channel set is empty.
#[deprecated(note = "use Scenario::sync(network, algorithm).with_dynamics(dynamics)")]
pub fn run_sync_discovery_dynamic(
    network: &Network,
    algorithm: SyncAlgorithm,
    starts: StartSchedule,
    dynamics: DynamicsSchedule,
    config: SyncRunConfig,
    seed: SeedTree,
) -> Result<SyncOutcome, ProtocolError> {
    Scenario::sync(network, algorithm)
        .starts(starts)
        .with_dynamics(dynamics)
        .config(config)
        .run(seed)
}

/// [`run_sync_discovery_dynamic`] with an attached [`EventSink`] — the
/// sink additionally sees the dynamics events (`NodeJoined`, `NodeLeft`,
/// `EdgeChanged`, `ChannelChanged`, `GroundTruthChanged`) as they are
/// applied.
///
/// # Errors
///
/// Returns [`ProtocolError`] if any node's available channel set is empty.
#[deprecated(
    note = "use Scenario::sync(network, algorithm).with_dynamics(dynamics).with_sink(sink)"
)]
pub fn run_sync_discovery_dynamic_observed(
    network: &Network,
    algorithm: SyncAlgorithm,
    starts: StartSchedule,
    dynamics: DynamicsSchedule,
    config: SyncRunConfig,
    seed: SeedTree,
    sink: &mut dyn EventSink,
) -> Result<SyncOutcome, ProtocolError> {
    Scenario::sync(network, algorithm)
        .starts(starts)
        .with_dynamics(dynamics)
        .config(config)
        .with_sink(sink)
        .run(seed)
}

/// Like [`run_sync_discovery`], but attaches a [`FaultPlan`] (per-link
/// loss, jammers, capture, crash outages) to the engine. An empty plan
/// reproduces [`run_sync_discovery`] bit for bit — outcomes, RNG streams
/// and traces.
///
/// # Errors
///
/// Returns [`ProtocolError`] if any node's available channel set is empty.
#[deprecated(note = "use Scenario::sync(network, algorithm).with_faults(faults)")]
pub fn run_sync_discovery_faulted(
    network: &Network,
    algorithm: SyncAlgorithm,
    starts: StartSchedule,
    faults: FaultPlan,
    config: SyncRunConfig,
    seed: SeedTree,
) -> Result<SyncOutcome, ProtocolError> {
    Scenario::sync(network, algorithm)
        .starts(starts)
        .with_faults(faults)
        .config(config)
        .run(seed)
}

/// [`run_sync_discovery_faulted`] with an attached [`DynamicsSchedule`]
/// and [`EventSink`]: the fully-loaded synchronous configuration. The
/// sink additionally sees fault events (`beacon_lost`, `slot_jammed`,
/// `capture_delivery`, `node_crashed`, `node_recovered`). Empty dynamics
/// and an empty plan reproduce [`run_sync_discovery_observed`] bit for
/// bit, traces included.
///
/// # Errors
///
/// Returns [`ProtocolError`] if any node's available channel set is empty.
#[allow(clippy::too_many_arguments)]
#[deprecated(
    note = "use Scenario::sync(network, algorithm).with_dynamics(dynamics).with_faults(faults).with_sink(sink)"
)]
pub fn run_sync_discovery_faulted_observed(
    network: &Network,
    algorithm: SyncAlgorithm,
    starts: StartSchedule,
    dynamics: DynamicsSchedule,
    faults: FaultPlan,
    config: SyncRunConfig,
    seed: SeedTree,
    sink: &mut dyn EventSink,
) -> Result<SyncOutcome, ProtocolError> {
    Scenario::sync(network, algorithm)
        .starts(starts)
        .with_dynamics(dynamics)
        .with_faults(faults)
        .config(config)
        .with_sink(sink)
        .run(seed)
}

/// Runs [`crate::RobustDiscovery`]-wrapped protocols under a fault plan:
/// each node's algorithm is time-dilated by `repetition` so that every
/// logical transmit/listen pairing is attempted `repetition` times
/// (see [`crate::repetition_factor`] for the budget-restoring choice).
/// Remember to inflate the slot budget in `config` by the same factor.
///
/// # Errors
///
/// Returns [`ProtocolError`] if any node's available channel set is empty.
///
/// # Panics
///
/// Panics if `repetition` is zero.
#[allow(clippy::too_many_arguments)]
#[deprecated(
    note = "use Scenario::sync(network, algorithm).robust(repetition).with_faults(faults)"
)]
pub fn run_sync_discovery_robust(
    network: &Network,
    algorithm: SyncAlgorithm,
    repetition: u64,
    starts: StartSchedule,
    faults: FaultPlan,
    config: SyncRunConfig,
    seed: SeedTree,
) -> Result<SyncOutcome, ProtocolError> {
    Scenario::sync(network, algorithm)
        .robust(repetition)
        .starts(starts)
        .with_faults(faults)
        .config(config)
        .run(seed)
}

/// Runs [`crate::ContinuousDiscovery`]-wrapped protocols under a dynamics
/// schedule: the deployment-faithful configuration for a network that
/// never stops changing. The run always exhausts its slot budget
/// (continuous discovery has no completion), so pair with
/// [`SyncRunConfig::fixed`].
///
/// # Errors
///
/// Returns [`ProtocolError`] if any node's available channel set is empty.
#[deprecated(
    note = "use Scenario::sync(network, algorithm).continuous(config).with_dynamics(dynamics)"
)]
pub fn run_continuous_discovery(
    network: &Network,
    algorithm: SyncAlgorithm,
    continuous: ContinuousConfig,
    starts: StartSchedule,
    dynamics: DynamicsSchedule,
    config: SyncRunConfig,
    seed: SeedTree,
) -> Result<SyncOutcome, ProtocolError> {
    Scenario::sync(network, algorithm)
        .continuous(continuous)
        .starts(starts)
        .with_dynamics(dynamics)
        .config(config)
        .run(seed)
}

/// Builds per-node protocol instances and runs the asynchronous engine.
///
/// # Errors
///
/// Returns [`ProtocolError`] if any node's available channel set is empty.
#[deprecated(note = "use Scenario::asynchronous(network, algorithm)")]
pub fn run_async_discovery(
    network: &Network,
    algorithm: AsyncAlgorithm,
    config: AsyncRunConfig,
    seed: SeedTree,
) -> Result<AsyncOutcome, ProtocolError> {
    Scenario::asynchronous(network, algorithm)
        .config(config)
        .run(seed)
}

/// Like [`run_async_discovery`], but attaches a [`DynamicsSchedule`]
/// (`at` interpreted as real nanoseconds, applied at frame-start
/// boundaries). An empty schedule reproduces [`run_async_discovery`] bit
/// for bit.
///
/// # Errors
///
/// Returns [`ProtocolError`] if any node's available channel set is empty.
#[deprecated(note = "use Scenario::asynchronous(network, algorithm).with_dynamics(dynamics)")]
pub fn run_async_discovery_dynamic(
    network: &Network,
    algorithm: AsyncAlgorithm,
    dynamics: DynamicsSchedule,
    config: AsyncRunConfig,
    seed: SeedTree,
) -> Result<AsyncOutcome, ProtocolError> {
    Scenario::asynchronous(network, algorithm)
        .with_dynamics(dynamics)
        .config(config)
        .run(seed)
}

/// [`run_async_discovery_dynamic`] with an attached [`EventSink`].
///
/// # Errors
///
/// Returns [`ProtocolError`] if any node's available channel set is empty.
#[deprecated(
    note = "use Scenario::asynchronous(network, algorithm).with_dynamics(dynamics).with_sink(sink)"
)]
pub fn run_async_discovery_dynamic_observed(
    network: &Network,
    algorithm: AsyncAlgorithm,
    dynamics: DynamicsSchedule,
    config: AsyncRunConfig,
    seed: SeedTree,
    sink: &mut dyn EventSink,
) -> Result<AsyncOutcome, ProtocolError> {
    Scenario::asynchronous(network, algorithm)
        .with_dynamics(dynamics)
        .config(config)
        .with_sink(sink)
        .run(seed)
}

/// Like [`run_async_discovery`], but attaches `sink` to the engine so
/// every simulation event (frame boundaries with local-clock timestamps,
/// actions, deliveries, link coverage, phase transitions) is observable.
///
/// # Errors
///
/// Returns [`ProtocolError`] if any node's available channel set is empty.
#[deprecated(note = "use Scenario::asynchronous(network, algorithm).with_sink(sink)")]
pub fn run_async_discovery_observed(
    network: &Network,
    algorithm: AsyncAlgorithm,
    config: AsyncRunConfig,
    seed: SeedTree,
    sink: &mut dyn EventSink,
) -> Result<AsyncOutcome, ProtocolError> {
    Scenario::asynchronous(network, algorithm)
        .config(config)
        .with_sink(sink)
        .run(seed)
}

/// Like [`run_async_discovery`], but attaches a [`FaultPlan`] (`at`
/// interpreted as real nanoseconds; the capture effect is not modelled
/// asynchronously). An empty plan reproduces [`run_async_discovery`] bit
/// for bit.
///
/// # Errors
///
/// Returns [`ProtocolError`] if any node's available channel set is empty.
#[deprecated(note = "use Scenario::asynchronous(network, algorithm).with_faults(faults)")]
pub fn run_async_discovery_faulted(
    network: &Network,
    algorithm: AsyncAlgorithm,
    faults: FaultPlan,
    config: AsyncRunConfig,
    seed: SeedTree,
) -> Result<AsyncOutcome, ProtocolError> {
    Scenario::asynchronous(network, algorithm)
        .with_faults(faults)
        .config(config)
        .run(seed)
}

/// [`run_async_discovery_faulted`] with an attached [`DynamicsSchedule`]
/// and [`EventSink`]. Empty dynamics and an empty plan reproduce
/// [`run_async_discovery_observed`] bit for bit, traces included.
///
/// # Errors
///
/// Returns [`ProtocolError`] if any node's available channel set is empty.
#[deprecated(
    note = "use Scenario::asynchronous(network, algorithm).with_dynamics(dynamics).with_faults(faults).with_sink(sink)"
)]
pub fn run_async_discovery_faulted_observed(
    network: &Network,
    algorithm: AsyncAlgorithm,
    dynamics: DynamicsSchedule,
    faults: FaultPlan,
    config: AsyncRunConfig,
    seed: SeedTree,
    sink: &mut dyn EventSink,
) -> Result<AsyncOutcome, ProtocolError> {
    Scenario::asynchronous(network, algorithm)
        .with_dynamics(dynamics)
        .with_faults(faults)
        .config(config)
        .with_sink(sink)
        .run(seed)
}

pub(crate) fn build_async_protocols(
    network: &Network,
    algorithm: AsyncAlgorithm,
) -> Result<Vec<Box<dyn AsyncProtocol>>, ProtocolError> {
    let n = network.node_count();
    let mut protocols: Vec<Box<dyn AsyncProtocol>> = Vec::with_capacity(n);
    for i in 0..n {
        let available = network.available(NodeId::new(i as u32)).to_owned();
        let protocol: Box<dyn AsyncProtocol> = match algorithm {
            AsyncAlgorithm::FrameBased(params) => {
                Box::new(AsyncFrameDiscovery::new(available, params)?)
            }
        };
        protocols.push(protocol);
    }
    Ok(protocols)
}

/// Like [`run_async_discovery`], but wraps every node in a
/// [`crate::QuiescentAsyncTermination`] detector: nodes stop transmitting
/// and listening for good after `quiet_frames` frames without a new
/// neighbor, and the run ends when every node has gone silent (or the
/// frame budget is exhausted).
///
/// # Errors
///
/// Returns [`ProtocolError`] for empty availability sets or a zero
/// threshold.
#[deprecated(note = "use Scenario::asynchronous(network, algorithm).terminating(quiet_frames)")]
pub fn run_async_discovery_terminating(
    network: &Network,
    algorithm: AsyncAlgorithm,
    quiet_frames: u64,
    config: AsyncRunConfig,
    seed: SeedTree,
) -> Result<AsyncOutcome, ProtocolError> {
    Scenario::asynchronous(network, algorithm)
        .terminating(quiet_frames)
        .config(config)
        .run(seed)
}

/// True if every node's table equals the network's ground truth exactly
/// (all true neighbors present with the correct common channel sets, no
/// false entries).
pub fn tables_match_ground_truth(network: &Network, tables: &[NeighborTable]) -> bool {
    tables.len() == network.node_count()
        && tables.iter().enumerate().all(|(i, table)| {
            table.to_sorted_vec() == network.expected_discovery(NodeId::new(i as u32))
        })
}

/// True if no node's table contains a false discovery: every recorded
/// neighbor is a true neighbor and the recorded common set never exceeds
/// the true intersection. Holds for any partial run of a correct protocol.
pub fn tables_are_sound(network: &Network, tables: &[NeighborTable]) -> bool {
    tables.iter().enumerate().all(|(i, table)| {
        let u = NodeId::new(i as u32);
        let expected = network.expected_discovery(u);
        table.iter().all(|(v, recorded)| {
            expected
                .iter()
                .find(|(ev, _)| *ev == v)
                .is_some_and(|(_, truth)| recorded.is_subset(truth))
        })
    })
}

#[cfg(test)]
mod tests {
    // These tests deliberately exercise the deprecated shims: they are the
    // compatibility contract the Scenario migration must not break.
    #![allow(deprecated)]

    use super::*;
    use mmhew_engine::{AsyncStartSchedule, ClockConfig};
    use mmhew_spectrum::{AvailabilityModel, ChannelSet};
    use mmhew_time::{DriftBound, DriftModel, LocalDuration, RealDuration};
    use mmhew_topology::NetworkBuilder;

    fn small_net() -> Network {
        NetworkBuilder::complete(4)
            .universe(4)
            .build(SeedTree::new(0))
            .expect("build")
    }

    fn hetero_net() -> Network {
        NetworkBuilder::grid(3, 3)
            .universe(10)
            .availability(AvailabilityModel::UniformSubset { size: 5 })
            .build(SeedTree::new(11))
            .expect("build")
    }

    #[test]
    fn staged_completes_and_matches_ground_truth() {
        let net = small_net();
        let out = run_sync_discovery(
            &net,
            SyncAlgorithm::Staged(SyncParams::new(4).expect("valid")),
            StartSchedule::Identical,
            SyncRunConfig::until_complete(200_000),
            SeedTree::new(1),
        )
        .expect("run");
        assert!(out.completed());
        assert!(tables_match_ground_truth(&net, out.tables()));
    }

    #[test]
    fn adaptive_completes_without_knowledge() {
        let net = small_net();
        let out = run_sync_discovery(
            &net,
            SyncAlgorithm::Adaptive,
            StartSchedule::Identical,
            SyncRunConfig::until_complete(200_000),
            SeedTree::new(2),
        )
        .expect("run");
        assert!(out.completed());
        assert!(tables_match_ground_truth(&net, out.tables()));
    }

    #[test]
    fn uniform_completes_with_staggered_starts() {
        let net = hetero_net();
        let out = run_sync_discovery(
            &net,
            SyncAlgorithm::Uniform(SyncParams::new(net.max_degree().max(1) as u64).expect("valid")),
            StartSchedule::Staggered { window: 500 },
            SyncRunConfig::until_complete(500_000),
            SeedTree::new(3),
        )
        .expect("run");
        assert!(out.completed());
        assert!(tables_match_ground_truth(&net, out.tables()));
        assert!(out.latest_start() > 0);
    }

    #[test]
    fn baseline_completes_on_identical_starts() {
        let net = small_net();
        let out = run_sync_discovery(
            &net,
            SyncAlgorithm::PerChannelBirthday {
                tx_probability: 0.5,
            },
            StartSchedule::Identical,
            SyncRunConfig::until_complete(200_000),
            SeedTree::new(4),
        )
        .expect("run");
        assert!(out.completed());
        assert!(tables_match_ground_truth(&net, out.tables()));
    }

    #[test]
    fn async_completes_under_paper_drift() {
        let net = hetero_net();
        let config = AsyncRunConfig::until_complete(500_000)
            .with_frame_len(LocalDuration::from_nanos(3_000))
            .with_clocks(ClockConfig {
                drift: DriftModel::RandomPiecewise {
                    bound: DriftBound::PAPER,
                    segment: RealDuration::from_micros(50),
                },
                offset_window: LocalDuration::from_micros(30),
            })
            .with_starts(AsyncStartSchedule::Staggered {
                window: RealDuration::from_micros(20),
            });
        let out = run_async_discovery(
            &net,
            AsyncAlgorithm::FrameBased(
                AsyncParams::new(net.max_degree().max(1) as u64).expect("valid"),
            ),
            config,
            SeedTree::new(5),
        )
        .expect("run");
        assert!(out.completed());
        assert!(tables_match_ground_truth(&net, out.tables()));
    }

    #[test]
    fn runs_are_deterministic() {
        let net = small_net();
        let run = |seed: u64| {
            run_sync_discovery(
                &net,
                SyncAlgorithm::Staged(SyncParams::new(4).expect("valid")),
                StartSchedule::Identical,
                SyncRunConfig::until_complete(100_000),
                SeedTree::new(seed),
            )
            .expect("run")
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.completion_slot(), b.completion_slot());
        assert_eq!(a.link_coverage(), b.link_coverage());
        let c = run(8);
        assert_ne!(a.completion_slot(), c.completion_slot());
    }

    #[test]
    fn empty_availability_is_an_error() {
        let net = NetworkBuilder::line(2)
            .universe(2)
            .availability(AvailabilityModel::Explicit(vec![
                ChannelSet::full(2),
                ChannelSet::new(),
            ]))
            .build(SeedTree::new(0))
            .expect("build");
        let err = run_sync_discovery(
            &net,
            SyncAlgorithm::Adaptive,
            StartSchedule::Identical,
            SyncRunConfig::until_complete(10),
            SeedTree::new(0),
        )
        .expect_err("empty set");
        assert_eq!(err, ProtocolError::EmptyChannelSet);
    }

    #[test]
    fn soundness_holds_mid_run() {
        let net = hetero_net();
        let out = run_sync_discovery(
            &net,
            SyncAlgorithm::Staged(SyncParams::new(8).expect("valid")),
            StartSchedule::Identical,
            SyncRunConfig::fixed(50), // far too short to complete reliably
            SeedTree::new(9),
        )
        .expect("run");
        assert!(tables_are_sound(&net, out.tables()));
    }

    #[test]
    fn adaptive_doubling_completes() {
        let net = small_net();
        let out = run_sync_discovery(
            &net,
            SyncAlgorithm::AdaptiveDoubling { dwell: 4 },
            StartSchedule::Identical,
            SyncRunConfig::until_complete(500_000),
            SeedTree::new(21),
        )
        .expect("run");
        assert!(out.completed());
        assert!(tables_match_ground_truth(&net, out.tables()));
    }

    #[test]
    fn terminating_run_stops_locally_and_finds_everyone() {
        let net = small_net();
        let delta = net.max_degree().max(1) as u64;
        // A generous quiescence threshold: all links found, then everyone
        // shuts down on their own.
        let out = run_sync_discovery_terminating(
            &net,
            SyncAlgorithm::Uniform(SyncParams::new(delta).expect("positive")),
            2_000,
            StartSchedule::Identical,
            SyncRunConfig::until_all_terminated(200_000),
            SeedTree::new(22),
        )
        .expect("run");
        assert!(out.all_terminated(), "nodes must decide to stop");
        assert!(out.terminated_slot().is_some());
        assert!(out.completed(), "generous threshold finds all links");
        assert!(tables_match_ground_truth(&net, out.tables()));
        // Termination necessarily happens after completion.
        assert!(
            out.terminated_slot().expect("terminated") >= out.completion_slot().expect("completed")
        );
    }

    #[test]
    fn tiny_quiescence_threshold_terminates_early_and_may_miss_links() {
        let net = NetworkBuilder::grid(3, 3)
            .universe(8)
            .availability(AvailabilityModel::UniformSubset { size: 4 })
            .build(SeedTree::new(30))
            .expect("build");
        let delta = net.max_degree().max(1) as u64;
        let out = run_sync_discovery_terminating(
            &net,
            SyncAlgorithm::Uniform(SyncParams::new(delta).expect("positive")),
            2, // absurdly impatient
            StartSchedule::Identical,
            SyncRunConfig::until_all_terminated(200_000),
            SeedTree::new(23),
        )
        .expect("run");
        assert!(out.all_terminated());
        assert!(
            out.terminated_slot().expect("terminated") < 200,
            "impatient nodes stop almost immediately"
        );
        // Results stay sound even when incomplete.
        assert!(tables_are_sound(&net, out.tables()));
    }

    #[test]
    fn async_terminating_run_goes_silent_after_discovery() {
        let net = small_net();
        let delta = net.max_degree().max(1) as u64;
        let mut config = AsyncRunConfig::until_complete(100_000);
        config.stop_when_complete = false; // nodes decide on their own
        let out = run_async_discovery_terminating(
            &net,
            AsyncAlgorithm::FrameBased(AsyncParams::new(delta).expect("positive")),
            2_000,
            config,
            SeedTree::new(31),
        )
        .expect("run");
        assert!(out.completed(), "generous threshold finds all links");
        assert!(tables_match_ground_truth(&net, out.tables()));
        // The run ended because nodes stopped, not because the budget ran
        // out: every node executed far fewer frames than the budget.
        assert!(
            out.frames_executed().iter().all(|&f| f < 100_000),
            "nodes should have silenced themselves: {:?}",
            out.frames_executed()
        );
    }

    #[test]
    fn observed_run_matches_unobserved_run() {
        // Attaching a sink must not perturb the simulation: same seed,
        // same outcome, and the sink's view reconciles with the outcome.
        let net = small_net();
        let alg = SyncAlgorithm::Staged(SyncParams::new(4).expect("valid"));
        let config = SyncRunConfig::until_complete(100_000);
        let plain = run_sync_discovery(
            &net,
            alg,
            StartSchedule::Identical,
            config,
            SeedTree::new(7),
        )
        .expect("run");
        let mut sink = mmhew_obs::MetricsSink::new();
        let observed = run_sync_discovery_observed(
            &net,
            alg,
            StartSchedule::Identical,
            config,
            SeedTree::new(7),
            &mut sink,
        )
        .expect("run");
        assert_eq!(plain.completion_slot(), observed.completion_slot());
        assert_eq!(plain.link_coverage(), observed.link_coverage());
        assert_eq!(sink.deliveries(), observed.deliveries());
        assert_eq!(sink.slots(), observed.slots_executed());
    }

    #[test]
    fn dynamic_run_with_empty_schedule_matches_static() {
        let net = small_net();
        let alg = SyncAlgorithm::Staged(SyncParams::new(4).expect("valid"));
        let config = SyncRunConfig::until_complete(100_000);
        let plain = run_sync_discovery(
            &net,
            alg,
            StartSchedule::Identical,
            config,
            SeedTree::new(7),
        )
        .expect("run");
        let frozen = run_sync_discovery_dynamic(
            &net,
            alg,
            StartSchedule::Identical,
            DynamicsSchedule::empty(),
            config,
            SeedTree::new(7),
        )
        .expect("run");
        assert_eq!(plain.completion_slot(), frozen.completion_slot());
        assert_eq!(plain.link_coverage(), frozen.link_coverage());
        assert_eq!(plain.deliveries(), frozen.deliveries());
    }

    #[test]
    fn continuous_discovery_evicts_a_departed_neighbor() {
        use crate::continuous::{staleness, ContinuousConfig};
        use mmhew_dynamics::TimedEvent;
        use mmhew_topology::NetworkEvent;

        let net = NetworkBuilder::complete(3)
            .universe(2)
            .build(SeedTree::new(0))
            .expect("build");
        // Node 2 departs at slot 5000; with a 1000-slot stale timeout, its
        // ghost entries must be gone well before the 12000-slot budget.
        let dynamics = DynamicsSchedule::new(vec![TimedEvent::new(
            5_000,
            NetworkEvent::NodeLeave {
                node: NodeId::new(2),
            },
        )]);
        let out = run_continuous_discovery(
            &net,
            SyncAlgorithm::Uniform(SyncParams::new(2).expect("valid")),
            ContinuousConfig::new(16, 1_000).expect("valid"),
            StartSchedule::Identical,
            dynamics,
            SyncRunConfig::fixed(12_000),
            SeedTree::new(13),
        )
        .expect("run");
        let mut shrunk = net.clone();
        shrunk
            .apply(&NetworkEvent::NodeLeave {
                node: NodeId::new(2),
            })
            .expect("apply");
        let report = staleness(&shrunk, out.tables());
        assert_eq!(report.ghosts, 0, "departed neighbor still tabled");
        assert_eq!(report.missing, 0, "survivors should know each other");
    }

    #[test]
    fn faulted_run_with_empty_plan_matches_plain() {
        let net = small_net();
        let alg = SyncAlgorithm::Staged(SyncParams::new(4).expect("valid"));
        let config = SyncRunConfig::until_complete(100_000);
        let plain = run_sync_discovery(
            &net,
            alg,
            StartSchedule::Identical,
            config,
            SeedTree::new(7),
        )
        .expect("run");
        let faulted = run_sync_discovery_faulted(
            &net,
            alg,
            StartSchedule::Identical,
            FaultPlan::new(),
            config,
            SeedTree::new(7),
        )
        .expect("run");
        assert_eq!(plain.completion_slot(), faulted.completion_slot());
        assert_eq!(plain.link_coverage(), faulted.link_coverage());
        assert_eq!(plain.deliveries(), faulted.deliveries());
        assert_eq!(faulted.beacon_losses(), 0);
    }

    #[test]
    fn robust_with_unit_repetition_matches_plain() {
        // r = 1 makes the wrapper a pure pass-through: same actions, same
        // RNG stream, same outcome.
        let net = small_net();
        let alg = SyncAlgorithm::Staged(SyncParams::new(4).expect("valid"));
        let config = SyncRunConfig::until_complete(100_000);
        let plain = run_sync_discovery(
            &net,
            alg,
            StartSchedule::Identical,
            config,
            SeedTree::new(7),
        )
        .expect("run");
        let robust = run_sync_discovery_robust(
            &net,
            alg,
            1,
            StartSchedule::Identical,
            FaultPlan::new(),
            config,
            SeedTree::new(7),
        )
        .expect("run");
        assert_eq!(plain.completion_slot(), robust.completion_slot());
        assert_eq!(plain.link_coverage(), robust.link_coverage());
    }

    #[test]
    fn robust_discovery_completes_under_heavy_loss() {
        use crate::robust::repetition_factor;
        use mmhew_faults::LinkLossModel;

        let net = small_net();
        let alg = SyncAlgorithm::Staged(SyncParams::new(4).expect("valid"));
        let p_loss = 0.6;
        let r = repetition_factor(net.node_count(), 0.1, p_loss);
        let plan = FaultPlan::new().with_default_loss(LinkLossModel::Bernoulli {
            delivery_probability: 1.0 - p_loss,
        });
        let out = run_sync_discovery_robust(
            &net,
            alg,
            r,
            StartSchedule::Identical,
            plan,
            SyncRunConfig::until_complete(r * 200_000),
            SeedTree::new(41),
        )
        .expect("run");
        assert!(out.completed(), "repetition should overcome 60% loss");
        assert!(tables_match_ground_truth(&net, out.tables()));
        assert!(out.beacon_losses() > 0, "the channel really was lossy");
    }

    #[test]
    fn ground_truth_mismatch_detected() {
        let net = small_net();
        let mut tables: Vec<NeighborTable> = (0..4).map(|_| NeighborTable::new()).collect();
        assert!(!tables_match_ground_truth(&net, &tables));
        // A false discovery is unsound.
        tables[0].record(NodeId::new(1), ChannelSet::full(16));
        assert!(!tables_are_sound(&net, &tables));
    }
}
