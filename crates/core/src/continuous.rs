//! Continuous neighbor discovery for dynamic networks.
//!
//! The paper's algorithms target a *static* network: run long enough,
//! tables converge to the ground truth, done. Under churn, mobility, or
//! primary-user spectrum dynamics the ground truth keeps moving, so a node
//! must (a) keep announcing itself after initial discovery so late joiners
//! hear it, and (b) age out neighbors it has stopped hearing from.
//!
//! [`ContinuousDiscovery`] wraps any inner [`SyncProtocol`] with exactly
//! those two behaviours: it delegates to the inner algorithm until the
//! inner algorithm terminates (or forever, for the paper's non-terminating
//! algorithms the wrapper's steady state never activates), then settles
//! into a sparse re-announce pattern — transmit with probability
//! `1/reannounce_period`, otherwise listen — while evicting table entries
//! older than `stale_timeout` slots. Experiment E22 measures the resulting
//! staleness of the discovered sets as a function of churn rate.

use crate::params::ProtocolError;
use crate::runner::{build_sync_protocols, SyncAlgorithm};
use mmhew_engine::{NeighborTable, SyncProtocol};
use mmhew_obs::ProtocolPhase;
use mmhew_radio::{Beacon, SlotAction};
use mmhew_spectrum::{ChannelId, ChannelSet};
use mmhew_topology::{Network, NodeId};
use mmhew_util::Xoshiro256StarStar;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Parameters of [`ContinuousDiscovery`].
///
/// # Examples
///
/// ```
/// use mmhew_discovery::ContinuousConfig;
///
/// let cfg = ContinuousConfig::new(64, 4_096)?;
/// assert_eq!(cfg.reannounce_period(), 64);
/// assert_eq!(cfg.stale_timeout(), 4_096);
/// # Ok::<(), mmhew_discovery::ProtocolError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ContinuousConfig {
    reannounce_period: u64,
    stale_timeout: u64,
}

impl ContinuousConfig {
    /// Creates a configuration: in steady state a node transmits with
    /// probability `1/reannounce_period` per slot, and evicts neighbors
    /// not heard for more than `stale_timeout` slots.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::ZeroContinuousParameter`] if either period
    /// is zero. A `stale_timeout` below the re-announce period would evict
    /// faster than neighbors can re-announce, but that is a measurable
    /// (bad) operating point, not a constructor error.
    pub fn new(reannounce_period: u64, stale_timeout: u64) -> Result<Self, ProtocolError> {
        if reannounce_period == 0 || stale_timeout == 0 {
            return Err(ProtocolError::ZeroContinuousParameter);
        }
        Ok(Self {
            reannounce_period,
            stale_timeout,
        })
    }

    /// Mean slots between steady-state re-announcements.
    pub fn reannounce_period(&self) -> u64 {
        self.reannounce_period
    }

    /// Slots without hearing a neighbor after which it is evicted.
    pub fn stale_timeout(&self) -> u64 {
        self.stale_timeout
    }
}

/// Wraps a discovery algorithm with periodic re-announcing and
/// stale-neighbor eviction; never terminates.
///
/// The wrapper keeps its *own* neighbor table: a beacon overwrites the
/// neighbor's common channel set (fresh spectrum knowledge supersedes
/// stale), and entries not refreshed within the timeout are dropped. The
/// inner algorithm's table keeps accumulating unaffected — it is the
/// wrapper's table that tracks the living network.
pub struct ContinuousDiscovery {
    inner: Box<dyn SyncProtocol>,
    available: ChannelSet,
    config: ContinuousConfig,
    reannounce_probability: f64,
    table: NeighborTable,
    last_heard: BTreeMap<NodeId, u64>,
    slot: u64,
}

impl ContinuousDiscovery {
    /// Wraps `inner` for a node whose available channel set is
    /// `available`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::EmptyChannelSet`] if `available` is empty.
    pub fn new(
        inner: Box<dyn SyncProtocol>,
        available: ChannelSet,
        config: ContinuousConfig,
    ) -> Result<Self, ProtocolError> {
        if available.is_empty() {
            return Err(ProtocolError::EmptyChannelSet);
        }
        Ok(Self {
            inner,
            available,
            config,
            reannounce_probability: 1.0 / config.reannounce_period as f64,
            table: NeighborTable::new(),
            last_heard: BTreeMap::new(),
            slot: 0,
        })
    }

    /// The wrapper's configuration.
    pub fn config(&self) -> &ContinuousConfig {
        &self.config
    }

    /// Slot of the most recent beacon from `neighbor`, if still tabled.
    pub fn last_heard(&self, neighbor: NodeId) -> Option<u64> {
        self.last_heard.get(&neighbor).copied()
    }

    fn evict_stale(&mut self, now: u64) {
        let timeout = self.config.stale_timeout;
        let stale: Vec<NodeId> = self
            .last_heard
            .iter()
            .filter(|(_, &heard)| now.saturating_sub(heard) > timeout)
            .map(|(&v, _)| v)
            .collect();
        for v in stale {
            self.last_heard.remove(&v);
            self.table.remove(v);
        }
    }
}

impl SyncProtocol for ContinuousDiscovery {
    fn on_slot(&mut self, active_slot: u64, rng: &mut Xoshiro256StarStar) -> SlotAction {
        self.slot = active_slot;
        self.evict_stale(active_slot);
        if !self.inner.is_terminated() {
            return self.inner.on_slot(active_slot, rng);
        }
        // Steady state: sparse re-announce, otherwise keep listening so
        // joining neighbors' announcements are heard.
        let channel = self
            .available
            .choose_uniform(rng)
            .expect("validated non-empty");
        if rng.gen_bool(self.reannounce_probability) {
            SlotAction::Transmit { channel }
        } else {
            SlotAction::Listen { channel }
        }
    }

    fn on_beacon(&mut self, beacon: &Beacon, channel: ChannelId) {
        self.inner.on_beacon(beacon, channel);
        self.table.replace(
            beacon.sender(),
            beacon.available().intersection(&self.available),
        );
        self.last_heard.insert(beacon.sender(), self.slot);
    }

    fn table(&self) -> &NeighborTable {
        &self.table
    }

    /// Continuous discovery never stops.
    fn is_terminated(&self) -> bool {
        false
    }

    fn phase(&self) -> Option<ProtocolPhase> {
        self.inner.phase()
    }
}

/// Builds one [`ContinuousDiscovery`]-wrapped protocol per node, with
/// `algorithm` as the inner discovery phase. Pair with
/// [`mmhew_engine::SyncEngine::with_dynamics`] (or
/// [`crate::SyncScenario::continuous`]) for a churn study.
///
/// # Errors
///
/// Returns [`ProtocolError`] if any node's available channel set is empty.
pub fn build_continuous_protocols(
    network: &Network,
    algorithm: SyncAlgorithm,
    config: ContinuousConfig,
) -> Result<Vec<Box<dyn SyncProtocol>>, ProtocolError> {
    build_sync_protocols(network, algorithm)?
        .into_iter()
        .enumerate()
        .map(|(i, inner)| {
            let available = network.available(NodeId::new(i as u32)).to_owned();
            ContinuousDiscovery::new(inner, available, config)
                .map(|p| Box::new(p) as Box<dyn SyncProtocol>)
        })
        .collect()
}

/// How far a set of neighbor tables has drifted from a (possibly mutated)
/// network's ground truth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StalenessReport {
    /// True directed links whose receiver has no table entry for the
    /// transmitter (not yet discovered, or wrongly evicted).
    pub missing: usize,
    /// Table entries naming a node that is *not* currently a neighbor
    /// (departed, moved away, or lost its last common channel).
    pub ghosts: usize,
}

impl StalenessReport {
    /// Total staleness (missing + ghosts).
    pub fn total(&self) -> usize {
        self.missing + self.ghosts
    }
}

/// Compares per-node tables against `network`'s current ground truth.
/// Channel-set mismatches on correctly-known neighbors are not counted —
/// E22 tracks *membership* staleness.
pub fn staleness(network: &Network, tables: &[NeighborTable]) -> StalenessReport {
    let mut report = StalenessReport::default();
    for (i, table) in tables.iter().enumerate() {
        let u = NodeId::new(i as u32);
        let expected = network.expected_discovery(u);
        report.missing += expected.iter().filter(|(v, _)| !table.contains(*v)).count();
        report.ghosts += table
            .iter()
            .filter(|(v, _)| !expected.iter().any(|(ev, _)| ev == v))
            .count();
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg3_uniform::UniformDiscovery;
    use crate::params::SyncParams;
    use crate::termination::QuiescentTermination;
    use mmhew_topology::NetworkBuilder;
    use mmhew_util::SeedTree;

    fn wrapped(reannounce: u64, timeout: u64) -> ContinuousDiscovery {
        let own = ChannelSet::full(2);
        let inner =
            UniformDiscovery::new(own.clone(), SyncParams::new(2).expect("valid")).expect("valid");
        // A hair-trigger quiescence detector so the steady state is
        // reachable quickly in tests.
        let inner = QuiescentTermination::new(Box::new(inner), 2).expect("valid");
        ContinuousDiscovery::new(
            Box::new(inner),
            own,
            ContinuousConfig::new(reannounce, timeout).expect("valid"),
        )
        .expect("valid")
    }

    #[test]
    fn config_validation() {
        assert_eq!(
            ContinuousConfig::new(0, 10),
            Err(ProtocolError::ZeroContinuousParameter)
        );
        assert_eq!(
            ContinuousConfig::new(10, 0),
            Err(ProtocolError::ZeroContinuousParameter)
        );
        assert!(ContinuousConfig::new(1, 1).is_ok());
    }

    #[test]
    fn never_terminates_and_keeps_announcing() {
        let mut p = wrapped(4, 1_000_000);
        let mut rng = SeedTree::new(3).rng();
        let mut transmitted_after_termination = 0u32;
        for slot in 0..2_000 {
            let action = p.on_slot(slot, &mut rng);
            if slot > 100 && action.is_transmit() {
                transmitted_after_termination += 1;
            }
            assert!(!p.is_terminated());
        }
        // The inner wrapper went quiet at slot 2; from then on the steady
        // state re-announces at rate 1/4.
        let rate = f64::from(transmitted_after_termination) / 1_900.0;
        assert!((rate - 0.25).abs() < 0.05, "re-announce rate {rate}");
    }

    #[test]
    fn stale_neighbors_are_evicted_and_rediscovery_restores() {
        let mut p = wrapped(2, 10);
        let mut rng = SeedTree::new(4).rng();
        let beacon = Beacon::new(NodeId::new(7), ChannelSet::full(2));
        p.on_slot(0, &mut rng);
        p.on_beacon(&beacon, ChannelId::new(0));
        assert!(p.table().contains(NodeId::new(7)));
        assert_eq!(p.last_heard(NodeId::new(7)), Some(0));
        // Within the timeout the entry survives...
        p.on_slot(10, &mut rng);
        assert!(p.table().contains(NodeId::new(7)));
        // ...one slot past it, the entry is gone.
        p.on_slot(11, &mut rng);
        assert!(!p.table().contains(NodeId::new(7)));
        assert_eq!(p.last_heard(NodeId::new(7)), None);
        // Hearing the neighbor again restores it with a fresh stamp.
        p.on_beacon(&beacon, ChannelId::new(0));
        assert_eq!(p.last_heard(NodeId::new(7)), Some(11));
    }

    #[test]
    fn fresh_beacon_overwrites_channel_set() {
        let mut p = wrapped(2, 100);
        let mut rng = SeedTree::new(5).rng();
        p.on_slot(0, &mut rng);
        p.on_beacon(
            &Beacon::new(NodeId::new(1), ChannelSet::full(2)),
            ChannelId::new(0),
        );
        assert_eq!(p.table().get(NodeId::new(1)), Some(&ChannelSet::full(2)));
        // The neighbor lost channel 1 to a primary user; its next beacon
        // carries the shrunken set, which replaces (not unions) the entry.
        p.on_beacon(
            &Beacon::new(NodeId::new(1), [0u16].into_iter().collect()),
            ChannelId::new(0),
        );
        assert_eq!(
            p.table().get(NodeId::new(1)),
            Some(&[0u16].into_iter().collect())
        );
    }

    #[test]
    fn staleness_counts_missing_and_ghosts() {
        let net = NetworkBuilder::line(3)
            .universe(2)
            .build(SeedTree::new(0))
            .expect("build");
        let mut tables: Vec<NeighborTable> = (0..3).map(|_| NeighborTable::new()).collect();
        // Nothing discovered: every directed link is missing.
        let r = staleness(&net, &tables);
        assert_eq!(r.missing, 4);
        assert_eq!(r.ghosts, 0);
        // Node 0 knows its true neighbor 1 plus a ghost (departed node 2).
        tables[0].record(NodeId::new(1), ChannelSet::full(2));
        tables[0].record(NodeId::new(2), ChannelSet::full(2));
        let r = staleness(&net, &tables);
        assert_eq!(r.missing, 3);
        assert_eq!(r.ghosts, 1);
        assert_eq!(r.total(), 4);
    }

    #[test]
    fn build_continuous_protocols_wraps_every_node() {
        let net = NetworkBuilder::complete(4)
            .universe(4)
            .build(SeedTree::new(0))
            .expect("build");
        let protocols = build_continuous_protocols(
            &net,
            SyncAlgorithm::Uniform(SyncParams::new(4).expect("valid")),
            ContinuousConfig::new(32, 1_000).expect("valid"),
        )
        .expect("build");
        assert_eq!(protocols.len(), 4);
        assert!(protocols.iter().all(|p| !p.is_terminated()));
    }
}
