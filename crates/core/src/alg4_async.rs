//! Algorithm 4: asynchronous discovery with drifting, unsynchronized
//! clocks and a known upper bound on the maximum node degree.
//!
//! Each node divides its local time into frames of three slots. At the
//! start of each frame it picks a channel uniformly from `A(u)` and, with
//! probability `min(1/2, |A(u)|/(3Δ_est))`, transmits its beacon in *each*
//! slot of the frame; otherwise it listens for the whole frame. Repeating
//! the beacon three times guarantees that whenever a transmitter's frame is
//! *aligned* with a listener's frame (one full slot inside it — Lemma 7
//! shows this happens within two frames whenever `δ ≤ 1/7`), a complete
//! copy of the beacon falls inside the listening window.
//!
//! Theorem 9: discovery completes w.p. ≥ 1−ε once every node has executed
//! `(48·max(2S, 3Δ_est)/ρ)·ln(N²/ε)` full frames after the last start.

use crate::params::{tx_probability, AsyncParams, ProtocolError};
use mmhew_engine::{AsyncProtocol, NeighborTable};
use mmhew_radio::{Beacon, FrameAction};
use mmhew_spectrum::{ChannelId, ChannelSet};
use mmhew_util::Xoshiro256StarStar;
use rand::Rng;

/// Per-node state of Algorithm 4.
///
/// # Examples
///
/// ```
/// use mmhew_discovery::{AsyncFrameDiscovery, AsyncParams};
///
/// let proto = AsyncFrameDiscovery::new(
///     [0u16, 1, 2].into_iter().collect(),
///     AsyncParams::new(4)?,
/// )?;
/// assert!((proto.probability() - 3.0 / 12.0).abs() < 1e-12);
/// # Ok::<(), mmhew_discovery::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AsyncFrameDiscovery {
    available: ChannelSet,
    probability: f64,
    table: NeighborTable,
}

impl AsyncFrameDiscovery {
    /// Creates the protocol for a node with available channel set
    /// `available`.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::EmptyChannelSet`] if `available` is empty.
    pub fn new(available: ChannelSet, params: AsyncParams) -> Result<Self, ProtocolError> {
        if available.is_empty() {
            return Err(ProtocolError::EmptyChannelSet);
        }
        let probability = tx_probability(available.view(), 3.0 * params.delta_est() as f64);
        Ok(Self {
            available,
            probability,
            table: NeighborTable::new(),
        })
    }

    /// The per-frame transmission probability
    /// `min(1/2, |A(u)|/(3Δ_est))`.
    pub fn probability(&self) -> f64 {
        self.probability
    }
}

impl AsyncProtocol for AsyncFrameDiscovery {
    fn on_frame(&mut self, _frame: u64, rng: &mut Xoshiro256StarStar) -> FrameAction {
        let channel = self
            .available
            .choose_uniform(rng)
            .expect("validated non-empty");
        if rng.gen_bool(self.probability) {
            FrameAction::Transmit { channel }
        } else {
            FrameAction::Listen { channel }
        }
    }

    fn on_beacon(&mut self, beacon: &Beacon, _channel: ChannelId) {
        self.table.record(
            beacon.sender(),
            beacon.available().intersection(&self.available),
        );
    }

    fn table(&self) -> &NeighborTable {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_util::SeedTree;

    fn proto(channels: u16, delta_est: u64) -> AsyncFrameDiscovery {
        AsyncFrameDiscovery::new(
            ChannelSet::full(channels),
            AsyncParams::new(delta_est).expect("valid"),
        )
        .expect("valid")
    }

    #[test]
    fn probability_formula_uses_three_delta() {
        assert_eq!(proto(3, 1).probability(), 0.5); // min(1/2, 3/3)
        assert_eq!(proto(3, 4).probability(), 0.25); // 3/12
        assert_eq!(proto(1, 10).probability(), 1.0 / 30.0);
    }

    #[test]
    fn empty_set_rejected() {
        assert!(matches!(
            AsyncFrameDiscovery::new(ChannelSet::new(), AsyncParams::new(1).expect("valid")),
            Err(ProtocolError::EmptyChannelSet)
        ));
    }

    #[test]
    fn empirical_frame_tx_rate() {
        let mut p = proto(2, 4); // p = 2/12 = 1/6
        let mut rng = SeedTree::new(0).rng();
        let trials = 60_000u64;
        let tx = (0..trials)
            .filter(|&f| p.on_frame(f, &mut rng).is_transmit())
            .count();
        let rate = tx as f64 / trials as f64;
        assert!((rate - 1.0 / 6.0).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn channel_uniformity() {
        let mut p = proto(4, 2);
        let mut rng = SeedTree::new(1).rng();
        let mut counts = [0u32; 4];
        for f in 0..40_000 {
            counts[p.on_frame(f, &mut rng).channel().index() as usize] += 1;
        }
        for &c in &counts {
            let fr = c as f64 / 40_000.0;
            assert!((fr - 0.25).abs() < 0.02, "frequency {fr}");
        }
    }

    #[test]
    fn beacon_recording() {
        let mut p = proto(2, 1);
        let beacon = Beacon::new(
            mmhew_topology::NodeId::new(6),
            [1u16, 5].into_iter().collect(),
        );
        p.on_beacon(&beacon, ChannelId::new(1));
        assert_eq!(
            p.table().get(mmhew_topology::NodeId::new(6)),
            Some(&[1u16].into_iter().collect())
        );
    }
}
