//! Closed-form running-time bounds from the paper's theorems.
//!
//! Each experiment in the harness prints the theorem's prediction next to
//! the measured completion time, so the *shape* of the dependence (on `N`,
//! `S`, `Δ`, `Δ_est`, `ρ`, `ε`, `δ`) can be checked directly.

use crate::params::tx_probability;
use mmhew_topology::{Link, Network};
use serde::{Deserialize, Serialize};

/// The paper's complexity parameters for one concrete network plus the
/// algorithm inputs `Δ_est` and `ε`.
///
/// # Examples
///
/// ```
/// use mmhew_discovery::Bounds;
/// use mmhew_topology::NetworkBuilder;
/// use mmhew_util::SeedTree;
///
/// let net = NetworkBuilder::complete(8).universe(4).build(SeedTree::new(0))?;
/// let b = Bounds::from_network(&net, 8, 0.01);
/// assert!(b.theorem1_slots() > 0.0);
/// assert!(b.theorem3_slots() > 0.0);
/// assert!(b.theorem9_frames() > b.theorem3_slots() / 3.0);
/// # Ok::<(), mmhew_topology::BuildError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bounds {
    /// Number of nodes `N`.
    pub n: usize,
    /// Largest available channel set size `S`.
    pub s: usize,
    /// Maximum per-channel degree `Δ`.
    pub delta: usize,
    /// Minimum link span-ratio `ρ`.
    pub rho: f64,
    /// The degree estimate `Δ_est` handed to the algorithms.
    pub delta_est: u64,
    /// Target failure probability `ε`.
    pub epsilon: f64,
}

impl Bounds {
    /// Extracts parameters from a network.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1)`.
    pub fn from_network(network: &Network, delta_est: u64, epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "failure probability must be in (0,1)"
        );
        Self {
            n: network.node_count(),
            s: network.s_max(),
            delta: network.max_degree(),
            rho: network.rho(),
            delta_est,
            epsilon,
        }
    }

    /// `ln(N²/ε)` — the common success-amplification factor.
    pub fn ln_n2_over_eps(&self) -> f64 {
        ((self.n as f64).powi(2) / self.epsilon).ln().max(1.0)
    }

    /// Stages required by Algorithm 1's analysis:
    /// `M = (16·max(S, Δ)/ρ) · ln(N²/ε)` (Eq. 7 context).
    pub fn theorem1_stages(&self) -> f64 {
        16.0 * (self.s.max(self.delta).max(1) as f64) / self.rho * self.ln_n2_over_eps()
    }

    /// Theorem 1 slot bound: stages × `⌈log₂ Δ_est⌉` slots per stage.
    pub fn theorem1_slots(&self) -> f64 {
        self.theorem1_stages() * crate::params::ceil_log2(self.delta_est).max(1) as f64
    }

    /// Theorem 2: Algorithm 2 needs `Δ + M` stages with growing lengths;
    /// the exact slot count is `Σ_{d=2}^{Δ+M+1} ⌈log₂ d⌉`, which is
    /// `O(M log M)`.
    pub fn theorem2_slots(&self) -> f64 {
        let stages = (self.delta as f64 + self.theorem1_stages()).ceil() as u64;
        (2..=stages + 1)
            .map(|d| crate::params::ceil_log2(d).max(1) as f64)
            .sum()
    }

    /// Theorem 3 slot bound for Algorithm 3 (variable start times):
    /// `(8·max(2S, Δ_est)/ρ) · ln(N²/ε)` slots after `T_s`.
    ///
    /// (Per-slot coverage probability is at least
    /// `ρ / (8·max(2S, Δ_est))` from Eqs. 9, 4 and 5.)
    pub fn theorem3_slots(&self) -> f64 {
        let denom = (2 * self.s).max(self.delta_est as usize).max(1) as f64;
        8.0 * denom / self.rho * self.ln_n2_over_eps()
    }

    /// Theorem 9 frame bound for Algorithm 4: every node must execute
    /// `(48·max(2S, 3Δ_est)/ρ) · ln(N²/ε)` full frames after `T_s`.
    pub fn theorem9_frames(&self) -> f64 {
        let denom = (2 * self.s).max(3 * self.delta_est as usize).max(1) as f64;
        48.0 * denom / self.rho * self.ln_n2_over_eps()
    }

    /// Theorem 10 real-time bound: `(frames + 1) · L/(1−δ)` nanoseconds,
    /// where `frames` is [`Bounds::theorem9_frames`].
    ///
    /// # Panics
    ///
    /// Panics if `delta_drift ≥ 1`.
    pub fn theorem10_realtime_ns(&self, frame_len_ns: u64, delta_drift: f64) -> f64 {
        assert!((0.0..1.0).contains(&delta_drift), "drift must be in [0,1)");
        (self.theorem9_frames() + 1.0) * frame_len_ns as f64 / (1.0 - delta_drift)
    }
}

/// The *exact* per-slot probability that Algorithm 3 covers `link` —
/// the quantity Theorem 3's analysis lower-bounds by `ρ/(8·max(2S,Δ_est))`.
///
/// Per slot, coverage on channel `c` requires (the mutually independent
/// events of §III-A1): the transmitter picks `c` and transmits, the
/// receiver picks `c` and listens, and every other neighbor of the
/// receiver on `c` stays silent on `c`. Summed over the link's span
/// (disjoint events — the receiver tunes one channel):
///
/// `P = Σ_{c ∈ span} (p_v/|A(v)|) · ((1−p_u)/|A(u)|) · Π_w (1 − p_w/|A(w)|)`
///
/// with `p_x = min(1/2, |A(x)|/Δ_est)`. The expected first-coverage slot
/// is `(1−P)/P` (geometric); experiment E19 validates the simulator
/// against this formula link by link.
pub fn alg3_link_coverage_probability(network: &Network, link: Link, delta_est: u64) -> f64 {
    let p_tx =
        |node: mmhew_topology::NodeId| tx_probability(network.available(node), delta_est as f64);
    let v = link.from;
    let u = link.to;
    let a_v = network.available(v).len() as f64;
    let a_u = network.available(u).len() as f64;
    let mut total = 0.0;
    for c in network.span(v, u).iter() {
        let transmit = p_tx(v) / a_v;
        let listen = (1.0 - p_tx(u)) / a_u;
        let mut clear = 1.0;
        for &w in network.neighbors_on(u, c) {
            if w != v {
                clear *= 1.0 - p_tx(w) / network.available(w).len() as f64;
            }
        }
        total += transmit * listen * clear;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds(n: usize, s: usize, delta: usize, rho: f64, dest: u64, eps: f64) -> Bounds {
        Bounds {
            n,
            s,
            delta,
            rho,
            delta_est: dest,
            epsilon: eps,
        }
    }

    #[test]
    fn monotone_in_n() {
        let a = bounds(8, 4, 3, 1.0, 4, 0.01);
        let b = bounds(64, 4, 3, 1.0, 4, 0.01);
        assert!(b.theorem1_slots() > a.theorem1_slots());
        // Logarithmic: 8x nodes should much less than double the bound.
        assert!(b.theorem1_slots() < 2.0 * a.theorem1_slots());
    }

    #[test]
    fn inverse_in_rho() {
        let a = bounds(16, 4, 3, 1.0, 4, 0.01);
        let b = bounds(16, 4, 3, 0.25, 4, 0.01);
        assert!((b.theorem1_slots() / a.theorem1_slots() - 4.0).abs() < 1e-9);
        assert!((b.theorem3_slots() / a.theorem3_slots() - 4.0).abs() < 1e-9);
        assert!((b.theorem9_frames() / a.theorem9_frames() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn theorem1_log_in_delta_est() {
        let a = bounds(16, 4, 3, 1.0, 4, 0.01);
        let b = bounds(16, 4, 3, 1.0, 256, 0.01);
        // log2(256)/log2(4) = 8/2 = 4.
        assert!((b.theorem1_slots() / a.theorem1_slots() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn theorem3_linear_in_delta_est_once_dominant() {
        let a = bounds(16, 4, 3, 1.0, 16, 0.01);
        let b = bounds(16, 4, 3, 1.0, 64, 0.01);
        assert!((b.theorem3_slots() / a.theorem3_slots() - 4.0).abs() < 1e-9);
        // Below 2S, Δ_est does not matter.
        let c = bounds(16, 40, 3, 1.0, 2, 0.01);
        let d = bounds(16, 40, 3, 1.0, 50, 0.01);
        assert_eq!(c.theorem3_slots(), d.theorem3_slots());
    }

    #[test]
    fn theorem2_superlinear_in_stage_count() {
        let a = bounds(16, 4, 3, 1.0, 4, 0.01);
        // Slot count exceeds stage count (each late stage has >1 slot).
        assert!(a.theorem2_slots() > a.theorem1_stages());
    }

    #[test]
    fn theorem10_diverges_with_drift() {
        let b = bounds(8, 4, 2, 1.0, 2, 0.1);
        let ideal = b.theorem10_realtime_ns(3_000, 0.0);
        let drifted = b.theorem10_realtime_ns(3_000, 1.0 / 7.0);
        assert!(drifted > ideal);
        assert!((drifted / ideal - 7.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "failure probability")]
    fn invalid_epsilon_panics() {
        let net = mmhew_topology::NetworkBuilder::line(2)
            .universe(1)
            .build(mmhew_util::SeedTree::new(0))
            .expect("build");
        let _ = Bounds::from_network(&net, 1, 0.0);
    }

    #[test]
    fn exact_coverage_probability_two_nodes() {
        // Two nodes, one shared channel, Δ_est = 2: p = min(1/2, 1/2) = 1/2
        // for |A| = 1. P = (1/2)·(1/2) = 1/4 per slot.
        let net = mmhew_topology::NetworkBuilder::line(2)
            .universe(1)
            .build(mmhew_util::SeedTree::new(0))
            .expect("build");
        let link = net.links()[0];
        let p = alg3_link_coverage_probability(&net, link, 2);
        assert!((p - 0.25).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn exact_coverage_probability_with_interferer() {
        // Line 0-1-2 on one channel, Δ_est = 2, |A| = 1 ⇒ p = 1/2 each.
        // Link (0→1): tx 1/2 · listen 1/2 · node 2 silent 1/2 = 1/8.
        let net = mmhew_topology::NetworkBuilder::line(3)
            .universe(1)
            .build(mmhew_util::SeedTree::new(0))
            .expect("build");
        let link = Link {
            from: mmhew_topology::NodeId::new(0),
            to: mmhew_topology::NodeId::new(1),
        };
        let p = alg3_link_coverage_probability(&net, link, 2);
        assert!((p - 0.125).abs() < 1e-12, "got {p}");
        // The edge link (1→0) has no interferer: 1/4.
        let edge = Link {
            from: mmhew_topology::NodeId::new(1),
            to: mmhew_topology::NodeId::new(0),
        };
        let pe = alg3_link_coverage_probability(&net, edge, 2);
        assert!((pe - 0.25).abs() < 1e-12, "got {pe}");
    }

    #[test]
    fn exact_coverage_probability_respects_theorem3_lower_bound() {
        let net = mmhew_topology::NetworkBuilder::complete(5)
            .universe(6)
            .availability(mmhew_spectrum::AvailabilityModel::UniformSubset { size: 3 })
            .build(mmhew_util::SeedTree::new(3))
            .expect("build");
        let delta_est = net.max_degree().max(1) as u64;
        let s = net.s_max();
        let lower = net.rho() / (8.0 * ((2 * s).max(delta_est as usize)) as f64);
        for &link in net.links() {
            let p = alg3_link_coverage_probability(&net, link, delta_est);
            assert!(
                p >= lower - 1e-12,
                "exact {p} below the analysis bound {lower} for {link}"
            );
            assert!(p <= 1.0);
        }
    }

    #[test]
    fn epsilon_dependence_is_logarithmic() {
        let a = bounds(16, 4, 3, 1.0, 4, 0.1);
        let b = bounds(16, 4, 3, 1.0, 4, 0.001);
        assert!(b.theorem1_slots() > a.theorem1_slots());
        assert!(b.theorem1_slots() < 3.0 * a.theorem1_slots());
    }
}
