//! The `Scenario` builder must be a drop-in replacement for the legacy
//! 16-runner matrix: for every engine × wrapper combination, the builder
//! chain and the deprecated `run_*` shim must produce byte-identical
//! outcomes (via the deterministic JSON serializer) and byte-identical
//! JSONL traces at the same seed. These tests are the migration's safety
//! net — any RNG-consumption or wiring drift between the two paths shows
//! up here as a byte diff, not a statistical anomaly.
// The shim side of every comparison is deprecated on purpose.
#![allow(deprecated)]

use mmhew_discovery::{
    run_async_discovery, run_async_discovery_dynamic_observed, run_async_discovery_faulted,
    run_async_discovery_observed, run_async_discovery_terminating, run_sync_discovery,
    run_sync_discovery_dynamic_observed, run_sync_discovery_faulted_observed,
    run_sync_discovery_observed, run_sync_discovery_robust, run_sync_discovery_terminating,
    AsyncAlgorithm, AsyncParams, Scenario, SyncAlgorithm, SyncParams,
};
use mmhew_dynamics::{DynamicsSchedule, TimedEvent};
use mmhew_engine::{AsyncRunConfig, StartSchedule, SyncRunConfig};
use mmhew_faults::{FaultPlan, LinkLossModel};
use mmhew_obs::JsonlTraceSink;
use mmhew_spectrum::{AvailabilityModel, ChannelId};
use mmhew_topology::{Network, NetworkBuilder, NetworkEvent, NodeId};
use mmhew_util::SeedTree;

fn sync_net(seed: SeedTree) -> Network {
    NetworkBuilder::grid(3, 3)
        .universe(6)
        .availability(AvailabilityModel::UniformSubset { size: 3 })
        .build(seed)
        .expect("valid network")
}

fn full_net(seed: SeedTree) -> Network {
    // Full availability so channel-churn events below always refer to a
    // channel every node owns.
    NetworkBuilder::complete(5)
        .universe(4)
        .build(seed)
        .expect("valid network")
}

fn sync_alg(net: &Network) -> SyncAlgorithm {
    let delta = net.max_degree().max(1) as u64;
    SyncAlgorithm::Staged(SyncParams::new(delta).expect("positive"))
}

fn async_alg(net: &Network) -> AsyncAlgorithm {
    let delta = net.max_degree().max(1) as u64;
    AsyncAlgorithm::FrameBased(AsyncParams::new(delta).expect("positive"))
}

fn json<T: serde::Serialize>(value: &T) -> String {
    mmhew_obs::json::to_string(value).expect("outcome serializes")
}

fn channel_churn(at: [u64; 2]) -> DynamicsSchedule {
    DynamicsSchedule::new(vec![
        TimedEvent::new(
            at[0],
            NetworkEvent::ChannelLost {
                node: NodeId::new(1),
                channel: ChannelId::new(0),
            },
        ),
        TimedEvent::new(
            at[1],
            NetworkEvent::ChannelGained {
                node: NodeId::new(1),
                channel: ChannelId::new(0),
            },
        ),
    ])
}

fn lossy() -> FaultPlan {
    FaultPlan::new().with_default_loss(LinkLossModel::Bernoulli {
        delivery_probability: 0.9,
    })
}

// --- synchronous engine --------------------------------------------------

#[test]
fn sync_plain_matches_legacy_runner() {
    let seed = SeedTree::new(101);
    let net = sync_net(seed.branch("net"));
    let alg = sync_alg(&net);
    let config = SyncRunConfig::until_complete(200_000);

    let legacy = run_sync_discovery(
        &net,
        alg,
        StartSchedule::Staggered { window: 64 },
        config,
        seed.branch("run"),
    )
    .expect("run");
    let scenario = Scenario::sync(&net, alg)
        .starts(StartSchedule::Staggered { window: 64 })
        .config(config)
        .run(seed.branch("run"))
        .expect("run");
    assert_eq!(json(&legacy), json(&scenario));
    assert!(legacy.completed(), "comparison must exercise a full run");
}

#[test]
fn sync_observed_matches_legacy_runner_traces_included() {
    let seed = SeedTree::new(102);
    let net = sync_net(seed.branch("net"));
    let alg = sync_alg(&net);
    let config = SyncRunConfig::until_complete(100_000);

    let mut legacy_sink = JsonlTraceSink::new(Vec::new());
    let legacy = run_sync_discovery_observed(
        &net,
        alg,
        StartSchedule::Identical,
        config,
        seed.branch("run"),
        &mut legacy_sink,
    )
    .expect("run");
    let mut scenario_sink = JsonlTraceSink::new(Vec::new());
    let scenario = Scenario::sync(&net, alg)
        .with_sink(&mut scenario_sink)
        .config(config)
        .run(seed.branch("run"))
        .expect("run");

    assert_eq!(json(&legacy), json(&scenario));
    let legacy_trace = legacy_sink.finish().expect("no io error");
    let scenario_trace = scenario_sink.finish().expect("no io error");
    assert!(!legacy_trace.is_empty(), "trace captured no events");
    assert_eq!(legacy_trace, scenario_trace);
}

#[test]
fn sync_dynamic_matches_legacy_runner_traces_included() {
    let seed = SeedTree::new(103);
    let net = full_net(seed.branch("net"));
    let alg = sync_alg(&net);
    let config = SyncRunConfig::until_complete(200_000);
    let dynamics = channel_churn([50, 120]);

    let mut legacy_sink = JsonlTraceSink::new(Vec::new());
    let legacy = run_sync_discovery_dynamic_observed(
        &net,
        alg,
        StartSchedule::Identical,
        dynamics.clone(),
        config,
        seed.branch("run"),
        &mut legacy_sink,
    )
    .expect("run");
    let mut scenario_sink = JsonlTraceSink::new(Vec::new());
    let scenario = Scenario::sync(&net, alg)
        .with_dynamics(dynamics)
        .with_sink(&mut scenario_sink)
        .config(config)
        .run(seed.branch("run"))
        .expect("run");

    assert_eq!(json(&legacy), json(&scenario));
    assert_eq!(
        legacy_sink.finish().expect("no io error"),
        scenario_sink.finish().expect("no io error")
    );
}

#[test]
fn sync_faulted_matches_legacy_runner_traces_included() {
    let seed = SeedTree::new(104);
    let net = sync_net(seed.branch("net"));
    let alg = sync_alg(&net);
    let config = SyncRunConfig::until_complete(400_000);

    let mut legacy_sink = JsonlTraceSink::new(Vec::new());
    let legacy = run_sync_discovery_faulted_observed(
        &net,
        alg,
        StartSchedule::Identical,
        lossy(),
        config,
        seed.branch("run"),
        &mut legacy_sink,
    )
    .expect("run");
    let mut scenario_sink = JsonlTraceSink::new(Vec::new());
    let scenario = Scenario::sync(&net, alg)
        .with_faults(lossy())
        .with_sink(&mut scenario_sink)
        .config(config)
        .run(seed.branch("run"))
        .expect("run");

    assert_eq!(json(&legacy), json(&scenario));
    assert_eq!(
        legacy_sink.finish().expect("no io error"),
        scenario_sink.finish().expect("no io error")
    );
}

#[test]
fn sync_robust_matches_legacy_runner() {
    let seed = SeedTree::new(105);
    let net = sync_net(seed.branch("net"));
    let alg = sync_alg(&net);
    let config = SyncRunConfig::until_complete(800_000);

    let legacy = run_sync_discovery_robust(
        &net,
        alg,
        2,
        StartSchedule::Identical,
        lossy(),
        config,
        seed.branch("run"),
    )
    .expect("run");
    let scenario = Scenario::sync(&net, alg)
        .robust(2)
        .with_faults(lossy())
        .config(config)
        .run(seed.branch("run"))
        .expect("run");
    assert_eq!(json(&legacy), json(&scenario));
}

#[test]
fn sync_terminating_matches_legacy_runner() {
    let seed = SeedTree::new(106);
    let net = sync_net(seed.branch("net"));
    let alg = sync_alg(&net);
    let config = SyncRunConfig::until_all_terminated(500_000);

    let legacy = run_sync_discovery_terminating(
        &net,
        alg,
        200,
        StartSchedule::Identical,
        config,
        seed.branch("run"),
    )
    .expect("run");
    let scenario = Scenario::sync(&net, alg)
        .terminating(200)
        .config(config)
        .run(seed.branch("run"))
        .expect("run");
    assert_eq!(json(&legacy), json(&scenario));
    assert!(legacy.all_terminated(), "detector must actually fire");
}

// --- asynchronous engine -------------------------------------------------

#[test]
fn async_plain_matches_legacy_runner() {
    let seed = SeedTree::new(201);
    let net = sync_net(seed.branch("net"));
    let alg = async_alg(&net);
    let config = AsyncRunConfig::until_complete(200_000);

    let legacy = run_async_discovery(&net, alg, config.clone(), seed.branch("run")).expect("run");
    let scenario = Scenario::asynchronous(&net, alg)
        .config(config)
        .run(seed.branch("run"))
        .expect("run");
    assert_eq!(json(&legacy), json(&scenario));
    assert!(
        legacy.completion_time().is_some(),
        "comparison must exercise a full run"
    );
}

#[test]
fn async_observed_matches_legacy_runner_traces_included() {
    let seed = SeedTree::new(202);
    let net = sync_net(seed.branch("net"));
    let alg = async_alg(&net);
    let config = AsyncRunConfig::until_complete(100_000);

    let mut legacy_sink = JsonlTraceSink::new(Vec::new());
    let legacy = run_async_discovery_observed(
        &net,
        alg,
        config.clone(),
        seed.branch("run"),
        &mut legacy_sink,
    )
    .expect("run");
    let mut scenario_sink = JsonlTraceSink::new(Vec::new());
    let scenario = Scenario::asynchronous(&net, alg)
        .with_sink(&mut scenario_sink)
        .config(config)
        .run(seed.branch("run"))
        .expect("run");

    assert_eq!(json(&legacy), json(&scenario));
    let legacy_trace = legacy_sink.finish().expect("no io error");
    let scenario_trace = scenario_sink.finish().expect("no io error");
    assert!(!legacy_trace.is_empty(), "trace captured no events");
    assert_eq!(legacy_trace, scenario_trace);
}

#[test]
fn async_dynamic_matches_legacy_runner_traces_included() {
    let seed = SeedTree::new(203);
    let net = full_net(seed.branch("net"));
    let alg = async_alg(&net);
    let config = AsyncRunConfig::until_complete(200_000);
    // `at` is real nanoseconds for the asynchronous engine.
    let dynamics = channel_churn([30_000, 90_000]);

    let mut legacy_sink = JsonlTraceSink::new(Vec::new());
    let legacy = run_async_discovery_dynamic_observed(
        &net,
        alg,
        dynamics.clone(),
        config.clone(),
        seed.branch("run"),
        &mut legacy_sink,
    )
    .expect("run");
    let mut scenario_sink = JsonlTraceSink::new(Vec::new());
    let scenario = Scenario::asynchronous(&net, alg)
        .with_dynamics(dynamics)
        .with_sink(&mut scenario_sink)
        .config(config)
        .run(seed.branch("run"))
        .expect("run");

    assert_eq!(json(&legacy), json(&scenario));
    assert_eq!(
        legacy_sink.finish().expect("no io error"),
        scenario_sink.finish().expect("no io error")
    );
}

#[test]
fn async_faulted_matches_legacy_runner() {
    let seed = SeedTree::new(204);
    let net = sync_net(seed.branch("net"));
    let alg = async_alg(&net);
    let config = AsyncRunConfig::until_complete(400_000);

    let legacy =
        run_async_discovery_faulted(&net, alg, lossy(), config.clone(), seed.branch("run"))
            .expect("run");
    let scenario = Scenario::asynchronous(&net, alg)
        .with_faults(lossy())
        .config(config)
        .run(seed.branch("run"))
        .expect("run");
    assert_eq!(json(&legacy), json(&scenario));
}

#[test]
fn async_terminating_matches_legacy_runner() {
    let seed = SeedTree::new(205);
    let net = sync_net(seed.branch("net"));
    let alg = async_alg(&net);
    let config = AsyncRunConfig::until_complete(50_000);

    let legacy = run_async_discovery_terminating(&net, alg, 30, config.clone(), seed.branch("run"))
        .expect("run");
    let scenario = Scenario::asynchronous(&net, alg)
        .terminating(30)
        .config(config)
        .run(seed.branch("run"))
        .expect("run");
    assert_eq!(json(&legacy), json(&scenario));
}
