//! The `Scenario` builder must be a drop-in replacement for the legacy
//! 16-runner matrix: for every engine × wrapper combination, the builder
//! chain and the deprecated `run_*` shim must produce byte-identical
//! outcomes (via the deterministic JSON serializer) and byte-identical
//! JSONL traces at the same seed. These tests are the migration's safety
//! net — any RNG-consumption or wiring drift between the two paths shows
//! up here as a byte diff, not a statistical anomaly.
//!
//! The second half holds `Scenario::engine(Engine::Event)` — the
//! dead-air-skipping event executor — to the same standard against the
//! slotted default, across the full wrapper matrix and two RNG-sensitive
//! seeds per cell.
// The shim side of every comparison is deprecated on purpose.
#![allow(deprecated)]

use mmhew_discovery::{
    run_async_discovery, run_async_discovery_dynamic_observed, run_async_discovery_faulted,
    run_async_discovery_observed, run_async_discovery_terminating, run_sync_discovery,
    run_sync_discovery_dynamic_observed, run_sync_discovery_faulted_observed,
    run_sync_discovery_observed, run_sync_discovery_robust, run_sync_discovery_terminating,
    AsyncAlgorithm, AsyncParams, ContinuousConfig, Engine, Scenario, SyncAlgorithm, SyncParams,
};
use mmhew_dynamics::{DynamicsSchedule, TimedEvent};
use mmhew_engine::{AsyncRunConfig, StartSchedule, SyncRunConfig};
use mmhew_faults::{FaultPlan, LinkLossModel};
use mmhew_obs::JsonlTraceSink;
use mmhew_spectrum::{AvailabilityModel, ChannelId};
use mmhew_topology::{Network, NetworkBuilder, NetworkEvent, NodeId};
use mmhew_util::SeedTree;

fn sync_net(seed: SeedTree) -> Network {
    NetworkBuilder::grid(3, 3)
        .universe(6)
        .availability(AvailabilityModel::UniformSubset { size: 3 })
        .build(seed)
        .expect("valid network")
}

fn full_net(seed: SeedTree) -> Network {
    // Full availability so channel-churn events below always refer to a
    // channel every node owns.
    NetworkBuilder::complete(5)
        .universe(4)
        .build(seed)
        .expect("valid network")
}

fn sync_alg(net: &Network) -> SyncAlgorithm {
    let delta = net.max_degree().max(1) as u64;
    SyncAlgorithm::Staged(SyncParams::new(delta).expect("positive"))
}

fn async_alg(net: &Network) -> AsyncAlgorithm {
    let delta = net.max_degree().max(1) as u64;
    AsyncAlgorithm::FrameBased(AsyncParams::new(delta).expect("positive"))
}

fn json<T: serde::Serialize>(value: &T) -> String {
    mmhew_obs::json::to_string(value).expect("outcome serializes")
}

fn channel_churn(at: [u64; 2]) -> DynamicsSchedule {
    DynamicsSchedule::new(vec![
        TimedEvent::new(
            at[0],
            NetworkEvent::ChannelLost {
                node: NodeId::new(1),
                channel: ChannelId::new(0),
            },
        ),
        TimedEvent::new(
            at[1],
            NetworkEvent::ChannelGained {
                node: NodeId::new(1),
                channel: ChannelId::new(0),
            },
        ),
    ])
}

fn lossy() -> FaultPlan {
    FaultPlan::new().with_default_loss(LinkLossModel::Bernoulli {
        delivery_probability: 0.9,
    })
}

// --- synchronous engine --------------------------------------------------

#[test]
fn sync_plain_matches_legacy_runner() {
    let seed = SeedTree::new(101);
    let net = sync_net(seed.branch("net"));
    let alg = sync_alg(&net);
    let config = SyncRunConfig::until_complete(200_000);

    let legacy = run_sync_discovery(
        &net,
        alg,
        StartSchedule::Staggered { window: 64 },
        config,
        seed.branch("run"),
    )
    .expect("run");
    let scenario = Scenario::sync(&net, alg)
        .starts(StartSchedule::Staggered { window: 64 })
        .config(config)
        .run(seed.branch("run"))
        .expect("run");
    assert_eq!(json(&legacy), json(&scenario));
    assert!(legacy.completed(), "comparison must exercise a full run");
}

#[test]
fn sync_observed_matches_legacy_runner_traces_included() {
    let seed = SeedTree::new(102);
    let net = sync_net(seed.branch("net"));
    let alg = sync_alg(&net);
    let config = SyncRunConfig::until_complete(100_000);

    let mut legacy_sink = JsonlTraceSink::new(Vec::new());
    let legacy = run_sync_discovery_observed(
        &net,
        alg,
        StartSchedule::Identical,
        config,
        seed.branch("run"),
        &mut legacy_sink,
    )
    .expect("run");
    let mut scenario_sink = JsonlTraceSink::new(Vec::new());
    let scenario = Scenario::sync(&net, alg)
        .with_sink(&mut scenario_sink)
        .config(config)
        .run(seed.branch("run"))
        .expect("run");

    assert_eq!(json(&legacy), json(&scenario));
    let legacy_trace = legacy_sink.finish().expect("no io error");
    let scenario_trace = scenario_sink.finish().expect("no io error");
    assert!(!legacy_trace.is_empty(), "trace captured no events");
    assert_eq!(legacy_trace, scenario_trace);
}

#[test]
fn sync_dynamic_matches_legacy_runner_traces_included() {
    let seed = SeedTree::new(103);
    let net = full_net(seed.branch("net"));
    let alg = sync_alg(&net);
    let config = SyncRunConfig::until_complete(200_000);
    let dynamics = channel_churn([50, 120]);

    let mut legacy_sink = JsonlTraceSink::new(Vec::new());
    let legacy = run_sync_discovery_dynamic_observed(
        &net,
        alg,
        StartSchedule::Identical,
        dynamics.clone(),
        config,
        seed.branch("run"),
        &mut legacy_sink,
    )
    .expect("run");
    let mut scenario_sink = JsonlTraceSink::new(Vec::new());
    let scenario = Scenario::sync(&net, alg)
        .with_dynamics(dynamics)
        .with_sink(&mut scenario_sink)
        .config(config)
        .run(seed.branch("run"))
        .expect("run");

    assert_eq!(json(&legacy), json(&scenario));
    assert_eq!(
        legacy_sink.finish().expect("no io error"),
        scenario_sink.finish().expect("no io error")
    );
}

#[test]
fn sync_faulted_matches_legacy_runner_traces_included() {
    let seed = SeedTree::new(104);
    let net = sync_net(seed.branch("net"));
    let alg = sync_alg(&net);
    let config = SyncRunConfig::until_complete(400_000);

    let mut legacy_sink = JsonlTraceSink::new(Vec::new());
    let legacy = run_sync_discovery_faulted_observed(
        &net,
        alg,
        StartSchedule::Identical,
        lossy(),
        config,
        seed.branch("run"),
        &mut legacy_sink,
    )
    .expect("run");
    let mut scenario_sink = JsonlTraceSink::new(Vec::new());
    let scenario = Scenario::sync(&net, alg)
        .with_faults(lossy())
        .with_sink(&mut scenario_sink)
        .config(config)
        .run(seed.branch("run"))
        .expect("run");

    assert_eq!(json(&legacy), json(&scenario));
    assert_eq!(
        legacy_sink.finish().expect("no io error"),
        scenario_sink.finish().expect("no io error")
    );
}

#[test]
fn sync_robust_matches_legacy_runner() {
    let seed = SeedTree::new(105);
    let net = sync_net(seed.branch("net"));
    let alg = sync_alg(&net);
    let config = SyncRunConfig::until_complete(800_000);

    let legacy = run_sync_discovery_robust(
        &net,
        alg,
        2,
        StartSchedule::Identical,
        lossy(),
        config,
        seed.branch("run"),
    )
    .expect("run");
    let scenario = Scenario::sync(&net, alg)
        .robust(2)
        .with_faults(lossy())
        .config(config)
        .run(seed.branch("run"))
        .expect("run");
    assert_eq!(json(&legacy), json(&scenario));
}

#[test]
fn sync_terminating_matches_legacy_runner() {
    let seed = SeedTree::new(106);
    let net = sync_net(seed.branch("net"));
    let alg = sync_alg(&net);
    let config = SyncRunConfig::until_all_terminated(500_000);

    let legacy = run_sync_discovery_terminating(
        &net,
        alg,
        200,
        StartSchedule::Identical,
        config,
        seed.branch("run"),
    )
    .expect("run");
    let scenario = Scenario::sync(&net, alg)
        .terminating(200)
        .config(config)
        .run(seed.branch("run"))
        .expect("run");
    assert_eq!(json(&legacy), json(&scenario));
    assert!(legacy.all_terminated(), "detector must actually fire");
}

// --- event executor vs the slotted oracle --------------------------------
//
// Every cell runs the identical scenario twice — slotted default and
// `.engine(Engine::Event)` — and demands byte-identical serialized
// outcomes (and traces, where a sink attaches). Cells the event executor
// cannot fast-path (trace sinks, fault plans, wrappers with no
// transmission bound) exercise its whole-run fallback: routing through
// `Engine::Event` must still be a no-op on the bytes.

#[test]
fn event_plain_matches_slotted() {
    for seed in [301u64, 302] {
        let seed = SeedTree::new(seed);
        let net = sync_net(seed.branch("net"));
        let alg = sync_alg(&net);
        let config = SyncRunConfig::until_complete(200_000);
        let starts = StartSchedule::Staggered { window: 64 };

        let slotted = Scenario::sync(&net, alg)
            .starts(starts.clone())
            .config(config)
            .run(seed.branch("run"))
            .expect("run");
        let event = Scenario::sync(&net, alg)
            .starts(starts)
            .config(config)
            .engine(Engine::Event)
            .run(seed.branch("run"))
            .expect("run");
        assert_eq!(json(&slotted), json(&event));
        assert!(slotted.completed(), "comparison must exercise a full run");
    }
}

#[test]
fn event_low_rho_skipping_matches_slotted() {
    // An inflated Δ̂ makes Algorithm 3 transmit with probability ≈ 1/1024
    // per node, so almost every slot is dead air — the regime where the
    // event executor genuinely jumps, not just degenerates to stepping.
    for seed in [311u64, 312] {
        let seed = SeedTree::new(seed);
        let net = sync_net(seed.branch("net"));
        let alg = SyncAlgorithm::Uniform(SyncParams::new(512).expect("positive"));
        let config = SyncRunConfig::fixed(5_000);

        let slotted = Scenario::sync(&net, alg)
            .config(config)
            .run(seed.branch("run"))
            .expect("run");
        let event = Scenario::sync(&net, alg)
            .config(config)
            .engine(Engine::Event)
            .run(seed.branch("run"))
            .expect("run");
        assert_eq!(json(&slotted), json(&event));
        assert_eq!(event.slots_executed(), 5_000);
    }
}

#[test]
fn event_observed_matches_slotted_traces_included() {
    for seed in [321u64, 322] {
        let seed = SeedTree::new(seed);
        let net = sync_net(seed.branch("net"));
        let alg = sync_alg(&net);
        let config = SyncRunConfig::until_complete(100_000);

        let mut slotted_sink = JsonlTraceSink::new(Vec::new());
        let slotted = Scenario::sync(&net, alg)
            .with_sink(&mut slotted_sink)
            .config(config)
            .run(seed.branch("run"))
            .expect("run");
        let mut event_sink = JsonlTraceSink::new(Vec::new());
        let event = Scenario::sync(&net, alg)
            .with_sink(&mut event_sink)
            .config(config)
            .engine(Engine::Event)
            .run(seed.branch("run"))
            .expect("run");

        assert_eq!(json(&slotted), json(&event));
        let slotted_trace = slotted_sink.finish().expect("no io error");
        let event_trace = event_sink.finish().expect("no io error");
        assert!(!slotted_trace.is_empty(), "trace captured no events");
        assert_eq!(slotted_trace, event_trace);
    }
}

#[test]
fn event_dynamic_matches_slotted() {
    for seed in [331u64, 332] {
        let seed = SeedTree::new(seed);
        let net = full_net(seed.branch("net"));
        let alg = sync_alg(&net);
        let config = SyncRunConfig::until_complete(200_000);

        let slotted = Scenario::sync(&net, alg)
            .with_dynamics(channel_churn([50, 120]))
            .config(config)
            .run(seed.branch("run"))
            .expect("run");
        let event = Scenario::sync(&net, alg)
            .with_dynamics(channel_churn([50, 120]))
            .config(config)
            .engine(Engine::Event)
            .run(seed.branch("run"))
            .expect("run");
        assert_eq!(json(&slotted), json(&event));
    }
}

#[test]
fn event_faulted_matches_slotted_traces_included() {
    for seed in [341u64, 342] {
        let seed = SeedTree::new(seed);
        let net = sync_net(seed.branch("net"));
        let alg = sync_alg(&net);
        let config = SyncRunConfig::until_complete(400_000);

        let mut slotted_sink = JsonlTraceSink::new(Vec::new());
        let slotted = Scenario::sync(&net, alg)
            .with_faults(lossy())
            .with_sink(&mut slotted_sink)
            .config(config)
            .run(seed.branch("run"))
            .expect("run");
        let mut event_sink = JsonlTraceSink::new(Vec::new());
        let event = Scenario::sync(&net, alg)
            .with_faults(lossy())
            .with_sink(&mut event_sink)
            .config(config)
            .engine(Engine::Event)
            .run(seed.branch("run"))
            .expect("run");

        assert_eq!(json(&slotted), json(&event));
        assert_eq!(
            slotted_sink.finish().expect("no io error"),
            event_sink.finish().expect("no io error")
        );
    }
}

#[test]
fn event_robust_matches_slotted() {
    // Robust without faults keeps the fast path engaged: the wrapper's
    // blocked repeat schedule reports its next block boundary as the
    // transmission bound, so skipped slots include repeated transmissions'
    // quiet interludes too.
    for seed in [351u64, 352] {
        let seed = SeedTree::new(seed);
        let net = sync_net(seed.branch("net"));
        let alg = sync_alg(&net);
        let config = SyncRunConfig::until_complete(800_000);

        let slotted = Scenario::sync(&net, alg)
            .robust(2)
            .config(config)
            .run(seed.branch("run"))
            .expect("run");
        let event = Scenario::sync(&net, alg)
            .robust(2)
            .config(config)
            .engine(Engine::Event)
            .run(seed.branch("run"))
            .expect("run");
        assert_eq!(json(&slotted), json(&event));
    }
}

#[test]
fn event_continuous_matches_slotted() {
    for seed in [361u64, 362] {
        let seed = SeedTree::new(seed);
        let net = sync_net(seed.branch("net"));
        let alg = sync_alg(&net);
        let config = SyncRunConfig::fixed(3_000);
        let continuous = ContinuousConfig::new(64, 1_024).expect("valid");

        let slotted = Scenario::sync(&net, alg)
            .continuous(continuous)
            .config(config)
            .run(seed.branch("run"))
            .expect("run");
        let event = Scenario::sync(&net, alg)
            .continuous(continuous)
            .config(config)
            .engine(Engine::Event)
            .run(seed.branch("run"))
            .expect("run");
        assert_eq!(json(&slotted), json(&event));
    }
}

#[test]
fn event_terminating_matches_slotted() {
    for seed in [371u64, 372] {
        let seed = SeedTree::new(seed);
        let net = sync_net(seed.branch("net"));
        let alg = sync_alg(&net);
        let config = SyncRunConfig::until_all_terminated(500_000);

        let slotted = Scenario::sync(&net, alg)
            .terminating(200)
            .config(config)
            .run(seed.branch("run"))
            .expect("run");
        let event = Scenario::sync(&net, alg)
            .terminating(200)
            .config(config)
            .engine(Engine::Event)
            .run(seed.branch("run"))
            .expect("run");
        assert_eq!(json(&slotted), json(&event));
        assert!(slotted.all_terminated(), "detector must actually fire");
    }
}

// --- asynchronous engine -------------------------------------------------

#[test]
fn async_plain_matches_legacy_runner() {
    let seed = SeedTree::new(201);
    let net = sync_net(seed.branch("net"));
    let alg = async_alg(&net);
    let config = AsyncRunConfig::until_complete(200_000);

    let legacy = run_async_discovery(&net, alg, config.clone(), seed.branch("run")).expect("run");
    let scenario = Scenario::asynchronous(&net, alg)
        .config(config)
        .run(seed.branch("run"))
        .expect("run");
    assert_eq!(json(&legacy), json(&scenario));
    assert!(
        legacy.completion_time().is_some(),
        "comparison must exercise a full run"
    );
}

#[test]
fn async_observed_matches_legacy_runner_traces_included() {
    let seed = SeedTree::new(202);
    let net = sync_net(seed.branch("net"));
    let alg = async_alg(&net);
    let config = AsyncRunConfig::until_complete(100_000);

    let mut legacy_sink = JsonlTraceSink::new(Vec::new());
    let legacy = run_async_discovery_observed(
        &net,
        alg,
        config.clone(),
        seed.branch("run"),
        &mut legacy_sink,
    )
    .expect("run");
    let mut scenario_sink = JsonlTraceSink::new(Vec::new());
    let scenario = Scenario::asynchronous(&net, alg)
        .with_sink(&mut scenario_sink)
        .config(config)
        .run(seed.branch("run"))
        .expect("run");

    assert_eq!(json(&legacy), json(&scenario));
    let legacy_trace = legacy_sink.finish().expect("no io error");
    let scenario_trace = scenario_sink.finish().expect("no io error");
    assert!(!legacy_trace.is_empty(), "trace captured no events");
    assert_eq!(legacy_trace, scenario_trace);
}

#[test]
fn async_dynamic_matches_legacy_runner_traces_included() {
    let seed = SeedTree::new(203);
    let net = full_net(seed.branch("net"));
    let alg = async_alg(&net);
    let config = AsyncRunConfig::until_complete(200_000);
    // `at` is real nanoseconds for the asynchronous engine.
    let dynamics = channel_churn([30_000, 90_000]);

    let mut legacy_sink = JsonlTraceSink::new(Vec::new());
    let legacy = run_async_discovery_dynamic_observed(
        &net,
        alg,
        dynamics.clone(),
        config.clone(),
        seed.branch("run"),
        &mut legacy_sink,
    )
    .expect("run");
    let mut scenario_sink = JsonlTraceSink::new(Vec::new());
    let scenario = Scenario::asynchronous(&net, alg)
        .with_dynamics(dynamics)
        .with_sink(&mut scenario_sink)
        .config(config)
        .run(seed.branch("run"))
        .expect("run");

    assert_eq!(json(&legacy), json(&scenario));
    assert_eq!(
        legacy_sink.finish().expect("no io error"),
        scenario_sink.finish().expect("no io error")
    );
}

#[test]
fn async_faulted_matches_legacy_runner() {
    let seed = SeedTree::new(204);
    let net = sync_net(seed.branch("net"));
    let alg = async_alg(&net);
    let config = AsyncRunConfig::until_complete(400_000);

    let legacy =
        run_async_discovery_faulted(&net, alg, lossy(), config.clone(), seed.branch("run"))
            .expect("run");
    let scenario = Scenario::asynchronous(&net, alg)
        .with_faults(lossy())
        .config(config)
        .run(seed.branch("run"))
        .expect("run");
    assert_eq!(json(&legacy), json(&scenario));
}

#[test]
fn async_terminating_matches_legacy_runner() {
    let seed = SeedTree::new(205);
    let net = sync_net(seed.branch("net"));
    let alg = async_alg(&net);
    let config = AsyncRunConfig::until_complete(50_000);

    let legacy = run_async_discovery_terminating(&net, alg, 30, config.clone(), seed.branch("run"))
        .expect("run");
    let scenario = Scenario::asynchronous(&net, alg)
        .terminating(30)
        .config(config)
        .run(seed.branch("run"))
        .expect("run");
    assert_eq!(json(&legacy), json(&scenario));
}
