//! Property-based tests of graph generators and network metrics.

use mmhew_spectrum::{AvailabilityModel, ChannelId};
use mmhew_topology::{generators, NetworkBuilder, NodeId};
use mmhew_util::SeedTree;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Unit-disk graphs: the edge set is exactly the distance predicate,
    /// symmetric, and monotone in the radius.
    #[test]
    fn unit_disk_edges_are_distance_threshold(
        n in 2usize..25,
        side in 1.0f64..20.0,
        radius in 0.0f64..10.0,
        seed in 0u64..u64::MAX,
    ) {
        let t = generators::unit_disk(n, side, radius, SeedTree::new(seed));
        prop_assert!(t.is_symmetric());
        for u in t.nodes() {
            for v in t.nodes() {
                if u == v { continue; }
                prop_assert_eq!(
                    t.contains_edge(u, v),
                    t.distance(u, v) <= radius,
                    "edge ({},{})", u, v
                );
            }
        }
        // Monotone: a larger radius never removes edges.
        let bigger = generators::unit_disk(n, side, radius + 1.0, SeedTree::new(seed));
        for (u, v) in t.edges() {
            prop_assert!(bigger.contains_edge(u, v));
        }
    }

    /// Structured generators have their textbook degree sequences.
    #[test]
    fn structured_degrees(n in 3usize..30, w in 1usize..8, h in 1usize..8) {
        let ring = generators::ring(n);
        prop_assert!(ring.nodes().all(|u| ring.in_neighbors(u).len() == 2));
        prop_assert_eq!(ring.edge_count(), 2 * n);

        let line = generators::line(n);
        prop_assert_eq!(line.edge_count(), 2 * (n - 1));
        prop_assert!(line.is_connected());

        let star = generators::star(n);
        prop_assert_eq!(star.in_neighbors(NodeId::new(0)).len(), n - 1);

        let complete = generators::complete(n);
        prop_assert_eq!(complete.edge_count(), n * (n - 1));

        let grid = generators::grid(w, h);
        prop_assert_eq!(grid.node_count(), w * h);
        prop_assert!(grid.is_connected());
        let expected_undirected = h * w.saturating_sub(1) + w * h.saturating_sub(1);
        prop_assert_eq!(grid.edge_count(), 2 * expected_undirected);
    }

    /// Asymmetric disks: every edge respects the transmitter's range; the
    /// reverse edge exists iff the receiver's range also suffices.
    #[test]
    fn asymmetric_disk_respects_ranges(
        n in 2usize..20,
        r_min in 0.5f64..2.0,
        spread in 0.0f64..4.0,
        seed in 0u64..u64::MAX,
    ) {
        let t = generators::asymmetric_disk(n, 10.0, r_min, r_min + spread, SeedTree::new(seed));
        for (u, v) in t.edges() {
            prop_assert!(t.distance(u, v) <= r_min + spread + 1e-9);
        }
        if spread == 0.0 {
            prop_assert!(t.is_symmetric());
        }
    }

    /// Network metrics: ρ bounds, span-ratio definition, S, Δ consistency
    /// under random heterogeneous availability.
    #[test]
    fn network_metric_definitions(
        n in 2usize..15,
        universe in 1u16..12,
        size in 1u16..12,
        p in 0.1f64..1.0,
        seed in 0u64..u64::MAX,
    ) {
        let size = size.min(universe);
        let net = NetworkBuilder::erdos_renyi(n, p)
            .universe(universe)
            .availability(AvailabilityModel::UniformSubset { size })
            .build(SeedTree::new(seed))
            .expect("valid");
        prop_assert_eq!(net.s_max(), size as usize);
        // Definition check: ρ = min over links of |span|/|A(receiver)|.
        let mut min_ratio = f64::INFINITY;
        for link in net.links() {
            let ratio = net.span(link.from, link.to).len() as f64
                / net.available(link.to).len() as f64;
            min_ratio = min_ratio.min(ratio);
        }
        if net.links().is_empty() {
            prop_assert_eq!(net.rho(), 1.0);
        } else {
            prop_assert!((net.rho() - min_ratio.min(1.0)).abs() < 1e-12);
            prop_assert!(net.rho() >= 1.0 / size as f64 - 1e-12);
        }
        // Δ consistency with per-channel adjacency.
        let mut max_deg = 0;
        for u in net.topology().nodes() {
            for c in 0..universe {
                max_deg = max_deg.max(net.degree_on(u, ChannelId::new(c)));
            }
        }
        prop_assert_eq!(net.max_degree(), max_deg);
        // Expected discovery is symmetric for symmetric graphs + uniform
        // propagation: v in expected(u) iff u in expected(v).
        for u in net.topology().nodes() {
            for (v, _) in net.expected_discovery(u) {
                prop_assert!(
                    net.expected_discovery(v).iter().any(|(w, _)| *w == u),
                    "asymmetric ground truth on a symmetric graph"
                );
            }
        }
    }

    /// Builder determinism: same seed, same network; availability and
    /// topology seeds are independent branches.
    #[test]
    fn builder_determinism(n in 2usize..12, seed in 0u64..u64::MAX) {
        let builder = NetworkBuilder::unit_disk(n, 8.0, 3.0)
            .universe(6)
            .availability(AvailabilityModel::UniformSubset { size: 3 });
        let a = builder.build(SeedTree::new(seed)).expect("valid");
        let b = builder.build(SeedTree::new(seed)).expect("valid");
        prop_assert_eq!(a, b);
    }
}
