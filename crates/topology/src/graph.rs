//! The communication graph of an M²HeW network.
//!
//! Edges are *directed*: `u → v` means "`v` can hear `u`" (any message `u`
//! transmits reaches `v` if no collision occurs at `v`). The paper assumes a
//! symmetric graph for exposition but notes the algorithms extend to
//! asymmetric graphs; we keep direction explicit so the asymmetric
//! extension (experiment E12) is first-class.

use crate::node::NodeId;
use serde::{Deserialize, Serialize};

/// A directed communication graph with per-node planar positions.
///
/// # Examples
///
/// ```
/// use mmhew_topology::{NodeId, Topology};
///
/// let mut t = Topology::new(3);
/// t.add_bidirectional(NodeId::new(0), NodeId::new(1));
/// t.add_edge(NodeId::new(1), NodeId::new(2)); // 2 hears 1, not vice versa
/// assert!(t.contains_edge(NodeId::new(0), NodeId::new(1)));
/// assert!(t.contains_edge(NodeId::new(1), NodeId::new(2)));
/// assert!(!t.contains_edge(NodeId::new(2), NodeId::new(1)));
/// assert!(!t.is_symmetric());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// `out[u]` = nodes that hear `u`.
    out: Vec<Vec<NodeId>>,
    /// `in_[u]` = nodes `u` hears.
    in_: Vec<Vec<NodeId>>,
    positions: Vec<(f64, f64)>,
}

impl Topology {
    /// Creates an edgeless graph of `n` nodes positioned on a unit circle
    /// (generators overwrite positions as appropriate).
    pub fn new(n: usize) -> Self {
        let positions = (0..n)
            .map(|i| {
                let theta = 2.0 * std::f64::consts::PI * i as f64 / n.max(1) as f64;
                (theta.cos(), theta.sin())
            })
            .collect();
        Self {
            out: vec![Vec::new(); n],
            in_: vec![Vec::new(); n],
            positions,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }

    /// Adds the directed edge `u → v` (`v` hears `u`). Duplicate edges and
    /// self-loops are ignored.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(u.as_usize() < self.node_count(), "source out of range");
        assert!(v.as_usize() < self.node_count(), "target out of range");
        if u == v || self.contains_edge(u, v) {
            return;
        }
        self.out[u.as_usize()].push(v);
        self.in_[v.as_usize()].push(u);
    }

    /// Adds edges in both directions.
    pub fn add_bidirectional(&mut self, u: NodeId, v: NodeId) {
        self.add_edge(u, v);
        self.add_edge(v, u);
    }

    /// Removes the directed edge `u → v`. Returns whether the edge existed.
    /// Remaining neighbor order is preserved so recomputation stays
    /// deterministic.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(u.as_usize() < self.node_count(), "source out of range");
        assert!(v.as_usize() < self.node_count(), "target out of range");
        if !self.contains_edge(u, v) {
            return false;
        }
        self.out[u.as_usize()].retain(|&w| w != v);
        self.in_[v.as_usize()].retain(|&w| w != u);
        true
    }

    /// Removes every edge incident to `u` (both directions). Returns the
    /// number of directed edges removed. Allocation-free: `u`'s own lists
    /// drain in place and the mirrors drop `u` with order-preserving
    /// `retain`, so churn-heavy dynamics schedules stay zero-allocation.
    pub fn remove_incident(&mut self, u: NodeId) -> usize {
        let mut removed = 0;
        while let Some(v) = self.out[u.as_usize()].pop() {
            self.in_[v.as_usize()].retain(|&w| w != u);
            removed += 1;
        }
        while let Some(v) = self.in_[u.as_usize()].pop() {
            self.out[v.as_usize()].retain(|&w| w != u);
            removed += 1;
        }
        removed
    }

    /// True if `v` hears `u`.
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out[u.as_usize()].contains(&v)
    }

    /// Nodes that hear `u`.
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.out[u.as_usize()]
    }

    /// Nodes `u` hears (its potential discoveries and interferers).
    pub fn in_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.in_[u.as_usize()]
    }

    /// True if every edge has its reverse.
    pub fn is_symmetric(&self) -> bool {
        self.out.iter().enumerate().all(|(u, vs)| {
            vs.iter()
                .all(|&v| self.contains_edge(v, NodeId::new(u as u32)))
        })
    }

    /// Planar position of a node (used by spatial availability models).
    pub fn position(&self, u: NodeId) -> (f64, f64) {
        self.positions[u.as_usize()]
    }

    /// All node positions, indexed by node.
    pub fn positions(&self) -> &[(f64, f64)] {
        &self.positions
    }

    /// Overwrites a node's position.
    pub fn set_position(&mut self, u: NodeId, pos: (f64, f64)) {
        self.positions[u.as_usize()] = pos;
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count() as u32).map(NodeId::new)
    }

    /// Iterator over all directed edges `(u, v)` with `v` hearing `u`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.out
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (NodeId::new(u as u32), v)))
    }

    /// Euclidean distance between two nodes' positions.
    pub fn distance(&self, u: NodeId, v: NodeId) -> f64 {
        let (ux, uy) = self.position(u);
        let (vx, vy) = self.position(v);
        ((ux - vx).powi(2) + (uy - vy).powi(2)).sqrt()
    }

    /// Mean in-degree (equals mean out-degree).
    pub fn average_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            self.edge_count() as f64 / self.node_count() as f64
        }
    }

    /// Hop diameter of the undirected support: the longest shortest path
    /// between any two nodes, or `None` if the graph is disconnected (or
    /// empty).
    pub fn diameter(&self) -> Option<usize> {
        let n = self.node_count();
        if n == 0 {
            return None;
        }
        let mut worst = 0usize;
        for source in 0..n {
            // BFS over the undirected support.
            let mut dist = vec![usize::MAX; n];
            dist[source] = 0;
            let mut queue = std::collections::VecDeque::from([source]);
            while let Some(u) = queue.pop_front() {
                let uid = NodeId::new(u as u32);
                for &v in self.out_neighbors(uid).iter().chain(self.in_neighbors(uid)) {
                    if dist[v.as_usize()] == usize::MAX {
                        dist[v.as_usize()] = dist[u] + 1;
                        queue.push_back(v.as_usize());
                    }
                }
            }
            let far = dist.iter().copied().max().expect("non-empty");
            if far == usize::MAX {
                return None; // disconnected
            }
            worst = worst.max(far);
        }
        Some(worst)
    }

    /// True if the *undirected support* of the graph is connected (each
    /// node can reach each other ignoring edge direction). The empty graph
    /// and single-node graph count as connected.
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut visited = 1;
        while let Some(u) = stack.pop() {
            let uid = NodeId::new(u as u32);
            for &v in self.out_neighbors(uid).iter().chain(self.in_neighbors(uid)) {
                if !seen[v.as_usize()] {
                    seen[v.as_usize()] = true;
                    visited += 1;
                    stack.push(v.as_usize());
                }
            }
        }
        visited == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn empty_graph() {
        let t = Topology::new(4);
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.edge_count(), 0);
        assert!(t.is_symmetric());
        assert!(!t.is_connected());
        assert!(Topology::new(1).is_connected());
        assert!(Topology::new(0).is_connected());
    }

    #[test]
    fn directed_edges() {
        let mut t = Topology::new(3);
        t.add_edge(n(0), n(1));
        assert_eq!(t.out_neighbors(n(0)), &[n(1)]);
        assert_eq!(t.in_neighbors(n(1)), &[n(0)]);
        assert!(t.in_neighbors(n(0)).is_empty());
        assert!(!t.is_symmetric());
        t.add_edge(n(1), n(0));
        assert!(t.is_symmetric());
    }

    #[test]
    fn duplicates_and_self_loops_ignored() {
        let mut t = Topology::new(2);
        t.add_edge(n(0), n(1));
        t.add_edge(n(0), n(1));
        t.add_edge(n(0), n(0));
        assert_eq!(t.edge_count(), 1);
    }

    #[test]
    fn remove_edge_and_incident() {
        let mut t = Topology::new(4);
        t.add_bidirectional(n(0), n(1));
        t.add_bidirectional(n(0), n(2));
        t.add_edge(n(3), n(0));
        assert!(t.remove_edge(n(0), n(1)));
        assert!(!t.remove_edge(n(0), n(1)), "already gone");
        assert!(t.contains_edge(n(1), n(0)), "reverse untouched");
        // 0 still touches: 1→0, 0↔2, 3→0 = 4 directed edges.
        assert_eq!(t.remove_incident(n(0)), 4);
        assert_eq!(t.edge_count(), 0);
        assert!(t.in_neighbors(n(0)).is_empty() && t.out_neighbors(n(0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut t = Topology::new(2);
        t.add_edge(n(0), n(5));
    }

    #[test]
    fn edges_iterator() {
        let mut t = Topology::new(3);
        t.add_bidirectional(n(0), n(1));
        t.add_edge(n(2), n(0));
        let mut edges: Vec<_> = t.edges().collect();
        edges.sort();
        assert_eq!(edges, vec![(n(0), n(1)), (n(1), n(0)), (n(2), n(0))]);
    }

    #[test]
    fn connectivity_ignores_direction() {
        let mut t = Topology::new(3);
        t.add_edge(n(0), n(1));
        t.add_edge(n(2), n(1));
        assert!(t.is_connected());
    }

    #[test]
    fn diameter_and_average_degree() {
        let mut line = Topology::new(4);
        for i in 1..4 {
            line.add_bidirectional(n(i - 1), n(i));
        }
        assert_eq!(line.diameter(), Some(3));
        assert!((line.average_degree() - 1.5).abs() < 1e-12);

        let mut pair = Topology::new(3);
        pair.add_bidirectional(n(0), n(1));
        assert_eq!(pair.diameter(), None, "disconnected");

        let single = Topology::new(1);
        assert_eq!(single.diameter(), Some(0));
        assert_eq!(Topology::new(0).diameter(), None);
    }

    #[test]
    fn diameter_uses_undirected_support() {
        let mut t = Topology::new(3);
        t.add_edge(n(0), n(1));
        t.add_edge(n(2), n(1));
        // Directed: 0→1←2; undirected support is a path of length 2.
        assert_eq!(t.diameter(), Some(2));
    }

    #[test]
    fn positions_and_distance() {
        let mut t = Topology::new(2);
        t.set_position(n(0), (0.0, 0.0));
        t.set_position(n(1), (3.0, 4.0));
        assert_eq!(t.distance(n(0), n(1)), 5.0);
        assert_eq!(t.positions().len(), 2);
    }
}
