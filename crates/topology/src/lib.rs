//! Communication graphs and complete M²HeW network construction.
//!
//! This crate turns a topology (who can hear whom) and a spectrum
//! availability model (which channels each node perceives) into a validated
//! [`Network`] — the ground truth a discovery simulation runs against. It
//! also computes the paper's complexity parameters:
//!
//! * `S` — size of the largest available channel set ([`Network::s_max`]);
//! * `Δ` — maximum per-channel node degree ([`Network::max_degree`]);
//! * `ρ` — minimum link span-ratio ([`Network::rho`]), the paper's measure
//!   of heterogeneity (running time of every algorithm is ∝ 1/ρ).
//!
//! # Examples
//!
//! ```
//! use mmhew_topology::NetworkBuilder;
//! use mmhew_spectrum::AvailabilityModel;
//! use mmhew_util::SeedTree;
//!
//! let net = NetworkBuilder::grid(4, 4)
//!     .universe(8)
//!     .availability(AvailabilityModel::UniformSubset { size: 4 })
//!     .build(SeedTree::new(7))?;
//! assert_eq!(net.node_count(), 16);
//! println!("S={} Δ={} ρ={:.2}", net.s_max(), net.max_degree(), net.rho());
//! # Ok::<(), mmhew_topology::BuildError>(())
//! ```

pub mod builder;
pub mod event;
pub mod generators;
pub mod graph;
pub mod network;
pub mod node;
pub mod view;

pub use builder::{BuildError, NetworkBuilder};
pub use event::NetworkEvent;
pub use graph::Topology;
pub use network::{
    check_storage_cap, estimate_storage_bytes, storage_cap_bytes, Link, Network, NetworkError,
    Propagation, StorageCapError, DEFAULT_STORAGE_CAP_BYTES,
};
pub use node::NodeId;
pub use view::TopologyView;
