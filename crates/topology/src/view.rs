//! [`TopologyView`]: the read-only surface of a [`Network`].
//!
//! Resolvers, engines, bounds and dynamics generators never mutate the
//! network mid-slot — they only read adjacency, availability and the
//! derived parameters. `TopologyView` bundles exactly that read surface
//! behind a `Copy` handle, so hot paths can be written against a type
//! that *cannot* trigger a rebuild, and so the storage representation
//! (two-level CSR + flat availability arena) can evolve without touching
//! consumers. All accessors are O(1) slice/view carves; none allocate.

use crate::network::{Link, Network, Propagation};
use crate::node::NodeId;
use mmhew_spectrum::{ChannelId, ChannelSetRef};

/// A borrowed, read-only view over a [`Network`].
///
/// Obtained from [`Network::view`]. `Copy`, pointer-sized, and safe to
/// pass by value into per-slot inner loops.
///
/// # Examples
///
/// ```
/// use mmhew_topology::{generators, Network, Propagation};
/// use mmhew_spectrum::{ChannelId, ChannelSet};
///
/// let avail: Vec<ChannelSet> =
///     (0..2).map(|_| [0u16, 1].into_iter().collect()).collect();
/// let net = Network::new(generators::line(2), 2, avail, Propagation::Uniform)?;
/// let view = net.view();
/// assert_eq!(view.node_count(), 2);
/// assert_eq!(view.neighbors_on(view.receivers_on(
///     mmhew_topology::NodeId::new(0), ChannelId::new(0))[0], ChannelId::new(0)).len(), 1);
/// assert_eq!(view.available(mmhew_topology::NodeId::new(1)).len(), 2);
/// # Ok::<(), mmhew_topology::NetworkError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TopologyView<'a> {
    net: &'a Network,
}

impl<'a> TopologyView<'a> {
    pub(crate) fn new(net: &'a Network) -> Self {
        Self { net }
    }

    /// Number of nodes (`N`).
    pub fn node_count(self) -> usize {
        self.net.node_count()
    }

    /// Size of the universal channel set.
    pub fn universe_size(self) -> u16 {
        self.net.universe_size()
    }

    /// The available channel set `A(u)` as a borrowed bitset view.
    pub fn available(self, u: NodeId) -> ChannelSetRef<'a> {
        self.net.available(u)
    }

    /// In-neighbors of `u` on channel `c` — a borrowed CSR row.
    pub fn neighbors_on(self, u: NodeId, c: ChannelId) -> &'a [NodeId] {
        self.net.neighbors_on(u, c)
    }

    /// Out-neighbors of `v` on channel `c`, ascending — a borrowed CSR row.
    pub fn receivers_on(self, v: NodeId, c: ChannelId) -> &'a [NodeId] {
        self.net.receivers_on(v, c)
    }

    /// The degree `Δ(u, c)`.
    pub fn degree_on(self, u: NodeId, c: ChannelId) -> usize {
        self.net.degree_on(u, c)
    }

    /// All discovery obligations, sorted.
    pub fn links(self) -> &'a [Link] {
        self.net.links()
    }

    /// The propagation model.
    pub fn propagation(self) -> &'a Propagation {
        self.net.propagation()
    }

    /// `S`: size of the largest available channel set.
    pub fn s_max(self) -> usize {
        self.net.s_max()
    }

    /// `Δ`: maximum degree of any node on any channel.
    pub fn max_degree(self) -> usize {
        self.net.max_degree()
    }

    /// `ρ`: minimum link span-ratio.
    pub fn rho(self) -> f64 {
        self.net.rho()
    }

    /// The full network, for the rare consumer that needs an accessor not
    /// on the view (e.g. `expected_discovery` in verifiers).
    pub fn network(self) -> &'a Network {
        self.net
    }
}

impl<'a> From<&'a Network> for TopologyView<'a> {
    fn from(net: &'a Network) -> Self {
        net.view()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use mmhew_spectrum::ChannelSet;

    #[test]
    fn view_mirrors_network_accessors() {
        let avail: Vec<ChannelSet> = vec![
            [0u16, 1].into_iter().collect(),
            [0u16].into_iter().collect(),
            [1u16].into_iter().collect(),
        ];
        let net = Network::new(generators::star(3), 2, avail, Propagation::Uniform)
            .expect("valid network");
        let view: TopologyView<'_> = (&net).into();
        assert_eq!(view.node_count(), net.node_count());
        assert_eq!(view.universe_size(), net.universe_size());
        assert_eq!(view.s_max(), net.s_max());
        assert_eq!(view.max_degree(), net.max_degree());
        assert_eq!(view.rho(), net.rho());
        assert_eq!(view.links(), net.links());
        assert_eq!(view.propagation(), net.propagation());
        for u in 0..net.node_count() as u32 {
            let u = NodeId::new(u);
            assert_eq!(view.available(u), net.available(u));
            for c in 0..net.universe_size() {
                let c = ChannelId::new(c);
                assert_eq!(view.neighbors_on(u, c), net.neighbors_on(u, c));
                assert_eq!(view.receivers_on(u, c), net.receivers_on(u, c));
                assert_eq!(view.degree_on(u, c), net.degree_on(u, c));
            }
        }
        // The view is a Copy handle: pass-by-value reuse is free.
        let v2 = view;
        assert_eq!(v2.node_count(), view.node_count());
        assert!(std::ptr::eq(view.network(), &net));
    }
}
