//! Standard topology generators.
//!
//! All generators produce symmetric graphs except [`asymmetric_disk`],
//! which models nodes with unequal transmit powers (the asymmetric-graph
//! extension mentioned in the paper's conclusions).

use crate::graph::Topology;
use crate::node::NodeId;
use mmhew_util::SeedTree;
use rand::Rng;

/// A path of `n` nodes: `0 — 1 — ... — n−1`.
pub fn line(n: usize) -> Topology {
    let mut t = Topology::new(n);
    for i in 1..n {
        t.add_bidirectional(NodeId::new((i - 1) as u32), NodeId::new(i as u32));
        t.set_position(NodeId::new(i as u32), (i as f64, 0.0));
    }
    if n > 0 {
        t.set_position(NodeId::new(0), (0.0, 0.0));
    }
    t
}

/// A cycle of `n ≥ 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> Topology {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let mut t = Topology::new(n);
    for i in 0..n {
        t.add_bidirectional(NodeId::new(i as u32), NodeId::new(((i + 1) % n) as u32));
    }
    t
}

/// A `w × h` grid with 4-neighborhood, positions at integer coordinates.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(w: usize, h: usize) -> Topology {
    assert!(w > 0 && h > 0, "grid dimensions must be positive");
    let mut t = Topology::new(w * h);
    let id = |x: usize, y: usize| NodeId::new((y * w + x) as u32);
    for y in 0..h {
        for x in 0..w {
            t.set_position(id(x, y), (x as f64, y as f64));
            if x + 1 < w {
                t.add_bidirectional(id(x, y), id(x + 1, y));
            }
            if y + 1 < h {
                t.add_bidirectional(id(x, y), id(x, y + 1));
            }
        }
    }
    t
}

/// A star: node 0 is the hub, nodes `1..n` its leaves.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> Topology {
    assert!(n >= 2, "a star needs a hub and at least one leaf");
    let mut t = Topology::new(n);
    for i in 1..n {
        t.add_bidirectional(NodeId::new(0), NodeId::new(i as u32));
    }
    t.set_position(NodeId::new(0), (0.0, 0.0));
    t
}

/// The complete graph on `n` nodes (single-hop network).
pub fn complete(n: usize) -> Topology {
    let mut t = Topology::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            t.add_bidirectional(NodeId::new(i as u32), NodeId::new(j as u32));
        }
    }
    t
}

/// A random geometric (unit-disk) graph: `n` nodes uniform in a
/// `side × side` square, edges between nodes within `radius`.
///
/// Edge construction uses a spatial hash (cells at least `radius` wide,
/// so all partners of a node live in its 3×3 cell window) instead of the
/// naive all-pairs scan — `O(n + edges)` expected instead of `O(n²)`,
/// which is what makes 10⁵–10⁶-node networks constructible. Candidate
/// partners are visited in ascending id order per node, reproducing the
/// naive loop's exact `(i asc, j asc, j > i)` insertion sequence, so the
/// resulting [`Topology`] is byte-identical at the same seed.
pub fn unit_disk(n: usize, side: f64, radius: f64, seed: SeedTree) -> Topology {
    assert!(side > 0.0 && radius >= 0.0, "invalid geometry");
    let mut t = Topology::new(n);
    let mut rng = seed.branch("unit-disk").rng();
    for i in 0..n {
        let pos = (rng.gen_range(0.0..side), rng.gen_range(0.0..side));
        t.set_position(NodeId::new(i as u32), pos);
    }
    if n == 0 || radius == 0.0 {
        return t;
    }
    // Cell width `side / axis` stays ≥ radius (axis ≤ ⌊side/radius⌋); the
    // √n clamp only ever *widens* cells, which keeps the 3×3 window a
    // superset of the disk while bounding bucket-array memory.
    let axis = ((side / radius).floor() as usize).clamp(1, (n as f64).sqrt().ceil() as usize);
    let cell = |x: f64| ((x / side * axis as f64) as usize).min(axis - 1);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); axis * axis];
    for i in 0..n {
        let (x, y) = t.position(NodeId::new(i as u32));
        buckets[cell(y) * axis + cell(x)].push(i as u32);
    }
    let mut candidates: Vec<u32> = Vec::new();
    for i in 0..n {
        let u = NodeId::new(i as u32);
        let (x, y) = t.position(u);
        let (cx, cy) = (cell(x), cell(y));
        candidates.clear();
        for wy in cy.saturating_sub(1)..=(cy + 1).min(axis - 1) {
            for wx in cx.saturating_sub(1)..=(cx + 1).min(axis - 1) {
                candidates.extend(
                    buckets[wy * axis + wx]
                        .iter()
                        .copied()
                        .filter(|&j| j > i as u32),
                );
            }
        }
        candidates.sort_unstable();
        for &j in &candidates {
            let v = NodeId::new(j);
            if t.distance(u, v) <= radius {
                t.add_bidirectional(u, v);
            }
        }
    }
    t
}

/// An Erdős–Rényi graph `G(n, p)` (each undirected pair connected
/// independently with probability `p`).
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn erdos_renyi(n: usize, p: f64, seed: SeedTree) -> Topology {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut t = Topology::new(n);
    let mut rng = seed.branch("erdos-renyi").rng();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                t.add_bidirectional(NodeId::new(i as u32), NodeId::new(j as u32));
            }
        }
    }
    t
}

/// An *asymmetric* random geometric graph: each node draws its own
/// transmit range uniformly from `[r_min, r_max]`; `v` hears `u` iff
/// `dist(u, v) ≤ range(u)`. With `r_min < r_max` some links are one-way.
///
/// # Panics
///
/// Panics if the geometry is invalid (`side ≤ 0` or `r_min > r_max`).
pub fn asymmetric_disk(n: usize, side: f64, r_min: f64, r_max: f64, seed: SeedTree) -> Topology {
    assert!(side > 0.0, "invalid geometry");
    assert!(0.0 <= r_min && r_min <= r_max, "invalid range interval");
    let mut t = Topology::new(n);
    let mut rng = seed.branch("asym-disk").rng();
    let mut ranges = Vec::with_capacity(n);
    for i in 0..n {
        let pos = (rng.gen_range(0.0..side), rng.gen_range(0.0..side));
        t.set_position(NodeId::new(i as u32), pos);
        ranges.push(if r_min == r_max {
            r_min
        } else {
            rng.gen_range(r_min..=r_max)
        });
    }
    for (i, &range) in ranges.iter().enumerate() {
        for j in 0..n {
            if i == j {
                continue;
            }
            let (u, v) = (NodeId::new(i as u32), NodeId::new(j as u32));
            if t.distance(u, v) <= range {
                t.add_edge(u, v);
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn line_shape() {
        let t = line(4);
        assert_eq!(t.edge_count(), 6); // 3 undirected edges
        assert!(t.contains_edge(n(0), n(1)));
        assert!(t.contains_edge(n(2), n(3)));
        assert!(!t.contains_edge(n(0), n(2)));
        assert!(t.is_connected());
        assert!(t.is_symmetric());
        assert_eq!(line(1).edge_count(), 0);
        assert_eq!(line(0).node_count(), 0);
    }

    #[test]
    fn ring_shape() {
        let t = ring(5);
        assert_eq!(t.edge_count(), 10);
        assert!(t.contains_edge(n(4), n(0)));
        assert!(t.is_connected());
        for u in t.nodes() {
            assert_eq!(t.in_neighbors(u).len(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_panics() {
        let _ = ring(2);
    }

    #[test]
    fn grid_shape() {
        let t = grid(3, 2);
        assert_eq!(t.node_count(), 6);
        // Undirected edges: 2 rows * 2 horiz + 3 cols * 1 vert = 7.
        assert_eq!(t.edge_count(), 14);
        assert!(t.is_connected());
        // Corner has degree 2, middle-edge 3.
        assert_eq!(t.in_neighbors(n(0)).len(), 2);
        assert_eq!(t.in_neighbors(n(1)).len(), 3);
        assert_eq!(t.position(n(4)), (1.0, 1.0));
    }

    #[test]
    fn star_shape() {
        let t = star(6);
        assert_eq!(t.in_neighbors(n(0)).len(), 5);
        for i in 1..6 {
            assert_eq!(t.in_neighbors(n(i)).len(), 1);
        }
        assert!(t.is_connected());
    }

    #[test]
    fn complete_shape() {
        let t = complete(5);
        assert_eq!(t.edge_count(), 20);
        for u in t.nodes() {
            assert_eq!(t.in_neighbors(u).len(), 4);
        }
    }

    #[test]
    fn unit_disk_radius_zero_and_huge() {
        let seed = SeedTree::new(5);
        let empty = unit_disk(10, 1.0, 0.0, seed);
        assert_eq!(empty.edge_count(), 0);
        let full = unit_disk(10, 1.0, 10.0, seed);
        assert_eq!(full.edge_count(), 90);
        assert!(full.is_symmetric());
    }

    #[test]
    fn unit_disk_edges_match_distances() {
        let t = unit_disk(30, 10.0, 3.0, SeedTree::new(6));
        for u in t.nodes() {
            for v in t.nodes() {
                if u == v {
                    continue;
                }
                assert_eq!(
                    t.contains_edge(u, v),
                    t.distance(u, v) <= 3.0,
                    "edge ({u},{v}) inconsistent with distance"
                );
            }
        }
    }

    #[test]
    fn unit_disk_bucketing_matches_naive_scan() {
        // The spatial-hash fast path must reproduce the naive O(n²) loop
        // byte-for-byte: same positions (same RNG stream) and the same
        // edge insertion order, hence an identical Topology value.
        for (n_nodes, side, radius, seed) in [
            (80, 10.0, 1.5, 11u64),
            (50, 4.0, 4.5, 12), // radius > side: single cell, all pairs
            (64, 8.0, 0.3, 13), // sparse: many empty cells
        ] {
            let fast = unit_disk(n_nodes, side, radius, SeedTree::new(seed));
            let mut naive = Topology::new(n_nodes);
            let mut rng = SeedTree::new(seed).branch("unit-disk").rng();
            for i in 0..n_nodes {
                let pos = (rng.gen_range(0.0..side), rng.gen_range(0.0..side));
                naive.set_position(n(i as u32), pos);
            }
            for i in 0..n_nodes {
                for j in (i + 1)..n_nodes {
                    if naive.distance(n(i as u32), n(j as u32)) <= radius {
                        naive.add_bidirectional(n(i as u32), n(j as u32));
                    }
                }
            }
            assert_eq!(fast, naive, "n={n_nodes} side={side} radius={radius}");
        }
    }

    #[test]
    fn unit_disk_deterministic() {
        let a = unit_disk(20, 5.0, 2.0, SeedTree::new(7));
        let b = unit_disk(20, 5.0, 2.0, SeedTree::new(7));
        assert_eq!(a, b);
        let c = unit_disk(20, 5.0, 2.0, SeedTree::new(8));
        assert_ne!(a, c);
    }

    #[test]
    fn erdos_renyi_extremes() {
        assert_eq!(erdos_renyi(10, 0.0, SeedTree::new(1)).edge_count(), 0);
        assert_eq!(erdos_renyi(10, 1.0, SeedTree::new(1)).edge_count(), 90);
    }

    #[test]
    fn erdos_renyi_density_close_to_p() {
        let t = erdos_renyi(60, 0.3, SeedTree::new(2));
        let pairs = 60.0 * 59.0 / 2.0;
        let density = (t.edge_count() as f64 / 2.0) / pairs;
        assert!((density - 0.3).abs() < 0.06, "density {density}");
    }

    #[test]
    fn asymmetric_disk_has_oneway_links() {
        let t = asymmetric_disk(40, 10.0, 1.0, 5.0, SeedTree::new(3));
        assert!(!t.is_symmetric(), "expected some one-way links");
        // Every edge still respects the transmitter's range ordering:
        // v hears u => dist <= r_max.
        for (u, v) in t.edges() {
            assert!(t.distance(u, v) <= 5.0);
        }
    }

    #[test]
    fn asymmetric_disk_equal_ranges_is_symmetric() {
        let t = asymmetric_disk(20, 5.0, 2.0, 2.0, SeedTree::new(4));
        assert!(t.is_symmetric());
    }
}
