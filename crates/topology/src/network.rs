//! The complete M²HeW network: communication graph ⊗ channel availability.
//!
//! A [`Network`] is the ground truth a simulation runs against: who can
//! hear whom on which channel, and therefore exactly which `(neighbor,
//! common channels)` pairs a correct neighbor-discovery run must output.
//! It also computes the paper's complexity parameters `S`, `Δ` and `ρ`.

use crate::event::NetworkEvent;
use crate::graph::Topology;
use crate::node::NodeId;
use mmhew_spectrum::{ChannelId, ChannelSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-channel propagation behaviour.
///
/// The paper's base model assumes all channels propagate identically, so a
/// link operating on one common channel operates on all of them
/// (`Uniform`). The diverse-propagation extension (conclusion item (c),
/// experiment E14) gives each channel its own maximum range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Propagation {
    /// All channels have identical propagation: `span(u,v) = A(u) ∩ A(v)`.
    Uniform,
    /// Channel `c` only carries a link whose endpoints are within
    /// `ranges[c]` of each other (higher frequencies die sooner).
    PerChannelRange {
        /// Max link distance per channel, indexed by channel.
        ranges: Vec<f64>,
    },
}

impl Propagation {
    fn admits(&self, distance: f64, c: ChannelId) -> bool {
        match self {
            Propagation::Uniform => true,
            Propagation::PerChannelRange { ranges } => distance <= ranges[c.index() as usize],
        }
    }
}

/// Errors constructing a [`Network`].
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// The universe has no channels.
    EmptyUniverse,
    /// One availability set per node is required.
    AvailabilityCount {
        /// Sets provided.
        provided: usize,
        /// Nodes in the topology.
        nodes: usize,
    },
    /// An availability set references a channel outside the universe.
    ChannelOutOfUniverse {
        /// Offending node.
        node: NodeId,
        /// Offending channel.
        channel: ChannelId,
    },
    /// Per-channel propagation needs one range per universe channel.
    PropagationCount {
        /// Ranges provided.
        provided: usize,
        /// Universe size.
        universe: u16,
    },
    /// A dynamics event references a node outside the fixed node universe.
    NodeOutOfRange {
        /// Offending node.
        node: NodeId,
        /// Nodes in the network.
        nodes: usize,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::EmptyUniverse => write!(f, "universe has no channels"),
            NetworkError::AvailabilityCount { provided, nodes } => {
                write!(f, "{provided} availability sets for {nodes} nodes")
            }
            NetworkError::ChannelOutOfUniverse { node, channel } => {
                write!(f, "node {node} lists {channel} outside the universe")
            }
            NetworkError::PropagationCount { provided, universe } => {
                write!(f, "{provided} propagation ranges for {universe} channels")
            }
            NetworkError::NodeOutOfRange { node, nodes } => {
                write!(f, "event references {node} in a {nodes}-node network")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// A directed discovery obligation: receiver `to` must learn about
/// transmitter `from` (the paper's link `(from, to)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Link {
    /// Transmitting endpoint.
    pub from: NodeId,
    /// Receiving endpoint (the node that must make the discovery).
    pub to: NodeId,
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}→{})", self.from, self.to)
    }
}

/// An M²HeW network: topology, universe, per-node availability, and
/// propagation — plus precomputed per-channel adjacency and the paper's
/// parameters.
///
/// # Examples
///
/// ```
/// use mmhew_topology::{generators, Network, Propagation};
/// use mmhew_spectrum::ChannelSet;
///
/// // Two nodes sharing channel 1 only.
/// let topo = generators::line(2);
/// let avail = vec![
///     [0u16, 1].into_iter().collect::<ChannelSet>(),
///     [1u16, 2].into_iter().collect(),
/// ];
/// let net = Network::new(topo, 3, avail, Propagation::Uniform)?;
/// assert_eq!(net.s_max(), 2);
/// assert_eq!(net.max_degree(), 1);
/// assert!((net.rho() - 0.5).abs() < 1e-12);
/// assert_eq!(net.links().len(), 2);
/// # Ok::<(), mmhew_topology::NetworkError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(from = "NetworkWire")]
pub struct Network {
    topology: Topology,
    universe: u16,
    availability: Vec<ChannelSet>,
    propagation: Propagation,
    /// `neighbors_on[u][c]` = in-neighbors `v` of `u` with `c ∈ span(v,u)`.
    neighbors_on: Vec<Vec<Vec<NodeId>>>,
    links: Vec<Link>,
    /// `receivers_on[v][c]` = out-neighbors `u` of `v` with `c ∈ span(v,u)`,
    /// ascending — the transmitter-centric mirror of `neighbors_on`, so the
    /// hot slot-resolution path can walk only the (few) transmitters.
    /// Derived state, canonically rebuilt from `neighbors_on`; skipped on
    /// the wire to keep the serialized shape unchanged.
    #[serde(skip)]
    receivers_on: Vec<Vec<Vec<NodeId>>>,
}

/// On-the-wire shape of [`Network`]: every stored field except the derived
/// transmitter-centric adjacency, which is rebuilt on deserialization.
#[derive(Deserialize)]
struct NetworkWire {
    topology: Topology,
    universe: u16,
    availability: Vec<ChannelSet>,
    propagation: Propagation,
    neighbors_on: Vec<Vec<Vec<NodeId>>>,
    links: Vec<Link>,
}

impl From<NetworkWire> for Network {
    fn from(w: NetworkWire) -> Self {
        let receivers_on = Network::receivers_from_neighbors(&w.neighbors_on, w.universe);
        Network {
            topology: w.topology,
            universe: w.universe,
            availability: w.availability,
            propagation: w.propagation,
            neighbors_on: w.neighbors_on,
            links: w.links,
            receivers_on,
        }
    }
}

impl Network {
    /// Assembles and validates a network.
    ///
    /// # Errors
    ///
    /// See [`NetworkError`] for each validation failure.
    pub fn new(
        topology: Topology,
        universe: u16,
        availability: Vec<ChannelSet>,
        propagation: Propagation,
    ) -> Result<Self, NetworkError> {
        if universe == 0 {
            return Err(NetworkError::EmptyUniverse);
        }
        let n = topology.node_count();
        if availability.len() != n {
            return Err(NetworkError::AvailabilityCount {
                provided: availability.len(),
                nodes: n,
            });
        }
        for (i, set) in availability.iter().enumerate() {
            if let Some(c) = set.max_channel() {
                if c.index() >= universe {
                    return Err(NetworkError::ChannelOutOfUniverse {
                        node: NodeId::new(i as u32),
                        channel: c,
                    });
                }
            }
        }
        if let Propagation::PerChannelRange { ranges } = &propagation {
            if ranges.len() != universe as usize {
                return Err(NetworkError::PropagationCount {
                    provided: ranges.len(),
                    universe,
                });
            }
        }

        // Precompute per-channel in-neighbor lists and the link inventory.
        let mut neighbors_on = vec![vec![Vec::new(); universe as usize]; n];
        let mut links = Vec::new();
        for u in topology.nodes() {
            for &v in topology.in_neighbors(u) {
                let mut any = false;
                for c in availability[v.as_usize()]
                    .intersection(&availability[u.as_usize()])
                    .iter()
                {
                    if propagation.admits(topology.distance(v, u), c) {
                        neighbors_on[u.as_usize()][c.index() as usize].push(v);
                        any = true;
                    }
                }
                if any {
                    links.push(Link { from: v, to: u });
                }
            }
        }
        links.sort();
        let receivers_on = Self::receivers_from_neighbors(&neighbors_on, universe);

        Ok(Self {
            topology,
            universe,
            availability,
            propagation,
            neighbors_on,
            links,
            receivers_on,
        })
    }

    /// Canonical construction of the transmitter-centric adjacency:
    /// inverting `neighbors_on` with receivers visited in ascending order
    /// leaves every `receivers_on[v][c]` sorted by receiver index. Both
    /// `new` and `refresh_receivers` funnel through this, so an
    /// incrementally maintained network compares equal to a scratch
    /// rebuild.
    fn receivers_from_neighbors(
        neighbors_on: &[Vec<Vec<NodeId>>],
        universe: u16,
    ) -> Vec<Vec<Vec<NodeId>>> {
        let mut receivers = vec![vec![Vec::new(); universe as usize]; neighbors_on.len()];
        for (u, row) in neighbors_on.iter().enumerate() {
            for (c, vs) in row.iter().enumerate() {
                for &v in vs {
                    receivers[v.as_usize()][c].push(NodeId::new(u as u32));
                }
            }
        }
        receivers
    }

    /// Applies one [`NetworkEvent`], incrementally recomputing the
    /// per-channel adjacency and link inventory — and therefore `S`, `Δ`
    /// and `ρ`, which are derived from them on demand. Only the
    /// `neighbors_on` rows whose inputs changed are rebuilt; untouched
    /// receivers keep their lists (and their deterministic ordering)
    /// bit-for-bit.
    ///
    /// The node universe is fixed: `NodeJoin` reactivates a known index
    /// (overwriting its position and availability), it never grows the
    /// network. Redundant events (removing an absent edge, losing a
    /// channel not held) are no-ops, so generators need not deduplicate.
    ///
    /// # Errors
    ///
    /// [`NetworkError::NodeOutOfRange`] if the event references a node
    /// index `≥ node_count()`, [`NetworkError::ChannelOutOfUniverse`] if
    /// it references a channel outside the universe. The network is
    /// unmodified on error.
    pub fn apply(&mut self, event: &NetworkEvent) -> Result<(), NetworkError> {
        match event {
            NetworkEvent::NodeJoin {
                node,
                position,
                available,
            } => {
                self.check_node(*node)?;
                if let Some(c) = available.max_channel() {
                    if c.index() >= self.universe {
                        return Err(NetworkError::ChannelOutOfUniverse {
                            node: *node,
                            channel: c,
                        });
                    }
                }
                self.topology.set_position(*node, *position);
                self.availability[node.as_usize()] = available.clone();
                // Position and availability both feed every link at `node`
                // (in either direction), so refresh it and everyone who
                // hears it.
                let mut touched = vec![*node];
                touched.extend_from_slice(self.topology.out_neighbors(*node));
                self.refresh_receivers(&touched);
            }
            NetworkEvent::NodeLeave { node } => {
                self.check_node(*node)?;
                let mut touched = vec![*node];
                touched.extend_from_slice(self.topology.out_neighbors(*node));
                self.topology.remove_incident(*node);
                self.refresh_receivers(&touched);
            }
            NetworkEvent::EdgeAdd { from, to } => {
                self.check_node(*from)?;
                self.check_node(*to)?;
                self.topology.add_edge(*from, *to);
                self.refresh_receivers(&[*to]);
            }
            NetworkEvent::EdgeRemove { from, to } => {
                self.check_node(*from)?;
                self.check_node(*to)?;
                self.topology.remove_edge(*from, *to);
                self.refresh_receivers(&[*to]);
            }
            NetworkEvent::ChannelGained { node, channel }
            | NetworkEvent::ChannelLost { node, channel } => {
                self.check_node(*node)?;
                if channel.index() >= self.universe {
                    return Err(NetworkError::ChannelOutOfUniverse {
                        node: *node,
                        channel: *channel,
                    });
                }
                match event {
                    NetworkEvent::ChannelGained { .. } => {
                        self.availability[node.as_usize()].insert(*channel);
                    }
                    _ => {
                        self.availability[node.as_usize()].remove(*channel);
                    }
                }
                // A(node) feeds node's own row and the row of every node
                // that hears it.
                let mut touched = vec![*node];
                touched.extend_from_slice(self.topology.out_neighbors(*node));
                self.refresh_receivers(&touched);
            }
        }
        Ok(())
    }

    fn check_node(&self, node: NodeId) -> Result<(), NetworkError> {
        if node.as_usize() >= self.node_count() {
            return Err(NetworkError::NodeOutOfRange {
                node,
                nodes: self.node_count(),
            });
        }
        Ok(())
    }

    /// Rebuilds `neighbors_on[u]` for each touched receiver `u` and swaps
    /// their entries in the sorted link inventory.
    fn refresh_receivers(&mut self, receivers: &[NodeId]) {
        let touched: std::collections::BTreeSet<NodeId> = receivers.iter().copied().collect();
        for &u in &touched {
            let mut row = vec![Vec::new(); self.universe as usize];
            for &v in self.topology.in_neighbors(u) {
                for c in self.availability[v.as_usize()]
                    .intersection(&self.availability[u.as_usize()])
                    .iter()
                {
                    if self.propagation.admits(self.topology.distance(v, u), c) {
                        row[c.index() as usize].push(v);
                    }
                }
            }
            self.neighbors_on[u.as_usize()] = row;
        }
        self.links.retain(|l| !touched.contains(&l.to));
        for &u in &touched {
            let mut froms: std::collections::BTreeSet<NodeId> = std::collections::BTreeSet::new();
            for per_chan in &self.neighbors_on[u.as_usize()] {
                froms.extend(per_chan.iter().copied());
            }
            self.links
                .extend(froms.into_iter().map(|v| Link { from: v, to: u }));
        }
        self.links.sort();
        // Dynamics events are rare relative to slots, so the
        // transmitter-centric mirror is rebuilt wholesale — the only way to
        // stay canonical when a receiver's refreshed row may add or drop
        // entries anywhere in other nodes' receiver lists.
        self.receivers_on = Self::receivers_from_neighbors(&self.neighbors_on, self.universe);
    }

    /// The underlying communication graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of nodes (`N`).
    pub fn node_count(&self) -> usize {
        self.topology.node_count()
    }

    /// Size of the universal channel set.
    pub fn universe_size(&self) -> u16 {
        self.universe
    }

    /// The available channel set `A(u)`.
    pub fn available(&self, u: NodeId) -> &ChannelSet {
        &self.availability[u.as_usize()]
    }

    /// The propagation model.
    pub fn propagation(&self) -> &Propagation {
        &self.propagation
    }

    /// In-neighbors of `u` on channel `c`: the nodes whose transmissions on
    /// `c` reach (and can collide at) `u`.
    pub fn neighbors_on(&self, u: NodeId, c: ChannelId) -> &[NodeId] {
        &self.neighbors_on[u.as_usize()][c.index() as usize]
    }

    /// Out-neighbors of `v` on channel `c`: the nodes a transmission by `v`
    /// on `c` reaches, ascending. The transmitter-centric mirror of
    /// [`neighbors_on`](Self::neighbors_on): `u ∈ receivers_on(v, c)` iff
    /// `v ∈ neighbors_on(u, c)`.
    pub fn receivers_on(&self, v: NodeId, c: ChannelId) -> &[NodeId] {
        &self.receivers_on[v.as_usize()][c.index() as usize]
    }

    /// The span of the directed link `from → to`: channels on which `to`
    /// can hear `from`.
    pub fn span(&self, from: NodeId, to: NodeId) -> ChannelSet {
        self.neighbors_on[to.as_usize()]
            .iter()
            .enumerate()
            .filter(|(_, vs)| vs.contains(&from))
            .map(|(c, _)| ChannelId::new(c as u16))
            .collect()
    }

    /// All discovery obligations: directed links with non-empty span,
    /// sorted.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The degree `Δ(u, c)` — number of neighbors of `u` on channel `c`.
    pub fn degree_on(&self, u: NodeId, c: ChannelId) -> usize {
        self.neighbors_on(u, c).len()
    }

    /// `S`: size of the largest available channel set.
    pub fn s_max(&self) -> usize {
        self.availability
            .iter()
            .map(ChannelSet::len)
            .max()
            .unwrap_or(0)
    }

    /// `Δ`: maximum degree of any node on any channel.
    pub fn max_degree(&self) -> usize {
        self.neighbors_on
            .iter()
            .flat_map(|per_chan| per_chan.iter().map(Vec::len))
            .max()
            .unwrap_or(0)
    }

    /// `ρ`: minimum span-ratio over all links — `|span(v,u)| / |A(u)|`,
    /// minimized over directed links `(v, u)`. Returns 1.0 for a network
    /// with no links (vacuous minimum, and the best case for the bounds).
    pub fn rho(&self) -> f64 {
        self.links
            .iter()
            .map(|l| {
                let span = self.span(l.from, l.to).len() as f64;
                let a = self.available(l.to).len() as f64;
                span / a
            })
            .fold(f64::INFINITY, f64::min)
            .min(1.0)
    }

    /// Ground truth for node `u`: every `(neighbor, common channel set)`
    /// pair a correct discovery run must report. The common set is
    /// `A(v) ∩ A(u)` — what `u` computes from `v`'s beacon — even when
    /// diverse propagation makes the usable span smaller.
    pub fn expected_discovery(&self, u: NodeId) -> Vec<(NodeId, ChannelSet)> {
        let mut out: Vec<(NodeId, ChannelSet)> = self
            .links
            .iter()
            .filter(|l| l.to == u)
            .map(|l| {
                (
                    l.from,
                    self.available(l.from).intersection(self.available(u)),
                )
            })
            .collect();
        out.sort_by_key(|(v, _)| *v);
        out
    }

    /// Nodes with no discovery obligations toward them (no in-links).
    pub fn isolated_receivers(&self) -> Vec<NodeId> {
        let mut has_in = vec![false; self.node_count()];
        for l in &self.links {
            has_in[l.to.as_usize()] = true;
        }
        has_in
            .iter()
            .enumerate()
            .filter(|(_, &h)| !h)
            .map(|(i, _)| NodeId::new(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn cs(xs: &[u16]) -> ChannelSet {
        xs.iter().copied().collect()
    }

    fn two_node_net(a0: &[u16], a1: &[u16], universe: u16) -> Network {
        Network::new(
            generators::line(2),
            universe,
            vec![cs(a0), cs(a1)],
            Propagation::Uniform,
        )
        .expect("valid network")
    }

    #[test]
    fn basic_parameters() {
        let net = two_node_net(&[0, 1, 2], &[1, 2], 4);
        assert_eq!(net.s_max(), 3);
        assert_eq!(net.max_degree(), 1);
        assert_eq!(net.span(n(0), n(1)), cs(&[1, 2]));
        // rho = min(|span|/|A(receiver)|) = min(2/2, 2/3) = 2/3.
        assert!((net.rho() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(net.links().len(), 2);
    }

    #[test]
    fn disjoint_availability_removes_link() {
        let net = two_node_net(&[0, 1], &[2, 3], 4);
        assert!(net.links().is_empty());
        assert_eq!(net.rho(), 1.0, "vacuous minimum");
        assert_eq!(net.max_degree(), 0);
        assert_eq!(net.isolated_receivers(), vec![n(0), n(1)]);
    }

    #[test]
    fn degree_counts_per_channel() {
        // Star with hub 0; leaves 1,2 share channel 0 with hub, leaf 3 only
        // channel 1.
        let net = Network::new(
            generators::star(4),
            2,
            vec![cs(&[0, 1]), cs(&[0]), cs(&[0]), cs(&[1])],
            Propagation::Uniform,
        )
        .expect("valid network");
        assert_eq!(net.degree_on(n(0), ChannelId::new(0)), 2);
        assert_eq!(net.degree_on(n(0), ChannelId::new(1)), 1);
        assert_eq!(net.max_degree(), 2);
        assert_eq!(net.neighbors_on(n(0), ChannelId::new(0)), &[n(1), n(2)]);
    }

    #[test]
    fn expected_discovery_ground_truth() {
        let net = Network::new(
            generators::line(3),
            4,
            vec![cs(&[0, 1]), cs(&[1, 2]), cs(&[2, 3])],
            Propagation::Uniform,
        )
        .expect("valid network");
        assert_eq!(
            net.expected_discovery(n(1)),
            vec![(n(0), cs(&[1])), (n(2), cs(&[2]))]
        );
        assert_eq!(net.expected_discovery(n(0)), vec![(n(1), cs(&[1]))]);
        // Non-adjacent nodes never appear even with common channels.
        assert!(net.expected_discovery(n(0)).iter().all(|(v, _)| *v != n(2)));
    }

    #[test]
    fn asymmetric_links() {
        let mut topo = Topology::new(2);
        topo.add_edge(n(0), n(1)); // only 1 hears 0
        let net = Network::new(topo, 2, vec![cs(&[0]), cs(&[0])], Propagation::Uniform)
            .expect("valid network");
        assert_eq!(
            net.links(),
            &[Link {
                from: n(0),
                to: n(1)
            }]
        );
        assert!(net.expected_discovery(n(0)).is_empty());
        assert_eq!(net.expected_discovery(n(1)).len(), 1);
    }

    #[test]
    fn per_channel_propagation_prunes_spans() {
        // Nodes 3.0 apart; channel 0 reaches 5.0, channel 1 only 2.0.
        let mut topo = Topology::new(2);
        topo.set_position(n(0), (0.0, 0.0));
        topo.set_position(n(1), (3.0, 0.0));
        topo.add_bidirectional(n(0), n(1));
        let net = Network::new(
            topo,
            2,
            vec![cs(&[0, 1]), cs(&[0, 1])],
            Propagation::PerChannelRange {
                ranges: vec![5.0, 2.0],
            },
        )
        .expect("valid network");
        assert_eq!(net.span(n(0), n(1)), cs(&[0]));
        // rho uses the pruned span: 1/2.
        assert!((net.rho() - 0.5).abs() < 1e-12);
        // But the reported common set is the full intersection.
        assert_eq!(net.expected_discovery(n(1)), vec![(n(0), cs(&[0, 1]))]);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            Network::new(generators::line(2), 0, vec![], Propagation::Uniform),
            Err(NetworkError::EmptyUniverse)
        );
        assert!(matches!(
            Network::new(generators::line(2), 2, vec![cs(&[0])], Propagation::Uniform),
            Err(NetworkError::AvailabilityCount {
                provided: 1,
                nodes: 2
            })
        ));
        assert!(matches!(
            Network::new(
                generators::line(2),
                2,
                vec![cs(&[0]), cs(&[5])],
                Propagation::Uniform
            ),
            Err(NetworkError::ChannelOutOfUniverse { .. })
        ));
        assert!(matches!(
            Network::new(
                generators::line(2),
                2,
                vec![cs(&[0]), cs(&[1])],
                Propagation::PerChannelRange { ranges: vec![1.0] }
            ),
            Err(NetworkError::PropagationCount { .. })
        ));
    }

    /// Rebuilds a network from scratch out of the mutated state; since the
    /// inputs are identical, every derived structure must match the
    /// incrementally maintained one bit-for-bit.
    fn rebuilt(net: &Network) -> Network {
        let avail: Vec<ChannelSet> = (0..net.node_count())
            .map(|i| net.available(n(i as u32)).clone())
            .collect();
        Network::new(
            net.topology().clone(),
            net.universe_size(),
            avail,
            net.propagation().clone(),
        )
        .expect("mutated state stays valid")
    }

    #[test]
    fn apply_edge_events_match_scratch_rebuild() {
        let mut net = Network::new(
            generators::star(4),
            3,
            vec![cs(&[0, 1]), cs(&[0]), cs(&[0, 2]), cs(&[1])],
            Propagation::Uniform,
        )
        .expect("valid network");
        net.apply(&NetworkEvent::EdgeAdd {
            from: n(1),
            to: n(2),
        })
        .expect("apply");
        net.apply(&NetworkEvent::EdgeRemove {
            from: n(3),
            to: n(0),
        })
        .expect("apply");
        assert_eq!(net, rebuilt(&net));
        // Removing an absent edge is a no-op, not an error.
        let before = net.clone();
        net.apply(&NetworkEvent::EdgeRemove {
            from: n(3),
            to: n(0),
        })
        .expect("apply");
        assert_eq!(net, before);
    }

    #[test]
    fn apply_channel_events_update_spans_and_params() {
        let mut net = two_node_net(&[0, 1], &[0], 4);
        assert_eq!(net.span(n(0), n(1)), cs(&[0]));
        net.apply(&NetworkEvent::ChannelGained {
            node: n(1),
            channel: ChannelId::new(1),
        })
        .expect("apply");
        assert_eq!(net.span(n(0), n(1)), cs(&[0, 1]));
        assert_eq!(net.s_max(), 2);
        net.apply(&NetworkEvent::ChannelLost {
            node: n(1),
            channel: ChannelId::new(0),
        })
        .expect("apply");
        net.apply(&NetworkEvent::ChannelLost {
            node: n(1),
            channel: ChannelId::new(1),
        })
        .expect("apply");
        // Last common channel gone: the link (in both directions) vanishes.
        assert!(net.links().is_empty());
        assert_eq!(net.max_degree(), 0);
        assert_eq!(net, rebuilt(&net));
        // Regain one: the link reappears.
        net.apply(&NetworkEvent::ChannelGained {
            node: n(1),
            channel: ChannelId::new(1),
        })
        .expect("apply");
        assert_eq!(net.links().len(), 2);
        assert_eq!(net.span(n(1), n(0)), cs(&[1]));
        assert_eq!(net, rebuilt(&net));
    }

    #[test]
    fn apply_leave_and_rejoin() {
        let mut net = Network::new(
            generators::complete(3),
            2,
            vec![cs(&[0, 1]), cs(&[0, 1]), cs(&[0, 1])],
            Propagation::Uniform,
        )
        .expect("valid network");
        assert_eq!(net.links().len(), 6);
        net.apply(&NetworkEvent::NodeLeave { node: n(2) })
            .expect("apply");
        assert_eq!(net.links().len(), 2, "only 0↔1 remains");
        assert!(net.isolated_receivers().contains(&n(2)));
        assert_eq!(net, rebuilt(&net));
        // Rejoin with a narrower availability and restore its edges.
        net.apply(&NetworkEvent::NodeJoin {
            node: n(2),
            position: net.topology().position(n(2)),
            available: cs(&[1]),
        })
        .expect("apply");
        for (a, b) in [(0, 2), (1, 2)] {
            net.apply(&NetworkEvent::EdgeAdd {
                from: n(a),
                to: n(b),
            })
            .expect("apply");
            net.apply(&NetworkEvent::EdgeAdd {
                from: n(b),
                to: n(a),
            })
            .expect("apply");
        }
        assert_eq!(net.links().len(), 6);
        assert_eq!(net.span(n(0), n(2)), cs(&[1]));
        assert_eq!(net, rebuilt(&net));
    }

    #[test]
    fn receivers_on_mirrors_neighbors_on() {
        let mut net = Network::new(
            generators::star(4),
            3,
            vec![cs(&[0, 1]), cs(&[0]), cs(&[0, 2]), cs(&[1])],
            Propagation::Uniform,
        )
        .expect("valid network");
        let mirror_holds = |net: &Network| {
            for u in 0..net.node_count() as u32 {
                for c in 0..net.universe_size() {
                    let c = ChannelId::new(c);
                    let rx = net.receivers_on(n(u), c);
                    assert!(rx.windows(2).all(|w| w[0] < w[1]), "ascending receivers");
                    for v in 0..net.node_count() as u32 {
                        assert_eq!(
                            rx.contains(&n(v)),
                            net.neighbors_on(n(v), c).contains(&n(u)),
                            "mirror property for tx n{u} rx n{v} on {c}"
                        );
                    }
                }
            }
        };
        mirror_holds(&net);
        assert_eq!(net.receivers_on(n(0), ChannelId::new(0)), &[n(1), n(2)]);
        // The mirror must follow every class of dynamics event.
        net.apply(&NetworkEvent::ChannelLost {
            node: n(2),
            channel: ChannelId::new(0),
        })
        .expect("apply");
        mirror_holds(&net);
        net.apply(&NetworkEvent::EdgeAdd {
            from: n(1),
            to: n(3),
        })
        .expect("apply");
        mirror_holds(&net);
        net.apply(&NetworkEvent::NodeLeave { node: n(1) })
            .expect("apply");
        mirror_holds(&net);
        assert_eq!(net, rebuilt(&net));
    }

    #[test]
    fn apply_rejects_out_of_range() {
        let mut net = two_node_net(&[0], &[0], 2);
        let before = net.clone();
        assert!(matches!(
            net.apply(&NetworkEvent::NodeLeave { node: n(9) }),
            Err(NetworkError::NodeOutOfRange { nodes: 2, .. })
        ));
        assert!(matches!(
            net.apply(&NetworkEvent::ChannelGained {
                node: n(0),
                channel: ChannelId::new(7),
            }),
            Err(NetworkError::ChannelOutOfUniverse { .. })
        ));
        assert!(matches!(
            net.apply(&NetworkEvent::NodeJoin {
                node: n(1),
                position: (0.0, 0.0),
                available: cs(&[5]),
            }),
            Err(NetworkError::ChannelOutOfUniverse { .. })
        ));
        assert_eq!(net, before, "failed events leave the network untouched");
    }

    #[test]
    fn error_display() {
        let e = NetworkError::ChannelOutOfUniverse {
            node: n(3),
            channel: ChannelId::new(9),
        };
        assert!(e.to_string().contains("n3"));
        assert!(e.to_string().contains("ch9"));
    }

    #[test]
    fn link_display_and_order() {
        let l = Link {
            from: n(2),
            to: n(5),
        };
        assert_eq!(l.to_string(), "(n2→n5)");
        let net = two_node_net(&[0], &[0], 1);
        assert_eq!(
            net.links(),
            &[
                Link {
                    from: n(0),
                    to: n(1)
                },
                Link {
                    from: n(1),
                    to: n(0)
                }
            ]
        );
    }
}
