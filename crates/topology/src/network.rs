//! The complete M²HeW network: communication graph ⊗ channel availability.
//!
//! A [`Network`] is the ground truth a simulation runs against: who can
//! hear whom on which channel, and therefore exactly which `(neighbor,
//! common channels)` pairs a correct neighbor-discovery run must output.
//! It also computes the paper's complexity parameters `S`, `Δ` and `ρ`.
//!
//! # Memory layout
//!
//! Per-channel adjacency is stored as two-level CSR ([`ChannelCsr`]): one
//! flat `Vec<NodeId>` of ids per direction plus an offset array of length
//! `N·S + 1`, so `neighbors_on(u, c)` / `receivers_on(v, c)` are O(1)
//! slice carves with no pointer chasing. Availability lives in a flat
//! [`AvailabilityArena`] (one `u64` allocation for all nodes), and
//! [`Network::available`] returns a borrowed [`ChannelSetRef`] view. The
//! read surface is bundled as [`TopologyView`](crate::TopologyView)
//! ([`Network::view`]). Dynamics events recompute only the touched CSR
//! rows and compact into persistent double buffers — zero steady-state
//! allocation, covered by the engine's churn allocation audit.

use crate::event::NetworkEvent;
use crate::graph::Topology;
use crate::node::NodeId;
use mmhew_spectrum::{AvailabilityArena, ChannelId, ChannelSet, ChannelSetRef};
use serde::ser::SerializeStruct;
use serde::{Deserialize, Serialize, Serializer};
use std::fmt;

/// Per-channel propagation behaviour.
///
/// The paper's base model assumes all channels propagate identically, so a
/// link operating on one common channel operates on all of them
/// (`Uniform`). The diverse-propagation extension (conclusion item (c),
/// experiment E14) gives each channel its own maximum range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Propagation {
    /// All channels have identical propagation: `span(u,v) = A(u) ∩ A(v)`.
    Uniform,
    /// Channel `c` only carries a link whose endpoints are within
    /// `ranges[c]` of each other (higher frequencies die sooner).
    PerChannelRange {
        /// Max link distance per channel, indexed by channel.
        ranges: Vec<f64>,
    },
}

impl Propagation {
    fn admits(&self, distance: f64, c: ChannelId) -> bool {
        match self {
            Propagation::Uniform => true,
            Propagation::PerChannelRange { ranges } => distance <= ranges[c.index() as usize],
        }
    }
}

/// Errors constructing a [`Network`].
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// The universe has no channels.
    EmptyUniverse,
    /// One availability set per node is required.
    AvailabilityCount {
        /// Sets provided.
        provided: usize,
        /// Nodes in the topology.
        nodes: usize,
    },
    /// An availability set references a channel outside the universe.
    ChannelOutOfUniverse {
        /// Offending node.
        node: NodeId,
        /// Offending channel.
        channel: ChannelId,
    },
    /// Per-channel propagation needs one range per universe channel.
    PropagationCount {
        /// Ranges provided.
        provided: usize,
        /// Universe size.
        universe: u16,
    },
    /// A dynamics event references a node outside the fixed node universe.
    NodeOutOfRange {
        /// Offending node.
        node: NodeId,
        /// Nodes in the network.
        nodes: usize,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::EmptyUniverse => write!(f, "universe has no channels"),
            NetworkError::AvailabilityCount { provided, nodes } => {
                write!(f, "{provided} availability sets for {nodes} nodes")
            }
            NetworkError::ChannelOutOfUniverse { node, channel } => {
                write!(f, "node {node} lists {channel} outside the universe")
            }
            NetworkError::PropagationCount { provided, universe } => {
                write!(f, "{provided} propagation ranges for {universe} channels")
            }
            NetworkError::NodeOutOfRange { node, nodes } => {
                write!(f, "event references {node} in a {nodes}-node network")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// A directed discovery obligation: receiver `to` must learn about
/// transmitter `from` (the paper's link `(from, to)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Link {
    /// Transmitting endpoint.
    pub from: NodeId,
    /// Receiving endpoint (the node that must make the discovery).
    pub to: NodeId,
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}→{})", self.from, self.to)
    }
}

/// Two-level compressed-sparse-row adjacency: for each `(node, channel)`
/// cell, a contiguous slice of a single flat id vector.
///
/// ```text
/// starts: [ s(0,0) s(0,1) … s(0,S-1) s(1,0) … s(N-1,S-1) end ]   (N·S + 1)
/// ids:    [ … row(0,0) … row(0,1) … … row(N-1,S-1) … ]
/// row(u,c) = ids[starts[u·S + c] .. starts[u·S + c + 1]]
/// ```
///
/// Row contents preserve the deterministic construction order (topology
/// neighbor-list order for the receiver-centric direction, ascending
/// receiver index for the transmitter-centric mirror), so CSR carves are
/// byte-identical to the nested `Vec<Vec<Vec<NodeId>>>` they replaced.
#[derive(Debug, Clone, PartialEq)]
struct ChannelCsr {
    universe: usize,
    /// Length `node_count * universe + 1`; `u32` offsets (a network is
    /// rejected by construction well before 2³² adjacency entries).
    starts: Vec<u32>,
    ids: Vec<NodeId>,
}

impl ChannelCsr {
    fn node_count(&self) -> usize {
        (self.starts.len() - 1) / self.universe.max(1)
    }

    #[inline]
    fn row(&self, node: usize, c: usize) -> &[NodeId] {
        let i = node * self.universe + c;
        &self.ids[self.starts[i] as usize..self.starts[i + 1] as usize]
    }

    /// The maximum row length across all `(node, channel)` cells.
    fn max_row_len(&self) -> usize {
        self.starts
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Rebuilds the nested `[node][channel] -> Vec` shape (the wire
    /// format). Allocates; serialization only.
    fn to_nested(&self) -> Vec<Vec<Vec<NodeId>>> {
        (0..self.node_count())
            .map(|u| {
                (0..self.universe)
                    .map(|c| self.row(u, c).to_vec())
                    .collect()
            })
            .collect()
    }

    /// Packs the nested wire shape into CSR, preserving row order.
    fn from_nested(nested: &[Vec<Vec<NodeId>>], universe: u16) -> Self {
        let universe = universe as usize;
        let mut starts = Vec::with_capacity(nested.len() * universe + 1);
        let mut ids = Vec::new();
        starts.push(0);
        for row in nested {
            debug_assert_eq!(row.len(), universe);
            for cell in row {
                ids.extend_from_slice(cell);
                starts.push(ids.len() as u32);
            }
        }
        Self {
            universe,
            starts,
            ids,
        }
    }

    /// The transmitter-centric mirror by counting sort: visiting rows in
    /// `(u asc, c asc)` order leaves every mirrored row ascending in `u` —
    /// the canonical `receivers_on` ordering.
    fn invert(&self) -> ChannelCsr {
        let n = self.node_count();
        let s = self.universe;
        let mut counts = vec![0u32; n * s];
        for u in 0..n {
            for c in 0..s {
                for &v in self.row(u, c) {
                    counts[v.as_usize() * s + c] += 1;
                }
            }
        }
        let mut starts = Vec::with_capacity(n * s + 1);
        starts.push(0u32);
        let mut acc = 0u32;
        for &cnt in &counts {
            acc += cnt;
            starts.push(acc);
        }
        let mut cursor: Vec<u32> = starts[..n * s].to_vec();
        let mut ids = vec![NodeId::new(0); acc as usize];
        for u in 0..n {
            for c in 0..s {
                for &v in self.row(u, c) {
                    let k = v.as_usize() * s + c;
                    ids[cursor[k] as usize] = NodeId::new(u as u32);
                    cursor[k] += 1;
                }
            }
        }
        ChannelCsr {
            universe: s,
            starts,
            ids,
        }
    }
}

/// Persistent scratch for [`Network::apply`]: every buffer survives
/// between events, so a steady stream of dynamics events performs zero
/// heap allocation once the buffers have grown to the network's size
/// (asserted by the engine's churn allocation audit). Replaces the former
/// per-event `BTreeSet` + nested-`Vec` churn.
#[derive(Debug, Clone, Default)]
struct ApplyScratch {
    /// Touched receiver rows, sorted + deduped per event.
    touched: Vec<NodeId>,
    /// Recomputed rows for the touched nodes, flat in touched order.
    stage_ids: Vec<NodeId>,
    /// Per-channel widths of each staged block (`touched.len() * S`).
    stage_widths: Vec<u32>,
    /// One node's per-channel width tally (`S`).
    widths: Vec<u32>,
    /// One node's per-channel fill cursors (`S`).
    cursors: Vec<u32>,
    /// Double buffers the compaction writes into, then swaps live.
    ids_buf: Vec<NodeId>,
    starts_buf: Vec<u32>,
    /// Distinct link sources for one touched receiver.
    froms: Vec<NodeId>,
    /// Counting-sort tallies/cursors for the mirror rebuild (`N * S`).
    counts: Vec<u32>,
}

/// An M²HeW network: topology, universe, per-node availability, and
/// propagation — plus precomputed per-channel adjacency and the paper's
/// parameters.
///
/// # Examples
///
/// ```
/// use mmhew_topology::{generators, Network, Propagation};
/// use mmhew_spectrum::ChannelSet;
///
/// // Two nodes sharing channel 1 only.
/// let topo = generators::line(2);
/// let avail = vec![
///     [0u16, 1].into_iter().collect::<ChannelSet>(),
///     [1u16, 2].into_iter().collect(),
/// ];
/// let net = Network::new(topo, 3, avail, Propagation::Uniform)?;
/// assert_eq!(net.s_max(), 2);
/// assert_eq!(net.max_degree(), 1);
/// assert!((net.rho() - 0.5).abs() < 1e-12);
/// assert_eq!(net.links().len(), 2);
/// # Ok::<(), mmhew_topology::NetworkError>(())
/// ```
#[derive(Debug, Clone, Deserialize)]
#[serde(from = "NetworkWire")]
pub struct Network {
    topology: Topology,
    universe: u16,
    /// Flat per-node bitsets; [`Self::available`] carves borrowed views.
    availability: AvailabilityArena,
    propagation: Propagation,
    /// `neighbors.row(u, c)` = in-neighbors `v` of `u` with `c ∈ span(v,u)`.
    neighbors: ChannelCsr,
    links: Vec<Link>,
    /// `receivers.row(v, c)` = out-neighbors `u` of `v` with `c ∈ span(v,u)`,
    /// ascending — the transmitter-centric mirror of `neighbors`, so the
    /// hot slot-resolution path can walk only the (few) transmitters.
    /// Derived state, canonically rebuilt from `neighbors`; skipped on the
    /// wire to keep the serialized shape unchanged.
    receivers: ChannelCsr,
    scratch: ApplyScratch,
}

/// Scratch state is execution residue, not network identity: equality
/// compares the topology, spectrum, adjacency and links only, so an
/// incrementally maintained network equals a scratch rebuild.
impl PartialEq for Network {
    fn eq(&self, other: &Self) -> bool {
        self.topology == other.topology
            && self.universe == other.universe
            && self.availability == other.availability
            && self.propagation == other.propagation
            && self.neighbors == other.neighbors
            && self.links == other.links
            && self.receivers == other.receivers
    }
}

/// Serializes the exact wire shape the former nested representation had
/// (field names, order, and nested `neighbors_on` lists), so manifests and
/// scenario files are byte-identical across the CSR migration.
impl Serialize for Network {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("Network", 6)?;
        st.serialize_field("topology", &self.topology)?;
        st.serialize_field("universe", &self.universe)?;
        st.serialize_field("availability", &self.availability.to_sets())?;
        st.serialize_field("propagation", &self.propagation)?;
        st.serialize_field("neighbors_on", &self.neighbors.to_nested())?;
        st.serialize_field("links", &self.links)?;
        st.end()
    }
}

/// On-the-wire shape of [`Network`]: every serialized field, with the
/// adjacency in its historical nested form. The derived transmitter-centric
/// mirror is rebuilt on deserialization.
#[derive(Deserialize)]
struct NetworkWire {
    topology: Topology,
    universe: u16,
    availability: Vec<ChannelSet>,
    propagation: Propagation,
    neighbors_on: Vec<Vec<Vec<NodeId>>>,
    links: Vec<Link>,
}

impl From<NetworkWire> for Network {
    fn from(w: NetworkWire) -> Self {
        let neighbors = ChannelCsr::from_nested(&w.neighbors_on, w.universe);
        let receivers = neighbors.invert();
        Network {
            topology: w.topology,
            universe: w.universe,
            availability: AvailabilityArena::from_sets(&w.availability, w.universe),
            propagation: w.propagation,
            neighbors,
            links: w.links,
            receivers,
            scratch: ApplyScratch::default(),
        }
    }
}

impl Network {
    /// Assembles and validates a network.
    ///
    /// # Errors
    ///
    /// See [`NetworkError`] for each validation failure.
    pub fn new(
        topology: Topology,
        universe: u16,
        availability: Vec<ChannelSet>,
        propagation: Propagation,
    ) -> Result<Self, NetworkError> {
        if universe == 0 {
            return Err(NetworkError::EmptyUniverse);
        }
        let n = topology.node_count();
        if availability.len() != n {
            return Err(NetworkError::AvailabilityCount {
                provided: availability.len(),
                nodes: n,
            });
        }
        for (i, set) in availability.iter().enumerate() {
            if let Some(c) = set.max_channel() {
                if c.index() >= universe {
                    return Err(NetworkError::ChannelOutOfUniverse {
                        node: NodeId::new(i as u32),
                        channel: c,
                    });
                }
            }
        }
        if let Propagation::PerChannelRange { ranges } = &propagation {
            if ranges.len() != universe as usize {
                return Err(NetworkError::PropagationCount {
                    provided: ranges.len(),
                    universe,
                });
            }
        }
        let arena = AvailabilityArena::from_sets(&availability, universe);

        // Precompute the per-channel in-neighbor CSR and the link
        // inventory. Per-channel staging keeps the historical row order:
        // within a row, transmitters appear in topology neighbor-list
        // order.
        let s = universe as usize;
        let mut neighbors = ChannelCsr {
            universe: s,
            starts: Vec::with_capacity(n * s + 1),
            ids: Vec::new(),
        };
        neighbors.starts.push(0);
        let mut staging: Vec<Vec<NodeId>> = vec![Vec::new(); s];
        let mut links = Vec::new();
        for u in topology.nodes() {
            for &v in topology.in_neighbors(u) {
                let mut any = false;
                for c in arena.get(v.as_usize()).iter_common(arena.get(u.as_usize())) {
                    if propagation.admits(topology.distance(v, u), c) {
                        staging[c.index() as usize].push(v);
                        any = true;
                    }
                }
                if any {
                    links.push(Link { from: v, to: u });
                }
            }
            for cell in &mut staging {
                neighbors.ids.extend_from_slice(cell);
                neighbors.starts.push(neighbors.ids.len() as u32);
                cell.clear();
            }
        }
        assert!(
            neighbors.ids.len() < u32::MAX as usize,
            "adjacency exceeds u32 CSR offsets"
        );
        links.sort_unstable();
        let receivers = neighbors.invert();

        Ok(Self {
            topology,
            universe,
            availability: arena,
            propagation,
            neighbors,
            links,
            receivers,
            scratch: ApplyScratch::default(),
        })
    }

    /// Applies one [`NetworkEvent`], incrementally recomputing the
    /// per-channel adjacency and link inventory — and therefore `S`, `Δ`
    /// and `ρ`, which are derived from them on demand. Only the CSR rows
    /// whose inputs changed are recomputed; untouched receivers' rows are
    /// block-copied bit-for-bit during compaction, and all intermediate
    /// state lives in persistent scratch (no steady-state allocation).
    ///
    /// The node universe is fixed: `NodeJoin` reactivates a known index
    /// (overwriting its position and availability), it never grows the
    /// network. Redundant events (removing an absent edge, losing a
    /// channel not held) are no-ops, so generators need not deduplicate.
    ///
    /// # Errors
    ///
    /// [`NetworkError::NodeOutOfRange`] if the event references a node
    /// index `≥ node_count()`, [`NetworkError::ChannelOutOfUniverse`] if
    /// it references a channel outside the universe. The network is
    /// unmodified on error.
    pub fn apply(&mut self, event: &NetworkEvent) -> Result<(), NetworkError> {
        match event {
            NetworkEvent::NodeJoin {
                node,
                position,
                available,
            } => {
                self.check_node(*node)?;
                if let Some(c) = available.max_channel() {
                    if c.index() >= self.universe {
                        return Err(NetworkError::ChannelOutOfUniverse {
                            node: *node,
                            channel: c,
                        });
                    }
                }
                self.topology.set_position(*node, *position);
                self.availability.assign(node.as_usize(), available.view());
                // Position and availability both feed every link at `node`
                // (in either direction), so refresh it and everyone who
                // hears it.
                self.scratch.touched.clear();
                self.scratch.touched.push(*node);
                self.scratch
                    .touched
                    .extend_from_slice(self.topology.out_neighbors(*node));
                self.refresh_touched();
            }
            NetworkEvent::NodeLeave { node } => {
                self.check_node(*node)?;
                self.scratch.touched.clear();
                self.scratch.touched.push(*node);
                self.scratch
                    .touched
                    .extend_from_slice(self.topology.out_neighbors(*node));
                self.topology.remove_incident(*node);
                self.refresh_touched();
            }
            NetworkEvent::EdgeAdd { from, to } => {
                self.check_node(*from)?;
                self.check_node(*to)?;
                self.topology.add_edge(*from, *to);
                self.scratch.touched.clear();
                self.scratch.touched.push(*to);
                self.refresh_touched();
            }
            NetworkEvent::EdgeRemove { from, to } => {
                self.check_node(*from)?;
                self.check_node(*to)?;
                self.topology.remove_edge(*from, *to);
                self.scratch.touched.clear();
                self.scratch.touched.push(*to);
                self.refresh_touched();
            }
            NetworkEvent::ChannelGained { node, channel }
            | NetworkEvent::ChannelLost { node, channel } => {
                self.check_node(*node)?;
                if channel.index() >= self.universe {
                    return Err(NetworkError::ChannelOutOfUniverse {
                        node: *node,
                        channel: *channel,
                    });
                }
                match event {
                    NetworkEvent::ChannelGained { .. } => {
                        self.availability.insert(node.as_usize(), *channel);
                    }
                    _ => {
                        self.availability.remove(node.as_usize(), *channel);
                    }
                }
                // A(node) feeds node's own row and the row of every node
                // that hears it.
                self.scratch.touched.clear();
                self.scratch.touched.push(*node);
                self.scratch
                    .touched
                    .extend_from_slice(self.topology.out_neighbors(*node));
                self.refresh_touched();
            }
        }
        Ok(())
    }

    fn check_node(&self, node: NodeId) -> Result<(), NetworkError> {
        if node.as_usize() >= self.node_count() {
            return Err(NetworkError::NodeOutOfRange {
                node,
                nodes: self.node_count(),
            });
        }
        Ok(())
    }

    /// Recomputes the CSR rows of the receivers listed in
    /// `scratch.touched`, compacts both adjacency directions through the
    /// persistent double buffers, and swaps the touched links. Everything
    /// runs out of [`ApplyScratch`]; the only per-entry recomputation is
    /// for the touched rows themselves.
    fn refresh_touched(&mut self) {
        let n = self.node_count();
        let s = self.universe as usize;
        let scratch = &mut self.scratch;
        scratch.touched.sort_unstable();
        scratch.touched.dedup();

        // Stage the recomputed rows of every touched receiver: a widths
        // pass then a cursor-guided fill, both visiting in-neighbors in
        // topology order so row contents match a from-scratch build.
        scratch.stage_ids.clear();
        scratch.stage_widths.clear();
        scratch.widths.resize(s, 0);
        scratch.cursors.resize(s, 0);
        for &u in &scratch.touched {
            scratch.widths.fill(0);
            for &v in self.topology.in_neighbors(u) {
                for c in self
                    .availability
                    .get(v.as_usize())
                    .iter_common(self.availability.get(u.as_usize()))
                {
                    if self.propagation.admits(self.topology.distance(v, u), c) {
                        scratch.widths[c.index() as usize] += 1;
                    }
                }
            }
            let base = scratch.stage_ids.len() as u32;
            let mut acc = base;
            for c in 0..s {
                scratch.cursors[c] = acc;
                acc += scratch.widths[c];
            }
            scratch.stage_ids.resize(acc as usize, NodeId::new(0));
            for &v in self.topology.in_neighbors(u) {
                for c in self
                    .availability
                    .get(v.as_usize())
                    .iter_common(self.availability.get(u.as_usize()))
                {
                    if self.propagation.admits(self.topology.distance(v, u), c) {
                        let cur = &mut scratch.cursors[c.index() as usize];
                        scratch.stage_ids[*cur as usize] = v;
                        *cur += 1;
                    }
                }
            }
            scratch.stage_widths.extend_from_slice(&scratch.widths);
        }

        // Compact the receiver-centric CSR into the double buffers:
        // touched blocks come from the stage, untouched blocks are bulk
        // copies with rebased offsets.
        scratch.ids_buf.clear();
        scratch.starts_buf.clear();
        scratch.starts_buf.push(0);
        let mut t_idx = 0usize;
        let mut stage_pos = 0usize;
        for u in 0..n {
            if t_idx < scratch.touched.len() && scratch.touched[t_idx].as_usize() == u {
                let widths = &scratch.stage_widths[t_idx * s..(t_idx + 1) * s];
                for &w in widths {
                    let w = w as usize;
                    scratch
                        .ids_buf
                        .extend_from_slice(&scratch.stage_ids[stage_pos..stage_pos + w]);
                    stage_pos += w;
                    scratch.starts_buf.push(scratch.ids_buf.len() as u32);
                }
                t_idx += 1;
            } else {
                let base = u * s;
                let old_start = self.neighbors.starts[base];
                let old_end = self.neighbors.starts[base + s];
                let rebase = scratch.ids_buf.len() as u32;
                scratch
                    .ids_buf
                    .extend_from_slice(&self.neighbors.ids[old_start as usize..old_end as usize]);
                for c in 1..=s {
                    scratch
                        .starts_buf
                        .push(self.neighbors.starts[base + c] - old_start + rebase);
                }
            }
        }
        std::mem::swap(&mut self.neighbors.ids, &mut scratch.ids_buf);
        std::mem::swap(&mut self.neighbors.starts, &mut scratch.starts_buf);

        // Swap the touched receivers' entries in the sorted link
        // inventory. `touched` is sorted, so membership is a binary
        // search; distinct sources come from sort+dedup over the fresh
        // rows (ascending, like the BTreeSet this replaced).
        let touched = std::mem::take(&mut scratch.touched);
        self.links.retain(|l| touched.binary_search(&l.to).is_err());
        for &u in &touched {
            scratch.froms.clear();
            for c in 0..s {
                scratch
                    .froms
                    .extend_from_slice(self.neighbors.row(u.as_usize(), c));
            }
            scratch.froms.sort_unstable();
            scratch.froms.dedup();
            self.links
                .extend(scratch.froms.iter().map(|&v| Link { from: v, to: u }));
        }
        self.links.sort_unstable();
        scratch.touched = touched;

        // Dynamics events are rare relative to slots, so the
        // transmitter-centric mirror is recompacted wholesale (a counting
        // sort over the flat ids — the only way to stay canonical when a
        // refreshed row may add or drop entries anywhere in other nodes'
        // receiver lists), but through the same persistent buffers.
        scratch.counts.resize(n * s, 0);
        scratch.counts.fill(0);
        for u in 0..n {
            for c in 0..s {
                for &v in self.neighbors.row(u, c) {
                    scratch.counts[v.as_usize() * s + c] += 1;
                }
            }
        }
        scratch.starts_buf.clear();
        scratch.starts_buf.push(0);
        let mut acc = 0u32;
        for k in 0..n * s {
            acc += scratch.counts[k];
            scratch.starts_buf.push(acc);
            scratch.counts[k] = scratch.starts_buf[k];
        }
        scratch.ids_buf.clear();
        scratch.ids_buf.resize(acc as usize, NodeId::new(0));
        for u in 0..n {
            for c in 0..s {
                for &v in self.neighbors.row(u, c) {
                    let k = v.as_usize() * s + c;
                    scratch.ids_buf[scratch.counts[k] as usize] = NodeId::new(u as u32);
                    scratch.counts[k] += 1;
                }
            }
        }
        std::mem::swap(&mut self.receivers.ids, &mut scratch.ids_buf);
        std::mem::swap(&mut self.receivers.starts, &mut scratch.starts_buf);
    }

    /// The read-only view bundle over this network — the preferred way to
    /// hand the topology to resolvers, engines and generators.
    pub fn view(&self) -> crate::TopologyView<'_> {
        crate::TopologyView::new(self)
    }

    /// The underlying communication graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of nodes (`N`).
    pub fn node_count(&self) -> usize {
        self.topology.node_count()
    }

    /// Size of the universal channel set.
    pub fn universe_size(&self) -> u16 {
        self.universe
    }

    /// The available channel set `A(u)`, as a borrowed view into the flat
    /// availability arena. Materialize with [`ChannelSetRef::to_owned`]
    /// only off the hot path.
    pub fn available(&self, u: NodeId) -> ChannelSetRef<'_> {
        self.availability.get(u.as_usize())
    }

    /// Deprecated shim for the pre-arena accessor that returned an owned
    /// set per call. Allocates; use [`available`](Self::available) and keep
    /// the view, or `.to_owned()` it once off the hot path.
    #[deprecated(note = "use available(u), which returns a borrowed ChannelSetRef view")]
    pub fn available_set(&self, u: NodeId) -> ChannelSet {
        self.available(u).to_owned()
    }

    /// The propagation model.
    pub fn propagation(&self) -> &Propagation {
        &self.propagation
    }

    /// In-neighbors of `u` on channel `c`: the nodes whose transmissions on
    /// `c` reach (and can collide at) `u`. A borrowed CSR slice.
    pub fn neighbors_on(&self, u: NodeId, c: ChannelId) -> &[NodeId] {
        self.neighbors.row(u.as_usize(), c.index() as usize)
    }

    /// Deprecated shim materializing an owned copy of a neighbor row.
    /// Allocates; use [`neighbors_on`](Self::neighbors_on).
    #[deprecated(note = "use neighbors_on(u, c), which returns a borrowed CSR slice")]
    pub fn neighbors_on_owned(&self, u: NodeId, c: ChannelId) -> Vec<NodeId> {
        self.neighbors_on(u, c).to_vec()
    }

    /// Out-neighbors of `v` on channel `c`: the nodes a transmission by `v`
    /// on `c` reaches, ascending. The transmitter-centric mirror of
    /// [`neighbors_on`](Self::neighbors_on): `u ∈ receivers_on(v, c)` iff
    /// `v ∈ neighbors_on(u, c)`. A borrowed CSR slice.
    pub fn receivers_on(&self, v: NodeId, c: ChannelId) -> &[NodeId] {
        self.receivers.row(v.as_usize(), c.index() as usize)
    }

    /// Deprecated shim materializing an owned copy of a receiver row.
    /// Allocates; use [`receivers_on`](Self::receivers_on).
    #[deprecated(note = "use receivers_on(v, c), which returns a borrowed CSR slice")]
    pub fn receivers_on_owned(&self, v: NodeId, c: ChannelId) -> Vec<NodeId> {
        self.receivers_on(v, c).to_vec()
    }

    /// The span of the directed link `from → to`: channels on which `to`
    /// can hear `from`.
    pub fn span(&self, from: NodeId, to: NodeId) -> ChannelSet {
        (0..self.universe)
            .map(ChannelId::new)
            .filter(|&c| self.neighbors_on(to, c).contains(&from))
            .collect()
    }

    /// All discovery obligations: directed links with non-empty span,
    /// sorted.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The degree `Δ(u, c)` — number of neighbors of `u` on channel `c`.
    pub fn degree_on(&self, u: NodeId, c: ChannelId) -> usize {
        self.neighbors_on(u, c).len()
    }

    /// `S`: size of the largest available channel set.
    pub fn s_max(&self) -> usize {
        (0..self.node_count())
            .map(|i| self.availability.get(i).len())
            .max()
            .unwrap_or(0)
    }

    /// `Δ`: maximum degree of any node on any channel.
    pub fn max_degree(&self) -> usize {
        self.neighbors.max_row_len()
    }

    /// `ρ`: minimum span-ratio over all links — `|span(v,u)| / |A(u)|`,
    /// minimized over directed links `(v, u)`. Returns 1.0 for a network
    /// with no links (vacuous minimum, and the best case for the bounds).
    pub fn rho(&self) -> f64 {
        self.links
            .iter()
            .map(|l| {
                let span = self.span(l.from, l.to).len() as f64;
                let a = self.available(l.to).len() as f64;
                span / a
            })
            .fold(f64::INFINITY, f64::min)
            .min(1.0)
    }

    /// Ground truth for node `u`: every `(neighbor, common channel set)`
    /// pair a correct discovery run must report. The common set is
    /// `A(v) ∩ A(u)` — what `u` computes from `v`'s beacon — even when
    /// diverse propagation makes the usable span smaller.
    pub fn expected_discovery(&self, u: NodeId) -> Vec<(NodeId, ChannelSet)> {
        let mut out: Vec<(NodeId, ChannelSet)> = self
            .links
            .iter()
            .filter(|l| l.to == u)
            .map(|l| {
                (
                    l.from,
                    self.available(l.from).intersection(self.available(u)),
                )
            })
            .collect();
        out.sort_by_key(|(v, _)| *v);
        out
    }

    /// Nodes with no discovery obligations toward them (no in-links).
    pub fn isolated_receivers(&self) -> Vec<NodeId> {
        let mut has_in = vec![false; self.node_count()];
        for l in &self.links {
            has_in[l.to.as_usize()] = true;
        }
        has_in
            .iter()
            .enumerate()
            .filter(|(_, &h)| !h)
            .map(|(i, _)| NodeId::new(i as u32))
            .collect()
    }
}

/// Estimated resident bytes of a network's fixed-cost storage: the two
/// CSR offset arrays (`2 · (N·S + 1) · 4` bytes) plus the availability
/// arena (`N · ⌈S/64⌉ · 8` bytes). Adjacency ids scale with the edge
/// count, which depends on density, so this is the *floor* — the part
/// that `N·S` word math alone determines and the part that silently OOMs
/// a careless `--nodes 10000000` invocation.
pub fn estimate_storage_bytes(nodes: u64, universe: u16) -> u64 {
    let s = u64::from(universe.max(1));
    let stride = s.div_ceil(64).max(1);
    2 * (nodes * s + 1) * 4 + nodes * stride * 8
}

/// Default cap for [`check_storage_cap`]: 8 GiB.
pub const DEFAULT_STORAGE_CAP_BYTES: u64 = 8 * 1024 * 1024 * 1024;

/// The storage cap in effect: the `MMHEW_MEM_CAP_BYTES` environment
/// variable if set to a positive integer, else
/// [`DEFAULT_STORAGE_CAP_BYTES`].
pub fn storage_cap_bytes() -> u64 {
    std::env::var("MMHEW_MEM_CAP_BYTES")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .filter(|&b| b > 0)
        .unwrap_or(DEFAULT_STORAGE_CAP_BYTES)
}

/// A requested network would blow past the configured storage cap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageCapError {
    /// Requested node count.
    pub nodes: u64,
    /// Requested universe size.
    pub universe: u16,
    /// Estimated fixed-cost bytes ([`estimate_storage_bytes`]).
    pub estimate: u64,
    /// The cap in effect ([`storage_cap_bytes`]).
    pub cap: u64,
}

impl fmt::Display for StorageCapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "a {}-node network over {} channels needs an estimated {} MiB \
             of adjacency offsets + availability words, over the {} MiB cap \
             (set MMHEW_MEM_CAP_BYTES to raise it)",
            self.nodes,
            self.universe,
            self.estimate / (1024 * 1024),
            self.cap / (1024 * 1024),
        )
    }
}

impl std::error::Error for StorageCapError {}

/// Validates that `nodes × universe` fixed storage fits under the cap,
/// returning the estimate-naming error otherwise. Call this *before*
/// building a large network so an oversized `--nodes` request fails with
/// arithmetic instead of the OOM killer.
///
/// # Errors
///
/// [`StorageCapError`] when [`estimate_storage_bytes`] exceeds
/// [`storage_cap_bytes`].
pub fn check_storage_cap(nodes: u64, universe: u16) -> Result<(), StorageCapError> {
    let estimate = estimate_storage_bytes(nodes, universe);
    let cap = storage_cap_bytes();
    if estimate > cap {
        return Err(StorageCapError {
            nodes,
            universe,
            estimate,
            cap,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn cs(xs: &[u16]) -> ChannelSet {
        xs.iter().copied().collect()
    }

    fn two_node_net(a0: &[u16], a1: &[u16], universe: u16) -> Network {
        Network::new(
            generators::line(2),
            universe,
            vec![cs(a0), cs(a1)],
            Propagation::Uniform,
        )
        .expect("valid network")
    }

    #[test]
    fn basic_parameters() {
        let net = two_node_net(&[0, 1, 2], &[1, 2], 4);
        assert_eq!(net.s_max(), 3);
        assert_eq!(net.max_degree(), 1);
        assert_eq!(net.span(n(0), n(1)), cs(&[1, 2]));
        // rho = min(|span|/|A(receiver)|) = min(2/2, 2/3) = 2/3.
        assert!((net.rho() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(net.links().len(), 2);
    }

    #[test]
    fn disjoint_availability_removes_link() {
        let net = two_node_net(&[0, 1], &[2, 3], 4);
        assert!(net.links().is_empty());
        assert_eq!(net.rho(), 1.0, "vacuous minimum");
        assert_eq!(net.max_degree(), 0);
        assert_eq!(net.isolated_receivers(), vec![n(0), n(1)]);
    }

    #[test]
    fn degree_counts_per_channel() {
        // Star with hub 0; leaves 1,2 share channel 0 with hub, leaf 3 only
        // channel 1.
        let net = Network::new(
            generators::star(4),
            2,
            vec![cs(&[0, 1]), cs(&[0]), cs(&[0]), cs(&[1])],
            Propagation::Uniform,
        )
        .expect("valid network");
        assert_eq!(net.degree_on(n(0), ChannelId::new(0)), 2);
        assert_eq!(net.degree_on(n(0), ChannelId::new(1)), 1);
        assert_eq!(net.max_degree(), 2);
        assert_eq!(net.neighbors_on(n(0), ChannelId::new(0)), &[n(1), n(2)]);
    }

    #[test]
    fn expected_discovery_ground_truth() {
        let net = Network::new(
            generators::line(3),
            4,
            vec![cs(&[0, 1]), cs(&[1, 2]), cs(&[2, 3])],
            Propagation::Uniform,
        )
        .expect("valid network");
        assert_eq!(
            net.expected_discovery(n(1)),
            vec![(n(0), cs(&[1])), (n(2), cs(&[2]))]
        );
        assert_eq!(net.expected_discovery(n(0)), vec![(n(1), cs(&[1]))]);
        // Non-adjacent nodes never appear even with common channels.
        assert!(net.expected_discovery(n(0)).iter().all(|(v, _)| *v != n(2)));
    }

    #[test]
    fn asymmetric_links() {
        let mut topo = Topology::new(2);
        topo.add_edge(n(0), n(1)); // only 1 hears 0
        let net = Network::new(topo, 2, vec![cs(&[0]), cs(&[0])], Propagation::Uniform)
            .expect("valid network");
        assert_eq!(
            net.links(),
            &[Link {
                from: n(0),
                to: n(1)
            }]
        );
        assert!(net.expected_discovery(n(0)).is_empty());
        assert_eq!(net.expected_discovery(n(1)).len(), 1);
    }

    #[test]
    fn per_channel_propagation_prunes_spans() {
        // Nodes 3.0 apart; channel 0 reaches 5.0, channel 1 only 2.0.
        let mut topo = Topology::new(2);
        topo.set_position(n(0), (0.0, 0.0));
        topo.set_position(n(1), (3.0, 0.0));
        topo.add_bidirectional(n(0), n(1));
        let net = Network::new(
            topo,
            2,
            vec![cs(&[0, 1]), cs(&[0, 1])],
            Propagation::PerChannelRange {
                ranges: vec![5.0, 2.0],
            },
        )
        .expect("valid network");
        assert_eq!(net.span(n(0), n(1)), cs(&[0]));
        // rho uses the pruned span: 1/2.
        assert!((net.rho() - 0.5).abs() < 1e-12);
        // But the reported common set is the full intersection.
        assert_eq!(net.expected_discovery(n(1)), vec![(n(0), cs(&[0, 1]))]);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(
            Network::new(generators::line(2), 0, vec![], Propagation::Uniform),
            Err(NetworkError::EmptyUniverse)
        );
        assert!(matches!(
            Network::new(generators::line(2), 2, vec![cs(&[0])], Propagation::Uniform),
            Err(NetworkError::AvailabilityCount {
                provided: 1,
                nodes: 2
            })
        ));
        assert!(matches!(
            Network::new(
                generators::line(2),
                2,
                vec![cs(&[0]), cs(&[5])],
                Propagation::Uniform
            ),
            Err(NetworkError::ChannelOutOfUniverse { .. })
        ));
        assert!(matches!(
            Network::new(
                generators::line(2),
                2,
                vec![cs(&[0]), cs(&[1])],
                Propagation::PerChannelRange { ranges: vec![1.0] }
            ),
            Err(NetworkError::PropagationCount { .. })
        ));
    }

    /// Rebuilds a network from scratch out of the mutated state; since the
    /// inputs are identical, every derived structure must match the
    /// incrementally maintained one bit-for-bit.
    fn rebuilt(net: &Network) -> Network {
        let avail: Vec<ChannelSet> = (0..net.node_count())
            .map(|i| net.available(n(i as u32)).to_owned())
            .collect();
        Network::new(
            net.topology().clone(),
            net.universe_size(),
            avail,
            net.propagation().clone(),
        )
        .expect("mutated state stays valid")
    }

    #[test]
    fn apply_edge_events_match_scratch_rebuild() {
        let mut net = Network::new(
            generators::star(4),
            3,
            vec![cs(&[0, 1]), cs(&[0]), cs(&[0, 2]), cs(&[1])],
            Propagation::Uniform,
        )
        .expect("valid network");
        net.apply(&NetworkEvent::EdgeAdd {
            from: n(1),
            to: n(2),
        })
        .expect("apply");
        net.apply(&NetworkEvent::EdgeRemove {
            from: n(3),
            to: n(0),
        })
        .expect("apply");
        assert_eq!(net, rebuilt(&net));
        // Removing an absent edge is a no-op, not an error.
        let before = net.clone();
        net.apply(&NetworkEvent::EdgeRemove {
            from: n(3),
            to: n(0),
        })
        .expect("apply");
        assert_eq!(net, before);
    }

    #[test]
    fn apply_channel_events_update_spans_and_params() {
        let mut net = two_node_net(&[0, 1], &[0], 4);
        assert_eq!(net.span(n(0), n(1)), cs(&[0]));
        net.apply(&NetworkEvent::ChannelGained {
            node: n(1),
            channel: ChannelId::new(1),
        })
        .expect("apply");
        assert_eq!(net.span(n(0), n(1)), cs(&[0, 1]));
        assert_eq!(net.s_max(), 2);
        net.apply(&NetworkEvent::ChannelLost {
            node: n(1),
            channel: ChannelId::new(0),
        })
        .expect("apply");
        net.apply(&NetworkEvent::ChannelLost {
            node: n(1),
            channel: ChannelId::new(1),
        })
        .expect("apply");
        // Last common channel gone: the link (in both directions) vanishes.
        assert!(net.links().is_empty());
        assert_eq!(net.max_degree(), 0);
        assert_eq!(net, rebuilt(&net));
        // Regain one: the link reappears.
        net.apply(&NetworkEvent::ChannelGained {
            node: n(1),
            channel: ChannelId::new(1),
        })
        .expect("apply");
        assert_eq!(net.links().len(), 2);
        assert_eq!(net.span(n(1), n(0)), cs(&[1]));
        assert_eq!(net, rebuilt(&net));
    }

    #[test]
    fn apply_leave_and_rejoin() {
        let mut net = Network::new(
            generators::complete(3),
            2,
            vec![cs(&[0, 1]), cs(&[0, 1]), cs(&[0, 1])],
            Propagation::Uniform,
        )
        .expect("valid network");
        assert_eq!(net.links().len(), 6);
        net.apply(&NetworkEvent::NodeLeave { node: n(2) })
            .expect("apply");
        assert_eq!(net.links().len(), 2, "only 0↔1 remains");
        assert!(net.isolated_receivers().contains(&n(2)));
        assert_eq!(net, rebuilt(&net));
        // Rejoin with a narrower availability and restore its edges.
        net.apply(&NetworkEvent::NodeJoin {
            node: n(2),
            position: net.topology().position(n(2)),
            available: cs(&[1]),
        })
        .expect("apply");
        for (a, b) in [(0, 2), (1, 2)] {
            net.apply(&NetworkEvent::EdgeAdd {
                from: n(a),
                to: n(b),
            })
            .expect("apply");
            net.apply(&NetworkEvent::EdgeAdd {
                from: n(b),
                to: n(a),
            })
            .expect("apply");
        }
        assert_eq!(net.links().len(), 6);
        assert_eq!(net.span(n(0), n(2)), cs(&[1]));
        assert_eq!(net, rebuilt(&net));
    }

    #[test]
    fn receivers_on_mirrors_neighbors_on() {
        let mut net = Network::new(
            generators::star(4),
            3,
            vec![cs(&[0, 1]), cs(&[0]), cs(&[0, 2]), cs(&[1])],
            Propagation::Uniform,
        )
        .expect("valid network");
        let mirror_holds = |net: &Network| {
            for u in 0..net.node_count() as u32 {
                for c in 0..net.universe_size() {
                    let c = ChannelId::new(c);
                    let rx = net.receivers_on(n(u), c);
                    assert!(rx.windows(2).all(|w| w[0] < w[1]), "ascending receivers");
                    for v in 0..net.node_count() as u32 {
                        assert_eq!(
                            rx.contains(&n(v)),
                            net.neighbors_on(n(v), c).contains(&n(u)),
                            "mirror property for tx n{u} rx n{v} on {c}"
                        );
                    }
                }
            }
        };
        mirror_holds(&net);
        assert_eq!(net.receivers_on(n(0), ChannelId::new(0)), &[n(1), n(2)]);
        // The mirror must follow every class of dynamics event.
        net.apply(&NetworkEvent::ChannelLost {
            node: n(2),
            channel: ChannelId::new(0),
        })
        .expect("apply");
        mirror_holds(&net);
        net.apply(&NetworkEvent::EdgeAdd {
            from: n(1),
            to: n(3),
        })
        .expect("apply");
        mirror_holds(&net);
        net.apply(&NetworkEvent::NodeLeave { node: n(1) })
            .expect("apply");
        mirror_holds(&net);
        assert_eq!(net, rebuilt(&net));
    }

    #[test]
    fn apply_rejects_out_of_range() {
        let mut net = two_node_net(&[0], &[0], 2);
        let before = net.clone();
        assert!(matches!(
            net.apply(&NetworkEvent::NodeLeave { node: n(9) }),
            Err(NetworkError::NodeOutOfRange { nodes: 2, .. })
        ));
        assert!(matches!(
            net.apply(&NetworkEvent::ChannelGained {
                node: n(0),
                channel: ChannelId::new(7),
            }),
            Err(NetworkError::ChannelOutOfUniverse { .. })
        ));
        assert!(matches!(
            net.apply(&NetworkEvent::NodeJoin {
                node: n(1),
                position: (0.0, 0.0),
                available: cs(&[5]),
            }),
            Err(NetworkError::ChannelOutOfUniverse { .. })
        ));
        assert_eq!(net, before, "failed events leave the network untouched");
    }

    #[test]
    fn error_display() {
        let e = NetworkError::ChannelOutOfUniverse {
            node: n(3),
            channel: ChannelId::new(9),
        };
        assert!(e.to_string().contains("n3"));
        assert!(e.to_string().contains("ch9"));
    }

    #[test]
    fn link_display_and_order() {
        let l = Link {
            from: n(2),
            to: n(5),
        };
        assert_eq!(l.to_string(), "(n2→n5)");
        let net = two_node_net(&[0], &[0], 1);
        assert_eq!(
            net.links(),
            &[
                Link {
                    from: n(0),
                    to: n(1)
                },
                Link {
                    from: n(1),
                    to: n(0)
                }
            ]
        );
    }

    #[test]
    fn wire_round_trip_rebuilds_the_mirror() {
        // NetworkWire carries exactly the historical serialized fields; a
        // Network reconstructed from it must equal the original (scratch
        // excluded by the PartialEq contract) with the transmitter-centric
        // mirror rebuilt from the nested adjacency.
        let net = Network::new(
            generators::star(3),
            2,
            vec![cs(&[0, 1]), cs(&[0]), cs(&[1])],
            Propagation::Uniform,
        )
        .expect("valid network");
        let wire = NetworkWire {
            topology: net.topology.clone(),
            universe: net.universe,
            availability: net.availability.to_sets(),
            propagation: net.propagation.clone(),
            neighbors_on: net.neighbors.to_nested(),
            links: net.links.clone(),
        };
        let back = Network::from(wire);
        assert_eq!(back, net);
        assert_eq!(back.receivers_on(n(0), ChannelId::new(0)), &[n(1)]);
        // And the nested shape itself packs/unpacks losslessly.
        let nested = net.neighbors.to_nested();
        assert_eq!(
            ChannelCsr::from_nested(&nested, net.universe),
            net.neighbors
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_the_view_accessors() {
        // The migration-gate companion: the shims must keep working (and
        // keep agreeing with the borrowed views) for external callers even
        // though in-repo code is banned from them.
        let net = Network::new(
            generators::star(3),
            2,
            vec![cs(&[0, 1]), cs(&[0]), cs(&[1])],
            Propagation::Uniform,
        )
        .expect("valid network");
        assert_eq!(net.available_set(n(0)), net.available(n(0)).to_owned());
        assert_eq!(
            net.neighbors_on_owned(n(0), ChannelId::new(0)),
            net.neighbors_on(n(0), ChannelId::new(0)).to_vec()
        );
        assert_eq!(
            net.receivers_on_owned(n(0), ChannelId::new(0)),
            net.receivers_on(n(0), ChannelId::new(0)).to_vec()
        );
    }

    #[test]
    fn storage_estimate_and_cap() {
        // 1M nodes × 8 channels: 2·(8M+1)·4 B of offsets + 1M·8 B of arena.
        let est = estimate_storage_bytes(1_000_000, 8);
        assert_eq!(est, 2 * (8_000_000 + 1) * 4 + 1_000_000 * 8);
        assert!(check_storage_cap(1_000_000, 8).is_ok());
        let err = check_storage_cap(u64::MAX / 1_000, 64).expect_err("over any sane cap");
        let msg = err.to_string();
        assert!(msg.contains("MiB"), "names the estimate: {msg}");
        assert!(msg.contains("MMHEW_MEM_CAP_BYTES"), "names the knob: {msg}");
        assert_eq!(err.estimate, estimate_storage_bytes(err.nodes, 64));
    }
}
