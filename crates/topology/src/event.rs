//! Network mutation events — the vocabulary of dynamic networks.
//!
//! A static [`Network`](crate::Network) is the paper's model; real
//! cognitive-radio deployments churn: nodes arrive and depart, mobility
//! makes and breaks links, and primary users occupy and vacate channels.
//! [`NetworkEvent`] is the atomic unit of that change. Generators that
//! *produce* event streams (Poisson churn, random-waypoint mobility,
//! Markov primary users) live in the `mmhew-dynamics` crate; this enum
//! lives here so [`Network::apply`](crate::Network::apply) can consume it
//! without a dependency cycle.
//!
//! The node universe is fixed at construction: `NodeJoin`/`NodeLeave`
//! deactivate and reactivate nodes from that universe rather than growing
//! the index space, which keeps every per-node array (protocols, RNG
//! streams, action counters) stable across a run.

use crate::node::NodeId;
use mmhew_spectrum::{ChannelId, ChannelSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One atomic mutation of a [`Network`](crate::Network).
///
/// Events carry no timestamp — scheduling (when an event fires) is the
/// `mmhew-dynamics` crate's job; this type only says *what* changes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum NetworkEvent {
    /// A node (re)appears at `position` with availability `available`.
    /// Its edges are delivered separately as [`NetworkEvent::EdgeAdd`]
    /// events by whichever generator knows the geometry.
    NodeJoin {
        /// The joining node (must be within the fixed node universe).
        node: NodeId,
        /// Where it appears (drives distance-based propagation).
        position: (f64, f64),
        /// Its perceived available channel set `A(u)`.
        available: ChannelSet,
    },
    /// A node departs: every incident edge (both directions) is removed.
    /// Its position and availability are retained for a later rejoin.
    NodeLeave {
        /// The departing node.
        node: NodeId,
    },
    /// The directed edge `from → to` appears (`to` starts hearing `from`).
    EdgeAdd {
        /// Transmitting endpoint.
        from: NodeId,
        /// Receiving endpoint.
        to: NodeId,
    },
    /// The directed edge `from → to` disappears.
    EdgeRemove {
        /// Transmitting endpoint.
        from: NodeId,
        /// Receiving endpoint.
        to: NodeId,
    },
    /// `node` gains `channel` in its available set (a primary user
    /// vacated it).
    ChannelGained {
        /// The node whose availability grows.
        node: NodeId,
        /// The regained channel.
        channel: ChannelId,
    },
    /// `node` loses `channel` from its available set (a primary user
    /// occupies it).
    ChannelLost {
        /// The node whose availability shrinks.
        node: NodeId,
        /// The lost channel.
        channel: ChannelId,
    },
}

impl NetworkEvent {
    /// Short tag naming the event variant (stable, snake_case).
    pub fn kind(&self) -> &'static str {
        match self {
            NetworkEvent::NodeJoin { .. } => "node_join",
            NetworkEvent::NodeLeave { .. } => "node_leave",
            NetworkEvent::EdgeAdd { .. } => "edge_add",
            NetworkEvent::EdgeRemove { .. } => "edge_remove",
            NetworkEvent::ChannelGained { .. } => "channel_gained",
            NetworkEvent::ChannelLost { .. } => "channel_lost",
        }
    }
}

impl fmt::Display for NetworkEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkEvent::NodeJoin { node, .. } => write!(f, "join({node})"),
            NetworkEvent::NodeLeave { node } => write!(f, "leave({node})"),
            NetworkEvent::EdgeAdd { from, to } => write!(f, "edge+({from}→{to})"),
            NetworkEvent::EdgeRemove { from, to } => write!(f, "edge-({from}→{to})"),
            NetworkEvent::ChannelGained { node, channel } => {
                write!(f, "gain({node},{channel})")
            }
            NetworkEvent::ChannelLost { node, channel } => {
                write!(f, "lose({node},{channel})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_display() {
        let e = NetworkEvent::EdgeAdd {
            from: NodeId::new(1),
            to: NodeId::new(2),
        };
        assert_eq!(e.kind(), "edge_add");
        assert_eq!(e.to_string(), "edge+(n1→n2)");
        let e = NetworkEvent::ChannelLost {
            node: NodeId::new(0),
            channel: ChannelId::new(3),
        };
        assert_eq!(e.kind(), "channel_lost");
        assert_eq!(e.to_string(), "lose(n0,ch3)");
    }
}
