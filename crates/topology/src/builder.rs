//! Fluent construction of complete networks.

use crate::generators;
use crate::graph::Topology;
use crate::network::{Network, NetworkError, Propagation};
use mmhew_spectrum::{AvailabilityError, AvailabilityModel};
use mmhew_util::SeedTree;
use std::fmt;

/// Which topology the builder will generate.
#[derive(Debug, Clone, PartialEq)]
enum TopoSpec {
    Line(usize),
    Ring(usize),
    Grid(usize, usize),
    Star(usize),
    Complete(usize),
    UnitDisk {
        n: usize,
        side: f64,
        radius: f64,
    },
    ErdosRenyi {
        n: usize,
        p: f64,
    },
    AsymmetricDisk {
        n: usize,
        side: f64,
        r_min: f64,
        r_max: f64,
    },
    Explicit(Topology),
}

/// Errors from [`NetworkBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// Availability generation failed.
    Availability(AvailabilityError),
    /// Network assembly/validation failed.
    Network(NetworkError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Availability(e) => write!(f, "availability: {e}"),
            BuildError::Network(e) => write!(f, "network: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Availability(e) => Some(e),
            BuildError::Network(e) => Some(e),
        }
    }
}

impl From<AvailabilityError> for BuildError {
    fn from(e: AvailabilityError) -> Self {
        BuildError::Availability(e)
    }
}

impl From<NetworkError> for BuildError {
    fn from(e: NetworkError) -> Self {
        BuildError::Network(e)
    }
}

/// Builder assembling a topology, a channel universe, an availability
/// model and a propagation model into a validated [`Network`].
///
/// Defaults: universe of 16 channels, [`AvailabilityModel::Full`],
/// [`Propagation::Uniform`].
///
/// # Examples
///
/// ```
/// use mmhew_topology::NetworkBuilder;
/// use mmhew_spectrum::AvailabilityModel;
/// use mmhew_util::SeedTree;
///
/// let net = NetworkBuilder::unit_disk(30, 10.0, 3.0)
///     .universe(12)
///     .availability(AvailabilityModel::UniformSubset { size: 6 })
///     .build(SeedTree::new(42))?;
/// assert_eq!(net.node_count(), 30);
/// assert!(net.s_max() <= 6);
/// # Ok::<(), mmhew_topology::BuildError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkBuilder {
    spec: TopoSpec,
    universe: u16,
    availability: AvailabilityModel,
    propagation: Propagation,
}

impl NetworkBuilder {
    fn with_spec(spec: TopoSpec) -> Self {
        Self {
            spec,
            universe: 16,
            availability: AvailabilityModel::Full,
            propagation: Propagation::Uniform,
        }
    }

    /// A path of `n` nodes.
    pub fn line(n: usize) -> Self {
        Self::with_spec(TopoSpec::Line(n))
    }

    /// A cycle of `n ≥ 3` nodes.
    pub fn ring(n: usize) -> Self {
        Self::with_spec(TopoSpec::Ring(n))
    }

    /// A `w × h` grid with 4-neighborhood.
    pub fn grid(w: usize, h: usize) -> Self {
        Self::with_spec(TopoSpec::Grid(w, h))
    }

    /// A star with hub node 0.
    pub fn star(n: usize) -> Self {
        Self::with_spec(TopoSpec::Star(n))
    }

    /// The complete graph (single-hop network).
    pub fn complete(n: usize) -> Self {
        Self::with_spec(TopoSpec::Complete(n))
    }

    /// A random geometric graph in a `side × side` square with link radius
    /// `radius`.
    pub fn unit_disk(n: usize, side: f64, radius: f64) -> Self {
        Self::with_spec(TopoSpec::UnitDisk { n, side, radius })
    }

    /// An Erdős–Rényi graph `G(n, p)`.
    pub fn erdos_renyi(n: usize, p: f64) -> Self {
        Self::with_spec(TopoSpec::ErdosRenyi { n, p })
    }

    /// An asymmetric geometric graph with per-node transmit ranges drawn
    /// from `[r_min, r_max]`.
    pub fn asymmetric_disk(n: usize, side: f64, r_min: f64, r_max: f64) -> Self {
        Self::with_spec(TopoSpec::AsymmetricDisk {
            n,
            side,
            r_min,
            r_max,
        })
    }

    /// Uses an explicitly constructed topology.
    pub fn from_topology(topology: Topology) -> Self {
        Self::with_spec(TopoSpec::Explicit(topology))
    }

    /// Sets the universal channel set size.
    pub fn universe(mut self, channels: u16) -> Self {
        self.universe = channels;
        self
    }

    /// Sets the availability model.
    pub fn availability(mut self, model: AvailabilityModel) -> Self {
        self.availability = model;
        self
    }

    /// Sets the propagation model.
    pub fn propagation(mut self, propagation: Propagation) -> Self {
        self.propagation = propagation;
        self
    }

    /// Generates the topology, assigns availability, and validates the
    /// result.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if availability generation or network
    /// validation fails.
    pub fn build(&self, seed: SeedTree) -> Result<Network, BuildError> {
        let topology = match &self.spec {
            TopoSpec::Line(n) => generators::line(*n),
            TopoSpec::Ring(n) => generators::ring(*n),
            TopoSpec::Grid(w, h) => generators::grid(*w, *h),
            TopoSpec::Star(n) => generators::star(*n),
            TopoSpec::Complete(n) => generators::complete(*n),
            TopoSpec::UnitDisk { n, side, radius } => {
                generators::unit_disk(*n, *side, *radius, seed.branch("topology"))
            }
            TopoSpec::ErdosRenyi { n, p } => {
                generators::erdos_renyi(*n, *p, seed.branch("topology"))
            }
            TopoSpec::AsymmetricDisk {
                n,
                side,
                r_min,
                r_max,
            } => generators::asymmetric_disk(*n, *side, *r_min, *r_max, seed.branch("topology")),
            TopoSpec::Explicit(t) => t.clone(),
        };
        let availability = self.availability.assign(
            self.universe,
            topology.positions(),
            seed.branch("availability"),
        )?;
        Ok(Network::new(
            topology,
            self.universe,
            availability,
            self.propagation.clone(),
        )?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_spectrum::ChannelSet;

    #[test]
    fn defaults_build_homogeneous_network() {
        let net = NetworkBuilder::ring(5)
            .build(SeedTree::new(0))
            .expect("build");
        assert_eq!(net.node_count(), 5);
        assert_eq!(net.universe_size(), 16);
        assert_eq!(net.s_max(), 16);
        assert_eq!(net.rho(), 1.0);
        assert_eq!(net.max_degree(), 2);
    }

    #[test]
    fn builder_is_deterministic() {
        let b = NetworkBuilder::unit_disk(25, 8.0, 3.0)
            .universe(10)
            .availability(AvailabilityModel::UniformSubset { size: 4 });
        let a = b.build(SeedTree::new(9)).expect("build");
        let c = b.build(SeedTree::new(9)).expect("build");
        assert_eq!(a, c);
        let d = b.build(SeedTree::new(10)).expect("build");
        assert_ne!(a, d);
    }

    #[test]
    fn availability_error_propagates() {
        let err = NetworkBuilder::line(3)
            .universe(4)
            .availability(AvailabilityModel::UniformSubset { size: 9 })
            .build(SeedTree::new(0))
            .expect_err("oversize subset");
        assert!(matches!(err, BuildError::Availability(_)));
        assert!(err.to_string().contains("availability"));
    }

    #[test]
    fn network_error_propagates() {
        let err = NetworkBuilder::line(2)
            .universe(0)
            .build(SeedTree::new(0))
            .expect_err("empty universe");
        assert!(matches!(
            err,
            BuildError::Network(NetworkError::EmptyUniverse)
        ));
    }

    #[test]
    fn explicit_topology_and_sets() {
        let mut topo = Topology::new(2);
        topo.add_bidirectional(crate::NodeId::new(0), crate::NodeId::new(1));
        let sets = vec![
            [0u16].into_iter().collect::<ChannelSet>(),
            [0u16].into_iter().collect(),
        ];
        let net = NetworkBuilder::from_topology(topo)
            .universe(1)
            .availability(AvailabilityModel::Explicit(sets))
            .build(SeedTree::new(0))
            .expect("build");
        assert_eq!(net.links().len(), 2);
        assert_eq!(net.rho(), 1.0);
    }

    #[test]
    fn pairwise_overlap_controls_rho() {
        for (shared, private, want) in [(1u16, 4u16, 0.2f64), (2, 2, 0.5), (3, 0, 1.0)] {
            let n = 4;
            let net = NetworkBuilder::complete(n)
                .universe(shared + n as u16 * private)
                .availability(AvailabilityModel::PairwiseOverlap { shared, private })
                .build(SeedTree::new(1))
                .expect("build");
            assert!(
                (net.rho() - want).abs() < 1e-12,
                "shared={shared} private={private}: rho={} want={want}",
                net.rho()
            );
        }
    }

    #[test]
    fn all_generator_specs_build() {
        let seed = SeedTree::new(3);
        for b in [
            NetworkBuilder::line(4),
            NetworkBuilder::ring(4),
            NetworkBuilder::grid(2, 3),
            NetworkBuilder::star(4),
            NetworkBuilder::complete(4),
            NetworkBuilder::unit_disk(10, 5.0, 2.0),
            NetworkBuilder::erdos_renyi(10, 0.4),
            NetworkBuilder::asymmetric_disk(10, 5.0, 1.0, 3.0),
        ] {
            let net = b.build(seed).expect("build");
            assert!(net.node_count() >= 4);
        }
    }
}
