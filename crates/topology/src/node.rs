//! Node identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one radio node. Nodes are dense small integers
/// `0..node_count`, assigned by the topology generator.
///
/// # Examples
///
/// ```
/// use mmhew_topology::NodeId;
///
/// let u = NodeId::new(4);
/// assert_eq!(u.index(), 4);
/// assert_eq!(u.to_string(), "n4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id.
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Dense index of this node.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// Index as `usize`, for slice addressing.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(index: u32) -> Self {
        Self(index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let u = NodeId::from(3u32);
        assert_eq!(u.index(), 3);
        assert_eq!(u.as_usize(), 3);
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(u.to_string(), "n3");
    }
}
