//! End-to-end contract of the campaign service: a distributed run's
//! manifest and artifact are byte-identical to a single-process
//! `run_campaign` of the same spec — including when a worker is killed
//! mid-lease and its point is redone elsewhere — and stale completions
//! are rejected rather than duplicated.

use mmhew_campaign::client::{get, post};
use mmhew_campaign::json::Value;
use mmhew_campaign::points::run_point_line;
use mmhew_campaign::{run_campaign, CampaignOptions, SweepSpec};
use mmhew_serve::{run_worker, spawn_server, ServerOptions, WorkerOptions};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmhew-serve-{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// One uninterrupted single-process smoke run; returns its manifest and
/// artifact bytes — the reference every distributed run must match.
fn reference_bytes(name: &str) -> (Vec<u8>, Vec<u8>) {
    let spec = SweepSpec::smoke();
    let dir = fresh_dir(name);
    let outcome = run_campaign(&spec, &CampaignOptions::new(&dir)).expect("reference run");
    let manifest = std::fs::read(dir.join("smoke.manifest.jsonl")).expect("manifest");
    let artifact = std::fs::read(outcome.artifact.expect("artifact")).expect("artifact");
    std::fs::remove_dir_all(&dir).ok();
    (manifest, artifact)
}

fn server_opts(dir: &PathBuf, lease_ms: u64) -> ServerOptions {
    let mut opts = ServerOptions::new();
    opts.out_dir = dir.clone();
    opts.lease_ms = lease_ms;
    opts
}

fn wait_until(what: &str, timeout: Duration, mut ready: impl FnMut() -> bool) {
    let start = Instant::now();
    while !ready() {
        assert!(start.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn distributed_run_is_byte_identical_to_single_process() {
    let (ref_manifest, ref_artifact) = reference_bytes("ref-distributed");
    let dir = fresh_dir("distributed");
    let handle = spawn_server(Some(SweepSpec::smoke()), server_opts(&dir, 60_000)).expect("server");
    let url = handle.url();

    let workers: Vec<_> = ["w1", "w2"]
        .into_iter()
        .map(|name| {
            let mut opts = WorkerOptions::new(&url, name);
            opts.poll_ms = 25;
            std::thread::spawn(move || run_worker(&opts).expect("worker"))
        })
        .collect();
    let total: u64 = workers
        .into_iter()
        .map(|w| w.join().expect("worker thread").completed)
        .sum();
    assert_eq!(total, 4, "the fleet completed every point exactly once");
    wait_until("artifact", Duration::from_secs(10), || {
        handle.campaign_complete()
    });

    // The status endpoint reports completion and knows both workers.
    let status = get(&url, "/status").expect("status").json().expect("json");
    assert_eq!(status.get("complete").and_then(Value::as_bool), Some(true));
    assert_eq!(status.get("done").and_then(Value::as_u64), Some(4));
    let workers_obj = status.get("workers").expect("workers");
    assert!(workers_obj.get("w1").is_some() && workers_obj.get("w2").is_some());

    // GET /manifest serves the exact file bytes…
    let manifest_file = std::fs::read(dir.join("smoke.manifest.jsonl")).expect("manifest");
    let served = get(&url, "/manifest").expect("manifest");
    assert_eq!(served.status, 200);
    assert_eq!(served.body.as_bytes(), &manifest_file[..]);
    // …and both match the single-process reference byte for byte.
    assert_eq!(manifest_file, ref_manifest);
    let artifact = std::fs::read(handle.artifact().expect("artifact path")).expect("artifact");
    assert_eq!(artifact, ref_artifact);

    handle.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn killed_worker_lease_is_reissued_and_redo_is_byte_identical() {
    let (ref_manifest, ref_artifact) = reference_bytes("ref-killed");
    let dir = fresh_dir("killed");
    // Short leases so the murdered worker's point is reclaimed quickly.
    let handle = spawn_server(Some(SweepSpec::smoke()), server_opts(&dir, 1_500)).expect("server");
    let url = handle.url();

    // A doomed worker (separate OS process) that sleeps 60 s before
    // touching its first point — plenty of window to SIGKILL it while it
    // holds a lease.
    let mut doomed = std::process::Command::new(env!("CARGO_BIN_EXE_campaign-worker"))
        .args([
            "--server",
            &url,
            "--name",
            "doomed",
            "--throttle-ms",
            "60000",
            "--poll-ms",
            "25",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn doomed worker");
    wait_until(
        "doomed worker to hold a lease",
        Duration::from_secs(30),
        || {
            let status = get(&url, "/status").expect("status").json().expect("json");
            status.get("leased").and_then(Value::as_u64).unwrap_or(0) >= 1
        },
    );
    doomed.kill().expect("SIGKILL the doomed worker");
    doomed.wait().expect("reap");

    // A survivor finishes the campaign, redoing the orphaned point after
    // its lease expires.
    let mut opts = WorkerOptions::new(&url, "survivor");
    opts.poll_ms = 25;
    let summary = run_worker(&opts).expect("survivor");
    assert_eq!(summary.completed, 4, "survivor redid the orphaned point");
    wait_until("artifact", Duration::from_secs(10), || {
        handle.campaign_complete()
    });

    let manifest = std::fs::read(dir.join("smoke.manifest.jsonl")).expect("manifest");
    assert_eq!(
        manifest, ref_manifest,
        "redo after SIGKILL left a byte-identical manifest"
    );
    let artifact = std::fs::read(handle.artifact().expect("artifact path")).expect("artifact");
    assert_eq!(artifact, ref_artifact);

    handle.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn late_completion_after_reissue_gets_409_and_no_duplicate_lines() {
    let (ref_manifest, _) = reference_bytes("ref-conflict");
    let spec = SweepSpec::smoke();
    let points = spec.expand();
    let dir = fresh_dir("conflict");
    let handle = spawn_server(Some(spec.clone()), server_opts(&dir, 100)).expect("server");
    let url = handle.url();
    let lease_body = |w: &str| format!("{{\"schema_version\":1,\"worker\":\"{w}\"}}");
    let complete_body = |w: &str, p: u64, line: &str| {
        let escaped = line.replace('\\', "\\\\").replace('"', "\\\"");
        format!("{{\"schema_version\":1,\"worker\":\"{w}\",\"point\":{p},\"line\":\"{escaped}\"}}")
    };

    // w1 leases the first point, then stalls past the 100 ms deadline.
    let lease = post(&url, "/lease", &lease_body("w1")).expect("lease");
    assert_eq!(lease.status, 200);
    let p = lease
        .json()
        .expect("json")
        .get("point")
        .and_then(Value::as_u64)
        .expect("point");
    std::thread::sleep(Duration::from_millis(200));

    // w2 asks after expiry and is handed the *same* point.
    let release = post(&url, "/lease", &lease_body("w2")).expect("re-lease");
    assert_eq!(release.status, 200);
    assert_eq!(
        release
            .json()
            .expect("json")
            .get("point")
            .and_then(Value::as_u64),
        Some(p),
        "the expired lease is re-issued first"
    );

    let point = points.iter().find(|pt| pt.id == p).expect("grid point");
    let line = run_point_line(&spec, point).expect("line");
    // w2 (the current leaseholder) completes: accepted.
    let ok = post(&url, "/complete", &complete_body("w2", p, &line)).expect("complete");
    assert_eq!(ok.status, 200);
    // w1's late completion of the re-issued point: conflict, discarded.
    let stale = post(&url, "/complete", &complete_body("w1", p, &line)).expect("late complete");
    assert_eq!(stale.status, 409, "stale completion is rejected");
    // And completing an already-done point again is also a conflict.
    let dup = post(&url, "/complete", &complete_body("w2", p, &line)).expect("dup complete");
    assert_eq!(dup.status, 409, "duplicate completion is rejected");

    // Finish the campaign normally and check exactly one line per point.
    let mut opts = WorkerOptions::new(&url, "w2");
    opts.poll_ms = 25;
    run_worker(&opts).expect("finish");
    wait_until("artifact", Duration::from_secs(10), || {
        handle.campaign_complete()
    });
    let manifest = std::fs::read(dir.join("smoke.manifest.jsonl")).expect("manifest");
    assert_eq!(
        manifest, ref_manifest,
        "despite the conflict dance, the manifest is byte-identical (one line per point)"
    );

    handle.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn protocol_axis_distributed_run_is_byte_identical() {
    // The categorical `protocol` axis rides through the lease/complete
    // machinery untouched: a worker fleet produces the same manifest and
    // artifact bytes as a single-process run of the same rivals spec.
    let spec = SweepSpec::from_json(
        r#"{
            "name": "rivals-serve",
            "engine": "sync",
            "topology": "complete",
            "reps": 2,
            "seed": 17,
            "budget": 200000,
            "axes": {"protocol": ["staged", "mc-dis"], "nodes": [4], "universe": [5]}
        }"#,
    )
    .expect("valid spec");

    let ref_dir = fresh_dir("rivals-ref");
    let outcome = run_campaign(&spec, &CampaignOptions::new(&ref_dir)).expect("reference run");
    let ref_manifest = std::fs::read(ref_dir.join("rivals-serve.manifest.jsonl")).expect("read");
    let ref_artifact = std::fs::read(outcome.artifact.expect("artifact")).expect("read");
    std::fs::remove_dir_all(&ref_dir).ok();

    let dir = fresh_dir("rivals-fleet");
    let handle = spawn_server(Some(spec), server_opts(&dir, 60_000)).expect("server");
    let url = handle.url();
    let workers: Vec<_> = ["w1", "w2"]
        .into_iter()
        .map(|name| {
            let mut opts = WorkerOptions::new(&url, name);
            opts.poll_ms = 25;
            std::thread::spawn(move || run_worker(&opts).expect("worker"))
        })
        .collect();
    let total: u64 = workers
        .into_iter()
        .map(|w| w.join().expect("worker thread").completed)
        .sum();
    assert_eq!(total, 2, "one point per protocol, each done exactly once");
    wait_until("artifact", Duration::from_secs(10), || {
        handle.campaign_complete()
    });

    let manifest = std::fs::read(dir.join("rivals-serve.manifest.jsonl")).expect("manifest");
    assert_eq!(manifest, ref_manifest, "distributed manifest matches");
    let artifact = std::fs::read(handle.artifact().expect("artifact path")).expect("artifact");
    assert_eq!(artifact, ref_artifact, "distributed artifact matches");

    handle.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn spec_endpoint_names_the_offending_protocol_axis() {
    let dir = fresh_dir("bad-protocol");
    let handle = spawn_server(None, server_opts(&dir, 60_000)).expect("server");
    let url = handle.url();

    // Unknown protocol name: refused with the axis named and the accepted
    // values listed, so the submitter can fix the spec without grepping.
    let bad = r#"{"schema_version":1,"spec":{
        "name": "t", "engine": "sync",
        "axes": {"protocol": ["mc-dsi"], "nodes": [4]}
    }}"#;
    let resp = post(&url, "/spec", bad).expect("post");
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("invalid spec"), "{}", resp.body);
    assert!(resp.body.contains("axis \\\"protocol\\\""), "{}", resp.body);
    assert!(resp.body.contains("mc-dis"), "{}", resp.body);

    // Sync-only protocol on the async engine: same treatment.
    let mismatched = r#"{"schema_version":1,"spec":{
        "name": "t", "engine": "async", "algorithm": "frame-based",
        "axes": {"protocol": ["s-nihao"], "nodes": [4]}
    }}"#;
    let resp = post(&url, "/spec", mismatched).expect("post");
    assert_eq!(resp.status, 400);
    assert!(
        resp.body.contains("runs on the sync engine only"),
        "{}",
        resp.body
    );
    assert!(resp.body.contains("frame-based"), "{}", resp.body);

    handle.stop();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn submit_flow_version_refusal_and_spec_round_trip() {
    let dir = fresh_dir("submit");
    // No preloaded spec: the server waits for a submission.
    let handle = spawn_server(None, server_opts(&dir, 60_000)).expect("server");
    let url = handle.url();

    assert_eq!(get(&url, "/spec").expect("spec").status, 503);
    assert_eq!(
        post(&url, "/lease", "{\"schema_version\":1,\"worker\":\"w\"}")
            .expect("lease")
            .status,
        503
    );
    let status = get(&url, "/status").expect("status").json().expect("json");
    assert_eq!(status.get("active").and_then(Value::as_bool), Some(false));

    // A too-new request is refused with 400, not misread.
    let refused =
        post(&url, "/lease", "{\"schema_version\":99,\"worker\":\"w\"}").expect("too-new lease");
    assert_eq!(refused.status, 400);
    assert!(refused.body.contains("newer"));

    // Submit the smoke spec; re-submission of the same spec is idempotent;
    // a different spec is refused.
    let spec = SweepSpec::smoke();
    let body = format!("{{\"schema_version\":1,\"spec\":{}}}", spec.to_json());
    assert_eq!(post(&url, "/spec", &body).expect("submit").status, 200);
    assert_eq!(post(&url, "/spec", &body).expect("resubmit").status, 200);
    let mut other = SweepSpec::smoke();
    other.seed ^= 1;
    let other_body = format!("{{\"schema_version\":1,\"spec\":{}}}", other.to_json());
    assert_eq!(
        post(&url, "/spec", &other_body).expect("conflict").status,
        409
    );

    // GET /spec serves the canonical form back, byte-identical.
    let served = get(&url, "/spec").expect("spec").json().expect("json");
    assert_eq!(
        served.get("spec").map(Value::to_json),
        Some(spec.to_json()),
        "the canonical spec round-trips through the wire"
    );

    // Garbage endpoints and bodies are 404/400, never a hang.
    assert_eq!(get(&url, "/nope").expect("404").status, 404);
    assert_eq!(post(&url, "/spec", "not json").expect("400").status, 400);

    handle.stop();
    std::fs::remove_dir_all(&dir).ok();
}
