//! The lease state machine: which worker owns which point, and for how
//! long.
//!
//! Pure data structure — the clock is injected as a millisecond counter,
//! so expiry is unit-testable without sleeping. Each point moves
//! `pending → leased → done`; a leased point whose deadline has passed is
//! *reclaimed* (back to the head of the pending queue) the next time a
//! grant is requested, and re-issued to whoever asked. Because point
//! execution is a pure function of `(spec, point id)`, a re-issued
//! point's redo produces byte-identical output, so reclaiming is always
//! safe — the only cost is the wasted work of the original holder, whose
//! late completion is answered with a conflict (HTTP 409) and discarded.
//!
//! v1 leases always cover a whole point (`rep_start = 0`,
//! `rep_len = reps`); the fields exist on the wire so a future version
//! can split a point's repetitions across workers without a schema bump.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One granted lease.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// The point to execute.
    pub point: u64,
    /// First repetition of the shard (always 0 in v1).
    pub rep_start: u64,
    /// Repetitions in the shard (always the spec's `reps` in v1).
    pub rep_len: u64,
    /// Absolute deadline on the coordinator's clock, in ms.
    pub deadline_ms: u64,
}

/// The outcome of a grant request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Grant {
    /// Work to do.
    Lease(Lease),
    /// Everything is leased out but not yet done — poll again shortly.
    NoneAvailable,
    /// Every point is done; the worker can exit.
    Done,
}

/// The outcome of a completion report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// The result was accepted (first completion of this point).
    Accepted,
    /// The point is already done, or leased to a different worker after
    /// this one's lease expired — the result is discarded.
    Conflict,
}

struct Held {
    worker: String,
    deadline_ms: u64,
}

/// Lease bookkeeping for one campaign.
pub struct LeaseTable {
    pending: VecDeque<u64>,
    leased: BTreeMap<u64, Held>,
    done: BTreeSet<u64>,
    rep_len: u64,
    lease_ms: u64,
}

impl LeaseTable {
    /// A table over `points` (ids not in `already_done`), with whole-point
    /// leases of `rep_len` repetitions expiring `lease_ms` after grant.
    pub fn new(points: &[u64], already_done: &BTreeSet<u64>, rep_len: u64, lease_ms: u64) -> Self {
        Self {
            pending: points
                .iter()
                .copied()
                .filter(|p| !already_done.contains(p))
                .collect(),
            leased: BTreeMap::new(),
            done: already_done.clone(),
            rep_len,
            lease_ms,
        }
    }

    /// Moves every expired lease back to the head of the pending queue so
    /// stalled points are retried before fresh ones.
    fn reclaim(&mut self, now_ms: u64) {
        let expired: Vec<u64> = self
            .leased
            .iter()
            .filter(|(_, held)| held.deadline_ms <= now_ms)
            .map(|(&p, _)| p)
            .collect();
        for point in expired {
            self.leased.remove(&point);
            self.pending.push_front(point);
        }
    }

    /// Grants the next pending point to `worker`, reclaiming expired
    /// leases first.
    pub fn grant(&mut self, worker: &str, now_ms: u64) -> Grant {
        self.reclaim(now_ms);
        match self.pending.pop_front() {
            Some(point) => {
                let deadline_ms = now_ms + self.lease_ms;
                self.leased.insert(
                    point,
                    Held {
                        worker: worker.to_string(),
                        deadline_ms,
                    },
                );
                Grant::Lease(Lease {
                    point,
                    rep_start: 0,
                    rep_len: self.rep_len,
                    deadline_ms,
                })
            }
            None if self.leased.is_empty() => Grant::Done,
            None => Grant::NoneAvailable,
        }
    }

    /// Records `worker` finishing `point`. Accepted if the point is still
    /// leased to this worker — or back in the pending queue after an
    /// expiry nobody else picked up yet (the bytes are deterministic, so
    /// accepting saves a redo). Conflict if the point is already done or
    /// was re-issued to a different worker.
    pub fn complete(&mut self, worker: &str, point: u64) -> Completion {
        if self.done.contains(&point) {
            return Completion::Conflict;
        }
        if let Some(held) = self.leased.get(&point) {
            if held.worker != worker {
                return Completion::Conflict;
            }
        } else if !self.pending.contains(&point) {
            // Not done, not leased, not pending: outside the grid.
            return Completion::Conflict;
        }
        self.leased.remove(&point);
        self.pending.retain(|&p| p != point);
        self.done.insert(point);
        Completion::Accepted
    }

    /// `(done, leased, pending)` counts, as served by `GET /status`.
    pub fn counts(&self) -> (usize, usize, usize) {
        (self.done.len(), self.leased.len(), self.pending.len())
    }

    /// True once every point is done.
    pub fn is_complete(&self) -> bool {
        self.pending.is_empty() && self.leased.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(points: u64, lease_ms: u64) -> LeaseTable {
        let ids: Vec<u64> = (0..points).collect();
        LeaseTable::new(&ids, &BTreeSet::new(), 8, lease_ms)
    }

    #[test]
    fn grants_cover_every_point_once() {
        let mut t = table(3, 1000);
        let mut seen = Vec::new();
        for _ in 0..3 {
            match t.grant("w", 0) {
                Grant::Lease(l) => {
                    assert_eq!((l.rep_start, l.rep_len), (0, 8));
                    assert_eq!(l.deadline_ms, 1000);
                    seen.push(l.point);
                }
                other => panic!("expected lease, got {other:?}"),
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(t.grant("w", 0), Grant::NoneAvailable);
        for p in 0..3 {
            assert_eq!(t.complete("w", p), Completion::Accepted);
        }
        assert_eq!(t.grant("w", 0), Grant::Done);
        assert!(t.is_complete());
    }

    #[test]
    fn expired_leases_are_reissued_and_late_completion_conflicts() {
        let mut t = table(1, 1000);
        let Grant::Lease(l) = t.grant("w1", 0) else {
            panic!("lease");
        };
        assert_eq!(l.point, 0);
        // Before expiry nothing is reissued.
        assert_eq!(t.grant("w2", 999), Grant::NoneAvailable);
        // At the deadline the lease is reclaimed and reissued to w2.
        let Grant::Lease(l) = t.grant("w2", 1000) else {
            panic!("reissue");
        };
        assert_eq!(l.point, 0);
        assert_eq!(l.deadline_ms, 2000);
        // w2 completes first; w1's late result is a conflict.
        assert_eq!(t.complete("w2", 0), Completion::Accepted);
        assert_eq!(t.complete("w1", 0), Completion::Conflict);
        assert!(t.is_complete());
    }

    #[test]
    fn duplicate_completion_is_a_conflict() {
        let mut t = table(2, 1000);
        let Grant::Lease(l) = t.grant("w1", 0) else {
            panic!("lease");
        };
        assert_eq!(t.complete("w1", l.point), Completion::Accepted);
        assert_eq!(t.counts().0, 1);
        assert_eq!(t.complete("w1", l.point), Completion::Conflict);
    }

    #[test]
    fn expired_point_back_in_pending_still_accepts_original_holder() {
        // Both points leased; both expire; a third worker's grant reclaims
        // both but can only take one — the other sits *pending*. The
        // original holder's late result for the pending point is still
        // byte-identical, so it is accepted (saving a redo) rather than
        // conflicted.
        let mut t = table(2, 1000);
        let Grant::Lease(a) = t.grant("w1", 0) else {
            panic!("lease a");
        };
        let Grant::Lease(b) = t.grant("w2", 0) else {
            panic!("lease b");
        };
        let Grant::Lease(reissued) = t.grant("w3", 1000) else {
            panic!("reissue");
        };
        let still_pending = if reissued.point == a.point {
            b.point
        } else {
            a.point
        };
        let original_holder = if still_pending == a.point { "w1" } else { "w2" };
        assert_eq!(t.counts(), (0, 1, 1));
        assert_eq!(
            t.complete(original_holder, still_pending),
            Completion::Accepted
        );
        assert_eq!(t.counts(), (1, 1, 0));
    }

    #[test]
    fn unknown_points_and_resume_are_handled() {
        let done: BTreeSet<u64> = [0, 2].into_iter().collect();
        let mut t = LeaseTable::new(&[0, 1, 2, 3], &done, 4, 1000);
        assert_eq!(t.counts(), (2, 0, 2));
        assert_eq!(t.complete("w", 99), Completion::Conflict);
        assert_eq!(t.complete("w", 0), Completion::Conflict);
        let mut granted = Vec::new();
        while let Grant::Lease(l) = t.grant("w", 0) {
            granted.push(l.point);
        }
        granted.sort_unstable();
        assert_eq!(granted, vec![1, 3], "resumed points are never re-leased");
    }
}
