//! The coordinator: owns the spec, the lease table, and the manifest.
//!
//! One `TcpListener`, one thread per connection, one `Mutex` around the
//! campaign state — campaign points take seconds, so lock contention is
//! irrelevant next to correctness. The load-bearing invariant is the
//! **in-point-order manifest append**: completions arrive in whatever
//! order workers finish, are buffered, and are flushed to disk only as a
//! contiguous run from the append cursor. Combined with the byte-stable
//! manifest lines of [`mmhew_campaign::points`], that makes a distributed
//! campaign's manifest byte-identical to a single-process
//! `run_campaign` of the same spec — including after a worker is killed
//! mid-lease and its point redone elsewhere.
//!
//! The manifest on disk uses the exact single-process checkpoint
//! machinery ([`mmhew_campaign::ensure_manifest_header`],
//! [`mmhew_campaign::load_manifest`], append, artifact render), so a
//! coordinator can resume a manifest a local run left behind and vice
//! versa.

use crate::http::{read_request, respond, Request};
use crate::lease::{Completion, Grant, LeaseTable};
use crate::wire::{body_with, check_version, error_body, WIRE_SCHEMA_VERSION};
use mmhew_campaign::json::{parse, Value};
use mmhew_campaign::{points, CampaignError, SweepSpec};
use mmhew_obs::value::write_json_string;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address, e.g. `127.0.0.1:8077` (port 0 picks a free one).
    pub listen: String,
    /// Directory for the manifest and artifact.
    pub out_dir: PathBuf,
    /// Lease duration before a point is reclaimed and re-issued.
    pub lease_ms: u64,
    /// Resume an existing manifest instead of starting the campaign over.
    pub resume: bool,
    /// How long to keep serving `/status` and `/manifest` after the
    /// campaign completes before `run` returns (lets trailing pollers and
    /// `campaign explore --server` catch the final state).
    pub linger_ms: u64,
}

impl ServerOptions {
    /// Defaults: loopback with an OS-assigned port, `campaign-out`,
    /// 30-second leases, fresh start, 2-second linger.
    pub fn new() -> Self {
        Self {
            listen: "127.0.0.1:0".to_string(),
            out_dir: PathBuf::from("campaign-out"),
            lease_ms: 30_000,
            resume: false,
            linger_ms: 2_000,
        }
    }
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// Coordinator failures.
#[derive(Debug)]
pub enum ServeError {
    /// Socket / filesystem failure.
    Io(std::io::Error),
    /// The spec or manifest was unusable.
    Campaign(CampaignError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "campaign-server I/O failed: {e}"),
            ServeError::Campaign(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<CampaignError> for ServeError {
    fn from(e: CampaignError) -> Self {
        ServeError::Campaign(e)
    }
}

struct WorkerStats {
    completed: u64,
    first_seen: Instant,
}

/// One loaded campaign and its manifest bookkeeping.
struct Active {
    spec: SweepSpec,
    /// Canonical [`SweepSpec::to_json`] form — the identity used for
    /// idempotent re-submission and served by `GET /spec`.
    spec_json: String,
    total: u64,
    table: LeaseTable,
    /// Accepted lines not yet flushed (completions that arrived out of
    /// point order).
    buffered: BTreeMap<u64, String>,
    /// Points whose lines are already in the manifest file (resumed or
    /// flushed).
    appended: BTreeSet<u64>,
    /// Next point id the manifest file expects — lines are appended only
    /// as a contiguous run from here, which is what keeps the file
    /// byte-identical to a single-process run's.
    cursor: u64,
    manifest: PathBuf,
    artifact: Option<PathBuf>,
    workers: BTreeMap<String, WorkerStats>,
}

impl Active {
    fn load(spec: SweepSpec, opts: &ServerOptions) -> Result<Self, CampaignError> {
        spec.validate()?;
        std::fs::create_dir_all(&opts.out_dir)?;
        let manifest = opts.out_dir.join(format!("{}.manifest.jsonl", spec.name));
        let done = if opts.resume {
            points::ensure_manifest_header(&manifest, &spec)?;
            points::load_manifest(&manifest)?
        } else {
            if manifest.exists() {
                std::fs::remove_file(&manifest)?;
            }
            points::ensure_manifest_header(&manifest, &spec)?;
            BTreeMap::new()
        };
        let all = spec.expand();
        let ids: Vec<u64> = all.iter().map(|p| p.id).collect();
        let appended: BTreeSet<u64> = done.keys().copied().collect();
        let table = LeaseTable::new(&ids, &appended, spec.reps, opts.lease_ms);
        let mut active = Active {
            spec_json: spec.to_json(),
            total: all.len() as u64,
            table,
            buffered: BTreeMap::new(),
            appended,
            cursor: 0,
            manifest,
            artifact: None,
            workers: BTreeMap::new(),
            spec,
        };
        active.advance_cursor();
        Ok(active)
    }

    /// Skips the cursor over points already in the file (resumed runs).
    fn advance_cursor(&mut self) {
        while self.appended.contains(&self.cursor) {
            self.cursor += 1;
        }
    }

    /// Flushes the contiguous run of buffered lines starting at the
    /// cursor, and renders the artifact once everything is on disk.
    fn flush(&mut self, out_dir: &Path) -> Result<(), CampaignError> {
        let mut lines = Vec::new();
        while let Some(line) = self.buffered.remove(&self.cursor) {
            lines.push(line);
            self.appended.insert(self.cursor);
            self.cursor += 1;
            self.advance_cursor();
        }
        if !lines.is_empty() {
            points::append_manifest(&self.manifest, &lines)?;
        }
        if self.table.is_complete() && self.artifact.is_none() {
            debug_assert!(self.buffered.is_empty());
            let done = points::load_manifest(&self.manifest)?;
            let artifact = out_dir.join(format!("{}.campaign.json", self.spec.name));
            self.artifact = Some(points::write_artifact_file(&self.spec, &artifact, &done)?);
        }
        Ok(())
    }
}

struct Coordinator {
    opts: ServerOptions,
    started: Instant,
    state: Mutex<Option<Active>>,
    stop: AtomicBool,
}

impl Coordinator {
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Routes one request to `(status, body)`.
    fn handle(&self, req: &Request) -> (u16, String) {
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/spec") => self.get_spec(),
            ("POST", "/spec") => self.post_spec(&req.body),
            ("POST", "/lease") => self.post_lease(&req.body),
            ("POST", "/complete") => self.post_complete(&req.body),
            ("GET", "/status") => self.get_status(),
            ("GET", "/manifest") => self.get_manifest(),
            _ => (
                404,
                error_body(&format!("no such endpoint: {} {}", req.method, req.path)),
            ),
        }
    }

    fn get_spec(&self) -> (u16, String) {
        let state = self.state.lock().expect("coordinator lock");
        match state.as_ref() {
            Some(active) => (200, body_with(&format!("\"spec\":{}", active.spec_json))),
            None => (503, error_body("no campaign loaded; POST /spec one")),
        }
    }

    fn post_spec(&self, body: &str) -> (u16, String) {
        let v = match parse_checked(body) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let Some(spec_value) = v.get("spec") else {
            return (400, error_body("body needs a \"spec\" object"));
        };
        let spec = match SweepSpec::from_json(&spec_value.to_json()) {
            Ok(spec) => spec,
            Err(e) => return (400, error_body(&format!("invalid spec: {e}"))),
        };
        let mut state = self.state.lock().expect("coordinator lock");
        match state.as_ref() {
            Some(active) if active.spec_json == spec.to_json() => {
                // Idempotent re-submission of the running campaign.
                (200, body_with("\"loaded\":true"))
            }
            Some(active) => (
                409,
                error_body(&format!(
                    "campaign {:?} is already active; one campaign per server",
                    active.spec.name
                )),
            ),
            None => match Active::load(spec, &self.opts) {
                Ok(active) => {
                    *state = Some(active);
                    (200, body_with("\"loaded\":true"))
                }
                Err(e) => (400, error_body(&e.to_string())),
            },
        }
    }

    fn post_lease(&self, body: &str) -> (u16, String) {
        let v = match parse_checked(body) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let Some(worker) = v.get("worker").and_then(Value::as_str) else {
            return (400, error_body("body needs a \"worker\" name"));
        };
        let now = self.now_ms();
        let mut state = self.state.lock().expect("coordinator lock");
        let Some(active) = state.as_mut() else {
            return (503, error_body("no campaign loaded; POST /spec one"));
        };
        active
            .workers
            .entry(worker.to_string())
            .or_insert_with(|| WorkerStats {
                completed: 0,
                first_seen: Instant::now(),
            });
        match active.table.grant(worker, now) {
            Grant::Lease(lease) => (
                200,
                body_with(&format!(
                    "\"point\":{},\"rep_start\":{},\"rep_len\":{},\
                     \"deadline_ms\":{},\"lease_ms\":{}",
                    lease.point,
                    lease.rep_start,
                    lease.rep_len,
                    lease.deadline_ms,
                    self.opts.lease_ms
                )),
            ),
            Grant::NoneAvailable => (204, String::new()),
            Grant::Done => (410, error_body("campaign complete; nothing to lease")),
        }
    }

    fn post_complete(&self, body: &str) -> (u16, String) {
        let v = match parse_checked(body) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let (Some(worker), Some(point), Some(line)) = (
            v.get("worker").and_then(Value::as_str),
            v.get("point").and_then(Value::as_u64),
            v.get("line").and_then(Value::as_str),
        ) else {
            return (
                400,
                error_body("body needs \"worker\", \"point\", and \"line\""),
            );
        };
        // The line must be a manifest record for the claimed point —
        // anything else would corrupt the checkpoint.
        match parse(line) {
            Ok(rec) if rec.get("point").and_then(Value::as_u64) == Some(point) => {}
            _ => {
                return (
                    400,
                    error_body("\"line\" is not a manifest record for that point"),
                )
            }
        }
        let mut state = self.state.lock().expect("coordinator lock");
        let Some(active) = state.as_mut() else {
            return (503, error_body("no campaign loaded"));
        };
        match active.table.complete(worker, point) {
            Completion::Conflict => (
                409,
                error_body(&format!(
                    "lease on point {point} is stale (expired and re-issued, \
                     or already completed); result discarded"
                )),
            ),
            Completion::Accepted => {
                active.buffered.insert(point, line.to_string());
                if let Some(stats) = active.workers.get_mut(worker) {
                    stats.completed += 1;
                }
                if let Err(e) = active.flush(&self.opts.out_dir) {
                    return (500, error_body(&format!("manifest append failed: {e}")));
                }
                (200, body_with("\"accepted\":true"))
            }
        }
    }

    fn get_status(&self) -> (u16, String) {
        let state = self.state.lock().expect("coordinator lock");
        let Some(active) = state.as_ref() else {
            return (200, body_with("\"active\":false"));
        };
        let (done, leased, pending) = active.table.counts();
        let mut workers = String::from("{");
        for (i, (name, stats)) in active.workers.iter().enumerate() {
            if i > 0 {
                workers.push(',');
            }
            write_json_string(&mut workers, name);
            let elapsed = stats.first_seen.elapsed().as_secs_f64().max(1e-9);
            workers.push_str(&format!(
                ":{{\"completed\":{},\"points_per_sec\":{:.6}}}",
                stats.completed,
                stats.completed as f64 / elapsed
            ));
        }
        workers.push('}');
        let mut fields = String::from("\"active\":true,\"name\":");
        write_json_string(&mut fields, &active.spec.name);
        fields.push_str(&format!(
            ",\"total\":{},\"done\":{done},\"leased\":{leased},\"pending\":{pending},\
             \"complete\":{},\"workers\":{workers}",
            active.total,
            active.table.is_complete()
        ));
        (200, body_with(&fields))
    }

    fn get_manifest(&self) -> (u16, String) {
        let state = self.state.lock().expect("coordinator lock");
        let Some(active) = state.as_ref() else {
            return (503, error_body("no campaign loaded"));
        };
        match std::fs::read_to_string(&active.manifest) {
            Ok(text) => (200, text),
            Err(e) => (500, error_body(&format!("cannot read manifest: {e}"))),
        }
    }

    fn campaign_complete(&self) -> bool {
        let state = self.state.lock().expect("coordinator lock");
        state
            .as_ref()
            .is_some_and(|a| a.table.is_complete() && a.artifact.is_some())
    }

    fn artifact(&self) -> Option<PathBuf> {
        let state = self.state.lock().expect("coordinator lock");
        state.as_ref().and_then(|a| a.artifact.clone())
    }
}

fn parse_checked(body: &str) -> Result<Value, (u16, String)> {
    let v = parse(body).map_err(|e| (400, error_body(&format!("body is not JSON: {e}"))))?;
    check_version(&v).map_err(|msg| (400, error_body(&msg)))?;
    Ok(v)
}

fn serve_connection(coordinator: &Coordinator, mut stream: TcpStream) {
    let response = match read_request(&mut stream) {
        Ok(req) => coordinator.handle(&req),
        Err(e) => (400, error_body(&e.to_string())),
    };
    // The peer may already be gone; nothing useful to do about it.
    let _ = respond(&mut stream, response.0, &response.1);
}

/// A running coordinator, for in-process use (tests, embedding).
pub struct ServerHandle {
    /// The bound address (with the OS-assigned port resolved).
    pub addr: SocketAddr,
    coordinator: Arc<Coordinator>,
    accept_thread: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The `--server` value clients should use.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// True once every point is done and the artifact is on disk.
    pub fn campaign_complete(&self) -> bool {
        self.coordinator.campaign_complete()
    }

    /// The artifact path, once written.
    pub fn artifact(&self) -> Option<PathBuf> {
        self.coordinator.artifact()
    }

    /// Blocks until the campaign completes (plus the configured linger),
    /// then stops. Used by the `campaign-server` binary.
    pub fn wait_until_complete(self) -> Option<PathBuf> {
        while !self.coordinator.campaign_complete() {
            std::thread::sleep(Duration::from_millis(25));
        }
        std::thread::sleep(Duration::from_millis(self.coordinator.opts.linger_ms));
        let artifact = self.coordinator.artifact();
        self.stop();
        artifact
    }

    /// Stops accepting and joins the accept thread.
    pub fn stop(self) {
        self.coordinator.stop.store(true, Ordering::SeqCst);
        let _ = self.accept_thread.join();
    }
}

/// Binds `opts.listen` and starts serving on a background accept thread.
/// `spec` preloads a campaign; with `None` the server waits for
/// `POST /spec` (the `campaign submit` flow).
///
/// # Errors
///
/// Returns bind/spec/manifest failures; once this returns `Ok` the
/// service is reachable at [`ServerHandle::addr`].
pub fn spawn_server(
    spec: Option<SweepSpec>,
    opts: ServerOptions,
) -> Result<ServerHandle, ServeError> {
    let listener = TcpListener::bind(&opts.listen)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let active = match spec {
        Some(spec) => Some(Active::load(spec, &opts)?),
        None => None,
    };
    let coordinator = Arc::new(Coordinator {
        opts,
        started: Instant::now(),
        state: Mutex::new(active),
        stop: AtomicBool::new(false),
    });
    let accept_owner = Arc::clone(&coordinator);
    let accept_thread = std::thread::spawn(move || {
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !accept_owner.stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    let c = Arc::clone(&accept_owner);
                    handlers.push(std::thread::spawn(move || serve_connection(&c, stream)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
            handlers.retain(|h| !h.is_finished());
        }
        for h in handlers {
            let _ = h.join();
        }
    });
    Ok(ServerHandle {
        addr,
        coordinator,
        accept_thread,
    })
}
