//! The worker loop: lease a point, run it, post the line back, repeat.
//!
//! A worker is stateless and interchangeable: it fetches the canonical
//! spec once (`GET /spec`), expands the grid locally (deterministic, so
//! every worker and the coordinator agree on point ids), then loops on
//! `POST /lease` → [`mmhew_campaign::run_point_line`] → `POST /complete`.
//! A 409 on completion means the lease expired and the point was
//! re-issued elsewhere — the worker shrugs and asks for the next lease; a
//! 410 on lease means the campaign is done and the worker exits. Crashing
//! at *any* point in the loop is safe: the coordinator re-issues the
//! lease after its deadline and the redo is byte-identical.

use mmhew_campaign::client::{get, post};
use mmhew_campaign::json::Value;
use mmhew_campaign::points::run_point_line;
use mmhew_campaign::{Point, SweepSpec};
use mmhew_obs::value::write_json_string;
use std::time::Duration;

/// Worker configuration.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Coordinator URL, e.g. `http://127.0.0.1:8077`.
    pub server: String,
    /// Worker name as reported in leases and `/status` (must be unique
    /// per worker, or lease ownership checks degrade).
    pub name: String,
    /// Extra sleep before executing each leased point — only useful to
    /// widen kill windows in fault-tolerance tests.
    pub throttle_ms: u64,
    /// Sleep between polls when no lease is available (204) or no spec is
    /// loaded yet (503).
    pub poll_ms: u64,
}

impl WorkerOptions {
    /// Defaults for a worker of the given name against `server`.
    pub fn new(server: impl Into<String>, name: impl Into<String>) -> Self {
        Self {
            server: server.into(),
            name: name.into(),
            throttle_ms: 0,
            poll_ms: 200,
        }
    }
}

/// What a worker did before exiting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Completions the coordinator accepted.
    pub completed: u64,
    /// Completions discarded as stale (409) — work lost to lease expiry.
    pub conflicts: u64,
}

/// Consecutive connection failures tolerated before concluding the
/// coordinator is gone.
const MAX_CONNECT_FAILURES: u32 = 150;

fn body_for_lease(name: &str) -> String {
    let mut body = String::from("{\"schema_version\":1,\"worker\":");
    write_json_string(&mut body, name);
    body.push('}');
    body
}

fn body_for_complete(name: &str, point: u64, line: &str) -> String {
    let mut body = String::from("{\"schema_version\":1,\"worker\":");
    write_json_string(&mut body, name);
    body.push_str(&format!(",\"point\":{point},\"line\":"));
    write_json_string(&mut body, line);
    body.push('}');
    body
}

/// Fetches and parses the canonical spec, waiting out 503s (server up,
/// campaign not submitted yet) and early connection failures (server
/// still binding).
fn fetch_spec(opts: &WorkerOptions) -> Result<SweepSpec, String> {
    let mut failures = 0u32;
    loop {
        match get(&opts.server, "/spec") {
            Ok(resp) if resp.status == 200 => {
                let v = resp.json()?;
                let spec_json = v
                    .get("spec")
                    .map(Value::to_json)
                    .ok_or("GET /spec response has no \"spec\"")?;
                return SweepSpec::from_json(&spec_json)
                    .map_err(|e| format!("coordinator served an invalid spec: {e}"));
            }
            Ok(resp) if resp.status == 503 => {
                std::thread::sleep(Duration::from_millis(opts.poll_ms));
            }
            Ok(resp) => {
                return Err(format!(
                    "GET /spec failed with status {}: {}",
                    resp.status, resp.body
                ))
            }
            Err(_) => {
                failures += 1;
                if failures > MAX_CONNECT_FAILURES {
                    return Err(format!("cannot reach coordinator at {}", opts.server));
                }
                std::thread::sleep(Duration::from_millis(opts.poll_ms));
            }
        }
    }
}

/// Runs the worker loop until the coordinator reports the campaign done
/// (410) or disappears after having served leases.
///
/// # Errors
///
/// Returns a description of an unrecoverable failure: unreachable
/// coordinator, invalid spec, a protocol error, or a point that fails to
/// execute.
pub fn run_worker(opts: &WorkerOptions) -> Result<WorkerSummary, String> {
    let spec = fetch_spec(opts)?;
    let points: Vec<Point> = spec.expand();
    let mut summary = WorkerSummary {
        completed: 0,
        conflicts: 0,
    };
    let mut failures = 0u32;
    loop {
        let resp = match post(&opts.server, "/lease", &body_for_lease(&opts.name)) {
            Ok(resp) => {
                failures = 0;
                resp
            }
            Err(_) => {
                failures += 1;
                if failures > 3 && summary.completed > 0 {
                    // The coordinator exits shortly after completion; a
                    // vanished server after successful work means done.
                    return Ok(summary);
                }
                if failures > MAX_CONNECT_FAILURES {
                    return Err(format!("lost coordinator at {}", opts.server));
                }
                std::thread::sleep(Duration::from_millis(opts.poll_ms));
                continue;
            }
        };
        match resp.status {
            200 => {
                let v = resp.json()?;
                let Some(id) = v.get("point").and_then(Value::as_u64) else {
                    return Err("lease response has no \"point\"".to_string());
                };
                let point = points
                    .iter()
                    .find(|p| p.id == id)
                    .ok_or_else(|| format!("leased point {id} is outside the grid"))?;
                if opts.throttle_ms > 0 {
                    std::thread::sleep(Duration::from_millis(opts.throttle_ms));
                }
                let line = run_point_line(&spec, point).map_err(|e| e.to_string())?;
                match post(
                    &opts.server,
                    "/complete",
                    &body_for_complete(&opts.name, id, &line),
                ) {
                    Ok(resp) if resp.status == 200 => summary.completed += 1,
                    Ok(resp) if resp.status == 409 => summary.conflicts += 1,
                    Ok(resp) => {
                        return Err(format!(
                            "POST /complete failed with status {}: {}",
                            resp.status, resp.body
                        ))
                    }
                    Err(e) => {
                        // The line is lost but the lease will expire and
                        // the point be redone — not fatal for the fleet,
                        // but this worker reports the broken link.
                        return Err(format!("lost coordinator mid-completion: {e}"));
                    }
                }
            }
            204 => std::thread::sleep(Duration::from_millis(opts.poll_ms)),
            410 => return Ok(summary),
            503 => std::thread::sleep(Duration::from_millis(opts.poll_ms)),
            other => {
                return Err(format!(
                    "POST /lease failed with status {other}: {}",
                    resp.body
                ))
            }
        }
    }
}
