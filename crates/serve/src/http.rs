//! A deliberately small HTTP/1.1 server edge for the campaign service.
//!
//! One request per connection, `Content-Length`-framed bodies,
//! `Connection: close` on every response — no keep-alive, no chunked
//! encoding, no TLS. The protocol is coordinator-to-worker on a trusted
//! network (usually loopback), so the parser favors clarity over
//! generality; it still bounds header and body sizes so a confused peer
//! cannot balloon memory.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Upper bound on a request body (a submitted spec is a few KiB; manifest
/// lines are smaller still).
const MAX_BODY: usize = 4 * 1024 * 1024;

/// A parsed request: method, path, and the (possibly empty) body.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ….
    pub method: String,
    /// The request target, e.g. `/lease`.
    pub path: String,
    /// The body, framed by `Content-Length`.
    pub body: String,
}

fn invalid(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

/// Reads one request from the stream: head until `\r\n\r\n`, then exactly
/// `Content-Length` body bytes.
///
/// # Errors
///
/// Returns `InvalidData` on a malformed or oversized request, or any
/// underlying I/O error (including read timeouts set by the caller).
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Request> {
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(invalid("request head exceeds 16 KiB"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(invalid("connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
    let mut lines = head.lines();
    let request_line = lines.next().ok_or_else(|| invalid("empty request"))?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or_else(|| invalid("missing method"))?;
    let path = parts.next().ok_or_else(|| invalid("missing path"))?;
    let content_length = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| v.trim().parse::<usize>())
        .transpose()
        .map_err(|_| invalid("bad Content-Length"))?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(invalid("request body exceeds 4 MiB"));
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(invalid("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body: String::from_utf8_lossy(&body).to_string(),
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes one response (JSON body unless empty) and leaves the connection
/// for the caller to drop — every response is `Connection: close`.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn respond(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        410 => "Gone",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Round-trips a raw request through a real socket pair and returns
    /// what `read_request` parsed.
    fn parse_raw(raw: &[u8]) -> std::io::Result<Request> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&raw).expect("write");
        });
        let (mut stream, _) = listener.accept().expect("accept");
        let parsed = read_request(&mut stream);
        writer.join().expect("writer");
        parsed
    }

    #[test]
    fn requests_parse_with_and_without_bodies() {
        let r = parse_raw(b"GET /status HTTP/1.1\r\nHost: x\r\n\r\n").expect("parses");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/status");
        assert_eq!(r.body, "");

        let r = parse_raw(
            b"POST /lease HTTP/1.1\r\nHost: x\r\nContent-Length: 20\r\n\r\n{\"schema_version\":1}",
        )
        .expect("parses");
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/lease");
        assert_eq!(r.body, "{\"schema_version\":1}");
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(parse_raw(b"\r\n\r\n").is_err());
        assert!(parse_raw(b"POST /x HTTP/1.1\r\nContent-Length: zap\r\n\r\n").is_err());
        // Truncated body: peer closes before Content-Length bytes arrive.
        assert!(parse_raw(b"POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort").is_err());
    }

    #[test]
    fn responses_are_well_formed() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept");
            respond(&mut s, 409, "{\"schema_version\":1}").expect("respond");
        });
        let mut s = TcpStream::connect(addr).expect("connect");
        let mut raw = String::new();
        s.read_to_string(&mut raw).expect("read");
        server.join().expect("server");
        assert!(raw.starts_with("HTTP/1.1 409 Conflict\r\n"));
        assert!(raw.contains("Content-Length: 20\r\n"));
        assert!(raw.contains("Connection: close\r\n"));
        assert!(raw.ends_with("\r\n\r\n{\"schema_version\":1}"));
    }
}
