//! Campaign coordinator: owns the manifest, hands out leases, serves
//! status.
//!
//! ```text
//! campaign-server --spec sweep.json [--listen ADDR] [--out DIR]
//!                 [--lease-secs N] [--resume]
//! campaign-server --smoke                 # built-in 4-point CI spec
//! campaign-server --listen 127.0.0.1:8077 # wait for `campaign submit`
//! ```
//!
//! Flags: `--spec <file.json>` or `--smoke` preload the campaign
//! (otherwise the server waits for a `campaign submit --server URL`),
//! `--listen <addr>` (default `127.0.0.1:8077`; port 0 picks a free
//! port, printed on startup), `--out <dir>` (default `campaign-out`),
//! `--lease-secs <n>` (default 30 — how long a worker may hold a point
//! before it is re-issued), `--linger-ms <n>` (default 2000 — how long
//! to keep serving `/status` and `/manifest` after completion), and
//! `--resume` (continue an existing manifest instead of starting over).
//!
//! The server prints `listening on http://ADDR`, runs until every point
//! is done, writes the artifact, lingers briefly, and exits 0.

use mmhew_campaign::SweepSpec;
use mmhew_harness::cli::Args;
use mmhew_serve::{spawn_server, ServerOptions};
use std::io::Write as _;

fn usage() -> ! {
    eprintln!(
        "usage: campaign-server [--spec FILE.json | --smoke] [--listen ADDR] \
         [--out DIR] [--lease-secs N] [--linger-ms N] [--resume]"
    );
    std::process::exit(2);
}

fn main() {
    let args = match Args::parse().and_then(|a| {
        a.expect_only(
            &["spec", "listen", "out", "lease-secs", "linger-ms"],
            &["smoke", "resume"],
        )?;
        Ok(a)
    }) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("campaign-server: {e}");
            usage();
        }
    };

    let spec = if args.flag("smoke") {
        Some(SweepSpec::smoke())
    } else if let Some(path) = args.raw("spec") {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("campaign-server: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        match SweepSpec::from_json(&text) {
            Ok(spec) => Some(spec),
            Err(e) => {
                eprintln!("campaign-server: {path}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        None
    };

    let mut opts = ServerOptions::new();
    opts.listen = args.raw("listen").unwrap_or("127.0.0.1:8077").to_string();
    opts.out_dir = args.raw("out").unwrap_or("campaign-out").into();
    opts.resume = args.flag("resume");
    opts.lease_ms = match args.get_or("lease-secs", 30u64) {
        Ok(secs) => secs.saturating_mul(1000).max(1),
        Err(e) => {
            eprintln!("campaign-server: {e}");
            usage();
        }
    };
    opts.linger_ms = match args.get_or("linger-ms", 2000u64) {
        Ok(ms) => ms,
        Err(e) => {
            eprintln!("campaign-server: {e}");
            usage();
        }
    };

    let handle = match spawn_server(spec, opts) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("campaign-server: {e}");
            std::process::exit(1);
        }
    };
    println!("campaign-server: listening on {}", handle.url());
    // Workers and scripts parse the line above; make sure it is visible
    // before the (potentially long) campaign.
    let _ = std::io::stdout().flush();
    match handle.wait_until_complete() {
        Some(artifact) => println!("campaign-server: artifact {}", artifact.display()),
        None => println!("campaign-server: stopped without an artifact"),
    }
}
