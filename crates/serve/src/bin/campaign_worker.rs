//! Campaign worker: leases points from a `campaign-server` and runs them.
//!
//! ```text
//! campaign-worker --server http://127.0.0.1:8077 [--name w1]
//!                 [--throttle-ms N] [--poll-ms N]
//! ```
//!
//! Flags: `--server <url>` (required), `--name <id>` (default
//! `worker-<pid>`; must be unique per worker), `--throttle-ms <n>`
//! (sleep before each leased point — for fault-injection tests that need
//! a wide kill window), `--poll-ms <n>` (default 200 — idle poll
//! interval), and the standard `--jobs <n>` (accepted uniformly by every
//! harness binary; points run their shards serially, so it only sizes the
//! harness pool if a future worker parallelizes within a point).
//!
//! The worker exits 0 when the coordinator reports the campaign done
//! (or disappears after this worker completed at least one point —
//! coordinators exit shortly after completion).

use mmhew_harness::cli::Args;
use mmhew_harness::set_jobs;
use mmhew_serve::{run_worker, WorkerOptions};

fn usage() -> ! {
    eprintln!(
        "usage: campaign-worker --server URL [--name ID] [--throttle-ms N] \
         [--poll-ms N] [--jobs N]"
    );
    std::process::exit(2);
}

fn main() {
    let args = match Args::parse().and_then(|a| {
        a.expect_only(&["server", "name", "throttle-ms", "poll-ms"], &[])?;
        Ok(a)
    }) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("campaign-worker: {e}");
            usage();
        }
    };
    match args.jobs() {
        Ok(Some(jobs)) => set_jobs(jobs),
        Ok(None) => {}
        Err(e) => {
            eprintln!("campaign-worker: {e}");
            usage();
        }
    }
    let Some(server) = args.raw("server") else {
        eprintln!("campaign-worker: --server URL is required");
        usage();
    };
    let name = args
        .raw("name")
        .map(String::from)
        .unwrap_or_else(|| format!("worker-{}", std::process::id()));
    let mut opts = WorkerOptions::new(server, &name);
    opts.throttle_ms = match args.get_or("throttle-ms", 0u64) {
        Ok(ms) => ms,
        Err(e) => {
            eprintln!("campaign-worker: {e}");
            usage();
        }
    };
    opts.poll_ms = match args.get_or("poll-ms", 200u64) {
        Ok(ms) => ms.max(1),
        Err(e) => {
            eprintln!("campaign-worker: {e}");
            usage();
        }
    };
    match run_worker(&opts) {
        Ok(summary) => println!(
            "campaign-worker {name}: {} completed, {} conflicted",
            summary.completed, summary.conflicts
        ),
        Err(e) => {
            eprintln!("campaign-worker {name}: {e}");
            std::process::exit(1);
        }
    }
}
