//! The campaign service wire protocol: JSON bodies, one schema version.
//!
//! Every request and response body carries `"schema_version"`. Both sides
//! refuse a *newer* version than they understand rather than misreading
//! it; the client half of the protocol lives in
//! [`mmhew_campaign::client`] (to avoid a dependency cycle) and a test
//! below pins the two constants equal.
//!
//! Endpoint map (all bodies stamped with the version):
//!
//! | Endpoint         | Request body                          | Responses |
//! |------------------|---------------------------------------|-----------|
//! | `POST /spec`     | `{…,"spec":{…}}`                      | 200 loaded/idempotent, 409 different spec active, 400 invalid |
//! | `GET  /spec`     | —                                     | 200 `{…,"spec":{…}}`, 503 none loaded |
//! | `POST /lease`    | `{…,"worker":"w1"}`                   | 200 `{…,"point":N,"rep_start":0,"rep_len":R,"lease_ms":L}`, 204 none free, 410 campaign done, 503 none loaded |
//! | `POST /complete` | `{…,"worker":"w1","point":N,"line":"…"}` | 200 accepted, 409 stale lease / duplicate, 400 invalid, 503 none loaded |
//! | `GET  /status`   | —                                     | 200 counts + per-worker throughput |
//! | `GET  /manifest` | —                                     | 200 manifest JSONL verbatim, 503 none loaded |

use mmhew_obs::value::{write_json_string, Value};

/// Schema version stamped on every body. Must stay equal to
/// [`mmhew_campaign::client::WIRE_SCHEMA_VERSION`]; the test below pins
/// them together.
pub const WIRE_SCHEMA_VERSION: u32 = 1;

/// Checks a parsed request body's `schema_version`: absent counts as
/// version 0 (oldest), newer than ours is refused.
///
/// # Errors
///
/// Returns the refusal message for a too-new body.
pub fn check_version(v: &Value) -> Result<(), String> {
    let version = v.get("schema_version").and_then(Value::as_u64).unwrap_or(0);
    if version > WIRE_SCHEMA_VERSION as u64 {
        return Err(format!(
            "request speaks wire schema {version}, newer than the supported \
             {WIRE_SCHEMA_VERSION}; upgrade this server"
        ));
    }
    Ok(())
}

/// An error body: `{"schema_version":1,"error":"…"}`.
pub fn error_body(message: &str) -> String {
    let mut out = format!("{{\"schema_version\":{WIRE_SCHEMA_VERSION},\"error\":");
    write_json_string(&mut out, message);
    out.push('}');
    out
}

/// A body with pre-rendered JSON fields after the version stamp:
/// `fields` is the raw `"key":value,…` tail (may be empty).
pub fn body_with(fields: &str) -> String {
    if fields.is_empty() {
        format!("{{\"schema_version\":{WIRE_SCHEMA_VERSION}}}")
    } else {
        format!("{{\"schema_version\":{WIRE_SCHEMA_VERSION},{fields}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmhew_obs::value::parse;

    #[test]
    fn wire_version_is_pinned_to_the_client_constant() {
        // The client lives in mmhew-campaign (dependency direction), so
        // the shared constant is duplicated; this test is the pin.
        assert_eq!(
            WIRE_SCHEMA_VERSION,
            mmhew_campaign::client::WIRE_SCHEMA_VERSION
        );
    }

    #[test]
    fn version_check_refuses_only_newer() {
        assert!(check_version(&parse("{\"schema_version\":1}").expect("json")).is_ok());
        assert!(check_version(&parse("{}").expect("json")).is_ok());
        let err = check_version(&parse("{\"schema_version\":9}").expect("json"))
            .expect_err("must refuse");
        assert!(err.contains("newer"));
    }

    #[test]
    fn bodies_are_valid_json() {
        let e = parse(&error_body("boom \"quoted\"")).expect("json");
        assert_eq!(
            e.get("error").and_then(Value::as_str),
            Some("boom \"quoted\"")
        );
        let b = parse(&body_with("\"point\":3")).expect("json");
        assert_eq!(b.get("point").and_then(Value::as_u64), Some(3));
        assert_eq!(
            b.get("schema_version").and_then(Value::as_u64),
            Some(WIRE_SCHEMA_VERSION as u64)
        );
        parse(&body_with("")).expect("empty-field body is valid JSON");
    }
}
