//! `mmhew-serve` — the distributed campaign service: a `campaign-server`
//! coordinator and a `campaign-worker` fleet speaking a dependency-free
//! HTTP/1.1 + JSONL protocol over `std::net`.
//!
//! A campaign is a grid of deterministic points
//! ([`mmhew_campaign::SweepSpec`]); every point's bytes depend only on
//! `(spec, point id)`, never on where or when it runs. That is the whole
//! trick of this service: the coordinator owns the manifest and hands out
//! *leases* (point id + rep shard + deadline), workers execute
//! [`mmhew_campaign::run_point_line`] and post the finished line back, and
//! the coordinator appends lines **in point order** with exactly the
//! torn-line/resume semantics of a single-process run. A worker that
//! crashes mid-lease simply times out; the lease is re-issued and the redo
//! produces byte-identical output, so the final manifest and artifact are
//! indistinguishable from `campaign --spec …` run locally — asserted
//! byte-for-byte by this crate's integration tests (including one that
//! SIGKILLs a worker mid-campaign).
//!
//! Module map:
//!
//! * [`http`] — a minimal HTTP/1.1 server edge (one request per
//!   connection, `Content-Length` bodies, `Connection: close`).
//! * [`wire`] — the JSON wire protocol: [`wire::WIRE_SCHEMA_VERSION`]
//!   stamped on every body, newer versions refused on both sides.
//! * [`lease`] — the pure lease state machine (pending → leased → done),
//!   with an injected clock so expiry is unit-testable.
//! * [`server`] — the coordinator: spec loading/submission, lease grants,
//!   in-order manifest appends, `/status` and `/manifest` endpoints.
//! * [`worker`] — the worker loop: lease → run → complete, tolerant of
//!   conflicts (409) and coordinator shutdown.
//!
//! The matching client side (used by `campaign submit --server URL` and
//! `campaign explore --server URL`) lives in [`mmhew_campaign::client`],
//! because this crate depends on `mmhew-campaign` and the client must not
//! create a cycle.

pub mod http;
pub mod lease;
pub mod server;
pub mod wire;
pub mod worker;

pub use lease::{Completion, Grant, Lease, LeaseTable};
pub use server::{spawn_server, ServeError, ServerHandle, ServerOptions};
pub use wire::WIRE_SCHEMA_VERSION;
pub use worker::{run_worker, WorkerOptions, WorkerSummary};
