//! Campaign execution: sharded point runs, streaming aggregation, and
//! resumable checkpoints.
//!
//! # Execution model
//!
//! [`run_campaign`] expands the spec into points, drops the ones already
//! recorded in the checkpoint manifest (when resuming), and processes the
//! rest in chunks. Each chunk's repetitions are cut into fixed-size
//! *shards* and the flattened shard list of the whole chunk is handed to
//! [`mmhew_harness::parallel_reps`] — one work-stealing pool across
//! points, so a chunk never idles behind its slowest point.
//!
//! # Determinism
//!
//! Every repetition's seed is derived from
//! `(spec.seed, spec.name, point.id, rep)` via [`crate::points::point_seed`]
//! — never from shard boundaries, chunk boundaries, worker threads, or
//! resume state. Per-point statistics are assembled by merging shard
//! aggregates in shard order, so even the floating-point sums are
//! independent of scheduling; [`crate::points::run_point`] reproduces any
//! point's manifest line byte-for-byte in isolation.
//!
//! # Checkpoints
//!
//! The manifest `<out>/<name>.manifest.jsonl` opens with a spec-echo
//! header line, then gains one JSON line per completed point after each
//! chunk (a whole line per `write`, so a crash leaves at most one torn
//! final line, which resume discards; a torn *header* is rewritten). The
//! final artifact `<out>/<name>.campaign.json` is rendered from the
//! manifest lines sorted by point id and written via temp-file rename, so
//! an interrupted-then-resumed campaign produces a byte-identical
//! artifact to an uninterrupted one. The mechanics live in
//! [`crate::points`], shared with the `mmhew-serve` campaign service —
//! which is why a distributed run's manifest is byte-identical too.

use crate::points::{self, Agg};
use crate::spec::{Point, SweepSpec};
use mmhew_discovery::ProtocolError;
use mmhew_harness::parallel_reps;
use mmhew_topology::BuildError;
use mmhew_util::SeedTree;
use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;

/// Points checkpointed together. A chunk is the failure-atomicity unit:
/// its manifest lines land only after every point in it finished.
const POINTS_PER_CHUNK: usize = 8;

/// How [`run_campaign`] should execute.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Directory for the manifest and artifact (created if missing).
    pub out_dir: PathBuf,
    /// Skip points already present in the manifest instead of starting
    /// over.
    pub resume: bool,
    /// Stop after completing this many *new* points (used by the
    /// interruption tests; `None` = run to completion).
    pub max_points: Option<usize>,
}

impl CampaignOptions {
    /// Fresh (non-resuming) options writing under `out_dir`.
    pub fn new(out_dir: impl Into<PathBuf>) -> Self {
        Self {
            out_dir: out_dir.into(),
            resume: false,
            max_points: None,
        }
    }
}

/// What a campaign run accomplished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignOutcome {
    /// Points newly executed by this invocation.
    pub completed: usize,
    /// Points skipped because the manifest already had them.
    pub skipped: usize,
    /// Total points in the spec.
    pub total: usize,
    /// The final artifact, present only when every point is done.
    pub artifact: Option<PathBuf>,
}

/// Campaign failures.
#[derive(Debug)]
pub enum CampaignError {
    /// The spec failed validation.
    Spec(crate::spec::SpecError),
    /// A point's network could not be built.
    Build(BuildError),
    /// A point's protocol stack could not be built.
    Protocol(ProtocolError),
    /// Manifest / artifact I/O failed.
    Io(std::io::Error),
    /// An existing manifest cannot be consumed (e.g. it was written by a
    /// newer schema than this binary understands, or belongs to a
    /// different spec).
    Manifest(String),
    /// A record failed to serialize (should not happen).
    Render(String),
    /// [`crate::points::run_point`] was asked for an id outside the grid.
    UnknownPoint(u64),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Spec(e) => write!(f, "{e}"),
            CampaignError::Build(e) => write!(f, "network build failed: {e}"),
            CampaignError::Protocol(e) => write!(f, "protocol build failed: {e}"),
            CampaignError::Io(e) => write!(f, "campaign I/O failed: {e}"),
            CampaignError::Manifest(e) => write!(f, "manifest unusable: {e}"),
            CampaignError::Render(e) => write!(f, "record serialization failed: {e}"),
            CampaignError::UnknownPoint(id) => write!(f, "point {id} is outside the grid"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<crate::spec::SpecError> for CampaignError {
    fn from(e: crate::spec::SpecError) -> Self {
        CampaignError::Spec(e)
    }
}

impl From<BuildError> for CampaignError {
    fn from(e: BuildError) -> Self {
        CampaignError::Build(e)
    }
}

impl From<ProtocolError> for CampaignError {
    fn from(e: ProtocolError) -> Self {
        CampaignError::Protocol(e)
    }
}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> Self {
        CampaignError::Io(e)
    }
}

/// Runs one chunk of points: every shard of every point through a single
/// work-stealing pool, then per-point merges in shard order.
fn run_chunk(spec: &SweepSpec, chunk: &[&Point]) -> Result<Vec<String>, CampaignError> {
    let contexts = chunk
        .iter()
        .map(|p| points::compile_point(spec, p))
        .collect::<Result<Vec<_>, _>>()?;
    let tasks: Vec<(usize, u64, u64)> = contexts
        .iter()
        .enumerate()
        .flat_map(|(i, _)| points::shards(spec.reps).map(move |(start, len)| (i, start, len)))
        .collect();
    // parallel_reps hands each task a derived seed we deliberately ignore:
    // repetition seeds come from point_seed, so shard/task layout can
    // never influence results.
    let shard_results = parallel_reps(tasks.len() as u64, SeedTree::new(0), |t, _seed| {
        let (i, start, len) = tasks[t as usize];
        points::run_shard(spec, &contexts[i], start, len)
    });
    let mut aggs: Vec<Agg> = contexts.iter().map(|_| Agg::new(spec)).collect();
    for ((i, _, _), result) in tasks.iter().zip(shard_results) {
        aggs[*i].merge(&result?);
    }
    chunk
        .iter()
        .zip(&aggs)
        .map(|(point, agg)| points::render_record(spec, point, agg))
        .collect()
}

fn manifest_path(spec: &SweepSpec, opts: &CampaignOptions) -> PathBuf {
    opts.out_dir.join(format!("{}.manifest.jsonl", spec.name))
}

fn artifact_path(spec: &SweepSpec, opts: &CampaignOptions) -> PathBuf {
    opts.out_dir.join(format!("{}.campaign.json", spec.name))
}

/// Executes (or resumes) a campaign. See the [module docs](self) for the
/// execution, determinism, and checkpoint model.
///
/// # Errors
///
/// Returns the first spec/build/protocol/I/O failure. The manifest keeps
/// every chunk completed before the failure; re-running with
/// `opts.resume` picks up from there.
pub fn run_campaign(
    spec: &SweepSpec,
    opts: &CampaignOptions,
) -> Result<CampaignOutcome, CampaignError> {
    spec.validate()?;
    std::fs::create_dir_all(&opts.out_dir)?;
    let manifest = manifest_path(spec, opts);
    let mut done = if opts.resume {
        points::ensure_manifest_header(&manifest, spec)?;
        points::load_manifest(&manifest)?
    } else {
        if manifest.exists() {
            std::fs::remove_file(&manifest)?;
        }
        points::ensure_manifest_header(&manifest, spec)?;
        BTreeMap::new()
    };

    let all = spec.expand();
    let pending: Vec<&Point> = all.iter().filter(|p| !done.contains_key(&p.id)).collect();
    let skipped = all.len() - pending.len();
    let allowance = opts.max_points.unwrap_or(pending.len()).min(pending.len());

    let mut completed = 0;
    for chunk in pending[..allowance].chunks(POINTS_PER_CHUNK) {
        let lines = run_chunk(spec, chunk)?;
        points::append_manifest(&manifest, &lines)?;
        for (point, line) in chunk.iter().zip(lines) {
            done.insert(point.id, line);
        }
        completed += chunk.len();
    }

    let artifact = if done.len() == all.len() {
        Some(points::write_artifact_file(
            spec,
            &artifact_path(spec, opts),
            &done,
        )?)
    } else {
        None
    };
    Ok(CampaignOutcome {
        completed,
        skipped,
        total: all.len(),
        artifact,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::points::run_point;

    #[test]
    fn run_point_matches_chunked_execution() {
        // The isolation API must produce the exact bytes the campaign
        // records: same seeds and same shard-ordered float merges.
        let spec = SweepSpec::smoke();
        let points = spec.expand();
        let chunk: Vec<&Point> = points.iter().collect();
        let lines = run_chunk(&spec, &chunk).expect("chunk runs");
        for point in &points {
            let line = run_point(&spec, point.id).expect("point runs");
            assert_eq!(line, lines[point.id as usize]);
        }
    }
}
