//! Campaign execution: sharded point runs, streaming aggregation, and
//! resumable checkpoints.
//!
//! # Execution model
//!
//! [`run_campaign`] expands the spec into points, drops the ones already
//! recorded in the checkpoint manifest (when resuming), and processes the
//! rest in chunks. Each chunk's repetitions are cut into fixed-size
//! *shards* and the flattened shard list of the whole chunk is handed to
//! [`mmhew_harness::parallel_reps`] — one work-stealing pool across
//! points, so a chunk never idles behind its slowest point.
//!
//! # Determinism
//!
//! Every repetition's seed is derived from
//! `(spec.seed, spec.name, point.id, rep)` via [`point_seed`] — never
//! from shard boundaries, chunk boundaries, worker threads, or resume
//! state. Per-point statistics are assembled by merging shard aggregates
//! in shard order, so even the floating-point sums are independent of
//! scheduling; [`run_point`] reproduces any point's manifest line
//! byte-for-byte in isolation.
//!
//! # Checkpoints
//!
//! After each chunk, one JSON line per completed point is appended to
//! `<out>/<name>.manifest.jsonl` (a whole line per `write`, so a crash
//! leaves at most one torn final line, which resume discards). The final
//! artifact `<out>/<name>.campaign.json` is rendered from the manifest
//! lines sorted by point id and written via temp-file rename, so an
//! interrupted-then-resumed campaign produces a byte-identical artifact
//! to an uninterrupted one.

use crate::json::{self, Value};
use crate::spec::{EngineKind, Point, SweepSpec};
use mmhew_discovery::{
    AsyncAlgorithm, AsyncParams, ProtocolError, Scenario, SyncAlgorithm, SyncParams,
};
use mmhew_dynamics::{poisson_churn, ChurnConfig, DynamicsSchedule};
use mmhew_engine::{AsyncRunConfig, StartSchedule, SyncRunConfig};
use mmhew_faults::{FaultPlan, JamSchedule, LinkLossModel};
use mmhew_harness::parallel_reps;
use mmhew_spectrum::{AvailabilityModel, ChannelSet};
use mmhew_topology::{BuildError, Network, NetworkBuilder};
use mmhew_util::{Histogram, SeedTree, Welford};
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Repetitions per shard: small enough that work stealing balances
/// heterogeneous points, large enough to amortize scheduling.
const REPS_PER_SHARD: u64 = 4;

/// Points checkpointed together. A chunk is the failure-atomicity unit:
/// its manifest lines land only after every point in it finished.
const POINTS_PER_CHUNK: usize = 8;

/// Schema version stamped on every manifest line (and therefore on each
/// entry of the artifact's `points` array).
///
/// Version history:
///
/// * **1** — first stamped shape: `schema_version`, `point`, `params`,
///   `reps`, `completed`, `failures`, `mean`, `stddev`, `min`, `max`,
///   `p50`, `p90`, `p99`. Lines *without* the field (written before
///   versioning existed) are the same shape minus the stamp and are
///   accepted by every reader; lines stamped with a *newer* version are
///   rejected rather than misread.
pub const MANIFEST_SCHEMA_VERSION: u32 = 1;

/// How [`run_campaign`] should execute.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Directory for the manifest and artifact (created if missing).
    pub out_dir: PathBuf,
    /// Skip points already present in the manifest instead of starting
    /// over.
    pub resume: bool,
    /// Stop after completing this many *new* points (used by the
    /// interruption tests; `None` = run to completion).
    pub max_points: Option<usize>,
}

impl CampaignOptions {
    /// Fresh (non-resuming) options writing under `out_dir`.
    pub fn new(out_dir: impl Into<PathBuf>) -> Self {
        Self {
            out_dir: out_dir.into(),
            resume: false,
            max_points: None,
        }
    }
}

/// What a campaign run accomplished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignOutcome {
    /// Points newly executed by this invocation.
    pub completed: usize,
    /// Points skipped because the manifest already had them.
    pub skipped: usize,
    /// Total points in the spec.
    pub total: usize,
    /// The final artifact, present only when every point is done.
    pub artifact: Option<PathBuf>,
}

/// Campaign failures.
#[derive(Debug)]
pub enum CampaignError {
    /// The spec failed validation.
    Spec(crate::spec::SpecError),
    /// A point's network could not be built.
    Build(BuildError),
    /// A point's protocol stack could not be built.
    Protocol(ProtocolError),
    /// Manifest / artifact I/O failed.
    Io(std::io::Error),
    /// An existing manifest cannot be consumed (e.g. it was written by a
    /// newer schema than this binary understands).
    Manifest(String),
    /// A record failed to serialize (should not happen).
    Render(String),
    /// [`run_point`] was asked for an id outside the grid.
    UnknownPoint(u64),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Spec(e) => write!(f, "{e}"),
            CampaignError::Build(e) => write!(f, "network build failed: {e}"),
            CampaignError::Protocol(e) => write!(f, "protocol build failed: {e}"),
            CampaignError::Io(e) => write!(f, "campaign I/O failed: {e}"),
            CampaignError::Manifest(e) => write!(f, "manifest unusable: {e}"),
            CampaignError::Render(e) => write!(f, "record serialization failed: {e}"),
            CampaignError::UnknownPoint(id) => write!(f, "point {id} is outside the grid"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<crate::spec::SpecError> for CampaignError {
    fn from(e: crate::spec::SpecError) -> Self {
        CampaignError::Spec(e)
    }
}

impl From<BuildError> for CampaignError {
    fn from(e: BuildError) -> Self {
        CampaignError::Build(e)
    }
}

impl From<ProtocolError> for CampaignError {
    fn from(e: ProtocolError) -> Self {
        CampaignError::Protocol(e)
    }
}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> Self {
        CampaignError::Io(e)
    }
}

/// The seed subtree owning all randomness of one point: derived from the
/// master seed, the campaign name, and the point id — nothing else.
/// `branch("net")` seeds the network, `branch("dynamics")` the generated
/// schedules, and `branch("run").index(rep)` each repetition.
pub fn point_seed(spec: &SweepSpec, point_id: u64) -> SeedTree {
    SeedTree::new(spec.seed)
        .branch("campaign")
        .branch(&spec.name)
        .index(point_id)
}

/// Everything needed to run one point's repetitions, built once.
struct PointContext {
    root: SeedTree,
    network: Network,
    algorithm: Algorithm,
    starts: StartSchedule,
    robust: u64,
    faults: Option<FaultPlan>,
    dynamics: Option<DynamicsSchedule>,
    budget: u64,
}

#[derive(Clone, Copy)]
enum Algorithm {
    Sync(SyncAlgorithm),
    Async(AsyncAlgorithm),
}

fn compile_point(spec: &SweepSpec, point: &Point) -> Result<PointContext, CampaignError> {
    let root = point_seed(spec, point.id);
    let nodes = point.axis("nodes") as usize;
    let universe = point.axis("universe") as u16;
    let avail = point.axis("avail") as u16;
    let builder = match spec.topology.as_str() {
        "complete" => NetworkBuilder::complete(nodes),
        "line" => NetworkBuilder::line(nodes),
        "ring" => NetworkBuilder::ring(nodes),
        "star" => NetworkBuilder::star(nodes),
        "er" => NetworkBuilder::erdos_renyi(nodes, spec.edge_prob),
        other => unreachable!("validated topology {other:?}"),
    };
    let availability = if avail == 0 {
        AvailabilityModel::Full
    } else {
        AvailabilityModel::UniformSubset { size: avail }
    };
    let network = builder
        .universe(universe)
        .availability(availability)
        .build(root.branch("net"))?;

    let delta_est = match point.axis("delta-est") as u64 {
        0 => network.max_degree().max(1) as u64,
        explicit => explicit,
    };
    let algorithm = match spec.engine {
        EngineKind::Sync => Algorithm::Sync(match spec.algorithm.as_str() {
            "staged" => SyncAlgorithm::Staged(SyncParams::new(delta_est)?),
            "adaptive" => SyncAlgorithm::Adaptive,
            "uniform" => SyncAlgorithm::Uniform(SyncParams::new(delta_est)?),
            "baseline" => SyncAlgorithm::PerChannelBirthday {
                tx_probability: 0.5,
            },
            other => unreachable!("validated algorithm {other:?}"),
        }),
        EngineKind::Async => Algorithm::Async(match spec.algorithm.as_str() {
            "frame-based" => AsyncAlgorithm::FrameBased(AsyncParams::new(delta_est)?),
            other => unreachable!("validated algorithm {other:?}"),
        }),
    };

    let window = point.axis("start-window") as u64;
    let starts = if window == 0 {
        StartSchedule::Identical
    } else {
        StartSchedule::Staggered { window }
    };

    let loss = point.axis("loss");
    let jam = point.axis("jam") as u16;
    let faults = (loss > 0.0 || jam > 0).then(|| {
        let mut plan = FaultPlan::new();
        if loss > 0.0 {
            plan = plan.with_default_loss(LinkLossModel::Bernoulli {
                delivery_probability: 1.0 - loss,
            });
        }
        if jam > 0 {
            plan = plan.with_jamming(JamSchedule::fixed(ChannelSet::full(jam)));
        }
        plan
    });

    let churn_rate = point.axis("churn-rate");
    let dynamics = (churn_rate > 0.0).then(|| {
        DynamicsSchedule::new(poisson_churn(
            &network,
            spec.budget,
            &ChurnConfig {
                rate: churn_rate,
                mean_downtime: spec.churn_downtime,
            },
            root.branch("dynamics"),
        ))
    });

    Ok(PointContext {
        root,
        network,
        algorithm,
        starts,
        robust: point.axis("robust") as u64,
        faults,
        dynamics,
        budget: spec.budget,
    })
}

/// One repetition's completion time (`None` = budget exhausted).
fn run_rep(ctx: &PointContext, rep: u64) -> Result<Option<f64>, ProtocolError> {
    let rep_seed = ctx.root.branch("run").index(rep);
    match ctx.algorithm {
        Algorithm::Sync(algorithm) => {
            let mut scenario = Scenario::sync(&ctx.network, algorithm)
                .starts(ctx.starts.clone())
                .config(SyncRunConfig::until_complete(ctx.budget));
            if ctx.robust > 0 {
                scenario = scenario.robust(ctx.robust);
            }
            if let Some(faults) = &ctx.faults {
                scenario = scenario.with_faults(faults.clone());
            }
            if let Some(dynamics) = &ctx.dynamics {
                scenario = scenario.with_dynamics(dynamics.clone());
            }
            let outcome = scenario.run(rep_seed)?;
            Ok(outcome.slots_to_complete().map(|s| s as f64))
        }
        Algorithm::Async(algorithm) => {
            let mut scenario = Scenario::asynchronous(&ctx.network, algorithm)
                .config(AsyncRunConfig::until_complete(ctx.budget));
            if let Some(faults) = &ctx.faults {
                scenario = scenario.with_faults(faults.clone());
            }
            let outcome = scenario.run(rep_seed)?;
            Ok(outcome.min_full_frames_at_completion().map(|f| f as f64))
        }
    }
}

/// Streaming aggregate of one shard (and, after merging, one point).
struct Agg {
    welford: Welford,
    hist: Histogram,
    failures: u64,
}

impl Agg {
    fn new(spec: &SweepSpec) -> Self {
        Self {
            welford: Welford::new(),
            hist: Histogram::new(0.0, spec.budget as f64, spec.hist_bins),
            failures: 0,
        }
    }

    fn merge(&mut self, other: &Agg) {
        self.welford.merge(&other.welford);
        self.hist.merge(&other.hist);
        self.failures += other.failures;
    }
}

fn run_shard(
    spec: &SweepSpec,
    ctx: &PointContext,
    start: u64,
    len: u64,
) -> Result<Agg, ProtocolError> {
    let mut agg = Agg::new(spec);
    for rep in start..start + len {
        match run_rep(ctx, rep)? {
            Some(x) => {
                agg.welford.push(x);
                agg.hist.record(x);
            }
            None => agg.failures += 1,
        }
    }
    Ok(agg)
}

/// The shard decomposition of one point's `reps` repetitions.
fn shards(reps: u64) -> impl Iterator<Item = (u64, u64)> {
    (0..reps.div_ceil(REPS_PER_SHARD)).map(move |s| {
        (
            s * REPS_PER_SHARD,
            REPS_PER_SHARD.min(reps - s * REPS_PER_SHARD),
        )
    })
}

/// One completed point as recorded in the manifest and artifact.
/// Failed (budget-exhausted) repetitions are counted but excluded from
/// the statistics.
#[derive(Serialize)]
struct PointRecord<'a> {
    schema_version: u32,
    point: u64,
    params: &'a [(String, f64)],
    reps: u64,
    completed: u64,
    failures: u64,
    mean: f64,
    stddev: f64,
    min: f64,
    max: f64,
    p50: f64,
    p90: f64,
    p99: f64,
}

fn render_record(spec: &SweepSpec, point: &Point, agg: &Agg) -> Result<String, CampaignError> {
    let record = PointRecord {
        schema_version: MANIFEST_SCHEMA_VERSION,
        point: point.id,
        params: &point.values,
        reps: spec.reps,
        completed: agg.welford.count(),
        failures: agg.failures,
        mean: agg.welford.mean(),
        stddev: agg.welford.stddev(),
        min: agg.welford.min(),
        max: agg.welford.max(),
        p50: agg.hist.quantile(0.5),
        p90: agg.hist.quantile(0.9),
        p99: agg.hist.quantile(0.99),
    };
    mmhew_obs::json::to_string(&record).map_err(|e| CampaignError::Render(e.to_string()))
}

/// Runs one chunk of points: every shard of every point through a single
/// work-stealing pool, then per-point merges in shard order.
fn run_chunk(spec: &SweepSpec, chunk: &[&Point]) -> Result<Vec<String>, CampaignError> {
    let contexts = chunk
        .iter()
        .map(|p| compile_point(spec, p))
        .collect::<Result<Vec<_>, _>>()?;
    let tasks: Vec<(usize, u64, u64)> = contexts
        .iter()
        .enumerate()
        .flat_map(|(i, _)| shards(spec.reps).map(move |(start, len)| (i, start, len)))
        .collect();
    // parallel_reps hands each task a derived seed we deliberately ignore:
    // repetition seeds come from point_seed, so shard/task layout can
    // never influence results.
    let shard_results = parallel_reps(tasks.len() as u64, SeedTree::new(0), |t, _seed| {
        let (i, start, len) = tasks[t as usize];
        run_shard(spec, &contexts[i], start, len)
    });
    let mut aggs: Vec<Agg> = contexts.iter().map(|_| Agg::new(spec)).collect();
    for ((i, _, _), result) in tasks.iter().zip(shard_results) {
        aggs[*i].merge(&result?);
    }
    chunk
        .iter()
        .zip(&aggs)
        .map(|(point, agg)| render_record(spec, point, agg))
        .collect()
}

/// Re-runs a single point in isolation and returns its manifest line —
/// byte-identical to what a full campaign records for that point.
///
/// # Errors
///
/// Returns [`CampaignError::UnknownPoint`] if `point_id` is outside the
/// grid, or any compile/run failure.
pub fn run_point(spec: &SweepSpec, point_id: u64) -> Result<String, CampaignError> {
    spec.validate()?;
    let points = spec.expand();
    let point = points
        .iter()
        .find(|p| p.id == point_id)
        .ok_or(CampaignError::UnknownPoint(point_id))?;
    let ctx = compile_point(spec, point)?;
    let mut agg = Agg::new(spec);
    for (start, len) in shards(spec.reps) {
        agg.merge(&run_shard(spec, &ctx, start, len)?);
    }
    render_record(spec, point, &agg)
}

fn manifest_path(spec: &SweepSpec, opts: &CampaignOptions) -> PathBuf {
    opts.out_dir.join(format!("{}.manifest.jsonl", spec.name))
}

fn artifact_path(spec: &SweepSpec, opts: &CampaignOptions) -> PathBuf {
    opts.out_dir.join(format!("{}.campaign.json", spec.name))
}

/// Reads the completed-point map from an existing manifest, dropping a
/// torn trailing line (crash mid-append) and anything unparseable.
/// Unversioned lines (pre-[`MANIFEST_SCHEMA_VERSION`] manifests) load
/// fine; a line stamped with a newer schema is an error — resuming on
/// top of it would mix shapes in one file.
fn load_manifest(path: &Path) -> Result<BTreeMap<u64, String>, CampaignError> {
    let mut done = BTreeMap::new();
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(done),
        Err(e) => return Err(e.into()),
    };
    for line in text.lines() {
        if let Ok(v) = json::parse(line) {
            let version = v.get("schema_version").and_then(Value::as_u64).unwrap_or(0);
            if version > MANIFEST_SCHEMA_VERSION as u64 {
                return Err(CampaignError::Manifest(format!(
                    "{} has schema_version {version}, newer than the supported {}",
                    path.display(),
                    MANIFEST_SCHEMA_VERSION
                )));
            }
            if let Some(id) = v.get("point").and_then(Value::as_u64) {
                done.insert(id, line.to_string());
            }
        }
    }
    Ok(done)
}

fn append_manifest(path: &Path, lines: &[String]) -> Result<(), CampaignError> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    for line in lines {
        // One write per record keeps lines whole under interruption.
        file.write_all(format!("{line}\n").as_bytes())?;
    }
    file.flush()?;
    Ok(())
}

/// Renders the final artifact from the manifest lines, sorted by point
/// id, and moves it into place atomically (temp file + rename). Reusing
/// the recorded lines verbatim is what makes a resumed campaign's
/// artifact byte-identical to an uninterrupted one.
fn write_artifact(
    spec: &SweepSpec,
    opts: &CampaignOptions,
    done: &BTreeMap<u64, String>,
) -> Result<PathBuf, CampaignError> {
    let spec_json =
        mmhew_obs::json::to_string(spec).map_err(|e| CampaignError::Render(e.to_string()))?;
    let mut out = format!("{{\"spec\":{spec_json},\"points\":[\n");
    for (i, line) in done.values().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(line);
    }
    out.push_str("\n]}\n");
    let path = artifact_path(spec, opts);
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, out)?;
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Executes (or resumes) a campaign. See the [module docs](self) for the
/// execution, determinism, and checkpoint model.
///
/// # Errors
///
/// Returns the first spec/build/protocol/I/O failure. The manifest keeps
/// every chunk completed before the failure; re-running with
/// `opts.resume` picks up from there.
pub fn run_campaign(
    spec: &SweepSpec,
    opts: &CampaignOptions,
) -> Result<CampaignOutcome, CampaignError> {
    spec.validate()?;
    std::fs::create_dir_all(&opts.out_dir)?;
    let manifest = manifest_path(spec, opts);
    let mut done = if opts.resume {
        load_manifest(&manifest)?
    } else {
        if manifest.exists() {
            std::fs::remove_file(&manifest)?;
        }
        BTreeMap::new()
    };

    let points = spec.expand();
    let pending: Vec<&Point> = points
        .iter()
        .filter(|p| !done.contains_key(&p.id))
        .collect();
    let skipped = points.len() - pending.len();
    let allowance = opts.max_points.unwrap_or(pending.len()).min(pending.len());

    let mut completed = 0;
    for chunk in pending[..allowance].chunks(POINTS_PER_CHUNK) {
        let lines = run_chunk(spec, chunk)?;
        append_manifest(&manifest, &lines)?;
        for (point, line) in chunk.iter().zip(lines) {
            done.insert(point.id, line);
        }
        completed += chunk.len();
    }

    let artifact = if done.len() == points.len() {
        Some(write_artifact(spec, opts, &done)?)
    } else {
        None
    };
    Ok(CampaignOutcome {
        completed,
        skipped,
        total: points.len(),
        artifact,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_decomposition_covers_reps_exactly() {
        for reps in 1..=13 {
            let parts: Vec<(u64, u64)> = shards(reps).collect();
            let mut covered = Vec::new();
            for (start, len) in parts {
                assert!(len >= 1 && len <= REPS_PER_SHARD);
                covered.extend(start..start + len);
            }
            assert_eq!(covered, (0..reps).collect::<Vec<_>>());
        }
    }

    #[test]
    fn point_seed_depends_on_spec_identity_only() {
        let mut a = SweepSpec::smoke();
        let s1 = point_seed(&a, 2);
        assert_eq!(s1, point_seed(&a, 2));
        assert_ne!(s1, point_seed(&a, 3));
        a.name = "other".to_string();
        assert_ne!(s1, point_seed(&a, 2));
        a = SweepSpec::smoke();
        a.seed ^= 1;
        assert_ne!(s1, point_seed(&a, 2));
        // Execution-shape knobs must NOT enter the derivation.
        a = SweepSpec::smoke();
        a.reps += 10;
        a.hist_bins += 1;
        assert_eq!(s1, point_seed(&a, 2));
    }

    #[test]
    fn run_point_matches_chunked_execution() {
        // The isolation API must produce the exact bytes the campaign
        // records: same seeds and same shard-ordered float merges.
        let spec = SweepSpec::smoke();
        let points = spec.expand();
        let chunk: Vec<&Point> = points.iter().collect();
        let lines = run_chunk(&spec, &chunk).expect("chunk runs");
        for point in &points {
            let line = run_point(&spec, point.id).expect("point runs");
            assert_eq!(line, lines[point.id as usize]);
        }
    }

    #[test]
    fn records_are_parseable_and_complete() {
        let spec = SweepSpec::smoke();
        let line = run_point(&spec, 0).expect("runs");
        let v = json::parse(&line).expect("valid JSON");
        assert_eq!(
            v.get("schema_version").and_then(Value::as_u64),
            Some(MANIFEST_SCHEMA_VERSION as u64)
        );
        assert_eq!(v.get("point").and_then(Value::as_u64), Some(0));
        assert_eq!(v.get("reps").and_then(Value::as_u64), Some(spec.reps));
        assert_eq!(v.get("failures").and_then(Value::as_u64), Some(0));
        let mean = v.get("mean").and_then(Value::as_f64).expect("mean");
        assert!(mean > 0.0);
        let p50 = v.get("p50").and_then(Value::as_f64).expect("p50");
        assert!(p50 >= 0.0 && p50 <= spec.budget as f64);
    }

    #[test]
    fn unknown_point_is_an_error() {
        let spec = SweepSpec::smoke();
        assert!(matches!(
            run_point(&spec, 99),
            Err(CampaignError::UnknownPoint(99))
        ));
    }

    #[test]
    fn manifest_loader_drops_torn_lines() {
        let dir = std::env::temp_dir().join("mmhew-campaign-torn");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("m.jsonl");
        std::fs::write(&path, "{\"point\":0,\"mean\":1}\n{\"point\":1,\"me").expect("write");
        let done = load_manifest(&path).expect("load");
        assert_eq!(done.len(), 1);
        assert!(done.contains_key(&0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn manifest_loader_versioning() {
        let dir = std::env::temp_dir().join("mmhew-campaign-schema");
        std::fs::create_dir_all(&dir).expect("mkdir");

        // Unversioned (pre-stamp) and current-version lines both load.
        let ok = dir.join("ok.jsonl");
        std::fs::write(
            &ok,
            "{\"point\":0,\"mean\":1}\n{\"schema_version\":1,\"point\":1,\"mean\":2}\n",
        )
        .expect("write");
        let done = load_manifest(&ok).expect("load");
        assert_eq!(done.len(), 2);

        // A newer stamp is an error, not a silent misread.
        let newer = dir.join("newer.jsonl");
        std::fs::write(&newer, "{\"schema_version\":999,\"point\":0,\"mean\":1}\n").expect("write");
        let err = load_manifest(&newer).expect_err("must refuse");
        assert!(err.to_string().contains("newer than the supported"));

        std::fs::remove_file(&ok).ok();
        std::fs::remove_file(&newer).ok();
    }
}
