//! Declarative sweep specifications.
//!
//! A [`SweepSpec`] names a parameter grid over the quantities the
//! reproduction sweeps in its experiments — network size, universe size,
//! availability, loss, jamming, churn, robustness, start staggering —
//! plus the fixed scaffolding (engine, algorithm, topology, repetitions,
//! master seed, slot budget). [`SweepSpec::expand`] turns the grid into a
//! flat list of numbered [`Point`]s; the campaign engine
//! ([`crate::run_campaign`]) compiles each point into a
//! [`mmhew_discovery::Scenario`] and measures it.
//!
//! Specs are written as JSON (parsed by [`SweepSpec::from_json`] through
//! the dependency-free [`crate::json`] parser):
//!
//! ```json
//! {
//!   "name": "loss-vs-n",
//!   "engine": "sync",
//!   "algorithm": "staged",
//!   "topology": "ring",
//!   "mode": "cartesian",
//!   "reps": 20,
//!   "seed": 7,
//!   "budget": 400000,
//!   "axes": { "nodes": [8, 16, 32], "loss": [0, 0.1, 0.3] }
//! }
//! ```
//!
//! Every point is independently addressable: its seed derives from
//! `(spec.seed, spec.name, point.id)` alone (see
//! [`crate::points::point_seed`]), never from which shard or process ran
//! it.

use crate::json::{self, Value};
use serde::Serialize;
use std::fmt;

/// Which simulation engine a spec drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(rename_all = "lowercase")]
pub enum EngineKind {
    /// Slot-synchronous ([`mmhew_discovery::Scenario::sync`]).
    Sync,
    /// Slot-synchronous semantics executed by the dead-air-skipping event
    /// executor ([`mmhew_discovery::Engine::Event`]). Outcomes are
    /// byte-identical to [`EngineKind::Sync`] at the same seed, so the
    /// same algorithms and axes apply; only wall-clock differs.
    #[serde(rename = "sync-event")]
    SyncEvent,
    /// Unsynchronized clocks ([`mmhew_discovery::Scenario::asynchronous`]).
    Async,
}

/// How multiple axes combine into points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(rename_all = "lowercase")]
pub enum GridMode {
    /// Cartesian product of all axes (last axis varies fastest).
    Cartesian,
    /// Position-wise zip; all axes must have equal length.
    Zip,
}

/// One swept parameter: a known axis name and its value list.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AxisSpec {
    /// Axis name (one of [`AXES`]).
    pub name: String,
    /// Values, in sweep order.
    pub values: Vec<f64>,
}

/// The closed axis vocabulary and each axis's default when not swept.
///
/// * `nodes` — network size (default 16)
/// * `universe` — channel universe size `|U|` (default 8)
/// * `avail` — channels per node; 0 means the full universe (default 0)
/// * `delta-est` — degree estimate Δ̂; 0 means the true max degree
/// * `loss` — Bernoulli loss probability on every link, in `[0, 1)`
/// * `jam` — number of channels jammed (the first `k` of the universe)
/// * `churn-rate` — expected node departures per slot (Poisson)
/// * `robust` — repetition factor `r` of the robust wrapper; 0 disables
/// * `start-window` — staggered-start window in slots; 0 = identical
pub const AXES: &[(&str, f64)] = &[
    ("nodes", 16.0),
    ("universe", 8.0),
    ("avail", 0.0),
    ("delta-est", 0.0),
    ("loss", 0.0),
    ("jam", 0.0),
    ("churn-rate", 0.0),
    ("robust", 0.0),
    ("start-window", 0.0),
];

/// Axes that only exist on the slot-synchronous engine.
pub const SYNC_ONLY_AXES: &[&str] = &["jam", "churn-rate", "robust", "start-window"];

/// A complete sweep description. See the [module docs](self) for the JSON
/// shape; construct programmatically for built-ins like [`SweepSpec::smoke`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepSpec {
    /// Campaign name: file-name-safe (`[A-Za-z0-9._-]+`), keyed into the
    /// seed derivation so renaming a campaign re-randomizes it.
    pub name: String,
    /// Engine selection.
    pub engine: EngineKind,
    /// Algorithm: `staged` | `adaptive` | `uniform` | `baseline` (sync
    /// and sync-event), `frame-based` (async).
    pub algorithm: String,
    /// Topology family: `complete` | `line` | `ring` | `star` | `er`.
    pub topology: String,
    /// Edge probability when `topology == "er"`.
    pub edge_prob: f64,
    /// Axis combination mode.
    pub mode: GridMode,
    /// Repetitions per point.
    pub reps: u64,
    /// Master seed; every point's randomness derives from it.
    pub seed: u64,
    /// Slot (sync) / frame (async) budget per repetition.
    pub budget: u64,
    /// Bins of the per-point completion-time histogram.
    pub hist_bins: usize,
    /// Mean downtime (slots) of churned nodes when `churn-rate` is swept.
    pub churn_downtime: f64,
    /// The categorical `protocol` axis: catalog names
    /// ([`mmhew_rivals::catalog`]) swept head-to-head. Empty when the
    /// axis is absent; when present it overrides `algorithm` per point
    /// and multiplies the numeric grid (even in zip mode), varying
    /// slowest. Kept out of `axes` because its values are strings, not
    /// numbers.
    #[serde(skip_serializing_if = "Vec::is_empty")]
    pub protocols: Vec<String>,
    /// The swept numeric axes, in declaration order.
    pub axes: Vec<AxisSpec>,
}

/// One grid point: an id, the protocol (when the categorical `protocol`
/// axis is swept), and the swept numeric axes' values.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Point {
    /// Position in the expansion order; stable for a given spec.
    pub id: u64,
    /// Catalog protocol name when the `protocol` axis is swept.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub protocol: Option<String>,
    /// `(axis name, value)` pairs in the spec's axis order.
    pub values: Vec<(String, f64)>,
}

impl Point {
    /// The value of `axis` at this point: the swept value if the axis is
    /// swept, otherwise its default from [`AXES`].
    ///
    /// # Panics
    ///
    /// Panics on an unknown axis name (validation guarantees specs only
    /// carry known axes).
    pub fn axis(&self, axis: &str) -> f64 {
        if let Some((_, v)) = self.values.iter().find(|(n, _)| n == axis) {
            return *v;
        }
        AXES.iter()
            .find(|(n, _)| *n == axis)
            .map(|(_, d)| *d)
            .unwrap_or_else(|| panic!("unknown axis {axis:?}"))
    }
}

/// Spec construction / validation failures.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The JSON text did not parse.
    Json(json::ParseError),
    /// A required field is missing or has the wrong type.
    Field(&'static str),
    /// A field has a structurally valid but unacceptable value.
    Invalid(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "spec is not valid JSON: {e}"),
            SpecError::Field(name) => write!(f, "spec field {name:?} missing or wrong type"),
            SpecError::Invalid(msg) => write!(f, "invalid spec: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl SweepSpec {
    /// Parses and validates a JSON spec document.
    ///
    /// Only `name` and `axes` are required; everything else defaults
    /// (`sync` / `staged` / `complete` / `cartesian`, 5 reps, seed 1,
    /// budget 1 000 000, 50 histogram bins). An axis may be given as a
    /// single number as shorthand for a one-element list (pinning it
    /// without sweeping).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] on malformed JSON, missing fields, unknown
    /// axes / algorithms / topologies, or inconsistent grids.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let doc = json::parse(text).map_err(SpecError::Json)?;
        let name = doc
            .get("name")
            .and_then(Value::as_str)
            .ok_or(SpecError::Field("name"))?
            .to_string();
        let engine = match doc.get("engine").and_then(Value::as_str).unwrap_or("sync") {
            "sync" => EngineKind::Sync,
            "sync-event" => EngineKind::SyncEvent,
            "async" => EngineKind::Async,
            other => {
                return Err(SpecError::Invalid(format!(
                    "engine {other:?} (expected \"sync\", \"sync-event\", or \"async\")"
                )))
            }
        };
        let mode = match doc
            .get("mode")
            .and_then(Value::as_str)
            .unwrap_or("cartesian")
        {
            "cartesian" => GridMode::Cartesian,
            "zip" => GridMode::Zip,
            other => {
                return Err(SpecError::Invalid(format!(
                    "mode {other:?} (expected \"cartesian\" or \"zip\")"
                )))
            }
        };
        let field_u64 = |key: &'static str, default: u64| -> Result<u64, SpecError> {
            match doc.get(key) {
                None => Ok(default),
                Some(v) => v.as_u64().ok_or(SpecError::Field(key)),
            }
        };
        let field_f64 = |key: &'static str, default: f64| -> Result<f64, SpecError> {
            match doc.get(key) {
                None => Ok(default),
                Some(v) => v.as_f64().ok_or(SpecError::Field(key)),
            }
        };
        let axes_doc = match doc.get("axes") {
            Some(Value::Obj(fields)) => fields,
            _ => return Err(SpecError::Field("axes")),
        };
        let mut axes = Vec::new();
        let mut protocols = Vec::new();
        for (axis, values) in axes_doc {
            // The `protocol` axis is categorical: its values are catalog
            // names, not numbers. Every other axis is numeric.
            if axis == "protocol" {
                let string_value = |v: &Value| -> Result<String, SpecError> {
                    v.as_str().map(str::to_string).ok_or_else(|| {
                        SpecError::Invalid(
                            "axis \"protocol\" takes catalog names (strings)".to_string(),
                        )
                    })
                };
                protocols = match values {
                    Value::Str(_) => vec![string_value(values)?],
                    Value::Arr(items) => {
                        items.iter().map(string_value).collect::<Result<_, _>>()?
                    }
                    _ => {
                        return Err(SpecError::Invalid(
                            "axis \"protocol\" takes catalog names (strings)".to_string(),
                        ))
                    }
                };
                continue;
            }
            let numeric_value = |v: &Value| -> Result<f64, SpecError> {
                v.as_f64().ok_or_else(|| {
                    SpecError::Invalid(format!(
                        "axis {axis:?} takes numbers (only \"protocol\" takes strings)"
                    ))
                })
            };
            let values = match values {
                Value::Num(n) => vec![*n],
                Value::Arr(items) => items.iter().map(numeric_value).collect::<Result<_, _>>()?,
                _ => {
                    return Err(SpecError::Invalid(format!(
                        "axis {axis:?} takes a number or an array of numbers"
                    )))
                }
            };
            axes.push(AxisSpec {
                name: axis.clone(),
                values,
            });
        }
        let spec = SweepSpec {
            name,
            engine,
            algorithm: doc
                .get("algorithm")
                .and_then(Value::as_str)
                .unwrap_or(match engine {
                    EngineKind::Sync | EngineKind::SyncEvent => "staged",
                    EngineKind::Async => "frame-based",
                })
                .to_string(),
            topology: doc
                .get("topology")
                .and_then(Value::as_str)
                .unwrap_or("complete")
                .to_string(),
            edge_prob: field_f64("edge-prob", 0.3)?,
            mode,
            reps: field_u64("reps", 5)?,
            seed: field_u64("seed", 1)?,
            budget: field_u64("budget", 1_000_000)?,
            hist_bins: field_u64("hist-bins", 50)? as usize,
            churn_downtime: field_f64("churn-downtime", 2_000.0)?,
            protocols,
            axes,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Serializes the spec back to the canonical JSON document shape
    /// [`SweepSpec::from_json`] reads (kebab-case field names, axes as an
    /// ordered object) — `from_json(spec.to_json())` reconstructs the
    /// spec exactly. This is the wire and manifest-header form: the
    /// campaign service ships specs between `campaign submit`, the
    /// coordinator, and its workers as this text, and the manifest's
    /// spec-echo header records it.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"name\":");
        mmhew_obs::value::write_json_string(&mut out, &self.name);
        let _ = write!(
            out,
            ",\"engine\":\"{}\"",
            match self.engine {
                EngineKind::Sync => "sync",
                EngineKind::SyncEvent => "sync-event",
                EngineKind::Async => "async",
            }
        );
        out.push_str(",\"algorithm\":");
        mmhew_obs::value::write_json_string(&mut out, &self.algorithm);
        out.push_str(",\"topology\":");
        mmhew_obs::value::write_json_string(&mut out, &self.topology);
        let _ = write!(
            out,
            ",\"edge-prob\":{},\"mode\":\"{}\",\"reps\":{},\"seed\":{},\"budget\":{},\
             \"hist-bins\":{},\"churn-downtime\":{},\"axes\":{{",
            self.edge_prob,
            match self.mode {
                GridMode::Cartesian => "cartesian",
                GridMode::Zip => "zip",
            },
            self.reps,
            self.seed,
            self.budget,
            self.hist_bins,
            self.churn_downtime
        );
        // Canonical position: the categorical protocol axis always leads
        // the axes object, so reserialization is idempotent regardless of
        // where the author wrote it.
        if !self.protocols.is_empty() {
            out.push_str("\"protocol\":[");
            for (j, name) in self.protocols.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                mmhew_obs::value::write_json_string(&mut out, name);
            }
            out.push(']');
        }
        for (i, axis) in self.axes.iter().enumerate() {
            if i > 0 || !self.protocols.is_empty() {
                out.push(',');
            }
            mmhew_obs::value::write_json_string(&mut out, &axis.name);
            out.push_str(":[");
            for (j, v) in axis.values.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{v}");
            }
            out.push(']');
        }
        out.push_str("}}");
        out
    }

    /// The built-in 4-point smoke spec CI runs: 2×2 over `nodes` ×
    /// `universe` on small complete graphs, 2 reps each.
    pub fn smoke() -> Self {
        let spec = SweepSpec {
            name: "smoke".to_string(),
            engine: EngineKind::Sync,
            algorithm: "staged".to_string(),
            topology: "complete".to_string(),
            edge_prob: 0.3,
            mode: GridMode::Cartesian,
            reps: 2,
            seed: 7,
            budget: 200_000,
            hist_bins: 20,
            churn_downtime: 2_000.0,
            protocols: vec![],
            axes: vec![
                AxisSpec {
                    name: "nodes".to_string(),
                    values: vec![4.0, 6.0],
                },
                AxisSpec {
                    name: "universe".to_string(),
                    values: vec![4.0, 6.0],
                },
            ],
        };
        spec.validate().expect("built-in smoke spec is valid");
        spec
    }

    /// Checks every invariant the campaign engine relies on.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] describing the first violation.
    pub fn validate(&self) -> Result<(), SpecError> {
        let err = |msg: String| Err(SpecError::Invalid(msg));
        if self.name.is_empty()
            || !self
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        {
            return err(format!(
                "name {:?} must be non-empty and file-name-safe ([A-Za-z0-9._-])",
                self.name
            ));
        }
        let algorithms: &[&str] = match self.engine {
            EngineKind::Sync | EngineKind::SyncEvent => {
                &["staged", "adaptive", "uniform", "baseline"]
            }
            EngineKind::Async => &["frame-based"],
        };
        if !algorithms.contains(&self.algorithm.as_str()) {
            return err(format!(
                "algorithm {:?} (this engine allows {algorithms:?})",
                self.algorithm
            ));
        }
        const TOPOLOGIES: &[&str] = &["complete", "line", "ring", "star", "er"];
        if !TOPOLOGIES.contains(&self.topology.as_str()) {
            return err(format!(
                "topology {:?} (expected one of {TOPOLOGIES:?})",
                self.topology
            ));
        }
        if self.reps == 0 {
            return err("reps must be at least 1".to_string());
        }
        if self.budget == 0 {
            return err("budget must be positive".to_string());
        }
        if self.hist_bins == 0 {
            return err("hist-bins must be at least 1".to_string());
        }
        if self.axes.is_empty() && self.protocols.is_empty() {
            return err("at least one axis must be swept".to_string());
        }
        let family = match self.engine {
            EngineKind::Sync | EngineKind::SyncEvent => mmhew_rivals::Family::Sync,
            EngineKind::Async => mmhew_rivals::Family::Async,
        };
        for (i, name) in self.protocols.iter().enumerate() {
            let accepted = mmhew_rivals::catalog::names(family);
            match mmhew_rivals::catalog::by_name(name) {
                None => {
                    return err(format!(
                        "axis \"protocol\": unknown protocol {name:?} (this engine accepts {accepted:?})"
                    ))
                }
                Some(kind) if kind.family != family => {
                    return err(format!(
                        "axis \"protocol\": {name:?} runs on the {} engine only (this engine accepts {accepted:?})",
                        kind.family.label()
                    ))
                }
                Some(_) => {}
            }
            if self.protocols[..i].iter().any(|p| p == name) {
                return err(format!("axis \"protocol\": {name:?} listed twice"));
            }
        }
        for (i, axis) in self.axes.iter().enumerate() {
            if !AXES.iter().any(|(n, _)| *n == axis.name) {
                let known: Vec<&str> = AXES.iter().map(|(n, _)| *n).collect();
                return err(format!("unknown axis {:?} (known: {known:?})", axis.name));
            }
            if self.axes[..i].iter().any(|a| a.name == axis.name) {
                return err(format!("axis {:?} listed twice", axis.name));
            }
            if axis.values.is_empty() {
                return err(format!("axis {:?} has no values", axis.name));
            }
            if axis.values.iter().any(|v| !v.is_finite() || *v < 0.0) {
                return err(format!(
                    "axis {:?} values must be finite and ≥ 0",
                    axis.name
                ));
            }
            if axis.name == "loss" && axis.values.iter().any(|v| *v >= 1.0) {
                return err("axis \"loss\": Bernoulli loss probabilities must be < 1".to_string());
            }
            if self.engine == EngineKind::Async && SYNC_ONLY_AXES.contains(&axis.name.as_str()) {
                return err(format!(
                    "axis {:?} is slot-synchronous only (async engine has no {})",
                    axis.name,
                    match axis.name.as_str() {
                        "jam" | "churn-rate" => "slot-indexed fault/dynamics schedules here",
                        "robust" => "robust wrapper",
                        _ => "start schedule",
                    }
                ));
            }
        }
        if self.mode == GridMode::Zip {
            if let Some(first) = self.axes.first() {
                let len = first.values.len();
                if let Some(odd) = self.axes.iter().find(|a| a.values.len() != len) {
                    return err(format!(
                        "zip mode requires equal-length axes: axis {:?} has {} values but axis {:?} has {len}",
                        odd.name,
                        odd.values.len(),
                        first.name
                    ));
                }
            }
        }
        self.validate_storage_cap()?;
        Ok(())
    }

    /// Rejects any grid point whose `nodes × universe` fixed storage
    /// would exceed the memory cap, naming the estimate up front instead
    /// of letting a worker OOM mid-campaign. Covers exactly the pairs
    /// the grid can produce: zipped index pairs when both axes are swept
    /// in zip mode, the full cross product otherwise.
    fn validate_storage_cap(&self) -> Result<(), SpecError> {
        let axis_values = |name: &str| -> Vec<f64> {
            self.axes
                .iter()
                .find(|a| a.name == name)
                .map(|a| a.values.clone())
                .unwrap_or_else(|| {
                    vec![AXES
                        .iter()
                        .find(|(n, _)| *n == name)
                        .map(|(_, d)| *d)
                        .unwrap_or(0.0)]
                })
        };
        let nodes = axis_values("nodes");
        let universe = axis_values("universe");
        let both_swept = self.axes.iter().any(|a| a.name == "nodes")
            && self.axes.iter().any(|a| a.name == "universe");
        let pairs: Vec<(f64, f64)> = if self.mode == GridMode::Zip && both_swept {
            nodes
                .iter()
                .copied()
                .zip(universe.iter().copied())
                .collect()
        } else {
            nodes
                .iter()
                .flat_map(|&n| universe.iter().map(move |&u| (n, u)))
                .collect()
        };
        for (n, u) in pairs {
            mmhew_topology::check_storage_cap(n as u64, u as u16)
                .map_err(|e| SpecError::Invalid(format!("axes \"nodes\" × \"universe\": {e}")))?;
        }
        Ok(())
    }

    /// The number of points in the numeric grid alone, ignoring the
    /// categorical `protocol` axis. Point ids relate to it by
    /// `id = protocol_index * numeric_grid_len + numeric_id`, and the
    /// per-point seed derivation reduces ids modulo it so every protocol
    /// sees identical per-point randomness (matched head-to-head runs).
    pub fn numeric_grid_len(&self) -> u64 {
        if self.axes.is_empty() {
            return 1;
        }
        (match self.mode {
            GridMode::Zip => self.axes[0].values.len(),
            GridMode::Cartesian => self.axes.iter().map(|a| a.values.len()).product(),
        }) as u64
    }

    /// Expands the grid into numbered points, cartesian (last axis
    /// fastest) or zipped. The categorical `protocol` axis multiplies the
    /// numeric grid in both modes (zip pairs numeric axes only) and
    /// varies slowest. The order — hence every point id — is a pure
    /// function of the spec.
    pub fn expand(&self) -> Vec<Point> {
        let numeric: Vec<Point> = if self.axes.is_empty() {
            vec![Point {
                id: 0,
                protocol: None,
                values: Vec::new(),
            }]
        } else {
            match self.mode {
                GridMode::Zip => (0..self.axes[0].values.len())
                    .map(|i| Point {
                        id: i as u64,
                        protocol: None,
                        values: self
                            .axes
                            .iter()
                            .map(|a| (a.name.clone(), a.values[i]))
                            .collect(),
                    })
                    .collect(),
                GridMode::Cartesian => {
                    let total: usize = self.axes.iter().map(|a| a.values.len()).product();
                    (0..total)
                        .map(|mut flat| {
                            let id = flat as u64;
                            let mut values = vec![(String::new(), 0.0); self.axes.len()];
                            for (slot, axis) in values.iter_mut().zip(&self.axes).rev() {
                                let k = axis.values.len();
                                *slot = (axis.name.clone(), axis.values[flat % k]);
                                flat /= k;
                            }
                            Point {
                                id,
                                protocol: None,
                                values,
                            }
                        })
                        .collect()
                }
            }
        };
        if self.protocols.is_empty() {
            return numeric;
        }
        let stride = numeric.len() as u64;
        self.protocols
            .iter()
            .enumerate()
            .flat_map(|(pi, name)| {
                numeric.iter().map(move |p| Point {
                    id: pi as u64 * stride + p.id,
                    protocol: Some(name.clone()),
                    values: p.values.clone(),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian_expansion_orders_last_axis_fastest() {
        let mut spec = SweepSpec::smoke();
        spec.axes[0].values = vec![4.0, 8.0];
        spec.axes[1].values = vec![2.0, 3.0, 5.0];
        let points = spec.expand();
        assert_eq!(points.len(), 6);
        assert_eq!(
            points[0].values,
            vec![("nodes".into(), 4.0), ("universe".into(), 2.0)]
        );
        assert_eq!(points[1].axis("universe"), 3.0);
        assert_eq!(
            points[3].values,
            vec![("nodes".into(), 8.0), ("universe".into(), 2.0)]
        );
        assert!(points.iter().enumerate().all(|(i, p)| p.id == i as u64));
    }

    #[test]
    fn zip_mode_pairs_positionally() {
        let mut spec = SweepSpec::smoke();
        spec.mode = GridMode::Zip;
        let points = spec.expand();
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].axis("nodes"), 6.0);
        assert_eq!(points[1].axis("universe"), 6.0);

        spec.axes[1].values.push(9.0);
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));
    }

    #[test]
    fn unswept_axes_fall_back_to_defaults() {
        let p = SweepSpec::smoke().expand().remove(0);
        assert_eq!(p.axis("loss"), 0.0);
        assert_eq!(p.axis("delta-est"), 0.0);
        assert_eq!(p.axis("start-window"), 0.0);
    }

    #[test]
    fn json_parsing_with_defaults_and_shorthand() {
        let spec = SweepSpec::from_json(
            r#"{"name": "t", "seed": 9,
                "axes": {"nodes": [8, 16], "loss": 0.2}}"#,
        )
        .expect("valid");
        assert_eq!(spec.engine, EngineKind::Sync);
        assert_eq!(spec.algorithm, "staged");
        assert_eq!(spec.reps, 5);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.axes[1].values, vec![0.2]);
        assert_eq!(spec.expand().len(), 2);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let bad = |text: &str| SweepSpec::from_json(text).expect_err("must fail");
        assert!(matches!(bad("{"), SpecError::Json(_)));
        assert!(matches!(
            bad(r#"{"axes": {"nodes": [4]}}"#),
            SpecError::Field("name")
        ));
        assert!(matches!(bad(r#"{"name": "t"}"#), SpecError::Field("axes")));
        let e = bad(r#"{"name": "t", "axes": {"speed": [1]}}"#);
        assert!(e.to_string().contains("unknown axis"));
        let e = bad(r#"{"name": "t", "axes": {"loss": [1.5]}}"#);
        assert!(e.to_string().contains("loss"));
        let e = bad(r#"{"name": "bad/name", "axes": {"nodes": [4]}}"#);
        assert!(e.to_string().contains("file-name-safe"));
        let e = bad(r#"{"name": "t", "engine": "async", "axes": {"jam": [1]}}"#);
        assert!(e.to_string().contains("slot-synchronous only"));
        let e = bad(r#"{"name": "t", "algorithm": "alg9", "axes": {"nodes": [4]}}"#);
        assert!(e.to_string().contains("algorithm"));
    }

    #[test]
    fn storage_cap_rejects_oversized_grid_points_with_the_estimate() {
        let bad = |text: &str| SweepSpec::from_json(text).expect_err("must fail");
        // 10¹² nodes × 64 channels is far beyond any sane cap; the error
        // names the estimated footprint and the override knob rather
        // than letting a worker OOM.
        let e = bad(r#"{"name": "t", "axes": {"nodes": [4, 1000000000000], "universe": [64]}}"#);
        let msg = e.to_string();
        assert!(msg.contains("nodes"), "msg: {msg}");
        assert!(msg.contains("MiB"), "names the estimate: {msg}");
        assert!(msg.contains("MMHEW_MEM_CAP_BYTES"), "names the knob: {msg}");
        // Zip mode only pairs index-matched values: (4, 64) and (8, 2)
        // are both tiny even though (8, 64) at the cross product of a
        // cartesian read would also be fine — and a huge zipped pair
        // still trips the check.
        assert!(SweepSpec::from_json(
            r#"{"name": "t", "mode": "zip",
                "axes": {"nodes": [4, 8], "universe": [64, 2]}}"#,
        )
        .is_ok());
        let e = bad(r#"{"name": "t", "mode": "zip",
                "axes": {"nodes": [4, 1000000000000], "universe": [2, 64]}}"#);
        assert!(e.to_string().contains("MiB"));
    }

    #[test]
    fn sync_event_engine_parses_and_round_trips() {
        let spec = SweepSpec::from_json(
            r#"{"name": "t", "engine": "sync-event",
                "axes": {"nodes": [4], "jam": [0, 1]}}"#,
        )
        .expect("valid");
        assert_eq!(spec.engine, EngineKind::SyncEvent);
        // Sync-event shares the slot-synchronous defaults and axes
        // (jam is SYNC_ONLY and must be accepted here).
        assert_eq!(spec.algorithm, "staged");
        assert_eq!(SweepSpec::from_json(&spec.to_json()).expect("parses"), spec);
    }

    #[test]
    fn smoke_spec_is_four_points() {
        assert_eq!(SweepSpec::smoke().expand().len(), 4);
    }

    #[test]
    fn protocol_axis_multiplies_the_numeric_grid_varying_slowest() {
        let spec = SweepSpec::from_json(
            r#"{"name": "t",
                "axes": {"protocol": ["staged", "mc-dis"], "nodes": [4, 6]}}"#,
        )
        .expect("valid");
        assert_eq!(spec.protocols, vec!["staged", "mc-dis"]);
        assert_eq!(spec.numeric_grid_len(), 2);
        let points = spec.expand();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].protocol.as_deref(), Some("staged"));
        assert_eq!(points[0].axis("nodes"), 4.0);
        assert_eq!(points[1].protocol.as_deref(), Some("staged"));
        assert_eq!(points[1].axis("nodes"), 6.0);
        assert_eq!(points[2].protocol.as_deref(), Some("mc-dis"));
        assert_eq!(points[2].axis("nodes"), 4.0);
        assert!(points.iter().enumerate().all(|(i, p)| p.id == i as u64));
    }

    #[test]
    fn protocol_only_sweep_is_a_one_point_numeric_grid() {
        let spec = SweepSpec::from_json(
            r#"{"name": "t", "axes": {"protocol": ["staged", "s-nihao", "a-nihao"]}}"#,
        )
        .expect("valid");
        assert_eq!(spec.numeric_grid_len(), 1);
        let points = spec.expand();
        assert_eq!(points.len(), 3);
        assert!(points.iter().all(|p| p.values.is_empty()));
    }

    #[test]
    fn protocol_axis_round_trips_canonically_from_any_position() {
        // The author wrote protocol *after* a numeric axis; canonical form
        // moves it first, and reserialization is idempotent.
        let spec = SweepSpec::from_json(
            r#"{"name": "t", "axes": {"nodes": [4, 8], "protocol": ["uniform", "mc-dis"]}}"#,
        )
        .expect("valid");
        let canonical = spec.to_json();
        assert!(
            canonical.contains("\"axes\":{\"protocol\":[\"uniform\",\"mc-dis\"],\"nodes\":[4,8]}")
        );
        let reparsed = SweepSpec::from_json(&canonical).expect("parses");
        assert_eq!(reparsed, spec);
        assert_eq!(reparsed.to_json(), canonical);
    }

    #[test]
    fn protocol_axis_validation_names_the_axis_and_accepted_values() {
        let bad = |text: &str| SweepSpec::from_json(text).expect_err("must fail");
        let e = bad(r#"{"name": "t", "axes": {"protocol": ["warp-drive"]}}"#);
        let msg = e.to_string();
        assert!(msg.contains("axis \"protocol\""), "{msg}");
        assert!(msg.contains("warp-drive"), "{msg}");
        assert!(msg.contains("mc-dis"), "names accepted values: {msg}");

        let e = bad(r#"{"name": "t", "engine": "async", "axes": {"protocol": ["mc-dis"]}}"#);
        let msg = e.to_string();
        assert!(msg.contains("sync engine only"), "{msg}");
        assert!(msg.contains("frame-based"), "{msg}");

        let e = bad(r#"{"name": "t", "axes": {"protocol": [4]}}"#);
        assert!(e.to_string().contains("catalog names"), "{e}");

        let e = bad(r#"{"name": "t", "axes": {"nodes": ["four"]}}"#);
        let msg = e.to_string();
        assert!(msg.contains("axis \"nodes\""), "{msg}");

        let e = bad(r#"{"name": "t", "axes": {"protocol": ["staged", "staged"]}}"#);
        assert!(e.to_string().contains("listed twice"), "{e}");

        let e = bad(r#"{"name": "t", "mode": "zip",
                "axes": {"nodes": [4, 8], "loss": [0, 0.1, 0.2]}}"#);
        let msg = e.to_string();
        assert!(
            msg.contains("\"loss\"") && msg.contains("\"nodes\""),
            "{msg}"
        );
        assert!(
            msg.contains('3') && msg.contains('2'),
            "lengths named: {msg}"
        );
    }

    #[test]
    fn canonical_json_round_trips_exactly() {
        // to_json must be the precise inverse of from_json: the campaign
        // service ships specs as this text, and a worker that parses it
        // must reconstruct the identical spec (identical seeds, points,
        // and manifest lines).
        let mut spec = SweepSpec::smoke();
        assert_eq!(SweepSpec::from_json(&spec.to_json()).expect("parses"), spec);

        spec.topology = "er".to_string();
        spec.edge_prob = 0.35;
        spec.mode = GridMode::Zip;
        spec.algorithm = "uniform".to_string();
        spec.churn_downtime = 1_234.5;
        spec.axes.push(AxisSpec {
            name: "loss".to_string(),
            values: vec![0.0, 0.25],
        });
        assert_eq!(SweepSpec::from_json(&spec.to_json()).expect("parses"), spec);

        // Canonicalization is idempotent: reparse and reserialize agree.
        let canonical = spec.to_json();
        let reparsed = SweepSpec::from_json(&canonical).expect("parses");
        assert_eq!(reparsed.to_json(), canonical);
    }

    #[test]
    fn checked_in_smoke_spec_file_matches_the_builtin() {
        // The README's campaign-server quickstart points at
        // specs/smoke.json; keep it in lockstep with SweepSpec::smoke()
        // so the two paths produce identical campaigns.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../specs/smoke.json");
        let text = std::fs::read_to_string(path).expect("specs/smoke.json exists");
        assert_eq!(
            SweepSpec::from_json(&text).expect("parses"),
            SweepSpec::smoke()
        );
    }
}
