//! Static campaign explorer: manifest JSONL → one self-contained HTML
//! page.
//!
//! [`render_explorer`] reads the per-point records a campaign streams
//! into `<name>.manifest.jsonl` and renders a single HTML document with
//! no external assets: inline CSS, inline SVG quantile charts (one per
//! *swept* axis — an axis whose values actually vary across points), and
//! a point table whose last column is the exact `campaign … --point N`
//! command that reproduces any row's manifest line in isolation.
//!
//! The page is a pure function of the manifest text and the
//! [`ExplorerOptions`], so regenerating it from the same campaign yields
//! byte-identical HTML — it can be committed, diffed, and served from
//! anywhere (CI artifacts, a gist, `python -m http.server`).
//!
//! Tolerances mirror the campaign's own manifest loader: unversioned
//! lines (written before `schema_version` existed) load fine, a torn or
//! garbled line is skipped, and a line stamped with a *newer* schema than
//! this build understands is a hard error.

use crate::json::{self, Value};
use crate::points::MANIFEST_SCHEMA_VERSION;
use std::collections::BTreeMap;
use std::fmt;

/// Explorer failures: an unusable manifest (empty, or written by a newer
/// schema).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExplorerError {
    message: String,
}

impl fmt::Display for ExplorerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ExplorerError {}

fn explorer_error(message: impl Into<String>) -> ExplorerError {
    ExplorerError {
        message: message.into(),
    }
}

/// How to label the generated page.
#[derive(Debug, Clone)]
pub struct ExplorerOptions {
    /// Page title, typically the campaign name.
    pub title: String,
    /// Replay command prefix, e.g. `campaign --spec sweep.json` or
    /// `campaign --smoke`; the table appends ` --point N` per row.
    pub replay: String,
}

impl ExplorerOptions {
    /// Options with the given title and replay prefix.
    pub fn new(title: impl Into<String>, replay: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            replay: replay.into(),
        }
    }
}

/// One manifest line, decoded. Missing or non-numeric statistics decode
/// as NaN (rendered as an em dash, excluded from charts) so a point whose
/// repetitions all exhausted the budget still gets a table row.
struct PointSummary {
    id: u64,
    /// Categorical `protocol` axis value, when the campaign swept one.
    protocol: Option<String>,
    params: Vec<(String, f64)>,
    completed: u64,
    failures: u64,
    mean: f64,
    p50: f64,
    p90: f64,
    p99: f64,
}

fn num(v: Option<&Value>) -> f64 {
    v.and_then(Value::as_f64).unwrap_or(f64::NAN)
}

fn decode_params(v: Option<&Value>) -> Vec<(String, f64)> {
    let Some(items) = v.and_then(Value::as_arr) else {
        return Vec::new();
    };
    items
        .iter()
        .filter_map(|pair| {
            let pair = pair.as_arr()?;
            let name = pair.first()?.as_str()?;
            let value = pair.get(1)?.as_f64()?;
            Some((name.to_string(), value))
        })
        .collect()
}

/// Decodes the manifest into point summaries sorted by id (a later line
/// for the same id wins, matching the campaign's resume semantics).
fn parse_manifest(manifest: &str) -> Result<Vec<PointSummary>, ExplorerError> {
    let mut points: BTreeMap<u64, PointSummary> = BTreeMap::new();
    for line in manifest.lines() {
        if line.trim().is_empty() {
            continue;
        }
        // A torn trailing line (crash mid-append) is expected; skip
        // anything unparseable rather than refusing the whole page.
        let Ok(v) = json::parse(line) else { continue };
        let version = v.get("schema_version").and_then(Value::as_u64).unwrap_or(0);
        if version > MANIFEST_SCHEMA_VERSION as u64 {
            return Err(explorer_error(format!(
                "manifest has schema_version {version}, newer than the supported \
                 {MANIFEST_SCHEMA_VERSION}"
            )));
        }
        let Some(id) = v.get("point").and_then(Value::as_u64) else {
            continue;
        };
        points.insert(
            id,
            PointSummary {
                id,
                protocol: v
                    .get("protocol")
                    .and_then(Value::as_str)
                    .map(str::to_string),
                params: decode_params(v.get("params")),
                completed: v.get("completed").and_then(Value::as_u64).unwrap_or(0),
                failures: v.get("failures").and_then(Value::as_u64).unwrap_or(0),
                mean: num(v.get("mean")),
                p50: num(v.get("p50")),
                p90: num(v.get("p90")),
                p99: num(v.get("p99")),
            },
        );
    }
    if points.is_empty() {
        return Err(explorer_error(
            "manifest contains no point records; run the campaign first",
        ));
    }
    Ok(points.into_values().collect())
}

/// Every axis name, in first-appearance order.
fn axis_names(points: &[PointSummary]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for p in points {
        for (name, _) in &p.params {
            if !names.contains(name) {
                names.push(name.clone());
            }
        }
    }
    names
}

fn axis_value(p: &PointSummary, axis: &str) -> Option<f64> {
    p.params.iter().find(|(n, _)| n == axis).map(|(_, v)| *v)
}

/// Axes whose value actually varies across points — each gets a chart.
fn swept_axes(points: &[PointSummary]) -> Vec<String> {
    axis_names(points)
        .into_iter()
        .filter(|axis| {
            let mut distinct: Vec<u64> = points
                .iter()
                .filter_map(|p| axis_value(p, axis))
                .map(f64::to_bits)
                .collect();
            distinct.sort_unstable();
            distinct.dedup();
            distinct.len() > 1
        })
        .collect()
}

/// Minimal HTML escaping for text and attribute positions.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Compact numeric display: integers verbatim, everything else with at
/// most three decimals, NaN as an em dash.
fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return "—".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        return format!("{}", v as i64);
    }
    let s = format!("{v:.3}");
    s.trim_end_matches('0').trim_end_matches('.').to_string()
}

/// Rounds up to 1/2/5 × 10^k for calm chart ceilings.
fn nice_ceil(v: f64) -> f64 {
    if !(v > 0.0) {
        return 1.0;
    }
    let mag = 10f64.powf(v.log10().floor());
    let n = v / mag;
    let factor = if n <= 1.0 {
        1.0
    } else if n <= 2.0 {
        2.0
    } else if n <= 5.0 {
        5.0
    } else {
        10.0
    };
    factor * mag
}

/// The three plotted quantiles: (field label, accessor, stroke color).
const SERIES: &[(&str, fn(&PointSummary) -> f64, &str)] = &[
    ("p50", |p| p.p50, "#2563eb"),
    ("p90", |p| p.p90, "#d97706"),
    ("p99", |p| p.p99, "#dc2626"),
];

const CHART_W: f64 = 620.0;
const CHART_H: f64 = 300.0;
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 18.0;
const MARGIN_T: f64 = 18.0;
const MARGIN_B: f64 = 46.0;

/// One chart: the p50/p90/p99 quantiles against `axis`. Points sharing
/// an axis value (a grid swept over other axes too) are averaged, and
/// the caption says over how many points each marker averages.
fn render_axis_chart(axis: &str, points: &[PointSummary]) -> String {
    // x → the finite quantile samples of every point at that x.
    let mut groups: Vec<(f64, Vec<&PointSummary>)> = Vec::new();
    for p in points {
        let Some(x) = axis_value(p, axis) else {
            continue;
        };
        match groups
            .iter_mut()
            .find(|(gx, _)| gx.to_bits() == x.to_bits())
        {
            Some((_, members)) => members.push(p),
            None => groups.push((x, vec![p])),
        }
    }
    groups.sort_by(|a, b| a.0.total_cmp(&b.0));

    // Per series, the averaged finite y at each x.
    let curves: Vec<Vec<(f64, f64)>> = SERIES
        .iter()
        .map(|(_, get, _)| {
            groups
                .iter()
                .filter_map(|(x, members)| {
                    let ys: Vec<f64> = members
                        .iter()
                        .map(|p| get(p))
                        .filter(|y| y.is_finite())
                        .collect();
                    if ys.is_empty() {
                        None
                    } else {
                        Some((*x, ys.iter().sum::<f64>() / ys.len() as f64))
                    }
                })
                .collect()
        })
        .collect();

    let xs: Vec<f64> = groups.iter().map(|(x, _)| *x).collect();
    let (xmin, xmax) = (xs[0], xs[xs.len() - 1]);
    let ymax = nice_ceil(curves.iter().flatten().map(|(_, y)| *y).fold(0.0, f64::max));
    let sx = |x: f64| MARGIN_L + (x - xmin) / (xmax - xmin) * (CHART_W - MARGIN_L - MARGIN_R);
    let sy = |y: f64| CHART_H - MARGIN_B - y / ymax * (CHART_H - MARGIN_T - MARGIN_B);

    let mut svg = format!(
        "<svg viewBox=\"0 0 {CHART_W} {CHART_H}\" width=\"{CHART_W}\" height=\"{CHART_H}\" \
         role=\"img\" aria-label=\"completion-time quantiles vs {}\">\n",
        escape(axis)
    );
    // Horizontal gridlines + y tick labels.
    for i in 0..=4 {
        let y = ymax * i as f64 / 4.0;
        let py = sy(y);
        svg.push_str(&format!(
            "<line x1=\"{MARGIN_L}\" y1=\"{py:.1}\" x2=\"{:.1}\" y2=\"{py:.1}\" \
             stroke=\"#e5e7eb\"/>\n\
             <text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\" class=\"tick\">{}</text>\n",
            CHART_W - MARGIN_R,
            MARGIN_L - 6.0,
            py + 4.0,
            fmt_num(y)
        ));
    }
    // X ticks at each swept value (thin the labels if the sweep is long).
    let stride = xs.len().div_ceil(10);
    for (i, x) in xs.iter().enumerate() {
        let px = sx(*x);
        svg.push_str(&format!(
            "<line x1=\"{px:.1}\" y1=\"{:.1}\" x2=\"{px:.1}\" y2=\"{:.1}\" stroke=\"#9ca3af\"/>\n",
            CHART_H - MARGIN_B,
            CHART_H - MARGIN_B + 4.0
        ));
        if i % stride == 0 {
            svg.push_str(&format!(
                "<text x=\"{px:.1}\" y=\"{:.1}\" text-anchor=\"middle\" class=\"tick\">{}</text>\n",
                CHART_H - MARGIN_B + 16.0,
                fmt_num(*x)
            ));
        }
    }
    // Axis lines and labels.
    svg.push_str(&format!(
        "<line x1=\"{MARGIN_L}\" y1=\"{MARGIN_T}\" x2=\"{MARGIN_L}\" y2=\"{:.1}\" stroke=\"#111\"/>\n\
         <line x1=\"{MARGIN_L}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" stroke=\"#111\"/>\n\
         <text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\" class=\"label\">{}</text>\n",
        CHART_H - MARGIN_B,
        CHART_H - MARGIN_B,
        CHART_W - MARGIN_R,
        CHART_H - MARGIN_B,
        (MARGIN_L + CHART_W - MARGIN_R) / 2.0,
        CHART_H - 8.0,
        escape(axis)
    ));
    // Quantile curves with point markers, plus the legend.
    for ((label, _, color), curve) in SERIES.iter().zip(&curves) {
        if curve.is_empty() {
            continue;
        }
        let path: Vec<String> = curve
            .iter()
            .map(|(x, y)| format!("{:.1},{:.1}", sx(*x), sy(*y)))
            .collect();
        svg.push_str(&format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"2\"/>\n",
            path.join(" ")
        ));
        for (x, y) in curve {
            svg.push_str(&format!(
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"3\" fill=\"{color}\"/>\n",
                sx(*x),
                sy(*y)
            ));
        }
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" class=\"legend\" fill=\"{color}\">{label}</text>\n",
            sx(curve[curve.len() - 1].0) - 26.0,
            sy(curve[curve.len() - 1].1) - 8.0
        ));
    }
    svg.push_str("</svg>");

    let averaging = groups.iter().map(|(_, m)| m.len()).max().unwrap_or(1);
    let caption = if averaging > 1 {
        format!(
            "<p class=\"note\">each marker averages the {averaging} grid points sharing \
             that <code>{}</code> value</p>",
            escape(axis)
        )
    } else {
        String::new()
    };
    format!(
        "<section>\n<h2>p50 / p90 / p99 vs <code>{}</code></h2>\n{caption}{svg}\n</section>\n",
        escape(axis)
    )
}

/// The categorical `protocol` axis chart: one group of p50/p90/p99 bars
/// per protocol, averaged over every numeric grid point run under that
/// protocol. Categories keep manifest order and are *not* coerced onto a
/// numeric x-axis — names have no meaningful ordering or spacing, so a
/// line chart would invent trends that do not exist. Empty when fewer
/// than two protocols appear (nothing varies, nothing to chart).
fn render_protocol_chart(points: &[PointSummary]) -> String {
    let mut cats: Vec<(&str, Vec<&PointSummary>)> = Vec::new();
    for p in points {
        let Some(name) = p.protocol.as_deref() else {
            continue;
        };
        match cats.iter_mut().find(|(c, _)| *c == name) {
            Some((_, members)) => members.push(p),
            None => cats.push((name, vec![p])),
        }
    }
    if cats.len() < 2 {
        return String::new();
    }

    // Per category, the averaged finite value of each quantile series.
    let bars: Vec<Vec<Option<f64>>> = cats
        .iter()
        .map(|(_, members)| {
            SERIES
                .iter()
                .map(|(_, get, _)| {
                    let ys: Vec<f64> = members
                        .iter()
                        .map(|p| get(p))
                        .filter(|y| y.is_finite())
                        .collect();
                    if ys.is_empty() {
                        None
                    } else {
                        Some(ys.iter().sum::<f64>() / ys.len() as f64)
                    }
                })
                .collect()
        })
        .collect();

    let ymax = nice_ceil(bars.iter().flatten().filter_map(|b| *b).fold(0.0, f64::max));
    let sy = |y: f64| CHART_H - MARGIN_B - y / ymax * (CHART_H - MARGIN_T - MARGIN_B);
    let plot_w = CHART_W - MARGIN_L - MARGIN_R;
    let group_w = plot_w / cats.len() as f64;
    let bar_w = (group_w * 0.8) / SERIES.len() as f64;

    let mut svg = format!(
        "<svg viewBox=\"0 0 {CHART_W} {CHART_H}\" width=\"{CHART_W}\" height=\"{CHART_H}\" \
         role=\"img\" aria-label=\"completion-time quantiles by protocol\">\n"
    );
    // Horizontal gridlines + y tick labels (same scale treatment as the
    // numeric charts).
    for i in 0..=4 {
        let y = ymax * i as f64 / 4.0;
        let py = sy(y);
        svg.push_str(&format!(
            "<line x1=\"{MARGIN_L}\" y1=\"{py:.1}\" x2=\"{:.1}\" y2=\"{py:.1}\" \
             stroke=\"#e5e7eb\"/>\n\
             <text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\" class=\"tick\">{}</text>\n",
            CHART_W - MARGIN_R,
            MARGIN_L - 6.0,
            py + 4.0,
            fmt_num(y)
        ));
    }
    // Grouped bars with the category name centered under each group.
    for (ci, (name, _)) in cats.iter().enumerate() {
        let gx = MARGIN_L + ci as f64 * group_w;
        for (si, ((_, _, color), bar)) in SERIES.iter().zip(&bars[ci]).enumerate() {
            let Some(y) = bar else { continue };
            let px = gx + group_w * 0.1 + si as f64 * bar_w;
            let py = sy(*y);
            svg.push_str(&format!(
                "<rect x=\"{px:.1}\" y=\"{py:.1}\" width=\"{:.1}\" height=\"{:.1}\" \
                 fill=\"{color}\"/>\n",
                bar_w * 0.9,
                CHART_H - MARGIN_B - py
            ));
        }
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\" class=\"tick\">{}</text>\n",
            gx + group_w / 2.0,
            CHART_H - MARGIN_B + 16.0,
            escape(name)
        ));
    }
    // Axis lines, x label, and the series legend.
    svg.push_str(&format!(
        "<line x1=\"{MARGIN_L}\" y1=\"{MARGIN_T}\" x2=\"{MARGIN_L}\" y2=\"{:.1}\" stroke=\"#111\"/>\n\
         <line x1=\"{MARGIN_L}\" y1=\"{:.1}\" x2=\"{:.1}\" y2=\"{:.1}\" stroke=\"#111\"/>\n\
         <text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\" class=\"label\">protocol</text>\n",
        CHART_H - MARGIN_B,
        CHART_H - MARGIN_B,
        CHART_W - MARGIN_R,
        CHART_H - MARGIN_B,
        (MARGIN_L + CHART_W - MARGIN_R) / 2.0,
        CHART_H - 8.0
    ));
    for (si, (label, _, color)) in SERIES.iter().enumerate() {
        svg.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" class=\"legend\" fill=\"{color}\">{label}</text>\n",
            MARGIN_L + 8.0 + si as f64 * 44.0,
            MARGIN_T + 12.0
        ));
    }
    svg.push_str("</svg>");

    let averaging = cats.iter().map(|(_, m)| m.len()).max().unwrap_or(1);
    let caption = if averaging > 1 {
        format!(
            "<p class=\"note\">each bar averages the {averaging} numeric grid points \
             run under that protocol</p>"
        )
    } else {
        String::new()
    };
    format!(
        "<section>\n<h2>p50 / p90 / p99 by <code>protocol</code></h2>\n{caption}{svg}\n</section>\n"
    )
}

/// Renders the manifest into a complete, self-contained HTML document.
///
/// # Errors
///
/// Returns [`ExplorerError`] if no point record parses, or if any line is
/// stamped with a schema version newer than this build supports.
pub fn render_explorer(manifest: &str, opts: &ExplorerOptions) -> Result<String, ExplorerError> {
    let points = parse_manifest(manifest)?;
    let axes = axis_names(&points);
    let swept = swept_axes(&points);
    let completed: u64 = points.iter().map(|p| p.completed).sum();
    let failures: u64 = points.iter().map(|p| p.failures).sum();

    let mut html = String::with_capacity(16 * 1024);
    html.push_str("<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    html.push_str("<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n");
    html.push_str(&format!(
        "<title>{} — campaign explorer</title>\n",
        escape(&opts.title)
    ));
    html.push_str(
        "<style>\n\
         body{font:14px/1.5 system-ui,sans-serif;color:#111;max-width:72rem;\
         margin:2rem auto;padding:0 1rem}\n\
         h1{font-size:1.4rem}h2{font-size:1.1rem;margin-top:2rem}\n\
         .meta,.note{color:#6b7280}\n\
         svg{background:#fff;border:1px solid #e5e7eb;max-width:100%;height:auto}\n\
         svg .tick{font:11px system-ui,sans-serif;fill:#6b7280}\n\
         svg .label{font:12px system-ui,sans-serif;fill:#111}\n\
         svg .legend{font:600 12px system-ui,sans-serif}\n\
         table{border-collapse:collapse;margin-top:.5rem}\n\
         th,td{border:1px solid #e5e7eb;padding:.25rem .6rem;text-align:right}\n\
         th{background:#f3f4f6}\n\
         td.cmd,td.cat{text-align:left;font-family:ui-monospace,monospace;font-size:12px}\n\
         </style>\n</head>\n<body>\n",
    );
    html.push_str(&format!(
        "<h1>campaign explorer — {}</h1>\n",
        escape(&opts.title)
    ));
    html.push_str(&format!(
        "<p class=\"meta\">{} points · {completed} completed repetitions · \
         {failures} budget-exhausted · manifest schema v{MANIFEST_SCHEMA_VERSION} · \
         y axes are completion times (slots for the sync engine, frames for async)</p>\n",
        points.len()
    ));

    let protocol_chart = render_protocol_chart(&points);
    if swept.is_empty() && protocol_chart.is_empty() {
        html.push_str(
            "<p class=\"note\">no axis varies across these points, so there is \
             nothing to chart — see the table below</p>\n",
        );
    }
    html.push_str(&protocol_chart);
    for axis in &swept {
        html.push_str(&render_axis_chart(axis, &points));
    }

    let show_protocol = points.iter().any(|p| p.protocol.is_some());
    html.push_str("<h2>Points</h2>\n<table>\n<thead><tr><th>point</th>");
    if show_protocol {
        html.push_str("<th>protocol</th>");
    }
    for axis in &axes {
        html.push_str(&format!("<th>{}</th>", escape(axis)));
    }
    html.push_str(
        "<th>completed</th><th>failures</th><th>mean</th><th>p50</th><th>p90</th>\
         <th>p99</th><th>replay</th></tr></thead>\n<tbody>\n",
    );
    for p in &points {
        html.push_str(&format!("<tr><td>{}</td>", p.id));
        if show_protocol {
            html.push_str(&format!(
                "<td class=\"cat\">{}</td>",
                p.protocol.as_deref().map(escape).unwrap_or_default()
            ));
        }
        for axis in &axes {
            html.push_str(&format!(
                "<td>{}</td>",
                axis_value(p, axis).map(fmt_num).unwrap_or_default()
            ));
        }
        html.push_str(&format!(
            "<td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td class=\"cmd\">{} --point {}</td></tr>\n",
            p.completed,
            p.failures,
            fmt_num(p.mean),
            fmt_num(p.p50),
            fmt_num(p.p90),
            fmt_num(p.p99),
            escape(&opts.replay),
            p.id
        ));
    }
    html.push_str("</tbody>\n</table>\n");
    html.push_str(
        "<p class=\"note\">generated by <code>campaign explore</code>; each replay \
         command re-runs one point in isolation and prints its manifest line \
         byte-identically</p>\n</body>\n</html>\n",
    );
    Ok(html)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> String {
        // 2×2 grid over nodes × universe, universe varying fastest.
        let mut out = String::new();
        for (id, (n, u, p50)) in [
            (4.0, 4.0, 100.0),
            (4.0, 6.0, 140.0),
            (6.0, 4.0, 180.0),
            (6.0, 6.0, 220.0),
        ]
        .iter()
        .enumerate()
        {
            out.push_str(&format!(
                "{{\"schema_version\":1,\"point\":{id},\
                 \"params\":[[\"nodes\",{n}],[\"universe\",{u}]],\
                 \"reps\":2,\"completed\":2,\"failures\":0,\"mean\":{p50},\
                 \"stddev\":1.0,\"min\":90.0,\"max\":240.0,\
                 \"p50\":{p50},\"p90\":{},\"p99\":{}}}\n",
                p50 + 10.0,
                p50 + 20.0
            ));
        }
        out
    }

    #[test]
    fn renders_one_chart_per_swept_axis() {
        let opts = ExplorerOptions::new("smoke", "campaign --smoke");
        let html = render_explorer(&sample_manifest(), &opts).expect("renders");
        assert_eq!(
            html.matches("<svg").count(),
            2,
            "nodes and universe both swept"
        );
        assert!(html.contains("vs <code>nodes</code>"));
        assert!(html.contains("vs <code>universe</code>"));
        assert!(html.contains("campaign --smoke --point 3"));
        assert!(html.contains("<table>"));
        // Self-contained: no external fetches of any kind.
        assert!(!html.contains("http://") && !html.contains("https://"));
    }

    #[test]
    fn unswept_axes_get_no_chart() {
        let manifest = "{\"point\":0,\"params\":[[\"nodes\",4],[\"loss\",0.1]],\
                        \"completed\":1,\"failures\":0,\"mean\":10,\"p50\":10,\
                        \"p90\":11,\"p99\":12}\n\
                        {\"point\":1,\"params\":[[\"nodes\",8],[\"loss\",0.1]],\
                        \"completed\":1,\"failures\":0,\"mean\":20,\"p50\":20,\
                        \"p90\":21,\"p99\":22}\n";
        let opts = ExplorerOptions::new("t", "campaign --spec t.json");
        let html = render_explorer(manifest, &opts).expect("renders");
        assert_eq!(html.matches("<svg").count(), 1, "only nodes varies");
        // loss still appears as a table column.
        assert!(html.contains("<th>loss</th>"));
    }

    #[test]
    fn protocol_axis_renders_grouped_bars_not_a_numeric_chart() {
        // 2 protocols × 2 nodes values: one grouped-bar chart for the
        // categorical axis, one line chart for the numeric one.
        let mut manifest = String::new();
        for (id, (proto, n, p50)) in [
            ("staged", 4.0, 100.0),
            ("staged", 8.0, 160.0),
            ("mc-dis", 4.0, 900.0),
            ("mc-dis", 8.0, 1400.0),
        ]
        .iter()
        .enumerate()
        {
            manifest.push_str(&format!(
                "{{\"schema_version\":1,\"point\":{id},\"protocol\":\"{proto}\",\
                 \"params\":[[\"nodes\",{n}]],\"reps\":2,\"completed\":2,\
                 \"failures\":0,\"mean\":{p50},\"stddev\":1.0,\"min\":90.0,\
                 \"max\":2000.0,\"p50\":{p50},\"p90\":{},\"p99\":{}}}\n",
                p50 + 10.0,
                p50 + 20.0
            ));
        }
        let opts = ExplorerOptions::new("rivals", "campaign --spec rivals.json");
        let html = render_explorer(&manifest, &opts).expect("renders");
        assert_eq!(
            html.matches("<svg").count(),
            2,
            "protocol bars + nodes line"
        );
        assert!(html.contains("by <code>protocol</code>"));
        assert!(html.contains("<rect"), "categorical chart uses bars");
        assert!(html.contains("each bar averages the 2 numeric grid points"));
        // The table gains a protocol column with the raw names.
        assert!(html.contains("<th>protocol</th>"));
        assert!(html.contains("<td class=\"cat\">mc-dis</td>"));
    }

    #[test]
    fn single_protocol_manifests_chart_like_plain_ones() {
        // One protocol does not vary: no grouped bars, but the column
        // still shows which protocol produced the rows.
        let manifest = "{\"point\":0,\"protocol\":\"s-nihao\",\
                        \"params\":[[\"nodes\",4]],\"completed\":1,\"failures\":0,\
                        \"mean\":10,\"p50\":10,\"p90\":11,\"p99\":12}\n\
                        {\"point\":1,\"protocol\":\"s-nihao\",\
                        \"params\":[[\"nodes\",8]],\"completed\":1,\"failures\":0,\
                        \"mean\":20,\"p50\":20,\"p90\":21,\"p99\":22}\n";
        let opts = ExplorerOptions::new("t", "campaign --spec t.json");
        let html = render_explorer(manifest, &opts).expect("renders");
        assert_eq!(html.matches("<svg").count(), 1, "only nodes varies");
        assert!(!html.contains("by <code>protocol</code>"));
        assert!(html.contains("<th>protocol</th>"));
    }

    #[test]
    fn head_to_head_manifest_renders_expected_chart_count() {
        // The acceptance path for the rivals sweep: run a real
        // protocol-axis spec through the point runner and count charts.
        let spec = crate::spec::SweepSpec::from_json(
            r#"{"name":"rivals-explore","engine":"sync","topology":"complete",
                "reps":2,"seed":11,"budget":200000,
                "axes":{"protocol":["staged","adaptive","uniform"],
                        "nodes":[4],"universe":[5]}}"#,
        )
        .expect("valid spec");
        let manifest: String = spec
            .expand()
            .iter()
            .map(|p| {
                let line = crate::points::run_point_line(&spec, p).expect("point runs");
                format!("{line}\n")
            })
            .collect();
        let opts = ExplorerOptions::new(&spec.name, "campaign --spec rivals.json");
        let html = render_explorer(&manifest, &opts).expect("renders");
        // nodes and universe each take a single value, so the grouped
        // protocol bars are the only chart on the page.
        assert_eq!(html.matches("<svg").count(), 1);
        assert!(html.contains("by <code>protocol</code>"));
        for name in ["staged", "adaptive", "uniform"] {
            assert!(html.contains(&format!("<td class=\"cat\">{name}</td>")));
        }
    }

    #[test]
    fn titles_and_commands_are_escaped() {
        let opts = ExplorerOptions::new("a<b>&\"c\"", "campaign --spec x & y");
        let html = render_explorer(&sample_manifest(), &opts).expect("renders");
        assert!(html.contains("a&lt;b&gt;&amp;&quot;c&quot;"));
        assert!(html.contains("campaign --spec x &amp; y --point 0"));
        assert!(!html.contains("a<b>"));
    }

    #[test]
    fn tolerates_torn_lines_and_all_failed_points() {
        let manifest = "{\"point\":0,\"params\":[[\"nodes\",4]],\"completed\":0,\
                        \"failures\":2,\"mean\":null,\"p50\":null,\"p90\":null,\
                        \"p99\":null}\n\
                        {\"point\":1,\"params\":[[\"nodes\",8]],\"completed\":2,\
                        \"failures\":0,\"mean\":10,\"p50\":10,\"p90\":11,\"p99\":12}\n\
                        {\"point\":2,\"par";
        let opts = ExplorerOptions::new("t", "campaign --spec t.json");
        let html = render_explorer(manifest, &opts).expect("renders");
        // The all-failed point renders dashes, the torn line is dropped.
        assert!(html.contains("<td>—</td>"));
        assert!(!html.contains("--point 2"));
    }

    #[test]
    fn empty_and_future_manifests_are_errors() {
        let opts = ExplorerOptions::new("t", "campaign");
        assert!(render_explorer("", &opts).is_err());
        assert!(render_explorer("not json\n", &opts).is_err());
        let future = "{\"schema_version\":99,\"point\":0,\"params\":[]}\n";
        let err = render_explorer(future, &opts).expect_err("must refuse");
        assert!(err.to_string().contains("newer than the supported"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let opts = ExplorerOptions::new("smoke", "campaign --smoke");
        let manifest = sample_manifest();
        let a = render_explorer(&manifest, &opts).expect("renders");
        let b = render_explorer(&manifest, &opts).expect("renders");
        assert_eq!(a, b);
    }

    #[test]
    fn real_smoke_manifest_renders_end_to_end() {
        // The acceptance path: run the built-in 4-point smoke spec through
        // the real point runner and feed its manifest lines straight in.
        let spec = crate::spec::SweepSpec::smoke();
        let manifest: String = spec
            .expand()
            .iter()
            .map(|p| {
                let line = crate::points::run_point(&spec, p.id).expect("point runs");
                format!("{line}\n")
            })
            .collect();
        let opts = ExplorerOptions::new(&spec.name, "campaign --smoke");
        let html = render_explorer(&manifest, &opts).expect("renders");
        assert_eq!(
            html.matches("<svg").count(),
            2,
            "smoke sweeps nodes × universe"
        );
        assert!(html.contains("campaign --smoke --point 3"));
    }
}
