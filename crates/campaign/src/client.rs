//! A minimal, dependency-free HTTP/1.1 client for the campaign service.
//!
//! The `campaign` binary talks to a `campaign-server` coordinator
//! (`mmhew-serve`) in two places — `campaign submit --server URL` and
//! `campaign explore --server URL` — and this module is the whole client:
//! one request per connection (`Connection: close`), JSON bodies, no
//! keep-alive, no TLS. It deliberately does *not* depend on `mmhew-serve`
//! (which depends on this crate); the wire protocol is plain enough that
//! the two sides only share [`WIRE_SCHEMA_VERSION`] and the JSON shapes,
//! which `crates/serve` pins with a cross-crate equality test.

use crate::json::{self, Value};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Schema version stamped on every request and response body of the
/// campaign service wire protocol. Either side refuses a *newer* version
/// rather than misreading it; `mmhew_serve::wire::WIRE_SCHEMA_VERSION`
/// must stay equal to this constant.
pub const WIRE_SCHEMA_VERSION: u32 = 1;

/// A decoded HTTP response: status code and body text.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// The HTTP status code (200, 204, 409, …).
    pub status: u16,
    /// The response body (empty for bodyless statuses).
    pub body: String,
}

impl HttpResponse {
    /// Parses the body as JSON and refuses a `schema_version` newer than
    /// [`WIRE_SCHEMA_VERSION`].
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed or too-new body.
    pub fn json(&self) -> Result<Value, String> {
        let v = json::parse(&self.body).map_err(|e| format!("response is not JSON: {e}"))?;
        let version = v.get("schema_version").and_then(Value::as_u64).unwrap_or(0);
        if version > WIRE_SCHEMA_VERSION as u64 {
            return Err(format!(
                "server speaks wire schema {version}, newer than the supported \
                 {WIRE_SCHEMA_VERSION}; upgrade this binary"
            ));
        }
        Ok(v)
    }
}

/// Normalizes a `--server` value to a connectable `host:port`: strips an
/// `http://` prefix and any trailing slash.
pub fn server_addr(server: &str) -> &str {
    server
        .trim()
        .trim_start_matches("http://")
        .trim_end_matches('/')
}

/// One-shot HTTP request: connects, sends, reads the full response
/// (the service closes every connection after responding).
///
/// # Errors
///
/// Returns the underlying I/O error, or `InvalidData` on a malformed
/// response.
pub fn request(
    server: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<HttpResponse> {
    let addr = server_addr(server);
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\
         Content-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// `GET path` against the server.
///
/// # Errors
///
/// See [`request`].
pub fn get(server: &str, path: &str) -> std::io::Result<HttpResponse> {
    request(server, "GET", path, None)
}

/// `POST path` with a JSON body.
///
/// # Errors
///
/// See [`request`].
pub fn post(server: &str, path: &str, body: &str) -> std::io::Result<HttpResponse> {
    request(server, "POST", path, Some(body))
}

fn parse_response(raw: &[u8]) -> std::io::Result<HttpResponse> {
    let invalid = || {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed HTTP response from campaign server",
        )
    };
    let text = String::from_utf8_lossy(raw);
    let (head, body) = text.split_once("\r\n\r\n").ok_or_else(invalid)?;
    let status = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(invalid)?;
    Ok(HttpResponse {
        status,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_addr_normalizes() {
        assert_eq!(server_addr("http://127.0.0.1:8077/"), "127.0.0.1:8077");
        assert_eq!(server_addr("127.0.0.1:8077"), "127.0.0.1:8077");
        assert_eq!(server_addr(" http://h:1 "), "h:1");
    }

    #[test]
    fn responses_parse_and_version_check() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 27\r\n\r\n{\"schema_version\":1,\"a\":2}";
        let r = parse_response(raw).expect("parses");
        assert_eq!(r.status, 200);
        let v = r.json().expect("json");
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(2));

        let newer = HttpResponse {
            status: 200,
            body: "{\"schema_version\":99}".to_string(),
        };
        assert!(newer.json().expect_err("refuse").contains("newer"));

        assert!(parse_response(b"garbage").is_err());
    }

    #[test]
    fn requests_round_trip_over_a_real_socket() {
        // A throwaway single-request echo server on a loopback port.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept");
            let mut buf = [0u8; 4096];
            let n = s.read(&mut buf).expect("read");
            let req = String::from_utf8_lossy(&buf[..n]).to_string();
            let body = "{\"schema_version\":1,\"ok\":true}";
            let resp = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                body.len()
            );
            s.write_all(resp.as_bytes()).expect("write");
            req
        });
        let r = post(&addr.to_string(), "/lease", "{\"schema_version\":1}").expect("request");
        assert_eq!(r.status, 200);
        assert_eq!(
            r.json().expect("json").get("ok").and_then(Value::as_bool),
            Some(true)
        );
        let seen = handle.join().expect("server thread");
        assert!(seen.starts_with("POST /lease HTTP/1.1\r\n"));
        assert!(seen.contains("Content-Length: 20"));
        assert!(seen.ends_with("{\"schema_version\":1}"));
    }
}
