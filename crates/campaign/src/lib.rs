//! `mmhew-campaign` — declarative, sharded, resumable parameter sweeps.
//!
//! A *campaign* is a named parameter grid ([`SweepSpec`]) over the
//! quantities the ICDCS 2011 reproduction studies — network size,
//! channel universe, availability, loss, jamming, churn, robustness,
//! start staggering — executed point by point through the unified
//! [`mmhew_discovery::Scenario`] builder and aggregated into a single
//! deterministic JSON artifact.
//!
//! Three properties define the subsystem (each asserted by tests):
//!
//! 1. **Deterministic point addressing** — every repetition's randomness
//!    derives from `(seed, name, point id, rep)` via [`point_seed`], so
//!    any point can be re-run in isolation ([`run_point`]) and produce
//!    the byte-identical manifest line the full campaign would record.
//! 2. **Sharded work stealing** — repetitions are cut into fixed-size
//!    shards and pooled across points through
//!    [`mmhew_harness::parallel_reps`]; shard/thread/chunk layout never
//!    influences results, including floating-point aggregation order.
//! 3. **Resumable checkpoints** — completed points stream into a JSONL
//!    manifest; a re-launch with `resume` skips them, and the final
//!    artifact is byte-identical to an uninterrupted run's.
//!
//! The `campaign` binary (in this crate) drives it from the command
//! line: `campaign --spec sweep.json [--resume] [--jobs N]`, or
//! `campaign --smoke` for the built-in 4-point CI spec. A finished (or
//! in-flight) manifest can be rendered into a self-contained static HTML
//! report — quantile charts per swept axis plus a point table with
//! replay commands — via `campaign explore --manifest FILE.jsonl`
//! ([`render_explorer`]), or fetched live from a `campaign-server`
//! coordinator with `campaign explore --server URL`.
//!
//! The point-execution and manifest machinery lives in [`points`], which
//! the `mmhew-serve` campaign service (coordinator + worker fleet)
//! reuses: `campaign submit --server URL` (see [`client`]) hands a spec
//! to a running coordinator instead of executing it in-process.

pub mod client;
pub mod explorer;
pub mod json;
pub mod points;
pub mod run;
pub mod spec;

pub use explorer::{render_explorer, ExplorerError, ExplorerOptions};
pub use points::{
    ensure_manifest_header, load_manifest, manifest_header, point_seed, run_point, run_point_line,
    MANIFEST_SCHEMA_VERSION,
};
pub use run::{run_campaign, CampaignError, CampaignOptions, CampaignOutcome};
pub use spec::{AxisSpec, EngineKind, GridMode, Point, SpecError, SweepSpec, AXES};
